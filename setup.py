"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments whose setuptools lacks
the ``bdist_wheel`` command (offline boxes without the ``wheel`` package);
all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
