"""F5-b — Fig. 5 inset: intra-/inter-trajectory device scaling.

Paper shape: intra-trajectory shot efficiency scales near-linearly with
GPU count (inset); inter-trajectory scaling is exactly linear by
embarrassing parallelism.  Three measurements here:

* the calibrated perf model's strong-scaling law (paper-scale numbers);
* the *actual* emulated distributed statevector across 1/2/4 devices
  (correctness + communication volume, not wall-time — the devices share
  one CPU);
* actual multiprocessing inter-trajectory throughput on this machine.
"""

from __future__ import annotations

import time

import pytest

from repro.circuits import library
from repro.channels import NoiseModel, depolarizing
from repro.devices import (
    DeviceMesh,
    DistributedStatevector,
    PAPER_STATEVECTOR_TIMINGS,
    PerfModel,
)
from repro.execution import BackendSpec, BatchedExecutor, ParallelExecutor
from repro.pts import ProbabilisticPTS
from repro.rng import make_rng, StreamFactory


def make_workload():
    """Noisy 10-qubit brickwork shared by the fixture and the --json main."""
    circ = library.random_brickwork(10, 4, rng=make_rng(3), measure=True)
    model = NoiseModel().add_all_qubit_gate_noise("cz", depolarizing(0.01))
    return model.apply(circ).freeze()


@pytest.fixture(scope="module")
def workload():
    return make_workload()


@pytest.mark.parametrize("num_devices", [1, 2, 4])
def test_fig5_inset_distributed_prep(benchmark, workload, num_devices):
    """Distributed statevector preparation across emulated devices."""
    dist = DistributedStatevector(10, DeviceMesh(num_devices))

    def run():
        dist.run_fixed(workload)
        return dist.bytes_communicated

    comm = benchmark(run)
    benchmark.extra_info["num_devices"] = num_devices
    benchmark.extra_info["bytes_communicated"] = comm


@pytest.mark.parametrize("workers", [1, 2])
def test_fig5_inset_inter_trajectory(benchmark, workload, workers):
    """Embarrassingly parallel trajectories over worker processes."""
    specs = ProbabilisticPTS(nsamples=60, nshots=2000).sample(
        workload, StreamFactory(0).rng_for(0)
    ).specs

    def run():
        executor = ParallelExecutor(BackendSpec.statevector(), num_workers=workers)
        return executor.execute(workload, specs, seed=0).total_shots

    benchmark(run)
    benchmark.extra_info["workers"] = workers


def test_fig5_inset_report(benchmark, workload):
    def series():
        model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
        model_rows = [
            (d, model.shots_per_second(10**6, num_devices=d)) for d in (1, 2, 4, 8)
        ]
        comm_rows = []
        for d in (1, 2, 4):
            dist = DistributedStatevector(10, DeviceMesh(d))
            dist.run_fixed(workload)
            comm_rows.append((d, dist.bytes_communicated))
        return model_rows, comm_rows

    model_rows, comm_rows = benchmark.pedantic(series, rounds=1, iterations=1)
    lines = ["", "Fig. 5 inset: intra-trajectory device scaling"]
    lines.append("perf model (paper-calibrated, 1e6-shot batches):")
    base = model_rows[0][1]
    for d, rate in model_rows:
        lines.append(f"  {d} device(s): {rate:.3e} shots/s ({rate / base:.2f}x)")
    lines.append("emulated distributed statevector, communication volume:")
    for d, comm in comm_rows:
        lines.append(f"  {d} device(s): {comm / 1e6:.3f} MB exchanged")
    lines.append("paper: nearly linear intra-trajectory scaling; inter-trajectory exactly linear")
    print("\n".join(lines))
    # Shape: model scaling is monotone and near-linear up to saturation.
    rates = [r for _, r in model_rows]
    assert rates[1] > 1.5 * rates[0]


if __name__ == "__main__":
    from _harness import make_parser, write_json

    args = make_parser("Fig. 5 inset: intra-trajectory device scaling").parse_args()
    circuit = make_workload()
    model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
    rows = []
    print("perf model (paper-calibrated, 1e6-shot batches):")
    for d in (1, 2, 4, 8):
        rate = model.shots_per_second(10**6, num_devices=d)
        print(f"  {d} device(s): {rate:.3e} shots/s")
        rows.append({"kind": "perf_model", "num_devices": d, "shots_per_second": rate})
    print("emulated distributed statevector, communication volume:")
    for d in (1, 2, 4):
        dist = DistributedStatevector(10, DeviceMesh(d))
        dist.run_fixed(circuit)
        comm = dist.bytes_communicated
        print(f"  {d} device(s): {comm / 1e6:.3f} MB exchanged")
        rows.append(
            {"kind": "distributed_comm", "num_devices": d, "bytes_communicated": comm}
        )
    if args.json:
        write_json(
            args.json,
            "fig5_gpu_scaling",
            rows,
            workload={"circuit": "random_brickwork", "num_qubits": 10},
        )
