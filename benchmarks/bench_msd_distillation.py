"""F3-msd — Fig. 3 protocol physics: the 5->1 distillation curve.

Regenerates the quantitative behaviour behind the paper's workload: the
Bravyi-Kitaev output-error curve (eps_out -> 5 eps^2), the ~1/6
acceptance rate, and the 0.1727 threshold — plus the three-Pauli-basis
fidelity measurement procedure of the Fig. 3 caption, timed end-to-end
through the PTSBE pipeline.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backends.statevector import StatevectorBackend
from repro.execution import run_ptsbe
from repro.pts import ProbabilisticPTS
from repro.qec import distill_5_to_1, msd_benchmark_circuit
from repro.qec.magic import bloch_from_expectations, magic_state_fidelity
from repro.rng import make_rng


@pytest.mark.parametrize("eps", [0.01, 0.05, 0.1])
def test_distillation_evaluation(benchmark, eps):
    out = benchmark(lambda: distill_5_to_1(eps))
    benchmark.extra_info["eps_in"] = eps
    benchmark.extra_info["eps_out"] = out.epsilon_out
    benchmark.extra_info["acceptance"] = out.acceptance


def test_distillation_curve_report(benchmark):
    def curve():
        return [distill_5_to_1(e) for e in (0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.18)]

    outs = benchmark.pedantic(curve, rounds=1, iterations=1)
    lines = ["", "5->1 MSD curve (exact protocol)"]
    lines.append(f"{'eps_in':>8} {'eps_out':>11} {'eps_out/eps^2':>14} {'accept':>7}")
    for o in outs:
        lines.append(
            f"{o.epsilon_in:>8.3f} {o.epsilon_out:>11.3e} "
            f"{o.suppression_ratio():>14.2f} {o.acceptance:>7.3f}"
        )
    threshold = (1 - math.sqrt(3 / 7)) / 2
    lines.append(f"Bravyi-Kitaev threshold: {threshold:.4f} (improvement below, not above)")
    print("\n".join(lines))
    assert outs[0].suppression_ratio() == pytest.approx(5.0, rel=0.1)


def test_three_basis_fidelity_pipeline(benchmark):
    """Fig. 3 caption procedure, through PTSBE: measure the top wire in
    X/Y/Z across three circuit variants, reconstruct the Bloch vector."""

    def run():
        expectations = {}
        for basis in "xyz":
            circ = msd_benchmark_circuit(None, basis=basis).freeze()
            result = run_ptsbe(circ, ProbabilisticPTS(nsamples=1, nshots=20_000), seed=7)
            bits = result.shot_table().bits[:, 0]  # top wire
            expectations[basis] = 1.0 - 2.0 * bits.mean()
        return bloch_from_expectations(
            expectations["x"], expectations["y"], expectations["z"]
        )

    bloch = benchmark.pedantic(run, rounds=1, iterations=1)
    # The noiseless protocol circuit outputs *some* single-qubit state on
    # the top wire; report its best magic-corner fidelity.
    from repro.qec.magic import _nearest_t_corner

    corner = _nearest_t_corner(np.asarray(bloch))
    fid = magic_state_fidelity(bloch, corner)
    print(f"\ntop-wire Bloch via 3-basis readout: {np.round(bloch, 3)} -> F={fid:.3f}")
    assert np.linalg.norm(bloch) <= 1.0 + 0.02
