"""Shared benchmark harness: machine-readable result emission.

Every standalone benchmark script accepts ``--json PATH`` and, when it is
given, writes its report rows as a ``BENCH_*.json`` document so the
project's performance trajectory can be tracked across commits instead of
scrolling by as stdout.  One schema for every benchmark:

.. code-block:: json

    {
      "schema_version": 1,
      "benchmark": "vectorized_executor",
      "created_unix": 1753500000.0,
      "python": "3.12.3",
      "numpy": "1.26.4",
      "array_module": "numpy",
      "workload": {"num_qubits": 12, "shots_per_trajectory": 256},
      "rows": [{"trajectories": 8, "strategy": "vectorized",
                "shots_per_second": 1.1e6, "seconds": 0.0019}]
    }

``rows`` is a non-empty list of flat dicts with scalar values; everything
else is provenance.  :func:`validate_payload` is the schema contract —
CI writes one benchmark JSON and validates it through this module's CLI:

.. code-block:: bash

    PYTHONPATH=src python benchmarks/bench_vectorized_executor.py \
        --json BENCH_vectorized_executor.json
    PYTHONPATH=src python benchmarks/_harness.py BENCH_vectorized_executor.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

SCHEMA_VERSION = 1

#: Keys every payload must carry (see module docstring for semantics).
REQUIRED_KEYS = (
    "schema_version",
    "benchmark",
    "created_unix",
    "python",
    "numpy",
    "array_module",
    "workload",
    "rows",
)

_SCALAR_TYPES = (str, int, float, bool, type(None))


def make_parser(description: str) -> argparse.ArgumentParser:
    """Argument parser shared by the standalone benchmark mains."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the report rows as a machine-readable BENCH_*.json",
    )
    return parser


def result_payload(
    benchmark: str,
    rows: Sequence[Dict[str, Any]],
    workload: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble (and validate) one benchmark result document."""
    import numpy as np

    from repro.linalg.backend import get_array_backend

    payload = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        # The module the run actually resolved (reads Config.array_module),
        # not a hard-coded "auto" probe — a CuPy-capable box forced to
        # NumPy must record "numpy" or cross-commit comparisons lie.
        "array_module": get_array_backend(None).name,
        "workload": dict(workload or {}),
        "rows": [dict(row) for row in rows],
    }
    validate_payload(payload)
    return payload


def write_json(
    path: str,
    benchmark: str,
    rows: Sequence[Dict[str, Any]],
    workload: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write one validated benchmark document to ``path``."""
    payload = result_payload(benchmark, rows, workload)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(payload['rows'])} rows to {path}")
    return payload


def validate_payload(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise ValueError(f"payload must be a dict, got {type(payload).__name__}")
    missing = [key for key in REQUIRED_KEYS if key not in payload]
    if missing:
        raise ValueError(f"payload missing required keys: {missing}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {payload['schema_version']!r} != {SCHEMA_VERSION}"
        )
    if not isinstance(payload["benchmark"], str) or not payload["benchmark"]:
        raise ValueError("benchmark must be a non-empty string")
    if not isinstance(payload["created_unix"], (int, float)):
        raise ValueError("created_unix must be a number")
    if not isinstance(payload["workload"], dict):
        raise ValueError("workload must be a dict")
    rows = payload["rows"]
    if not isinstance(rows, list) or not rows:
        raise ValueError("rows must be a non-empty list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not row:
            raise ValueError(f"rows[{i}] must be a non-empty dict")
        for key, value in row.items():
            if not isinstance(key, str):
                raise ValueError(f"rows[{i}] has a non-string key {key!r}")
            if not isinstance(value, _SCALAR_TYPES):
                raise ValueError(
                    f"rows[{i}][{key!r}] must be a scalar, got {type(value).__name__}"
                )


def validate_file(path: str) -> Dict[str, Any]:
    """Load ``path`` and validate it; returns the payload."""
    with open(path) as fh:
        payload = json.load(fh)
    validate_payload(payload)
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate BENCH_*.json files against the benchmark schema."
    )
    parser.add_argument("paths", nargs="+", metavar="PATH")
    args = parser.parse_args(argv)
    for path in args.paths:
        payload = validate_file(path)
        print(
            f"{path}: ok — benchmark {payload['benchmark']!r}, "
            f"{len(payload['rows'])} rows"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
