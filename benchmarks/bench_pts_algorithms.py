"""A2-cost — §3.1: PTS sampling is lightweight (~O(|{K}|^2 p^2)).

The pre-sampling pass must be negligible next to state preparation:
these benches measure every PTS algorithm's throughput on the MSD
workload and the report compares against one state preparation.
"""

from __future__ import annotations

import time

import pytest

from repro.execution import BatchedExecutor
from repro.pts import (
    CorrelatedNoisePTS,
    ExhaustivePTS,
    ProbabilisticPTS,
    ProbabilityBandPTS,
    ProportionalPTS,
    TopKPTS,
    TrajectorySpec,
)
from repro.rng import make_rng
from repro.trajectory.events import TrajectoryRecord

SAMPLERS = {
    "probabilistic": lambda: ProbabilisticPTS(nsamples=500, nshots=1000),
    "proportional": lambda: ProportionalPTS(total_shots=100_000, nsamples=500),
    "band": lambda: ProbabilityBandPTS(1e-5, 1e-1, nsamples=500, nshots=1000),
    "exhaustive": lambda: ExhaustivePTS(cutoff=1e-6, nshots=1000, max_errors=2),
    "top_k": lambda: TopKPTS(k=50, nshots=1000),
    "correlated": lambda: CorrelatedNoisePTS(num_bursts=500, radius=1),
}


@pytest.mark.parametrize("name", sorted(SAMPLERS))
def test_pts_algorithm_throughput(benchmark, msd_bare, name):
    sampler = SAMPLERS[name]()
    rng = make_rng(0)
    result = benchmark(lambda: sampler.sample(msd_bare, rng))
    benchmark.extra_info["trajectories"] = result.num_trajectories
    benchmark.extra_info["coverage"] = result.coverage()


def test_pts_cost_vs_state_prep_report(benchmark, msd_bare, sv_backend):
    """PTS for hundreds of trajectories should cost less than preparing a
    handful of states — the premise of doing it *pre*-trajectory."""

    def series():
        t0 = time.perf_counter()
        result = ProbabilisticPTS(nsamples=1000, nshots=1000).sample(
            msd_bare, make_rng(1)
        )
        pts_s = time.perf_counter() - t0
        executor = BatchedExecutor(sv_backend)
        spec = TrajectorySpec(
            record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=1
        )
        t0 = time.perf_counter()
        for _ in range(10):
            executor.execute(msd_bare, [spec], seed=0)
        prep10_s = time.perf_counter() - t0
        return pts_s, prep10_s, result.num_trajectories

    pts_s, prep10_s, trajectories = benchmark.pedantic(series, rounds=2, iterations=1)
    print(
        f"\nPTS pass: {trajectories} unique trajectories from 1000 attempts in "
        f"{pts_s * 1e3:.1f} ms; 10 state preparations took {prep10_s * 1e3:.1f} ms"
    )
    assert pts_s < 10 * prep10_s
