"""Shared workloads for the benchmark harness.

Every benchmark regenerates one row of DESIGN.md §3's experiment index.
Workloads are laptop-scaled versions of the paper's: the 5->1 MSD circuit
(bare 5-qubit logical level for dense statevector benches; Steane-encoded
35-qubit for the MPS benches) with depolarizing noise, exactly the
configuration the paper's Figs. 4-5 time.
"""

from __future__ import annotations

import pytest

from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.execution import BackendSpec
from repro.qec import msd_benchmark_circuit, msd_preparation_circuit, steane_code


MSD_NOISE = (
    NoiseModel()
    .add_all_qubit_gate_noise("cz", two_qubit_depolarizing(0.01))
    .add_all_qubit_gate_noise("sx", depolarizing(0.002))
    .add_all_qubit_gate_noise("sy", depolarizing(0.002))
    .add_all_qubit_gate_noise("sxdg", depolarizing(0.002))
)


def make_msd_bare() -> Circuit:
    """5-qubit logical-level MSD circuit with gate noise (Fig. 4 workload,
    dense-feasible width).  Plain function so the standalone ``--json``
    benchmark mains can rebuild the workload without pytest."""
    return MSD_NOISE.apply(msd_benchmark_circuit(None)).freeze()


def make_msd_steane_35q() -> Circuit:
    """35-qubit Steane-encoded MSD circuit (the paper's statevector
    workload; run here on the MPS backend)."""
    return MSD_NOISE.apply(msd_benchmark_circuit(steane_code())).freeze()


def make_msd_prep_35q() -> Circuit:
    """35-qubit MSD preparation circuit (Fig. 5's workload shape)."""
    model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.005))
    return model.apply(msd_preparation_circuit(steane_code())).freeze()


@pytest.fixture(scope="session")
def msd_bare():
    return make_msd_bare()


@pytest.fixture(scope="session")
def msd_steane_35q():
    return make_msd_steane_35q()


@pytest.fixture(scope="session")
def msd_prep_35q():
    return make_msd_prep_35q()


@pytest.fixture(scope="session")
def sv_backend():
    return BackendSpec.statevector()


@pytest.fixture(scope="session")
def mps_backend():
    return BackendSpec.mps(max_bond=32)
