"""T-speedup — headline claim: "speedups of up to 10^6x and 16x".

Measures real PTSBE vs. real Algorithm-1 baseline on this machine, per
backend, across batch sizes, and prints the paper-vs-measured table.
The absolute ratio is machine- and width-dependent; the reproduction
claim is the *shape*: speedup ~ batch size until the prep/sample cost
ratio saturates it.
"""

from __future__ import annotations

import pytest

from repro.analysis.speedup import measure_speedup, speedup_curve
from repro.devices import PAPER_STATEVECTOR_TIMINGS, PAPER_TENSORNET_TIMINGS, PerfModel
from repro.execution import BackendSpec


@pytest.mark.parametrize("batch", [100, 10_000])
def test_speedup_statevector(benchmark, msd_bare, batch):
    def run():
        return measure_speedup(msd_bare, batch, baseline_cap=20).speedup

    speedup = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info["speedup"] = speedup
    assert speedup > 10


def test_speedup_mps(benchmark, msd_prep_35q):
    def run():
        return measure_speedup(
            msd_prep_35q,
            500,
            backend=BackendSpec.mps(max_bond=16),
            baseline_cap=5,
        ).speedup

    speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = speedup
    assert speedup > 16  # the paper's tensornet headline


def test_speedup_table_report(benchmark, msd_bare):
    def series():
        return speedup_curve(msd_bare, [10, 100, 1_000, 10_000, 100_000], baseline_cap=20)

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    sv_model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
    lines = ["", "Speedup table: PTSBE vs Algorithm-1 baseline (statevector)"]
    lines.append(f"{'batch':>8} {'measured x':>12} {'paper-model x':>14}")
    for m in rows:
        lines.append(
            f"{m.batch_shots:>8d} {m.speedup:>12.1f} {sv_model.speedup(m.batch_shots):>14.1f}"
        )
    lines.append("paper headline: up to 1e6x (statevector), 16x (tensornet)")
    print("\n".join(lines))
    # Shape assertions: monotone growth, big at large batch.
    speeds = [m.speedup for m in rows]
    assert speeds[-1] > speeds[0]
    assert speeds[-1] > 1000
