"""F4-a — Fig. 4 (left axis): shots/second vs. batch size, statevector.

Paper shape: shots/s grows near-linearly with the per-trajectory batch
size (state preparation amortizes away) until it saturates at the pure
bulk-sampling rate; the efficiency gain over 1-shot batches reached ~10^6
at 10^6-10^7-shot batches on the 35-qubit workload.  Here the same curve
is measured on the laptop-width MSD workload; the saturating ratio is
t_prep / t_shot for this machine.

Read the pytest-benchmark table bottom-up: `ops` per benchmark are whole
trajectory executions; multiply by the batch size for shots/s — the
derived column printed by `test_fig4_report`.
"""

from __future__ import annotations

import time

import pytest

from repro.execution import BatchedExecutor
from repro.pts import TrajectorySpec
from repro.trajectory.events import TrajectoryRecord

BATCH_SIZES = [1, 10, 100, 1_000, 10_000, 100_000]


def _spec(shots: int) -> TrajectorySpec:
    return TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=shots
    )


@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_fig4_batched_trajectory(benchmark, msd_bare, sv_backend, batch):
    """One prepared trajectory + one bulk sample of `batch` shots."""
    executor = BatchedExecutor(sv_backend)

    def run():
        return executor.execute(msd_bare, [_spec(batch)], seed=0)

    result = benchmark(run)
    benchmark.extra_info["batch_shots"] = batch
    benchmark.extra_info["shots_per_second"] = batch / (
        result.prep_seconds + result.sample_seconds
    )


def test_fig4_report(benchmark, msd_bare, sv_backend):
    """Print the full Fig. 4 series: shots/s and efficiency vs. batch size."""
    executor = BatchedExecutor(sv_backend)

    def series():
        rows = []
        for batch in BATCH_SIZES:
            t0 = time.perf_counter()
            executor.execute(msd_bare, [_spec(batch)], seed=0)
            dt = time.perf_counter() - t0
            rows.append((batch, batch / dt, dt))
        return rows

    rows = benchmark.pedantic(series, rounds=3, iterations=1)
    base_rate = rows[0][1]
    lines = ["", "Fig. 4 (statevector): shots/s vs batch size"]
    lines.append(f"{'batch':>9} {'shots/s':>14} {'efficiency x':>13}")
    for batch, rate, _ in rows:
        lines.append(f"{batch:>9d} {rate:>14.3e} {rate / base_rate:>13.1f}")
    lines.append(
        "paper: efficiency grows ~linearly with batch, reaching ~1e6x at 1e6-1e7"
    )
    report = "\n".join(lines)
    print(report)
    benchmark.extra_info["report"] = report
    # Reproduction assertion: the shape must hold — large batches are at
    # least 100x more shot-efficient than single-shot trajectories here.
    assert rows[-1][1] / base_rate > 100


if __name__ == "__main__":
    from _harness import make_parser, write_json
    from conftest import make_msd_bare

    from repro.execution import BackendSpec

    args = make_parser("Fig. 4 (statevector): shots/s vs batch size").parse_args()
    circuit = make_msd_bare()
    executor = BatchedExecutor(BackendSpec.statevector())
    rows = []
    print(f"{'batch':>9} {'shots/s':>14} {'seconds':>9}")
    for batch in BATCH_SIZES:
        t0 = time.perf_counter()
        executor.execute(circuit, [_spec(batch)], seed=0)
        dt = time.perf_counter() - t0
        print(f"{batch:>9d} {batch / dt:>14.3e} {dt:>9.4f}")
        rows.append(
            {"batch_shots": batch, "shots_per_second": batch / dt, "seconds": dt}
        )
    if args.json:
        write_json(
            args.json,
            "fig4_statevector",
            rows,
            workload={"circuit": "msd_bare", "num_qubits": circuit.num_qubits},
        )
