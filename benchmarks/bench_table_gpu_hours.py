"""T-hours — headline datasets: 10^12 shots / 4,445 GPU-hours (SV) and
10^6 shots / 2,223 GPU-hours (TN).

The GPU-hour numbers are arithmetic consequences of per-trajectory
timings; the calibrated model reproduces them exactly, and the benchmark
also measures this machine's own constants to show the same arithmetic
at laptop scale.
"""

from __future__ import annotations

import time

import pytest

from repro.devices import PAPER_STATEVECTOR_TIMINGS, PAPER_TENSORNET_TIMINGS, PerfModel
from repro.execution import BatchedExecutor
from repro.pts import TrajectorySpec
from repro.trajectory.events import TrajectoryRecord


def test_paper_gpu_hours_statevector(benchmark):
    model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
    hours = benchmark(lambda: model.dataset_gpu_hours(10**12, 10**6))
    assert hours == pytest.approx(4445, rel=0.01)
    benchmark.extra_info["gpu_hours"] = hours
    benchmark.extra_info["paper"] = 4445


def test_paper_gpu_hours_tensornet(benchmark):
    model = PerfModel(PAPER_TENSORNET_TIMINGS)
    hours = benchmark(lambda: model.dataset_gpu_hours(10**6, 100))
    assert hours == pytest.approx(2223, rel=0.01)
    benchmark.extra_info["gpu_hours"] = hours
    benchmark.extra_info["paper"] = 2223


def test_gpu_hours_report(benchmark, msd_bare, sv_backend):
    """Calibrate this machine's constants and run the same arithmetic."""

    def calibrate():
        executor = BatchedExecutor(sv_backend)
        spec = TrajectorySpec(
            record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=50_000
        )
        result = executor.execute(msd_bare, [spec], seed=0)
        prep = result.prep_seconds
        shot = result.sample_seconds / 50_000
        return prep, shot

    prep, shot = benchmark.pedantic(calibrate, rounds=3, iterations=1)
    from repro.devices.perf_model import BackendTimings

    local = PerfModel(BackendTimings(prep_seconds=prep, shot_seconds=shot, ref_devices=1))
    sv_model = PerfModel(PAPER_STATEVECTOR_TIMINGS)
    tn_model = PerfModel(PAPER_TENSORNET_TIMINGS)
    lines = ["", "Dataset-cost table (GPU-hours / CPU-hours)"]
    lines.append(
        f"paper SV: 1e12 shots @1e6/traj -> model {sv_model.dataset_gpu_hours(10**12, 10**6):.0f} "
        "GPU-h (paper 4,445)"
    )
    lines.append(
        f"paper TN: 1e6 shots @100/traj  -> model {tn_model.dataset_gpu_hours(10**6, 100):.0f} "
        "GPU-h (paper 2,223)"
    )
    lines.append(
        f"this machine (5q MSD): prep {prep * 1e3:.2f} ms, shot {shot * 1e9:.1f} ns -> "
        f"1e9 shots @1e6/traj = {local.dataset_gpu_hours(10**9, 10**6, 1):.2f} CPU-h, "
        f"baseline = {local.baseline_gpu_hours(10**9, 1):.0f} CPU-h"
    )
    print("\n".join(lines))
    assert local.saturating_speedup() > 100
