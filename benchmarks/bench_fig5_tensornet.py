"""F5-a — Fig. 5: shots/second vs. trajectory count, tensor-network path.

Paper shape: on the 85-qubit MSD preparation circuit, batched sampling
gained >16x at 10^3-shot batches, limited by per-shot re-contraction in
the then-current implementation.  Here all three rungs of that ladder
are real code paths on the 35-qubit Steane-encoded MSD preparation
circuit:

* ``naive`` — serial per-trajectory MPS preparation and the environment
  chain rebuilt *per shot* (the baseline the paper measured against);
* ``cached`` — serial preparation, right environments computed once per
  trajectory and reused across its shots (the PTSBE caching win);
* ``batched-stack`` — the ``tensornet`` strategy: the circuit compiled
  once into a swap-routed gate schedule and replayed over a
  trajectory-stacked MPS, so B trajectories share every unitary einsum
  and batched truncated SVD and only the per-trajectory noise operators
  vary.

The ``first_chunk_seconds`` column is the streaming-delivery headline:
seconds until ``execute_stream`` hands its first ordered ``ShotChunk``
to the consumer, versus the ``seconds`` column's full materialized run.

Standalone only (``--json PATH`` writes the rows as a machine-readable
``BENCH_*.json``, schema in ``benchmarks/_harness.py``; diff two
documents with ``benchmarks/bench_compare.py``):

    PYTHONPATH=src python benchmarks/bench_fig5_tensornet.py \
        --json BENCH_fig5_tensornet.json
"""

from __future__ import annotations

import time

from repro.execution import BackendSpec, BatchedExecutor, TensorNetExecutor
from repro.pts.base import NoiseSiteView, PTSAlgorithm

TRAJECTORY_COUNTS = [1, 16, 64]
SHOTS_PER_TRAJECTORY = 32
MAX_BOND = 16
MODES = ("naive", "cached", "batched-stack")


def _distinct_specs(circuit, count, shots=SHOTS_PER_TRAJECTORY):
    """Deterministic single-error trajectory specs, one per noise candidate,
    so deduplication cannot collapse the batch."""
    view = NoiseSiteView(circuit)
    if count > len(view.candidates) + 1:
        raise ValueError(
            f"workload has only {len(view.candidates)} error candidates, "
            f"need {count - 1}"
        )
    specs = [PTSAlgorithm.make_spec(view, [], shots, trajectory_id=0)]
    for tid, cand in enumerate(view.candidates[: count - 1], start=1):
        specs.append(PTSAlgorithm.make_spec(view, [cand], shots, trajectory_id=tid))
    return specs


def _make_executor(mode):
    if mode == "batched-stack":
        return TensorNetExecutor(BackendSpec.mps(max_bond=MAX_BOND))
    return BatchedExecutor(
        BackendSpec.mps(max_bond=MAX_BOND), sample_kwargs={"mode": mode}
    )


def _time_to_first_chunk(executor, circuit, specs) -> float:
    """Seconds until a streamed run delivers its first ShotChunk (stream
    abandoned right after; cleanup excluded from the measurement)."""
    t0 = time.perf_counter()
    stream = executor.execute_stream(circuit, specs, seed=0)
    try:
        next(stream)
        return time.perf_counter() - t0
    finally:
        stream.close()


def _mode_rows(circuit, num_traj, repeats=2):
    """One row per sampling mode at a given trajectory count."""
    specs = _distinct_specs(circuit, num_traj)
    rows = []
    for mode in MODES:
        executor = _make_executor(mode)
        best = float("inf")
        best_result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = executor.execute(circuit, specs, seed=0)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                best_result = result
        first_chunk = min(
            _time_to_first_chunk(executor, circuit, specs) for _ in range(repeats)
        )
        rows.append(
            {
                "mode": mode,
                "trajectories": num_traj,
                "shots_per_second": best_result.total_shots / best,
                "seconds": best,
                "first_chunk_seconds": first_chunk,
                "prep_seconds": best_result.prep_seconds,
                "sample_seconds": best_result.sample_seconds,
            }
        )
    return rows


if __name__ == "__main__":
    from _harness import make_parser, write_json
    from conftest import make_msd_prep_35q

    args = make_parser(__doc__.splitlines()[0]).parse_args()
    circuit = make_msd_prep_35q()
    print(f"workload: 35q Steane MSD prep, {SHOTS_PER_TRAJECTORY} shots/trajectory")
    print(
        f"{'trajectories':>12} {'mode':>14} {'shots/s':>12} {'seconds':>9} "
        f"{'1st chunk':>10}"
    )
    json_rows = []
    rates = {}
    for num_traj in TRAJECTORY_COUNTS:
        for row in _mode_rows(circuit, num_traj):
            print(
                f"{row['trajectories']:>12d} {row['mode']:>14} "
                f"{row['shots_per_second']:>12.3e} {row['seconds']:>9.4f} "
                f"{row['first_chunk_seconds']:>10.4f}"
            )
            rates[(num_traj, row["mode"])] = row["shots_per_second"]
            json_rows.append(row)
    largest = TRAJECTORY_COUNTS[-1]
    stack_vs_naive = rates[(largest, "batched-stack")] / rates[(largest, "naive")]
    stack_vs_cached = rates[(largest, "batched-stack")] / rates[(largest, "cached")]
    print(
        f"batched-stack vs naive (B={largest}): {stack_vs_naive:.1f}x "
        f"(paper: >16x at 1e3-shot batches on 85q)"
    )
    print(f"batched-stack vs cached (B={largest}): {stack_vs_cached:.1f}x")
    # Reproduction assertion: the trajectory-stacked path wins by >=5x over
    # per-shot re-contraction once the batch is wide.
    assert stack_vs_naive >= 5, (
        f"batched-stack only {stack_vs_naive:.1f}x over naive at B={largest} "
        "— expected >= 5x"
    )
    if args.json:
        write_json(
            args.json,
            "fig5_tensornet",
            json_rows,
            workload={
                "circuit": "msd_prep_steane",
                "num_qubits": circuit.num_qubits,
                "shots_per_trajectory": SHOTS_PER_TRAJECTORY,
                "max_bond": MAX_BOND,
            },
        )
