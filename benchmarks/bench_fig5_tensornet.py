"""F5-a — Fig. 5: shots/minute vs. batch size, tensor-network backend.

Paper shape: on the 85-qubit MSD preparation circuit, batched sampling
gained >16x at 10^3-shot batches, limited by per-shot re-contraction in
the then-current implementation.  Here both sides of that comparison are
real code paths: `naive` re-contracts the environment chain per shot
(the baseline), `cached` computes it once per trajectory (the PTSBE
path) — run on the 35-qubit Steane-encoded MSD preparation circuit.
"""

from __future__ import annotations

import time

import pytest

from repro.execution import BackendSpec, BatchedExecutor
from repro.pts import TrajectorySpec
from repro.trajectory.events import TrajectoryRecord

BATCHES = [1, 10, 100, 1_000]


def _spec(shots: int) -> TrajectorySpec:
    return TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=shots
    )


@pytest.mark.parametrize("batch", [10, 100, 1_000])
@pytest.mark.parametrize("mode", ["cached", "naive"])
def test_fig5_mps_sampling(benchmark, msd_prep_35q, mode, batch):
    if mode == "naive" and batch > 100:
        pytest.skip("naive mode at large batch is exactly the waste Fig. 5 shows")
    executor = BatchedExecutor(
        BackendSpec.mps(max_bond=16), sample_kwargs={"mode": mode}
    )

    def run():
        return executor.execute(msd_prep_35q, [_spec(batch)], seed=0)

    result = benchmark(run)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["batch_shots"] = batch


def test_fig5_report(benchmark, msd_prep_35q):
    """Shots/minute for cached vs naive across batch sizes + speedup."""

    def series():
        rows = []
        for batch in BATCHES:
            timings = {}
            for mode in ("cached", "naive"):
                executor = BatchedExecutor(
                    BackendSpec.mps(max_bond=16), sample_kwargs={"mode": mode}
                )
                t0 = time.perf_counter()
                executor.execute(msd_prep_35q, [_spec(batch)], seed=0)
                timings[mode] = time.perf_counter() - t0
            rows.append((batch, timings["cached"], timings["naive"]))
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    lines = ["", "Fig. 5 (tensor network, 35q MSD prep): shots/min and speedup"]
    lines.append(f"{'batch':>7} {'cached sh/min':>14} {'naive sh/min':>14} {'speedup':>8}")
    for batch, c, n in rows:
        lines.append(
            f"{batch:>7d} {batch / c * 60:>14.3e} {batch / n * 60:>14.3e} {n / c:>8.1f}"
        )
    lines.append("paper (85q, 4xH100): >16x at 1e3-shot batches")
    print("\n".join(lines))
    # Reproduction assertion: cached batching wins by >10x at 1e3 shots.
    batch, cached_s, naive_s = rows[-1]
    assert naive_s / cached_s > 10


if __name__ == "__main__":
    from _harness import make_parser, write_json
    from conftest import make_msd_prep_35q

    parser = make_parser("Fig. 5 (tensor network): cached vs naive sampling")
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full batch sweep (the 1e3-shot naive point is slow)",
    )
    args = parser.parse_args()
    circuit = make_msd_prep_35q()
    batches = BATCHES if args.full else BATCHES[:-1]
    rows = []
    print(f"{'batch':>7} {'cached s':>10} {'naive s':>10} {'speedup':>8}")
    for batch in batches:
        timings = {}
        for mode in ("cached", "naive"):
            executor = BatchedExecutor(
                BackendSpec.mps(max_bond=16), sample_kwargs={"mode": mode}
            )
            t0 = time.perf_counter()
            executor.execute(circuit, [_spec(batch)], seed=0)
            timings[mode] = time.perf_counter() - t0
        print(
            f"{batch:>7d} {timings['cached']:>10.4f} {timings['naive']:>10.4f} "
            f"{timings['naive'] / timings['cached']:>8.1f}"
        )
        rows.append(
            {
                "batch_shots": batch,
                "cached_seconds": timings["cached"],
                "naive_seconds": timings["naive"],
                "speedup": timings["naive"] / timings["cached"],
            }
        )
    if args.json:
        write_json(
            args.json,
            "fig5_tensornet",
            rows,
            workload={"circuit": "msd_prep_steane", "num_qubits": circuit.num_qubits},
        )
