"""Serial vs. parallel vs. vectorized execution: shots/sec across strategies.

Extends the paper's Fig. 4/5 shots-per-second story to the trajectory-
stacked execution path: for a 12-qubit brickwork workload with B distinct
error trajectories, the serial engine pays the per-gate Python dispatch
cost B times per moment while the vectorized engine pays it once (one
broadcast GEMM over the (B, 2**12) stack), so its advantage grows with
the trajectory count.  The parallel engine amortizes the same cost over
worker processes instead, at the price of process startup.

Run under pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/bench_vectorized_executor.py -q

or standalone for the quick report table (``--json PATH`` additionally
writes the rows as a machine-readable ``BENCH_*.json``, schema in
``benchmarks/_harness.py``):

    PYTHONPATH=src python benchmarks/bench_vectorized_executor.py \
        --json BENCH_vectorized_executor.json
"""

from __future__ import annotations

import time

import pytest

from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ParallelExecutor,
    ShardedExecutor,
    VectorizedExecutor,
)
from repro.pts.base import NoiseSiteView, PTSAlgorithm

NUM_QUBITS = 12
SHOTS_PER_TRAJECTORY = 256
TRAJECTORY_COUNTS = [1, 8, 32, 64]


def _brickwork_circuit(num_qubits: int = NUM_QUBITS, layers: int = 4) -> Circuit:
    """Layered CX brickwork with depolarizing noise on every gate."""
    circ = Circuit(num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            circ.h(q) if layer % 2 == 0 else circ.t(q)
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            circ.cx(q, q + 1)
    circ.measure_all()
    model = (
        NoiseModel()
        .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.01))
        .add_all_qubit_gate_noise("h", depolarizing(0.002))
        .add_all_qubit_gate_noise("t", depolarizing(0.002))
    )
    return model.apply(circ).freeze()


def _distinct_specs(circuit: Circuit, count: int, shots: int = SHOTS_PER_TRAJECTORY):
    """Deterministic single-error trajectory specs, one per noise candidate."""
    view = NoiseSiteView(circuit)
    if count > len(view.candidates) + 1:
        raise ValueError(
            f"workload has only {len(view.candidates)} error candidates, need {count - 1}"
        )
    specs = [PTSAlgorithm.make_spec(view, [], shots, trajectory_id=0)]
    for tid, cand in enumerate(view.candidates[: count - 1], start=1):
        specs.append(PTSAlgorithm.make_spec(view, [cand], shots, trajectory_id=tid))
    return specs


@pytest.fixture(scope="module")
def workload():
    return _brickwork_circuit()


@pytest.mark.parametrize("num_traj", TRAJECTORY_COUNTS)
def test_serial_executor(benchmark, workload, num_traj):
    specs = _distinct_specs(workload, num_traj)
    executor = BatchedExecutor(BackendSpec.statevector())

    result = benchmark(lambda: executor.execute(workload, specs, seed=0))
    benchmark.extra_info["shots_per_second"] = result.total_shots / (
        result.prep_seconds + result.sample_seconds
    )


@pytest.mark.parametrize("num_traj", TRAJECTORY_COUNTS)
def test_vectorized_executor(benchmark, workload, num_traj):
    specs = _distinct_specs(workload, num_traj)
    executor = VectorizedExecutor(BackendSpec.batched_statevector())

    result = benchmark(lambda: executor.execute(workload, specs, seed=0))
    benchmark.extra_info["shots_per_second"] = result.total_shots / (
        result.prep_seconds + result.sample_seconds
    )


def _strategy_rows(workload, num_traj, include_parallel=False, include_sharded=False):
    """(strategy, shots/s, seconds) rows for one trajectory count."""
    specs = _distinct_specs(workload, num_traj)
    executors = [
        ("serial", BatchedExecutor(BackendSpec.statevector())),
        ("vectorized", VectorizedExecutor(BackendSpec.batched_statevector())),
    ]
    if include_parallel:
        executors.insert(1, ("parallel", ParallelExecutor(num_workers=2)))
    if include_sharded:
        executors.append(("sharded", ShardedExecutor(devices=2)))
    rows = []
    total_shots = num_traj * SHOTS_PER_TRAJECTORY
    for name, executor in executors:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            executor.execute(workload, specs, seed=0)
            best = min(best, time.perf_counter() - t0)
        rows.append((name, total_shots / best, best))
    return rows


def test_strategy_report(benchmark, workload):
    """Full strategy comparison; asserts the vectorized path wins at B>=8."""

    def series():
        return {b: _strategy_rows(workload, b, include_parallel=(b >= 8)) for b in TRAJECTORY_COUNTS}

    table = benchmark.pedantic(series, rounds=1, iterations=1)
    lines = ["", f"strategies on {NUM_QUBITS}-qubit brickwork, {SHOTS_PER_TRAJECTORY} shots/trajectory"]
    lines.append(f"{'trajectories':>12} {'strategy':>11} {'shots/s':>12} {'seconds':>9}")
    for num_traj, rows in table.items():
        for name, rate, seconds in rows:
            lines.append(f"{num_traj:>12d} {name:>11} {rate:>12.3e} {seconds:>9.4f}")
    report = "\n".join(lines)
    print(report)
    benchmark.extra_info["report"] = report
    # Acceptance: stacked preparation beats serial once many trajectories
    # share the moment structure.  Gate on the large counts, where the
    # ~1.5x margin is robust to a noisy runner; B=8 is report-only.
    for num_traj in (32, 64):
        rates = {name: rate for name, rate, _ in table[num_traj]}
        assert rates["vectorized"] > rates["serial"], (
            f"vectorized ({rates['vectorized']:.3e} shots/s) should beat serial "
            f"({rates['serial']:.3e} shots/s) at {num_traj} trajectories"
        )


if __name__ == "__main__":
    from _harness import make_parser, write_json

    args = make_parser(__doc__.splitlines()[0]).parse_args()
    circuit = _brickwork_circuit()
    print(f"workload: {circuit}")
    print(f"{'trajectories':>12} {'strategy':>11} {'shots/s':>12} {'seconds':>9}")
    json_rows = []
    for num_traj in TRAJECTORY_COUNTS:
        rows = _strategy_rows(
            circuit,
            num_traj,
            include_parallel=(num_traj >= 8),
            include_sharded=(num_traj >= 8),
        )
        for name, rate, seconds in rows:
            print(f"{num_traj:>12d} {name:>11} {rate:>12.3e} {seconds:>9.4f}")
            json_rows.append(
                {
                    "trajectories": num_traj,
                    "strategy": name,
                    "shots_per_second": rate,
                    "seconds": seconds,
                }
            )
    if args.json:
        write_json(
            args.json,
            "vectorized_executor",
            json_rows,
            workload={
                "circuit": "brickwork",
                "num_qubits": NUM_QUBITS,
                "shots_per_trajectory": SHOTS_PER_TRAJECTORY,
            },
        )
