"""Serial vs. parallel vs. vectorized execution: shots/sec across strategies.

Extends the paper's Fig. 4/5 shots-per-second story to the trajectory-
stacked execution path: for a 12-qubit brickwork workload with B distinct
error trajectories, the serial engine pays the per-operation Python
dispatch cost B times per moment while the vectorized engine pays it once
(one broadcast kernel over the (B, 2**12) stack), so its advantage grows
with the trajectory count.  The parallel engine amortizes the same cost
over worker processes instead, at the price of process startup.

The fusion axis rides on top: with ``Config.fusion="auto"`` every strategy
walks the circuit's compiled ``FusedPlan`` (adjacent gates and sampled
noise-branch operators merged into per-window matrices, see
``repro.execution.plan``), which cuts both the kernel-pass count and the
per-window renormalization sweeps — the ``fusion`` column compares it
against the unfused ``"off"`` plan on the same strategy.

The ``1st chunk`` column is the streaming-delivery headline: seconds until
``execute_stream`` hands its first ``ShotChunk`` to the consumer, versus
the ``seconds`` column's full materialized run — the latency a streaming
decoder-training loop (``run_ptsbe_stream``) saves before its first
mini-batch.

The ``renorm s`` column reports the wall time each in-process run spent
in post-noise-window renormalization (the backends' ``renorm_seconds``
counters) — the cost the batched ``row_norms_squared`` reduction attacks.
The standalone main additionally emits micro-bench rows for the
renormalization sweep itself (batched vs. the legacy per-row vdot loop,
with a B>=64 speedup assertion) and for the k=3 reshape-view kernel tier
vs. the moveaxis+GEMM fallback it replaced.

Run under pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/bench_vectorized_executor.py -q

or standalone for the quick report table (``--json PATH`` additionally
writes the rows as a machine-readable ``BENCH_*.json``, schema in
``benchmarks/_harness.py``; diff two documents with
``benchmarks/bench_compare.py``):

    PYTHONPATH=src python benchmarks/bench_vectorized_executor.py \
        --json BENCH_vectorized_executor.json
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backends.batched_statevector import BatchedStatevectorBackend
from repro.backends.statevector import StatevectorBackend
from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.config import Config
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ParallelExecutor,
    ShardedExecutor,
    VectorizedExecutor,
)
from repro.linalg import (
    apply_compiled_stack,
    apply_gemm_stack,
    compile_operator,
    random_unitary,
    row_norms_squared,
)
from repro.pts.base import NoiseSiteView, PTSAlgorithm

NUM_QUBITS = 12
SHOTS_PER_TRAJECTORY = 256
TRAJECTORY_COUNTS = [1, 8, 32, 64]

#: Explicit fusion configs so the bench measures what it claims even under
#: a REPRO_FUSION=off environment (the CI fusion-off leg).  On this
#: 12-qubit workload the width-aware auto-cap resolves the fused window
#: cap to 4.
FUSION_AUTO = Config(fusion="auto")
FUSION_OFF = Config(fusion="off")


def _brickwork_circuit(num_qubits: int = NUM_QUBITS, layers: int = 4) -> Circuit:
    """Layered CX brickwork with depolarizing noise on every gate."""
    circ = Circuit(num_qubits)
    for layer in range(layers):
        for q in range(num_qubits):
            circ.h(q) if layer % 2 == 0 else circ.t(q)
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            circ.cx(q, q + 1)
    circ.measure_all()
    model = (
        NoiseModel()
        .add_all_qubit_gate_noise("cx", two_qubit_depolarizing(0.01))
        .add_all_qubit_gate_noise("h", depolarizing(0.002))
        .add_all_qubit_gate_noise("t", depolarizing(0.002))
    )
    return model.apply(circ).freeze()


def _distinct_specs(circuit: Circuit, count: int, shots: int = SHOTS_PER_TRAJECTORY):
    """Deterministic single-error trajectory specs, one per noise candidate."""
    view = NoiseSiteView(circuit)
    if count > len(view.candidates) + 1:
        raise ValueError(
            f"workload has only {len(view.candidates)} error candidates, need {count - 1}"
        )
    specs = [PTSAlgorithm.make_spec(view, [], shots, trajectory_id=0)]
    for tid, cand in enumerate(view.candidates[: count - 1], start=1):
        specs.append(PTSAlgorithm.make_spec(view, [cand], shots, trajectory_id=tid))
    return specs


@pytest.fixture(scope="module")
def workload():
    return _brickwork_circuit()


@pytest.mark.parametrize("num_traj", TRAJECTORY_COUNTS)
def test_serial_executor(benchmark, workload, num_traj):
    specs = _distinct_specs(workload, num_traj)
    executor = BatchedExecutor(BackendSpec.statevector(config=FUSION_AUTO))

    result = benchmark(lambda: executor.execute(workload, specs, seed=0))
    benchmark.extra_info["shots_per_second"] = result.total_shots / (
        result.prep_seconds + result.sample_seconds
    )


@pytest.mark.parametrize("num_traj", TRAJECTORY_COUNTS)
def test_vectorized_executor(benchmark, workload, num_traj):
    specs = _distinct_specs(workload, num_traj)
    executor = VectorizedExecutor(BackendSpec.batched_statevector(config=FUSION_AUTO))

    result = benchmark(lambda: executor.execute(workload, specs, seed=0))
    benchmark.extra_info["shots_per_second"] = result.total_shots / (
        result.prep_seconds + result.sample_seconds
    )


def _time_to_first_chunk(executor, workload, specs) -> float:
    """Seconds until a streamed run delivers its first ShotChunk.

    The streaming-delivery headline number: a decoder-training consumer
    sees its first shots after this long, versus the full-run wall time
    for the materialized path.  The stream is abandoned right after the
    first chunk (cleanup included in the run, not in the measurement).
    """
    t0 = time.perf_counter()
    stream = executor.execute_stream(workload, specs, seed=0)
    try:
        next(stream)
        return time.perf_counter() - t0
    finally:
        stream.close()


def _capturing_serial(config):
    """A serial executor whose created backends stay reachable, so the
    per-run renormalization wall time (``backend.renorm_seconds``) can be
    read back after each execute."""
    created = []

    def factory(num_qubits):
        backend = StatevectorBackend(num_qubits, config=config)
        created.append(backend)
        return backend

    return BatchedExecutor(factory), created


def _capturing_vectorized(config):
    created = []

    def factory(num_qubits):
        backend = BatchedStatevectorBackend(num_qubits, config=config)
        created.append(backend)
        return backend

    return VectorizedExecutor(factory), created


def _strategy_rows(workload, num_traj, include_parallel=False, include_sharded=False):
    """(strategy, fusion, shots/s, seconds, first-chunk s, renorm s) rows.

    The renorm column reports the wall time the best run spent in
    post-noise-window renormalization (norm reduction + scale) — the cost
    the batched ``row_norms_squared`` sweep attacks.  It is measurable
    in-process only, so the process-pool strategies report ``None``.
    """
    specs = _distinct_specs(workload, num_traj)
    serial_auto, serial_auto_backends = _capturing_serial(FUSION_AUTO)
    serial_off, serial_off_backends = _capturing_serial(FUSION_OFF)
    vec_auto, vec_auto_backends = _capturing_vectorized(FUSION_AUTO)
    vec_off, vec_off_backends = _capturing_vectorized(FUSION_OFF)
    executors = [
        ("serial", "auto", serial_auto, serial_auto_backends),
        ("serial", "off", serial_off, serial_off_backends),
        ("vectorized", "auto", vec_auto, vec_auto_backends),
        ("vectorized", "off", vec_off, vec_off_backends),
    ]
    if include_parallel:
        executors.insert(
            2,
            (
                "parallel",
                "auto",
                ParallelExecutor(
                    BackendSpec.statevector(config=FUSION_AUTO), num_workers=2
                ),
                None,
            ),
        )
    if include_sharded:
        executors.append(
            (
                "sharded",
                "auto",
                ShardedExecutor(
                    BackendSpec.batched_statevector(config=FUSION_AUTO), devices=2
                ),
                None,
            )
        )
    rows = []
    total_shots = num_traj * SHOTS_PER_TRAJECTORY
    for name, fusion, executor, backends in executors:
        best = float("inf")
        best_renorm = None
        for _ in range(3):
            before = (
                sum(b.renorm_seconds for b in backends)
                if backends is not None
                else 0.0
            )
            t0 = time.perf_counter()
            executor.execute(workload, specs, seed=0)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                if backends is not None:
                    best_renorm = sum(b.renorm_seconds for b in backends) - before
        first_chunk = min(
            _time_to_first_chunk(executor, workload, specs) for _ in range(3)
        )
        rows.append((name, fusion, total_shots / best, best, first_chunk, best_renorm))
    return rows


def _best_of(fn, repeats=20):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _random_stack(rows, num_qubits, seed):
    rng = np.random.default_rng(seed)
    stack = rng.normal(size=(rows, 2**num_qubits)) + 1j * rng.normal(
        size=(rows, 2**num_qubits)
    )
    return np.ascontiguousarray(stack.astype(np.complex128))


def _renorm_sweep_rows(stack_rows=(8, 64, 256), num_qubits=NUM_QUBITS):
    """Batched ``row_norms_squared`` vs. the legacy per-row vdot sweep.

    The batched path must win at B >= 64 on the reduction itself — on a
    device module it additionally collapses B host syncs into one, which
    this host-side bench cannot show.
    """
    rows = []
    speedups = {}
    for b in stack_rows:
        stack = _random_stack(b, num_qubits, seed=b)
        sweep = _best_of(
            lambda: np.array(
                [float(np.real(np.vdot(row, row))) for row in stack]
            )
        )
        batched = _best_of(lambda: row_norms_squared(stack, np))
        rows.append(
            {"kernel": "renorm-vdot-sweep", "stack_rows": b, "seconds": sweep}
        )
        rows.append(
            {"kernel": "renorm-batched", "stack_rows": b, "seconds": batched}
        )
        speedups[b] = sweep / batched
    return rows, speedups


K3_BENCH_TARGETS = [(0, 1, 2), (4, 5, 6), (9, 10, 11), (2, 6, 10)]


def _k3_tier_rows(stack_rows=64, num_qubits=NUM_QUBITS):
    """The k=3 reshape-view tier vs. the moveaxis+GEMM fallback it replaced.

    Contiguous and gapped target layouts on the bench workload's width;
    dense application does not mutate its input, so one stack serves every
    timed call.
    """
    rng = np.random.default_rng(7)
    stack = _random_stack(stack_rows, num_qubits, seed=3)
    rows = []
    for targets in K3_BENCH_TARGETS:
        op = compile_operator(
            random_unitary(8, rng), targets, np.dtype(np.complex128)
        )
        label = "-".join(str(t) for t in targets)
        view = _best_of(
            lambda: apply_compiled_stack(stack, op, num_qubits), repeats=5
        )
        gemm = _best_of(
            lambda: apply_gemm_stack(stack, op, num_qubits), repeats=5
        )
        rows.append(
            {
                "kernel": "k3-view",
                "targets": label,
                "stack_rows": stack_rows,
                "seconds": view,
            }
        )
        rows.append(
            {
                "kernel": "k3-gemm",
                "targets": label,
                "stack_rows": stack_rows,
                "seconds": gemm,
            }
        )
    return rows


def _format_renorm(renorm):
    return f"{renorm:>9.4f}" if renorm is not None else f"{'-':>9}"


def test_strategy_report(benchmark, workload):
    """Full strategy comparison; asserts the vectorized path wins at B>=8
    and that fusion pays on the stacked path."""

    def series():
        return {b: _strategy_rows(workload, b, include_parallel=(b >= 8)) for b in TRAJECTORY_COUNTS}

    table = benchmark.pedantic(series, rounds=1, iterations=1)
    lines = ["", f"strategies on {NUM_QUBITS}-qubit brickwork, {SHOTS_PER_TRAJECTORY} shots/trajectory"]
    lines.append(
        f"{'trajectories':>12} {'strategy':>11} {'fusion':>6} {'shots/s':>12} "
        f"{'seconds':>9} {'1st chunk':>10} {'renorm s':>9}"
    )
    for num_traj, rows in table.items():
        for name, fusion, rate, seconds, first_chunk, renorm in rows:
            lines.append(
                f"{num_traj:>12d} {name:>11} {fusion:>6} {rate:>12.3e} "
                f"{seconds:>9.4f} {first_chunk:>10.4f} {_format_renorm(renorm)}"
            )
    report = "\n".join(lines)
    print(report)
    benchmark.extra_info["report"] = report
    # Acceptance: stacked preparation beats serial once many trajectories
    # share the moment structure.  Gate on the large counts, where the
    # ~1.5x margin is robust to a noisy runner; B=8 is report-only.
    for num_traj in (32, 64):
        rates = {(name, fusion): rate for name, fusion, rate, *_ in table[num_traj]}
        # Streaming: the serial stream hands over its first trajectory
        # after ~1/num_traj of the run — assert it beats the full-run
        # latency by a wide margin (the time-to-first-chunk contract).
        for name, fusion, _, seconds, first_chunk, _renorm in table[num_traj]:
            if name == "serial":
                assert first_chunk < seconds / 2, (
                    f"first streamed chunk ({first_chunk:.4f}s) should be well "
                    f"under the materialized {name} run ({seconds:.4f}s) at "
                    f"{num_traj} trajectories"
                )
        assert rates[("vectorized", "auto")] > rates[("serial", "auto")], (
            f"vectorized ({rates[('vectorized', 'auto')]:.3e} shots/s) should beat "
            f"serial ({rates[('serial', 'auto')]:.3e} shots/s) at {num_traj} trajectories"
        )
        # Fusion target: >=1.5x shots/s on this workload (measured ~1.6-1.7x
        # on a quiet machine); assert a margin that tolerates noisy CI boxes.
        speedup = rates[("vectorized", "auto")] / rates[("vectorized", "off")]
        assert speedup > 1.25, (
            f"fusion speedup {speedup:.2f}x at {num_traj} trajectories below the "
            "1.25x floor (target 1.5x)"
        )


def test_batched_renorm_beats_vdot_sweep():
    """The batched row_norms_squared reduction must outrun the legacy
    per-row vdot sweep at B >= 64 (on host; on a device module it also
    collapses B host syncs into one, which this bench cannot show)."""
    _, speedups = _renorm_sweep_rows(stack_rows=(64, 256))
    assert speedups[64] > 1.0, (
        f"batched renorm reduction {speedups[64]:.2f}x vs the per-row vdot "
        "sweep at B=64 — expected a measurable speedup"
    )


if __name__ == "__main__":
    from _harness import make_parser, write_json

    args = make_parser(__doc__.splitlines()[0]).parse_args()
    circuit = _brickwork_circuit()
    print(f"workload: {circuit}")
    print(
        f"{'trajectories':>12} {'strategy':>11} {'fusion':>6} {'shots/s':>12} "
        f"{'seconds':>9} {'1st chunk':>10} {'renorm s':>9}"
    )
    json_rows = []
    fusion_rates = {}
    first_chunks = {}
    full_runs = {}
    for num_traj in TRAJECTORY_COUNTS:
        rows = _strategy_rows(
            circuit,
            num_traj,
            include_parallel=(num_traj >= 8),
            include_sharded=(num_traj >= 8),
        )
        for name, fusion, rate, seconds, first_chunk, renorm in rows:
            print(
                f"{num_traj:>12d} {name:>11} {fusion:>6} {rate:>12.3e} "
                f"{seconds:>9.4f} {first_chunk:>10.4f} {_format_renorm(renorm)}"
            )
            fusion_rates[(num_traj, name, fusion)] = rate
            first_chunks[(num_traj, name, fusion)] = first_chunk
            full_runs[(num_traj, name, fusion)] = seconds
            json_rows.append(
                {
                    "trajectories": num_traj,
                    "strategy": name,
                    "fusion": fusion,
                    "shots_per_second": rate,
                    "seconds": seconds,
                    "first_chunk_seconds": first_chunk,
                    "renorm_seconds": renorm,
                }
            )
    largest = TRAJECTORY_COUNTS[-1]
    speedup = fusion_rates[(largest, "vectorized", "auto")] / fusion_rates[
        (largest, "vectorized", "off")
    ]
    print(f"fusion speedup (vectorized, B={largest}): {speedup:.2f}x (target >= 1.5x)")
    ttfc = first_chunks[(largest, "serial", "auto")]
    full = full_runs[(largest, "serial", "auto")]
    print(
        f"time to first streamed chunk (serial, B={largest}): {ttfc:.4f}s vs "
        f"{full:.4f}s materialized ({full / ttfc:.0f}x earlier delivery)"
    )

    print(f"\nrenormalization sweep on (B, 2**{NUM_QUBITS}) stacks")
    print(f"{'kernel':>18} {'rows':>6} {'seconds':>12}")
    renorm_rows, renorm_speedups = _renorm_sweep_rows()
    for row in renorm_rows:
        print(f"{row['kernel']:>18} {row['stack_rows']:>6d} {row['seconds']:>12.3e}")
    json_rows.extend(renorm_rows)
    for b, s in sorted(renorm_speedups.items()):
        print(f"batched renorm speedup vs per-row vdot sweep (B={b}): {s:.2f}x")
    assert renorm_speedups[64] > 1.0, (
        f"batched renorm reduction regressed: {renorm_speedups[64]:.2f}x vs the "
        "per-row vdot sweep at B=64"
    )

    print(f"\nk=3 kernel tier on a (64, 2**{NUM_QUBITS}) stack")
    print(f"{'kernel':>10} {'targets':>8} {'seconds':>12}")
    k3_rows = _k3_tier_rows()
    for row in k3_rows:
        print(f"{row['kernel']:>10} {row['targets']:>8} {row['seconds']:>12.3e}")
    json_rows.extend(k3_rows)

    if args.json:
        write_json(
            args.json,
            "vectorized_executor",
            json_rows,
            workload={
                "circuit": "brickwork",
                "num_qubits": NUM_QUBITS,
                "shots_per_trajectory": SHOTS_PER_TRAJECTORY,
            },
        )
