"""ABL-2 — ablation: `uniqueKraus` deduplication (Algorithm 2, line 13).

PTS's dedup is what guarantees no noisy state is ever prepared twice.
This bench quantifies the saving: attempted samples vs. unique
trajectories at several noise strengths, and the downstream preparation
cost with and without dedup.
"""

from __future__ import annotations

import time

import pytest

from repro.channels import NoiseModel, depolarizing
from repro.circuits import library
from repro.execution import BatchedExecutor
from repro.pts import ProbabilisticPTS
from repro.pts.base import NoiseSiteView, PTSAlgorithm, PTSResult
from repro.pts.compatibility import compatible
from repro.rng import make_rng


class _NoDedupPTS(PTSAlgorithm):
    """Algorithm 2 with the uniqueKraus filter removed (the ablation)."""

    name = "probabilistic_nodedup"

    def __init__(self, nsamples: int, nshots: int):
        self.nsamples = nsamples
        self.nshots = nshots

    def sample(self, circuit, rng):
        import numpy as np

        view = NoiseSiteView(circuit)
        probs = np.array([c.probability for c in view.candidates])
        specs = []
        for _ in range(self.nsamples):
            selection = []
            fired = np.nonzero(rng.random(len(view.candidates)) <= probs)[0]
            for idx in fired:
                cand = view.candidates[int(idx)]
                if compatible(cand, selection):
                    selection.append(cand)
            specs.append(self.make_spec(view, selection, self.nshots, len(specs)))
        return PTSResult(specs=specs, algorithm=self.name, attempted_samples=self.nsamples)


def _workload(p):
    circ = library.ghz(6, measure=True)
    model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(p))
    return model.apply(circ).freeze()


@pytest.mark.parametrize("p", [0.001, 0.01, 0.1])
def test_dedup_yield(benchmark, p):
    circ = _workload(p)
    sampler = ProbabilisticPTS(nsamples=2000, nshots=1)

    def run():
        return sampler.sample(circ, make_rng(0))

    result = benchmark(run)
    benchmark.extra_info["noise_p"] = p
    benchmark.extra_info["unique"] = result.num_trajectories
    benchmark.extra_info["duplicates"] = result.duplicates_rejected


def test_dedup_downstream_cost_report(benchmark):
    """Execution cost with vs. without dedup at low noise: dedup collapses
    thousands of attempts into a handful of preparations."""
    circ = _workload(0.005)

    def series():
        with_dedup = ProbabilisticPTS(nsamples=400, nshots=100).sample(circ, make_rng(1))
        without = _NoDedupPTS(nsamples=400, nshots=100).sample(circ, make_rng(1))
        executor = BatchedExecutor()
        t0 = time.perf_counter()
        executor.execute(circ, with_dedup.specs, seed=0)
        dedup_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        executor.execute(circ, without.specs, seed=0)
        nodedup_s = time.perf_counter() - t0
        return len(with_dedup.specs), len(without.specs), dedup_s, nodedup_s

    uniq, total, dedup_s, nodedup_s = benchmark.pedantic(series, rounds=2, iterations=1)
    print(
        f"\ndedup: {total} attempts -> {uniq} unique preparations; "
        f"execution {dedup_s * 1e3:.1f} ms vs {nodedup_s * 1e3:.1f} ms without "
        f"({nodedup_s / dedup_s:.1f}x)"
    )
    assert uniq < total
    assert nodedup_s > dedup_s
