"""F4-b — Fig. 4 (right axis): unique-shot fraction vs. total shots.

Paper shape: for a wide, intricate state the sampled bitstrings stay
largely distinct even at huge batch sizes ("samples of 10^6 total shots
are comprised of more than a 0.5 fraction of unique results" on 2^35
dimensions).  The fraction decays with batch size once batches become
comparable to the effective support of the distribution — visible at
laptop width by sweeping batch size past 2^n.
"""

from __future__ import annotations

import pytest

from repro.backends.statevector import StatevectorBackend
from repro.circuits import library
from repro.data.stats import unique_fraction
from repro.execution import BatchedExecutor
from repro.pts import TrajectorySpec
from repro.rng import make_rng
from repro.trajectory.events import TrajectoryRecord

BATCHES = [100, 1_000, 10_000, 100_000]


@pytest.fixture(scope="module")
def wide_state():
    """A 16-qubit scrambled state: large effective support, like the
    paper's 2^35 MSD state at reduced width."""
    sv = StatevectorBackend(16)
    circ = library.random_brickwork(16, 6, rng=make_rng(99)).freeze()
    sv.run_fixed(circ)
    return sv


@pytest.mark.parametrize("batch", BATCHES)
def test_fig4_unique_fraction(benchmark, wide_state, batch):
    rng = make_rng(batch)

    def run():
        bits = wide_state.sample(batch, range(16), rng)
        return unique_fraction(bits)

    frac = benchmark(run)
    benchmark.extra_info["batch_shots"] = batch
    benchmark.extra_info["unique_fraction"] = frac


def test_fig4_unique_report(benchmark, wide_state):
    def series():
        rows = []
        for batch in BATCHES:
            bits = wide_state.sample(batch, range(16), make_rng(batch))
            rows.append((batch, unique_fraction(bits)))
        return rows

    rows = benchmark.pedantic(series, rounds=2, iterations=1)
    lines = ["", "Fig. 4 (right axis): unique-shot fraction vs batch size (n=16)"]
    for batch, frac in rows:
        lines.append(f"  {batch:>7d} shots -> unique fraction {frac:.3f}")
    lines.append("paper (n=35): fraction > 0.5 even at 1e6 shots")
    print("\n".join(lines))
    # Shape: fraction decays with batch size but stays high while the
    # batch is far below the state dimension.
    fracs = [f for _, f in rows]
    assert fracs[0] > 0.95
    assert all(a >= b - 0.02 for a, b in zip(fracs, fracs[1:]))
    # The paper's regime is batch << 2**n (1e6 << 2**35, ratio ~3e-5); the
    # comparable in-regime point here is 1e4 shots vs 2**16 (ratio 0.15),
    # where the fraction must match the paper's "> 0.5" observation.  The
    # 1e5 point (batch > dim) is deliberately past the regime to show the
    # decay.
    assert fracs[2] > 0.5
    assert fracs[-1] > 0.2


if __name__ == "__main__":
    from _harness import make_parser, write_json

    args = make_parser(
        "Fig. 4 (right axis): unique-shot fraction vs batch size"
    ).parse_args()
    sv = StatevectorBackend(16)
    sv.run_fixed(library.random_brickwork(16, 6, rng=make_rng(99)).freeze())
    rows = []
    print(f"{'batch':>9} {'unique fraction':>16}")
    for batch in BATCHES:
        bits = sv.sample(batch, range(16), make_rng(batch))
        frac = unique_fraction(bits)
        print(f"{batch:>9d} {frac:>16.3f}")
        rows.append({"batch_shots": batch, "unique_fraction": frac})
    if args.json:
        write_json(
            args.json,
            "fig4_unique_fraction",
            rows,
            workload={"circuit": "random_brickwork", "num_qubits": 16},
        )
