"""ABL-1 — ablation: the unitary-mixture fast path (CUDA-Q feature #2).

The same physical dephasing noise expressed two ways: as a unitary
mixture (phase flip — state-independent probabilities, table lookup per
site) and as general Kraus operators (phase damping — requires
<psi|K^dag K|psi> per branch per site).  Algorithm-1 trajectory cost is
measured for both; the fast path's advantage is the ablation result.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.backends.statevector import StatevectorBackend
from repro.channels import NoiseModel, phase_flip
from repro.channels.standard import phase_damping
from repro.circuits import library
from repro.rng import make_rng
from repro.trajectory.baseline import TrajectorySimulator


def _workload(channel):
    circ = library.random_brickwork(8, 4, rng=make_rng(5), measure=True)
    model = NoiseModel().add_all_qubit_gate_noise("rx", channel)
    return model.apply(circ).freeze()


@pytest.fixture(scope="module")
def mixture_circuit():
    lam = 0.2
    return _workload(phase_flip((1 - math.sqrt(1 - lam)) / 2))


@pytest.fixture(scope="module")
def general_circuit():
    return _workload(phase_damping(0.2))


@pytest.mark.parametrize("kind", ["unitary_mixture", "general_kraus"])
def test_ablation_trajectory_cost(benchmark, mixture_circuit, general_circuit, kind):
    circ = mixture_circuit if kind == "unitary_mixture" else general_circuit
    sim = TrajectorySimulator(lambda: StatevectorBackend(8))

    def run():
        return sim.sample(circ, 20, seed=1)

    benchmark(run)
    benchmark.extra_info["path"] = kind


def test_ablation_report(benchmark, mixture_circuit, general_circuit):
    def series():
        sim = TrajectorySimulator(lambda: StatevectorBackend(8))
        t0 = time.perf_counter()
        sim.sample(mixture_circuit, 40, seed=2)
        fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        sim.sample(general_circuit, 40, seed=2)
        general = time.perf_counter() - t0
        return fast, general

    fast, general = benchmark.pedantic(series, rounds=2, iterations=1)
    print(
        f"\nUnitary-mixture fast path: {fast * 1e3:.1f} ms / 40 trajectories; "
        f"general-Kraus path: {general * 1e3:.1f} ms ({general / fast:.2f}x slower)"
    )
    # The general path computes per-branch expectations; it must cost more.
    assert general > fast
