"""Run a declarative scenario sweep with the differential conformance oracle.

The CLI face of :mod:`repro.sweep`: load a YAML/JSON spec, run every
(family × width × profile) cell through every listed strategy, check the
oracle tiers (bitwise strategy equivalence, streamed-chunk concatenation,
density-matrix distribution at small widths), and leave three kinds of
artifact in ``--out-dir``:

* one ``BENCH_sweep_<cell_id>.json`` per executed cell (schema of
  ``benchmarks/_harness.py``; one row per strategy) — directly
  comparable across commits with
  ``python -m benchmarks.bench_compare <base-dir> <cur-dir>``;
* ``sweep_report.md`` — the human coverage/perf matrix;
* ``sweep_report.json`` — the machine summary (spec, matrix, findings).

.. code-block:: bash

    PYTHONPATH=src python -m benchmarks.bench_sweep \
        --spec benchmarks/sweeps/smoke.yaml --out-dir sweep-out

Exit status: 0 every executed cell passed its oracle, 1 at least one
cell failed (or, under ``--strict``, exceeded its wall-clock budget),
2 usage/spec error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

try:
    from benchmarks import _harness
except ImportError:  # direct script invocation: python benchmarks/bench_sweep.py
    import _harness


def _print_cell(cell) -> None:
    marks = ", ".join(
        f"{o.strategy}={o.shots_per_second:.2e}/s" for o in cell.outcomes
    )
    detail = f" ({cell.skip_reason})" if cell.status == "skip" else f" [{marks}]"
    print(f"  {cell.status:>4}  {cell.cell_id}{detail}", flush=True)


def _list_registries() -> None:
    from repro.channels.standard import device_profile, profile_names
    from repro.circuits.library import get_workload, workload_names

    print("workload families:")
    for name in workload_names():
        fam = get_workload(name)
        print(f"  {name:<20} widths [{fam.min_width}, {fam.max_width}]  {fam.description}")
    print("device noise profiles:")
    for name in profile_names():
        prof = device_profile(name)
        kind = "unitary mixture" if prof.unitary_mixture_only else "non-unitary"
        print(f"  {name:<24} p1={prof.p1:g} p2={prof.p2:g} ({kind})  {prof.description}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a scenario sweep with the differential conformance oracle."
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="YAML or JSON sweep specification (see repro/sweep/spec.py)",
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory for per-cell BENCH_*.json + reports (default: %(default)s)",
    )
    parser.add_argument(
        "--report-md", metavar="PATH", default=None,
        help="coverage matrix markdown path (default: <out-dir>/sweep_report.md)",
    )
    parser.add_argument(
        "--report-json", metavar="PATH", default=None,
        help="machine summary path (default: <out-dir>/sweep_report.json)",
    )
    parser.add_argument(
        "--no-bench-json", action="store_true",
        help="skip writing per-cell BENCH_*.json documents",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also exit nonzero when a cell exceeds its wall-clock budget",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list registered workload families and noise profiles, then exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_registries()
        return 0
    if args.spec is None:
        parser.error("--spec is required (or use --list)")

    from repro.errors import SweepError
    from repro.sweep import load_spec, render_markdown, run_sweep, write_report

    try:
        spec = load_spec(args.spec)
    except (OSError, SweepError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cells = spec.expand()
    print(
        f"sweep {spec.name!r}: {len(cells)} cells × "
        f"{len(spec.strategies)} strategies ({', '.join(spec.strategies)})"
    )
    try:
        result = run_sweep(spec, progress=_print_cell)
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    os.makedirs(args.out_dir, exist_ok=True)
    if not args.no_bench_json:
        for cell in result.cells:
            rows = cell.bench_rows()
            if not rows:  # skipped cells have no strategy outcomes
                continue
            path = os.path.join(args.out_dir, f"BENCH_sweep_{cell.cell_id}.json")
            _harness.write_json(
                path,
                benchmark=f"sweep_{cell.cell_id}",
                rows=rows,
                workload=cell.workload_dict(),
            )
    md_path = args.report_md or os.path.join(args.out_dir, "sweep_report.md")
    json_path = args.report_json or os.path.join(args.out_dir, "sweep_report.json")
    write_report(result, markdown_path=md_path, json_path=json_path)
    print(f"wrote {md_path} and {json_path}")

    counts = result.counts()
    combos = result.verified_combos()
    print(
        f"cells: {counts['pass']} pass, {counts['fail']} fail, "
        f"{counts['skip']} skip, {counts['timeout']} timeout; "
        f"verified combos: {len(combos)}"
    )
    if result.failed:
        print(render_markdown(result), file=sys.stderr)
        return 1
    if args.strict and result.timed_out:
        print(render_markdown(result), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
