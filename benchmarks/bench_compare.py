"""Diff two ``BENCH_*.json`` documents and flag throughput regressions.

Closes the ROADMAP's "benchmark trend tracking" loop: every standalone
benchmark main emits a schema-validated document (``benchmarks/_harness.py``),
and this comparator turns two of them — a committed baseline and a fresh
run — into a pass/fail signal:

.. code-block:: bash

    PYTHONPATH=src python benchmarks/bench_vectorized_executor.py --json fresh.json
    PYTHONPATH=src python benchmarks/bench_compare.py \
        benchmarks/baselines/BENCH_vectorized_executor.json fresh.json \
        --threshold 0.15

Rows are matched by every column except the metric (default
``shots_per_second``, higher is better) and wall-time columns
(``seconds``, ``first_chunk_seconds`` — so documents written before the
streaming column existed still compare cleanly); a matched row regresses
when ``current < (1 - threshold) * baseline``.  Exit status: 0 clean, 1 regression (or, with
``--require-all``, baseline rows missing from the current document),
2 usage/schema error.

Absolute thresholds are machine-dependent — comparing numbers from
different boxes needs a generous threshold (CI uses one as a smoke check
against the committed laptop baseline), while same-machine trend tracking
can afford 10-15%.

Both positional arguments may also be *directories* (e.g. two sweep
output trees full of per-cell documents): ``BENCH_*.json`` files are
paired by filename, every pair compared as above, and the worst exit
status wins.  Baseline-only or current-only files are reported; they only
fail the run with ``--require-all``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

try:
    from benchmarks._harness import validate_file
except ImportError:  # direct script invocation: python benchmarks/bench_compare.py
    from _harness import validate_file

#: Columns never used for row identity: the compared metric is excluded
#: explicitly; these are excluded always (wall-time duplicates the metric,
#: and time-to-first-chunk / renorm-time are newer columns older baselines
#: lack — keeping them out of identity lets a fresh run still match a
#: committed baseline).
TIME_COLUMNS = (
    "seconds",
    "first_chunk_seconds",
    "renorm_seconds",
    "prep_seconds",
    "sample_seconds",
)


def row_key(row: Dict[str, Any], metric: str) -> Tuple:
    """Identity of a row: every column except the metric and time columns."""
    return tuple(
        sorted((k, v) for k, v in row.items() if k != metric and k not in TIME_COLUMNS)
    )


def compare_payloads(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    metric: str = "shots_per_second",
    threshold: float = 0.15,
) -> Dict[str, List]:
    """Match rows and classify each as ok / regressed / improved / missing.

    Returns ``{"matched": [(key, base, cur, ratio, regressed)],
    "missing": [key], "extra": [key], "skipped": [key]}`` — ``skipped``
    are rows without the metric (some benchmarks mix row shapes).
    """
    if baseline["benchmark"] != current["benchmark"]:
        raise ValueError(
            f"benchmark mismatch: baseline is {baseline['benchmark']!r}, "
            f"current is {current['benchmark']!r}"
        )
    base_rows: Dict[Tuple, float] = {}
    skipped: List[Tuple] = []
    for row in baseline["rows"]:
        if metric not in row:
            skipped.append(row_key(row, metric))
            continue
        base_rows[row_key(row, metric)] = float(row[metric])
    matched: List[Tuple] = []
    extra: List[Tuple] = []
    for row in current["rows"]:
        if metric not in row:
            continue
        key = row_key(row, metric)
        base = base_rows.pop(key, None)
        if base is None:
            extra.append(key)
            continue
        cur = float(row[metric])
        ratio = cur / base if base > 0 else float("inf")
        regressed = cur < (1.0 - threshold) * base
        matched.append((key, base, cur, ratio, regressed))
    return {
        "matched": matched,
        "missing": sorted(base_rows),
        "extra": extra,
        "skipped": skipped,
    }


def format_key(key: Tuple) -> str:
    return " ".join(f"{k}={v}" for k, v in key)


def compare_files(
    baseline_path: str,
    current_path: str,
    metric: str,
    threshold: float,
    require_all: bool,
) -> int:
    """Compare one baseline/current document pair; prints the row report.

    Returns the exit status for this pair: 0 clean, 1 regression (or
    missing baseline rows with ``require_all``), 2 schema/usage error.
    """
    try:
        baseline = validate_file(baseline_path)
        current = validate_file(current_path)
        report = compare_payloads(baseline, current, metric, threshold)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(
        f"benchmark {baseline['benchmark']!r}: {metric}, "
        f"threshold {threshold:.0%} "
        f"(baseline {baseline['array_module']}/py{baseline['python']}, "
        f"current {current['array_module']}/py{current['python']})"
    )
    regressions = 0
    for key, base, cur, ratio, regressed in report["matched"]:
        status = "REGRESSED" if regressed else ("improved" if ratio > 1 else "ok")
        print(f"  {status:>9}  {ratio:7.2%}  {base:12.4e} -> {cur:12.4e}  {format_key(key)}")
        regressions += regressed
    for key in report["missing"]:
        print(f"  {'MISSING' if require_all else 'missing':>9}  baseline-only row: {format_key(key)}")
    for key in report["extra"]:
        print(f"  {'new':>9}  current-only row: {format_key(key)}")
    if not report["matched"]:
        print("error: no comparable rows", file=sys.stderr)
        return 2
    failed = regressions > 0 or (require_all and report["missing"])
    print(
        f"{len(report['matched'])} rows compared, {regressions} regressed, "
        f"{len(report['missing'])} missing, {len(report['extra'])} new"
    )
    return 1 if failed else 0


def _bench_files(directory: str) -> Dict[str, str]:
    """``BENCH_*.json`` files in ``directory``, keyed by filename."""
    return {
        name: os.path.join(directory, name)
        for name in sorted(os.listdir(directory))
        if name.startswith("BENCH_") and name.endswith(".json")
    }


def compare_dirs(
    baseline_dir: str,
    current_dir: str,
    metric: str,
    threshold: float,
    require_all: bool,
) -> int:
    """Pair ``BENCH_*.json`` files by filename and compare each pair."""
    base_files = _bench_files(baseline_dir)
    cur_files = _bench_files(current_dir)
    common = sorted(set(base_files) & set(cur_files))
    baseline_only = sorted(set(base_files) - set(cur_files))
    current_only = sorted(set(cur_files) - set(base_files))
    if not common:
        print(
            f"error: no BENCH_*.json filenames shared between "
            f"{baseline_dir} and {current_dir}",
            file=sys.stderr,
        )
        return 2
    worst = 0
    for name in common:
        print(f"== {name}")
        worst = max(worst, compare_files(
            base_files[name], cur_files[name], metric, threshold, require_all
        ))
    for name in baseline_only:
        print(f"  {'MISSING' if require_all else 'missing':>9}  baseline-only file: {name}")
    for name in current_only:
        print(f"  {'new':>9}  current-only file: {name}")
    if require_all and baseline_only:
        worst = max(worst, 1)
    print(
        f"{len(common)} documents compared, {len(baseline_only)} baseline-only, "
        f"{len(current_only)} current-only"
    )
    return worst


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json documents; exit 1 on regression."
    )
    parser.add_argument("baseline", metavar="BASELINE")
    parser.add_argument("current", metavar="CURRENT")
    parser.add_argument(
        "--metric",
        default="shots_per_second",
        help="row column to compare, higher is better (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional drop before a row counts as regressed "
        "(default: %(default)s, i.e. current >= 85%% of baseline passes)",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="also fail when baseline rows are missing from the current document",
    )
    args = parser.parse_args(argv)
    if not (0.0 <= args.threshold < 1.0):
        parser.error(f"--threshold must be in [0, 1), got {args.threshold}")
    base_is_dir = os.path.isdir(args.baseline)
    cur_is_dir = os.path.isdir(args.current)
    if base_is_dir != cur_is_dir:
        print(
            "error: baseline and current must both be files or both be "
            "directories",
            file=sys.stderr,
        )
        return 2
    compare = compare_dirs if base_is_dir else compare_files
    return compare(
        args.baseline, args.current, args.metric, args.threshold, args.require_all
    )


if __name__ == "__main__":
    sys.exit(main())
