"""BL-clifford — §2.3: the Stim-style Clifford bulk sampler comparison.

The paper positions PTSBE against Clifford-restricted tools ("Stim is
able to use a reference frame sampler to efficiently bulk sample noisy
simulation data at a rate of MHz").  This bench measures our Pauli-frame
sampler's MHz-scale rate on the Clifford-ized MSD circuit, PTSBE's rate
on the same circuit, and asserts the trade: frames are faster, PTSBE is
universal (it also runs the true non-Clifford circuit, which frames
cannot).
"""

from __future__ import annotations

import time

import pytest

from repro.backends.pauli_frame import FrameSampler
from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import BackendError
from repro.execution import BatchedExecutor
from repro.pts import TrajectorySpec
from repro.qec import msd_benchmark_circuit
from repro.rng import make_rng
from repro.trajectory.events import TrajectoryRecord


def _cliffordized(circuit: Circuit) -> Circuit:
    """Replace the non-Clifford magic-prep rotations with S gates (the
    Clifford approximation a Stim-style tool would be forced into)."""
    from repro.circuits.gates import S

    out = Circuit(circuit.num_qubits, name="msd_cliffordized")
    for op in circuit:
        if isinstance(op, GateOp) and op.gate.name in ("ry", "rz"):
            out.gate(S, *op.qubits)
        elif isinstance(op, GateOp):
            out.gate(op.gate, *op.qubits)
        elif isinstance(op, NoiseOp):
            out.attach(op.channel, *op.qubits)
        else:
            out.append(MeasureOp(op.qubits, key=op.key))
    return out.freeze()


@pytest.fixture(scope="module")
def clifford_msd(msd_bare):
    return _cliffordized(msd_bare)


def test_frame_sampler_bulk_rate(benchmark, clifford_msd):
    sampler = FrameSampler(clifford_msd)
    rng = make_rng(0)
    benchmark(lambda: sampler.sample(100_000, rng))
    benchmark.extra_info["shots_per_call"] = 100_000


def test_ptsbe_rate_on_clifford_circuit(benchmark, clifford_msd, sv_backend):
    executor = BatchedExecutor(sv_backend)
    spec = TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=100_000
    )
    benchmark(lambda: executor.execute(clifford_msd, [spec], seed=0))


def test_clifford_comparison_report(benchmark, msd_bare, clifford_msd, sv_backend):
    def series():
        sampler = FrameSampler(clifford_msd)
        t0 = time.perf_counter()
        sampler.sample(200_000, make_rng(1))
        frame_rate = 200_000 / (time.perf_counter() - t0)
        executor = BatchedExecutor(sv_backend)
        spec = TrajectorySpec(
            record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=200_000
        )
        t0 = time.perf_counter()
        executor.execute(msd_bare, [spec], seed=0)
        ptsbe_rate = 200_000 / (time.perf_counter() - t0)
        return frame_rate, ptsbe_rate

    frame_rate, ptsbe_rate = benchmark.pedantic(series, rounds=2, iterations=1)
    print(
        f"\nClifford frame sampler: {frame_rate / 1e6:.2f} Mshots/s (paper: 'MHz') | "
        f"PTSBE universal statevector: {ptsbe_rate / 1e6:.2f} Mshots/s"
    )
    # The frame sampler must hit MHz rates, as the paper credits Stim.
    assert frame_rate > 1e6
    # And it must REFUSE the true (non-Clifford) MSD circuit — the gap
    # PTSBE exists to fill.
    with pytest.raises(BackendError):
        FrameSampler(msd_bare).sample(1, make_rng(2))
