"""BL-clifford — §2.3: the Stim-style Clifford bulk sampler comparison.

The paper positions PTSBE against Clifford-restricted tools ("Stim is
able to use a reference frame sampler to efficiently bulk sample noisy
simulation data at a rate of MHz").  This bench measures our Pauli-frame
sampler's MHz-scale rate on the Clifford-ized MSD circuit, PTSBE's rate
on the same circuit, and asserts the trade: frames are faster, PTSBE is
universal (it also runs the true non-Clifford circuit, which frames
cannot).

The standalone main compares the ``clifford`` strategy (batched frame
delivery through the normal ``run_ptsbe`` front door) against the
``vectorized`` dense strategy at matched shot counts on two Clifford-ized
MSD workloads:

- the bare 5-qubit logical-level circuit, where dense statevectors are
  in their best regime (2**5 amplitudes) and frames win modestly, and
- the repetition-4-encoded 20-qubit circuit (the QEC regime the router
  exists for), where the dense stack pays one (B, 2**20) simulation per
  unique trajectory and drops to ~1e5 shots/s while frames stay in the
  tens of MHz — the headline >= 50x gap asserted below.

``--json PATH`` writes the rows as a machine-readable ``BENCH_*.json``
(schema in ``benchmarks/_harness.py``):

    PYTHONPATH=src python benchmarks/bench_clifford_baseline.py \
        --json BENCH_clifford_baseline.json
"""

from __future__ import annotations

import time

import pytest

from repro.backends.pauli_frame import FrameSampler
from repro.channels import NoiseModel, depolarizing, two_qubit_depolarizing
from repro.circuits import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import BackendError
from repro.execution import BatchedExecutor
from repro.pts import TrajectorySpec
from repro.qec import msd_benchmark_circuit
from repro.rng import make_rng
from repro.trajectory.events import TrajectoryRecord


def _cliffordized(circuit: Circuit) -> Circuit:
    """Replace the non-Clifford magic-prep rotations with S gates (the
    Clifford approximation a Stim-style tool would be forced into)."""
    from repro.circuits.gates import S

    out = Circuit(circuit.num_qubits, name="msd_cliffordized")
    for op in circuit:
        if isinstance(op, GateOp) and op.gate.name in ("ry", "rz"):
            out.gate(S, *op.qubits)
        elif isinstance(op, GateOp):
            out.gate(op.gate, *op.qubits)
        elif isinstance(op, NoiseOp):
            out.attach(op.channel, *op.qubits)
        else:
            out.append(MeasureOp(op.qubits, key=op.key))
    return out.freeze()


@pytest.fixture(scope="module")
def clifford_msd(msd_bare):
    return _cliffordized(msd_bare)


def test_frame_sampler_bulk_rate(benchmark, clifford_msd):
    sampler = FrameSampler(clifford_msd)
    rng = make_rng(0)
    benchmark(lambda: sampler.sample(100_000, rng))
    benchmark.extra_info["shots_per_call"] = 100_000


def test_ptsbe_rate_on_clifford_circuit(benchmark, clifford_msd, sv_backend):
    executor = BatchedExecutor(sv_backend)
    spec = TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=100_000
    )
    benchmark(lambda: executor.execute(clifford_msd, [spec], seed=0))


def test_clifford_comparison_report(benchmark, msd_bare, clifford_msd, sv_backend):
    def series():
        sampler = FrameSampler(clifford_msd)
        t0 = time.perf_counter()
        sampler.sample(200_000, make_rng(1))
        frame_rate = 200_000 / (time.perf_counter() - t0)
        executor = BatchedExecutor(sv_backend)
        spec = TrajectorySpec(
            record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=200_000
        )
        t0 = time.perf_counter()
        executor.execute(msd_bare, [spec], seed=0)
        ptsbe_rate = 200_000 / (time.perf_counter() - t0)
        return frame_rate, ptsbe_rate

    frame_rate, ptsbe_rate = benchmark.pedantic(series, rounds=2, iterations=1)
    print(
        f"\nClifford frame sampler: {frame_rate / 1e6:.2f} Mshots/s (paper: 'MHz') | "
        f"PTSBE universal statevector: {ptsbe_rate / 1e6:.2f} Mshots/s"
    )
    # The frame sampler must hit MHz rates, as the paper credits Stim.
    assert frame_rate > 1e6
    # And it must REFUSE the true (non-Clifford) MSD circuit — the gap
    # PTSBE exists to fill.
    with pytest.raises(BackendError):
        FrameSampler(msd_bare).sample(1, make_rng(2))


# --------------------------------------------------------------------- #
# standalone strategy comparison: clifford vs. vectorized at matched shots
# --------------------------------------------------------------------- #

BENCH_SEED = 5
#: Monte-Carlo PTS draw count for the encoded workload — each *unique*
#: sampled trajectory costs the dense engine one (B, 2**20) simulation.
ENCODED_NSAMPLES = 128
ENCODED_NSHOTS = 100_000
BARE_SHOTS = 2_000_000
BARE_CUTOFF = 1e-4


def make_clifford_msd_encoded():
    """Repetition-4-encoded (20-qubit) Clifford-ized MSD with the standard
    MSD gate noise — the dense-feasible stand-in for the paper's 35-qubit
    Steane-encoded statevector workload (which no dense strategy can run)."""
    from conftest import MSD_NOISE

    from repro.qec import repetition_code

    return _cliffordized(
        MSD_NOISE.apply(msd_benchmark_circuit(repetition_code(4))).freeze()
    )


def _strategy_row(workload_name, circuit, make_sampler, strategy, rounds):
    """One (strategy x workload) row: best-of-N full run + first-chunk time."""
    from repro.execution import BackendSpec, run_ptsbe, run_ptsbe_stream

    backend = (
        BackendSpec.batched_statevector()
        if strategy == "vectorized"
        else BackendSpec.statevector()
    )
    best = float("inf")
    shots = trajectories = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_ptsbe(
            circuit, make_sampler(), backend, seed=BENCH_SEED, strategy=strategy
        )
        best = min(best, time.perf_counter() - t0)
        shots = result.shot_table().num_shots
        trajectories = len(result.records)
        assert result.engine == strategy
    stream = run_ptsbe_stream(
        circuit, make_sampler(), backend, seed=BENCH_SEED, strategy=strategy
    )
    t0 = time.perf_counter()
    next(stream)
    first_chunk = time.perf_counter() - t0
    stream.close()
    return {
        "workload": workload_name,
        "strategy": strategy,
        "trajectories": trajectories,
        "shots": shots,
        "shots_per_second": shots / best,
        "seconds": best,
        "first_chunk_seconds": first_chunk,
    }


if __name__ == "__main__":
    from _harness import make_parser, write_json

    from conftest import make_msd_bare
    from repro.pts import ExhaustivePTS, ProbabilisticPTS

    args = make_parser(__doc__.splitlines()[0]).parse_args()
    bare = _cliffordized(make_msd_bare())
    encoded = make_clifford_msd_encoded()
    cases = [
        (
            "msd_cliffordized_bare_5q",
            bare,
            lambda: ExhaustivePTS(cutoff=BARE_CUTOFF, nshots=None, total_shots=BARE_SHOTS),
            {"clifford": 3, "vectorized": 2},
        ),
        (
            "msd_cliffordized_rep4_20q",
            encoded,
            lambda: ProbabilisticPTS(nsamples=ENCODED_NSAMPLES, nshots=ENCODED_NSHOTS),
            {"clifford": 3, "vectorized": 1},
        ),
    ]
    print(
        f"{'workload':>26} {'strategy':>11} {'traj':>5} {'shots':>9} "
        f"{'shots/s':>12} {'seconds':>9} {'1st chunk':>10}"
    )
    json_rows = []
    rates = {}
    for name, circuit, make_sampler, rounds_by_strategy in cases:
        for strategy, rounds in rounds_by_strategy.items():
            row = _strategy_row(name, circuit, make_sampler, strategy, rounds)
            json_rows.append(row)
            rates[(name, strategy)] = row["shots_per_second"]
            print(
                f"{name:>26} {strategy:>11} {row['trajectories']:>5d} "
                f"{row['shots']:>9d} {row['shots_per_second']:>12.3e} "
                f"{row['seconds']:>9.4f} {row['first_chunk_seconds']:>10.4f}"
            )
    speedup = (
        rates[("msd_cliffordized_rep4_20q", "clifford")]
        / rates[("msd_cliffordized_rep4_20q", "vectorized")]
    )
    print(
        f"clifford vs vectorized on the encoded Clifford-ized MSD: "
        f"{speedup:.1f}x (target >= 50x)"
    )
    assert speedup >= 50.0, (
        f"clifford strategy regressed to {speedup:.1f}x the vectorized rate "
        "on the 20-qubit Clifford-ized MSD (target >= 50x)"
    )

    if args.json:
        write_json(
            args.json,
            "clifford_baseline",
            json_rows,
            workload={
                "bare": {"circuit": "msd_cliffordized", "num_qubits": 5,
                         "sampler": f"ExhaustivePTS(cutoff={BARE_CUTOFF})",
                         "total_shots": BARE_SHOTS},
                "encoded": {"circuit": "msd_cliffordized_rep4", "num_qubits": 20,
                            "sampler": f"ProbabilisticPTS(nsamples={ENCODED_NSAMPLES}, "
                                       f"nshots={ENCODED_NSHOTS})"},
                "seed": BENCH_SEED,
            },
        )
