"""Standalone benchmark scripts + shared harness.

A package so the entry points run as modules from the repo root
(``python -m benchmarks.bench_sweep``) as well as directly as scripts
(``python benchmarks/bench_sweep.py``); the scripts themselves keep both
spellings working via a try/except on the ``_harness`` import.
"""
