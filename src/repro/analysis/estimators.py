"""Observable estimation from PTSBE results, with uncertainty.

PTSBE's trajectory structure is a *stratified* sample: each prescribed
Kraus set is a stratum with known (nominal or realized) weight, sampled
with an arbitrary, user-chosen shot budget.  The right estimator for an
observable ``f(bits)`` is therefore the weighted stratified mean

    E[f] ~ sum_a  w_a * mean_a(f)  /  sum_a w_a

with the classic stratified variance — *not* the raw pooled mean, which
is biased whenever shots were not allocated proportionally (Algorithm 2's
uniform-``nshots`` mode).  This module provides both, plus standard
observables (bit expectations, parities / diagonal Pauli strings), so
benchmarks and examples can quote error bars.

This generalizes the paper's "proportionally sampled dataset, e.g., for
expectation value estimation" remark: proportional allocation makes the
raw pooled mean correct; stratified weighting makes *any* allocation
correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import DataError
from repro.execution.results import PTSBEResult

__all__ = [
    "Estimate",
    "stratified_estimate",
    "pooled_estimate",
    "bit_observable",
    "parity_observable",
]


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its standard error and support metadata."""

    value: float
    std_error: float
    total_weight: float
    num_strata: int

    def confidence_interval(self, z: float = 1.96):
        """(lo, hi) normal-approximation interval."""
        return (self.value - z * self.std_error, self.value + z * self.std_error)

    def __repr__(self) -> str:
        return f"Estimate({self.value:.6f} +/- {self.std_error:.6f}, strata={self.num_strata})"


def bit_observable(column: int) -> Callable[[np.ndarray], np.ndarray]:
    """Observable: the value of measured bit ``column`` (0/1)."""

    def f(bits: np.ndarray) -> np.ndarray:
        return bits[:, column].astype(np.float64)

    return f


def parity_observable(columns: Optional[Sequence[int]] = None) -> Callable[[np.ndarray], np.ndarray]:
    """Observable: ``(-1)**parity`` over the given bit columns.

    With ``columns=None`` the full-register parity — i.e. the expectation
    of the diagonal Pauli ``Z...Z`` on the measured qubits.
    """

    def f(bits: np.ndarray) -> np.ndarray:
        sel = bits if columns is None else bits[:, list(columns)]
        return 1.0 - 2.0 * (sel.sum(axis=1) % 2).astype(np.float64)

    return f


def stratified_estimate(
    result: PTSBEResult,
    observable: Callable[[np.ndarray], np.ndarray],
    use_actual_weights: bool = False,
) -> Estimate:
    """Weighted stratified estimator over a PTSBE result.

    Parameters
    ----------
    result:
        Output of batched execution.
    observable:
        Maps an ``(m, k)`` bit block to ``m`` real values.
    use_actual_weights:
        Weight strata by the *realized* branch-probability product
        (:attr:`TrajectoryResult.actual_weight`) instead of the nominal
        pre-sampled probability — exact for general (state-dependent)
        channels, identical for unitary mixtures.

    Notes
    -----
    Variance: ``Var = sum_a (w_a/W)^2 * s_a^2 / m_a`` with ``s_a^2`` the
    within-stratum sample variance — zero-shot strata contribute weight
    but no variance term (they are deterministic exclusions, e.g.
    zero-probability trajectories).
    """
    num = 0.0
    weight_total = 0.0
    var = 0.0
    strata = 0
    pairs = []
    for t in result.trajectories:
        # actual_weight *is* the realized probability of the fixed choices.
        w = t.actual_weight if use_actual_weights else t.record.nominal_probability
        if w <= 0.0 or t.num_shots == 0:
            continue
        values = np.asarray(observable(t.bits), dtype=np.float64)
        if values.shape[0] != t.num_shots:
            raise DataError("observable returned wrong number of values")
        pairs.append((w, values))
        weight_total += w
        strata += 1
    if weight_total <= 0.0 or not pairs:
        raise DataError("no weighted shots to estimate from")
    for w, values in pairs:
        frac = w / weight_total
        num += frac * values.mean()
        if values.shape[0] > 1:
            var += frac**2 * values.var(ddof=1) / values.shape[0]
    return Estimate(
        value=float(num),
        std_error=float(np.sqrt(var)),
        total_weight=float(weight_total),
        num_strata=strata,
    )


def pooled_estimate(
    result: PTSBEResult, observable: Callable[[np.ndarray], np.ndarray]
) -> Estimate:
    """Raw pooled mean (correct only under proportional shot allocation)."""
    table = result.shot_table()
    values = np.asarray(observable(table.bits), dtype=np.float64)
    if values.shape[0] == 0:
        raise DataError("no shots to estimate from")
    se = float(values.std(ddof=1) / np.sqrt(len(values))) if len(values) > 1 else 0.0
    return Estimate(
        value=float(values.mean()),
        std_error=se,
        total_weight=float(len(values)),
        num_strata=result.num_trajectories,
    )
