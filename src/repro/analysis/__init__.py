"""Analysis: convergence, speedup accounting, weighted estimators."""

from repro.analysis.convergence import convergence_curve, distribution_error, exact_distribution
from repro.analysis.estimators import (
    Estimate,
    bit_observable,
    parity_observable,
    pooled_estimate,
    stratified_estimate,
)
from repro.analysis.speedup import SpeedupMeasurement, measure_speedup, speedup_curve

__all__ = [
    "convergence_curve",
    "distribution_error",
    "exact_distribution",
    "Estimate",
    "bit_observable",
    "parity_observable",
    "pooled_estimate",
    "stratified_estimate",
    "SpeedupMeasurement",
    "measure_speedup",
    "speedup_curve",
]
