"""Trajectory-to-density-matrix convergence measurement.

The statistical contract of every trajectory method: the ensemble over
trajectories must reproduce the exact open-system distribution.  These
helpers quantify that for both the conventional baseline and PTSBE
estimators, backing the integration tests and the proportional-sampling
validation.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.backends.density_matrix import DensityMatrixBackend
from repro.circuits.circuit import Circuit
from repro.data.stats import empirical_distribution, total_variation_distance
from repro.errors import DataError

__all__ = ["distribution_error", "convergence_curve", "exact_distribution"]


def exact_distribution(circuit: Circuit) -> np.ndarray:
    """Exact marginal shot distribution of the noisy circuit.

    Runs the density-matrix reference and marginalizes onto the measured
    qubits (in measurement order).
    """
    measured = list(circuit.measured_qubits)
    if not measured:
        raise DataError("circuit has no measurements")
    backend = DensityMatrixBackend(circuit.num_qubits).run(circuit)
    return backend.marginal_probabilities(measured)


def distribution_error(bits: np.ndarray, exact: np.ndarray) -> float:
    """TVD between an empirical shot set and the exact distribution."""
    return total_variation_distance(empirical_distribution(bits, len(exact)), exact)


def convergence_curve(
    sampler: Callable[[int], np.ndarray],
    exact: np.ndarray,
    shot_counts: Sequence[int],
) -> List[Tuple[int, float]]:
    """TVD vs. shot count for any ``sampler(num_shots) -> bits`` callable.

    A correct sampler's curve decays like ``O(1/sqrt(m))`` (multinomial
    fluctuation) toward its bias floor; a biased estimator plateaus above
    zero — which is exactly how the tests distinguish the uniform-shots
    Algorithm-2 dataset mode (deliberately biased toward rare errors)
    from the proportional mode (asymptotically exact).
    """
    out = []
    for m in shot_counts:
        bits = sampler(int(m))
        out.append((int(m), distribution_error(bits, exact)))
    return out
