"""Measured PTSBE-vs-baseline speedup accounting (the headline claims).

The paper's headline is "speedups of up to 10**6x and 16x" for the
statevector and tensor-network backends.  :func:`measure_speedup` times
both pipelines on identical workloads and reports the ratio;
:func:`speedup_curve` sweeps batch sizes to regenerate the Fig. 4/5
shape: near-linear growth with batch size until the pure-sampling rate
saturates it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import DataError
from repro.execution.batched import BackendSpec, BatchedExecutor
from repro.pts.base import TrajectorySpec
from repro.trajectory.baseline import TrajectorySimulator
from repro.trajectory.events import TrajectoryRecord

__all__ = ["SpeedupMeasurement", "measure_speedup", "speedup_curve"]


@dataclass
class SpeedupMeasurement:
    """One timed PTSBE-vs-baseline comparison."""

    batch_shots: int
    ptsbe_seconds: float
    baseline_seconds: float
    ptsbe_shots_per_second: float
    baseline_shots_per_second: float

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.ptsbe_seconds if self.ptsbe_seconds > 0 else float("inf")


def _time_ptsbe(
    circuit: Circuit, backend: BackendSpec, batch_shots: int, seed: int, sample_kwargs=None
) -> float:
    spec = TrajectorySpec(record=TrajectoryRecord(trajectory_id=0, events=()), num_shots=batch_shots)
    executor = BatchedExecutor(backend, sample_kwargs=sample_kwargs)
    t0 = time.perf_counter()
    executor.execute(circuit, [spec], seed=seed)
    return time.perf_counter() - t0


def _time_baseline(
    circuit: Circuit, backend_factory: Callable, batch_shots: int, seed: int
) -> float:
    sim = TrajectorySimulator(backend_factory)
    t0 = time.perf_counter()
    sim.sample(circuit, batch_shots, seed=seed, shots_per_trajectory=1)
    return time.perf_counter() - t0


def measure_speedup(
    circuit: Circuit,
    batch_shots: int,
    backend: Optional[BackendSpec] = None,
    seed: int = 0,
    baseline_cap: Optional[int] = None,
    sample_kwargs=None,
) -> SpeedupMeasurement:
    """Time PTSBE (1 preparation, ``batch_shots`` bulk) vs. Algorithm 1.

    ``baseline_cap`` limits how many single-shot preparations the baseline
    actually runs (its cost is then extrapolated linearly) — at paper
    scale the baseline is *defined* by its linear per-shot cost, and
    running 10**6 redundant preparations to prove it is wasteful.
    """
    backend = backend or BackendSpec()
    circuit.freeze()
    ptsbe_s = _time_ptsbe(circuit, backend, batch_shots, seed, sample_kwargs)
    run_shots = batch_shots if baseline_cap is None else min(batch_shots, baseline_cap)
    base_s = _time_baseline(circuit, lambda n=circuit.num_qubits: backend.create(n), run_shots, seed)
    if run_shots < batch_shots:
        base_s *= batch_shots / run_shots
    return SpeedupMeasurement(
        batch_shots=batch_shots,
        ptsbe_seconds=ptsbe_s,
        baseline_seconds=base_s,
        ptsbe_shots_per_second=batch_shots / ptsbe_s if ptsbe_s > 0 else float("inf"),
        baseline_shots_per_second=batch_shots / base_s if base_s > 0 else float("inf"),
    )


def speedup_curve(
    circuit: Circuit,
    batch_sizes: Sequence[int],
    backend: Optional[BackendSpec] = None,
    seed: int = 0,
    baseline_cap: int = 32,
    sample_kwargs=None,
) -> List[SpeedupMeasurement]:
    """Sweep batch sizes — the Fig. 4/5 x-axis."""
    return [
        measure_speedup(
            circuit, int(m), backend=backend, seed=seed, baseline_cap=baseline_cap,
            sample_kwargs=sample_kwargs,
        )
        for m in batch_sizes
    ]
