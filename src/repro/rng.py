"""Deterministic random-number streams (the library's cuRAND stand-in).

The paper's simulator uses cuRAND, a counter-based generator, so that each
trajectory draws from an independent, reproducible stream regardless of
execution order or which GPU it lands on.  We reproduce that contract with
NumPy's Philox bit generator plus ``SeedSequence.spawn``-style key
derivation:

* :func:`root_sequence` builds the experiment-level seed sequence;
* :func:`trajectory_rng` derives the stream for trajectory *i* — the same
  stream is produced whether the trajectory runs serially, in a process
  pool, or on a different emulated device (verified in
  ``tests/test_rng.py``);
* :class:`StreamFactory` packages this for the execution layer.
"""

from __future__ import annotations

import zlib
from typing import Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "root_sequence",
    "make_rng",
    "library_rng",
    "trajectory_rng",
    "fault_rng",
    "StreamFactory",
]

#: Reserved leading spawn-key element for the fault-tolerance machinery.
#: Trajectory streams use single-element keys ``(trajectory_index,)``;
#: fault/jitter draws use four-element keys starting with this constant,
#: so the two stream families can never collide for any seed.
FAULT_STREAM_KEY = 0xFA17

#: Sub-namespaces under :data:`FAULT_STREAM_KEY`.
FAULT_NS_INJECTION = 0
FAULT_NS_JITTER = 1


def fault_rng(
    seed: Optional[int], namespace: int, site: str, attempt: int
) -> np.random.Generator:
    """Deterministic stream for fault-machinery draws at one site/attempt.

    Keyed by ``(FAULT_STREAM_KEY, namespace, crc32(site), attempt)`` —
    ``zlib.crc32`` rather than ``hash()`` so the derivation is stable
    across processes regardless of ``PYTHONHASHSEED``.  Used for
    random-mode fault injection decisions and for retry-backoff jitter;
    both are therefore exactly replayable from the root seed, like every
    other draw in the library.
    """
    site_key = zlib.crc32(site.encode("utf-8"))
    seq = np.random.SeedSequence(
        seed, spawn_key=(FAULT_STREAM_KEY, int(namespace), site_key, int(attempt))
    )
    return np.random.Generator(np.random.Philox(seq))


def root_sequence(seed: Optional[int]) -> np.random.SeedSequence:
    """Return the experiment-level :class:`numpy.random.SeedSequence`.

    ``None`` gives fresh OS entropy (non-reproducible); any integer gives a
    fully deterministic tree of child streams.
    """
    return np.random.SeedSequence(seed)


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a Philox-backed generator from an integer seed (or entropy)."""
    return np.random.Generator(np.random.Philox(root_sequence(seed)))


def library_rng(seed: Optional[int] = None) -> np.random.Generator:
    """The sanctioned generator for circuit-library and utility randomness.

    Workload builders (``random_brickwork``, Haar-random unitaries, ...)
    historically drew from ``np.random.default_rng`` — PCG64, not the
    Philox trajectory streams — and registered circuit families are keyed
    to those exact bit sequences.  This wrapper preserves them bit for
    bit while giving the draw one auditable home: RNG001 (``repro.lint``)
    flags any ``numpy.random`` call outside this module, so construction
    randomness flows through here and *execution* randomness through
    :func:`trajectory_rng` — never through an unseeded side channel.
    """
    return np.random.default_rng(seed)


def trajectory_rng(seed: Optional[int], trajectory_index: int) -> np.random.Generator:
    """Derive the deterministic stream for one trajectory.

    The stream depends only on ``(seed, trajectory_index)`` — not on how
    many trajectories run, in what order, or on which worker — mirroring
    counter-based cuRAND semantics.
    """
    if trajectory_index < 0:
        raise ValueError(f"trajectory_index must be >= 0, got {trajectory_index}")
    seq = np.random.SeedSequence(seed, spawn_key=(trajectory_index,))
    return np.random.Generator(np.random.Philox(seq))


class StreamFactory:
    """Factory of per-trajectory RNG streams for the execution layer.

    Parameters
    ----------
    seed:
        Experiment seed.  ``None`` draws OS entropy once at construction so
        that all workers still agree on the stream tree.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        self.seed = int(seed)

    def rng_for(self, trajectory_index: int) -> np.random.Generator:
        """Stream for a single trajectory index."""
        return trajectory_rng(self.seed, trajectory_index)

    def rngs_for(self, trajectory_indices: Sequence[int]) -> List[np.random.Generator]:
        """One independent stream per stacked trajectory.

        The vectorized executor's batch counterpart of :meth:`rng_for`:
        row ``i`` of a trajectory stack samples from the stream of
        ``trajectory_indices[i]``, so stacked execution stays shot-for-shot
        identical to serial execution regardless of stacking or chunking.
        """
        return [self.rng_for(i) for i in trajectory_indices]

    def streams(self, count: int, start: int = 0) -> Iterator[np.random.Generator]:
        """Yield ``count`` consecutive trajectory streams starting at ``start``."""
        for i in range(start, start + count):
            yield self.rng_for(i)

    def child_seeds(self, count: int) -> Sequence[int]:
        """Integer seeds (for pickling into worker processes)."""
        return [int(np.random.SeedSequence(self.seed, spawn_key=(i,)).generate_state(1)[0]) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamFactory(seed={self.seed})"
