"""Global configuration for the PTSBE reproduction library.

The paper's statevector backend stores ``2**(n+1)`` float32 values per
state (i.e. ``2**n`` complex64 amplitudes); we default to complex128 for
test-grade numerics but expose the paper's precision as an option.

Configuration is intentionally a tiny, explicit object (no hidden global
mutation by library code).  A module-level default instance is provided for
convenience, and :func:`configure` mutates it in a controlled way.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Tolerance used for unitarity / CPTP / normalization verification.
ATOL = 1e-9

#: Looser tolerance for accumulated floating-point drift across deep circuits.
RTOL = 1e-7

#: Width-aware fusion auto-cap constants: circuits narrower than
#: :data:`FUSION_AUTO_WIDE_QUBITS` resolve ``fusion_max_qubits=None`` to
#: the narrow cap, wider ones to the wide cap.  The split point comes from
#: the brickwork measurements in the ROADMAP: at >= ~12 qubits a cap of 4
#: wins (fewer windows, hence fewer renormalization sweeps) despite the
#: ``2**k x 2**k`` variant matrices, while narrow circuits cannot amortize
#: the wider windows.
FUSION_AUTO_WIDE_QUBITS = 12
FUSION_AUTO_CAP_NARROW = 3
FUSION_AUTO_CAP_WIDE = 4


def _default_fusion() -> str:
    """Fusion default: the ``REPRO_FUSION`` env var, else ``"auto"``.

    The environment hook exists for CI matrix legs (a full test run with
    ``REPRO_FUSION=off`` asserts the unfused paths stay healthy) — library
    code should set ``Config.fusion`` explicitly instead.
    """
    return os.environ.get("REPRO_FUSION", "auto")


def _default_routing() -> str:
    """Routing default: the ``REPRO_ROUTING`` env var, else ``"auto"``.

    Same CI-hook pattern as fusion: ``REPRO_ROUTING=dense`` pins
    ``strategy="auto"`` to the pre-router dense dispatch for a whole run.
    """
    return os.environ.get("REPRO_ROUTING", "auto")


def _default_tensornet_max_bond() -> Optional[int]:
    """Tensornet bond-cap default: ``REPRO_TENSORNET_MAX_BOND``, else None.

    ``None`` resolves to :attr:`Config.default_bond_dim` at use time (see
    :meth:`Config.resolved_tensornet_max_bond`), so the env hook only has
    to exist when a CI leg or sweep wants a different cap.
    """
    raw = os.environ.get("REPRO_TENSORNET_MAX_BOND")
    return int(raw) if raw else None


def _default_tensornet_cutoff() -> Optional[float]:
    """Tensornet SVD-cutoff default: ``REPRO_TENSORNET_CUTOFF``, else None
    (resolving to :attr:`Config.svd_cutoff` at use time)."""
    raw = os.environ.get("REPRO_TENSORNET_CUTOFF")
    return float(raw) if raw else None


def _default_fault_plan():
    """Fault-injection default: parsed ``REPRO_FAULTS`` env, else ``None``.

    Same CI-hook pattern as fusion/routing: the chaos-smoke CI leg runs a
    whole sweep under an injected plan via the environment; library code
    should set ``Config.fault_plan`` explicitly instead.  The import is
    deferred because :mod:`repro.faults` imports back into the error and
    rng layers at module load.
    """
    raw = os.environ.get("REPRO_FAULTS", "")
    if not raw:
        return None
    from repro.faults.plan import parse_fault_plan

    return parse_fault_plan(raw)


def _default_retry():
    """Default per-work-unit retry policy (see ``repro.faults.retry``)."""
    from repro.faults.retry import RetryPolicy

    return RetryPolicy()


@dataclass
class Config:
    """Runtime knobs shared across the library.

    Attributes
    ----------
    dtype:
        Complex dtype of dense state storage. ``complex128`` (default) or
        ``complex64`` (the paper's choice on GPU).
    array_module:
        Which array module the dense backends run their state math on:
        ``"numpy"``, ``"cupy"``, or ``"auto"`` (default — CuPy when
        importable, NumPy otherwise).  Resolved by
        :func:`repro.linalg.backend.get_array_backend`; sampling and
        ``ShotTable`` construction stay NumPy-on-host regardless.
    fusion:
        Gate/noise kernel fusion for the dense statevector strategies:
        ``"auto"`` (default — fuse adjacent operations into per-window
        matrices, see :mod:`repro.execution.plan`) or ``"off"`` (one
        kernel pass per circuit operation, the pre-fusion behavior).
        Both modes keep serial/vectorized/sharded execution bitwise
        identical to each other; fused and unfused runs agree on
        probabilities to floating-point accuracy but not bit for bit.
        Overridable via the ``REPRO_FUSION`` environment variable (read
        at :class:`Config` construction; used by the CI fusion-off leg).
    fusion_max_qubits:
        Largest qubit support of one fused window.  ``None`` (default)
        resolves width-aware per circuit via
        :meth:`resolved_fusion_max_qubits`: 3 for circuits narrower than
        12 qubits, 4 at 12 and above (per the brickwork measurements —
        fewer windows, hence fewer renormalization sweeps, at the price
        of ``2**k x 2**k`` fused matrices per Kraus variant).  An explicit
        integer always overrides the auto-resolution.  Windows of up to 3
        qubits run on the reshape-view fast paths of the gate kernel;
        wider ones use the generic batched-GEMM path (which also needs 3x
        instead of 2x workspace headroom per stacked row — see
        :meth:`repro.execution.sharded.ShardedExecutor`).
    routing:
        Engine routing for ``run_ptsbe(strategy="auto")``: ``"auto"``
        (default — pure-Clifford circuits with Pauli-mixture noise go to
        the batched Pauli-frame engine, everything else to the dense
        dispatch; see :mod:`repro.execution.router`) or ``"dense"``
        (always the pre-router dense resolution, for bitwise back-compat
        of Clifford workloads previously served dense).  Overridable via
        the ``REPRO_ROUTING`` environment variable (read at
        :class:`Config` construction).  Explicit strategy names are never
        rerouted.
    measured_cost_feedback:
        When ``True``, a :class:`~repro.execution.sharded.ShardedExecutor`
        refines its group-scheduling cost constants from the prep/sample
        wall times measured on its *previous* runs instead of the analytic
        perf-model constants (default ``False``).  Affects only how dedup
        groups are binned across devices — shard assignment never changes
        results (the bitwise cross-strategy contract holds for any
        assignment).
    atol:
        Absolute tolerance for verification checks.
    max_dense_qubits:
        Hard cap for dense statevector widths, protecting against an
        accidental 2**35 allocation (the paper needed 4x H100 for that).
    max_density_qubits:
        Hard cap for density-matrix widths (4**n scaling).
    default_bond_dim:
        Default MPS maximum bond dimension.
    svd_cutoff:
        Singular values below this (relative to the largest) are truncated
        by the MPS backend.
    max_tensornet_qubits:
        Width cap for the batched tensor-network strategy — the router
        only auto-routes past-dense-cap circuits up to this width, and
        explicit ``strategy="tensornet"`` requests beyond it are refused
        at dispatch.  Linear in memory per site, so the cap is generous;
        it exists to keep a typo'd width from compiling a million-site
        schedule.
    tensornet_max_bond:
        Maximum bond dimension for the trajectory-stacked tensornet
        strategy.  ``None`` (default) resolves to
        :attr:`default_bond_dim`; overridable via the
        ``REPRO_TENSORNET_MAX_BOND`` environment variable (read at
        :class:`Config` construction).
    tensornet_cutoff:
        Relative SVD truncation cutoff for the tensornet strategy.
        ``None`` (default) resolves to :attr:`svd_cutoff`; overridable
        via ``REPRO_TENSORNET_CUTOFF``.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injecting
        deterministic faults at the instrumented execution sites (chaos
        testing).  ``None`` (default) disables injection entirely — the
        hook is a single branch.  Overridable via the ``REPRO_FAULTS``
        environment variable (read at :class:`Config` construction; see
        :func:`repro.faults.plan.parse_fault_plan` for the syntax).
    retry:
        The :class:`~repro.faults.retry.RetryPolicy` applied per work
        unit (parallel worker slice, sharded device, vectorized or
        tensornet stack chunk).  Seed threading makes a retried unit
        re-emit bitwise-identical shots, so the default policy (3
        attempts, tiny exponential backoff with deterministic jitter) is
        always safe to leave on.
    """

    dtype: np.dtype = np.dtype(np.complex128)
    array_module: str = "auto"
    fusion: str = field(default_factory=_default_fusion)
    fusion_max_qubits: Optional[int] = None
    routing: str = field(default_factory=_default_routing)
    measured_cost_feedback: bool = False
    atol: float = ATOL
    max_dense_qubits: int = 26
    max_density_qubits: int = 12
    default_bond_dim: int = 64
    svd_cutoff: float = 1e-12
    max_tensornet_qubits: int = 128
    tensornet_max_bond: Optional[int] = field(default_factory=_default_tensornet_max_bond)
    tensornet_cutoff: Optional[float] = field(default_factory=_default_tensornet_cutoff)
    fault_plan: Optional["FaultPlan"] = field(default_factory=_default_fault_plan)  # noqa: F821
    retry: "RetryPolicy" = field(default_factory=_default_retry)  # noqa: F821

    def real_dtype(self) -> np.dtype:
        """Matching real dtype for probability vectors."""
        return np.dtype(np.float32) if self.dtype == np.complex64 else np.dtype(np.float64)

    def resolved_fusion_max_qubits(self, num_qubits: int) -> int:
        """The fusion window cap in effect for a circuit of ``num_qubits``.

        An explicitly set :attr:`fusion_max_qubits` wins unconditionally;
        the ``None`` default resolves width-aware —
        :data:`FUSION_AUTO_CAP_WIDE` (4) for circuits of
        :data:`FUSION_AUTO_WIDE_QUBITS` (12) qubits or more,
        :data:`FUSION_AUTO_CAP_NARROW` (3) below.  The plan compiler and
        the sharded executor's workspace sizing both read the cap through
        here, so the two can never disagree about which kernel tier a run
        can reach.
        """
        if self.fusion_max_qubits is not None:
            return int(self.fusion_max_qubits)
        if num_qubits >= FUSION_AUTO_WIDE_QUBITS:
            return FUSION_AUTO_CAP_WIDE
        return FUSION_AUTO_CAP_NARROW

    def resolved_tensornet_max_bond(self) -> int:
        """The bond cap in effect for the tensornet strategy."""
        if self.tensornet_max_bond is not None:
            return int(self.tensornet_max_bond)
        return int(self.default_bond_dim)

    def resolved_tensornet_cutoff(self) -> float:
        """The SVD cutoff in effect for the tensornet strategy."""
        if self.tensornet_cutoff is not None:
            return float(self.tensornet_cutoff)
        return float(self.svd_cutoff)

    def replace(self, **kwargs) -> "Config":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Library-wide default configuration.  Backends take an optional ``config``
#: argument and fall back to this instance.
DEFAULT_CONFIG = Config()


def configure(**kwargs) -> Config:
    """Update fields of :data:`DEFAULT_CONFIG` in place and return it.

    >>> configure(dtype=np.dtype(np.complex64))  # doctest: +ELLIPSIS
    Config(...)
    """
    for key, value in kwargs.items():
        if not hasattr(DEFAULT_CONFIG, key):
            raise AttributeError(f"unknown config field {key!r}")
        setattr(DEFAULT_CONFIG, key, value)
    return DEFAULT_CONFIG
