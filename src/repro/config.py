"""Global configuration for the PTSBE reproduction library.

The paper's statevector backend stores ``2**(n+1)`` float32 values per
state (i.e. ``2**n`` complex64 amplitudes); we default to complex128 for
test-grade numerics but expose the paper's precision as an option.

Configuration is intentionally a tiny, explicit object (no hidden global
mutation by library code).  A module-level default instance is provided for
convenience, and :func:`configure` mutates it in a controlled way.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

import numpy as np

#: Tolerance used for unitarity / CPTP / normalization verification.
ATOL = 1e-9

#: Looser tolerance for accumulated floating-point drift across deep circuits.
RTOL = 1e-7


def _default_fusion() -> str:
    """Fusion default: the ``REPRO_FUSION`` env var, else ``"auto"``.

    The environment hook exists for CI matrix legs (a full test run with
    ``REPRO_FUSION=off`` asserts the unfused paths stay healthy) — library
    code should set ``Config.fusion`` explicitly instead.
    """
    return os.environ.get("REPRO_FUSION", "auto")


@dataclass
class Config:
    """Runtime knobs shared across the library.

    Attributes
    ----------
    dtype:
        Complex dtype of dense state storage. ``complex128`` (default) or
        ``complex64`` (the paper's choice on GPU).
    array_module:
        Which array module the dense backends run their state math on:
        ``"numpy"``, ``"cupy"``, or ``"auto"`` (default — CuPy when
        importable, NumPy otherwise).  Resolved by
        :func:`repro.linalg.backend.get_array_backend`; sampling and
        ``ShotTable`` construction stay NumPy-on-host regardless.
    fusion:
        Gate/noise kernel fusion for the dense statevector strategies:
        ``"auto"`` (default — fuse adjacent operations into per-window
        matrices, see :mod:`repro.execution.plan`) or ``"off"`` (one
        kernel pass per circuit operation, the pre-fusion behavior).
        Both modes keep serial/vectorized/sharded execution bitwise
        identical to each other; fused and unfused runs agree on
        probabilities to floating-point accuracy but not bit for bit.
        Overridable via the ``REPRO_FUSION`` environment variable (read
        at :class:`Config` construction; used by the CI fusion-off leg).
    fusion_max_qubits:
        Largest qubit support of one fused window (default 3).  Windows
        of 1–2 qubits run on the reshape-view fast path of the gate
        kernel; wider ones use the generic batched-GEMM path, which on
        the brickwork benchmarks still wins (4 measures faster yet —
        fewer windows, hence fewer renormalization sweeps — at the price
        of ``2**k x 2**k`` fused matrices per Kraus variant).
    atol:
        Absolute tolerance for verification checks.
    max_dense_qubits:
        Hard cap for dense statevector widths, protecting against an
        accidental 2**35 allocation (the paper needed 4x H100 for that).
    max_density_qubits:
        Hard cap for density-matrix widths (4**n scaling).
    default_bond_dim:
        Default MPS maximum bond dimension.
    svd_cutoff:
        Singular values below this (relative to the largest) are truncated
        by the MPS backend.
    """

    dtype: np.dtype = np.dtype(np.complex128)
    array_module: str = "auto"
    fusion: str = field(default_factory=_default_fusion)
    fusion_max_qubits: int = 3
    atol: float = ATOL
    max_dense_qubits: int = 26
    max_density_qubits: int = 12
    default_bond_dim: int = 64
    svd_cutoff: float = 1e-12

    def real_dtype(self) -> np.dtype:
        """Matching real dtype for probability vectors."""
        return np.dtype(np.float32) if self.dtype == np.complex64 else np.dtype(np.float64)

    def replace(self, **kwargs) -> "Config":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Library-wide default configuration.  Backends take an optional ``config``
#: argument and fall back to this instance.
DEFAULT_CONFIG = Config()


def configure(**kwargs) -> Config:
    """Update fields of :data:`DEFAULT_CONFIG` in place and return it.

    >>> configure(dtype=np.dtype(np.complex64))  # doctest: +ELLIPSIS
    Config(...)
    """
    for key, value in kwargs.items():
        if not hasattr(DEFAULT_CONFIG, key):
            raise AttributeError(f"unknown config field {key!r}")
        setattr(DEFAULT_CONFIG, key, value)
    return DEFAULT_CONFIG
