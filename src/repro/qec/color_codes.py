"""Triangular 6.6.6 color codes of any odd distance.

Construction (verified programmatically; see ``tests/test_color_codes.py``):

* Take the triangular lattice of integer points ``(a, b)`` (axial
  coordinates).  Points with ``(a - b) % 3 == 0`` are hexagon *centers*
  of the embedded honeycomb lattice; the other points are its vertices
  (the data qubits).
* A hexagon centered at ``(a, b)`` has vertices
  ``(a±1, b), (a, b±1), (a+1, b-1), (a-1, b+1)``.
* Cut the triangular patch ``{a >= -1, b >= 0, a + b <= (3d-5)/2}``.
  Interior hexagons keep weight 6; boundary hexagons are clipped to
  weight-4 trapezoids; clipped faces with fewer than 3 vertices vanish.
* Each surviving face yields one X- and one Z-stabilizer (self-dual CSS).

This yields the ``[[(3d**2+1)/4, 1, d]]`` family: [[7,1,3]] (the Steane
code, up to qubit relabeling), [[19,1,5]] and [[37,1,7]] — all verified
for commutation, k=1 and exact distance by the test suite.

The [[19,1,5]] member is this library's stand-in for the paper's
[[17,1,5]] 4.8.8 color code (same distance, same triangular-color-code
family, transversal Clifford gates; the paper does not list the 4.8.8
face set).  See DESIGN.md §1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import QECError
from repro.qec.codes import CSSCode

__all__ = ["triangular_color_code", "color_code_layout"]

_HEX_VERTEX_OFFSETS = ((1, 0), (-1, 0), (0, 1), (0, -1), (1, -1), (-1, 1))


def color_code_layout(distance: int) -> Tuple[List[Tuple[int, int]], List[List[int]]]:
    """Qubit coordinates and face membership lists for odd ``distance``.

    Returns ``(qubits, faces)`` where ``qubits`` is the sorted coordinate
    list (index = qubit id) and each face is a sorted list of qubit ids.
    """
    if distance < 3 or distance % 2 == 0:
        raise QECError(f"triangular color code requires odd distance >= 3, got {distance}")
    s = (3 * distance - 5) // 2
    a_min, b_min = -1, 0
    points = [
        (a, b)
        for a in range(a_min, s + 2)
        for b in range(b_min, s + 2)
        if a + b <= s
    ]
    qubits = sorted(p for p in points if (p[0] - p[1]) % 3 != 0)
    centers = [p for p in points if (p[0] - p[1]) % 3 == 0]
    index = {q: i for i, q in enumerate(qubits)}
    faces: List[List[int]] = []
    for (a, b) in centers:
        members = sorted(
            index[(a + da, b + db)]
            for (da, db) in _HEX_VERTEX_OFFSETS
            if (a + da, b + db) in index
        )
        if len(members) >= 3:
            faces.append(members)
    return qubits, faces


def triangular_color_code(distance: int) -> CSSCode:
    """Build the [[(3d^2+1)/4, 1, d]] triangular 6.6.6 color code.

    Self-dual CSS: every face is both an X- and a Z-stabilizer, which is
    what makes the full Clifford group transversal on these codes.
    """
    qubits, faces = color_code_layout(distance)
    n = len(qubits)
    expected_n = (3 * distance**2 + 1) // 4
    if n != expected_n:
        raise QECError(
            f"layout produced {n} qubits, expected {expected_n} for distance {distance}"
        )
    h = np.zeros((len(faces), n), dtype=np.uint8)
    for i, face in enumerate(faces):
        h[i, face] = 1
    code = CSSCode(h, h, name=f"color666_{distance}")
    if code.k != 1:
        raise QECError(f"color code construction failed: k={code.k}")
    return code
