"""Stabilizer / CSS code machinery with machine-verified properties.

:class:`CSSCode` takes X- and Z-check matrices, verifies commutation,
computes ``k`` from ranks, derives logical operators from nullspaces, and
can brute-force its distance — every concrete code in the library is
verified by these routines in the test suite rather than trusted from a
transcription.

Concrete codes here: the [[7,1,3]] Steane code (the paper's 35-qubit MSD
building block), classical repetition codes (pedagogical), and rotated
surface codes of odd distance (a verified d=5 alternative).  The
triangular color-code family lives in :mod:`repro.qec.color_codes`; the
non-CSS [[5,1,3]] perfect code in :mod:`repro.qec.five_qubit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channels.pauli import PauliString
from repro.errors import QECError
from repro.qec import gf2

__all__ = ["CSSCode", "steane_code", "repetition_code", "rotated_surface_code"]


class CSSCode:
    """A Calderbank-Shor-Steane code defined by its X/Z check matrices.

    Parameters
    ----------
    hx:
        (r_x, n) GF(2) matrix; row i is the support of X-stabilizer i.
    hz:
        (r_z, n) matrix of Z-stabilizer supports.
    name:
        Cosmetic identifier.

    Raises :class:`QECError` unless every X-check commutes with every
    Z-check (``hx @ hz.T == 0 (mod 2)``).
    """

    def __init__(self, hx: np.ndarray, hz: np.ndarray, name: str = "css"):
        self.hx = np.asarray(hx, dtype=np.uint8) % 2
        self.hz = np.asarray(hz, dtype=np.uint8) % 2
        if self.hx.ndim != 2 or self.hz.ndim != 2 or self.hx.shape[1] != self.hz.shape[1]:
            raise QECError("hx and hz must be 2-D with equal column counts")
        self.n = int(self.hx.shape[1])
        self.name = name
        if np.any((self.hx @ self.hz.T) % 2):
            raise QECError(f"{name}: X and Z checks do not commute")
        self.rank_x = gf2.rank(self.hx)
        self.rank_z = gf2.rank(self.hz)
        self.k = self.n - self.rank_x - self.rank_z
        if self.k <= 0:
            raise QECError(f"{name}: no logical qubits (k={self.k})")
        self._logical_x, self._logical_z = self._derive_logicals()

    # ------------------------------------------------------------------ #
    # logical operators
    # ------------------------------------------------------------------ #
    def _derive_logicals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Symplectically paired logical X/Z supports, one row per logical.

        Logical X candidates live in ``ker(hz) \\ rowspace(hx)``;
        logical Z in ``ker(hx) \\ rowspace(hz)``.  Rows are then paired so
        ``Lx_i . Lz_j = delta_ij (mod 2)``.
        """
        def quotient_basis(kernel: np.ndarray, modulo: np.ndarray) -> np.ndarray:
            rows: List[np.ndarray] = []
            acc = modulo.copy()
            base_rank = gf2.rank(acc)
            for v in kernel:
                cand = np.vstack([acc, v[None, :]])
                r = gf2.rank(cand)
                if r > base_rank:
                    rows.append(v)
                    acc = cand
                    base_rank = r
                if len(rows) == self.k:
                    break
            return np.array(rows, dtype=np.uint8)

        lx = quotient_basis(gf2.nullspace(self.hz), self.hx)
        lz = quotient_basis(gf2.nullspace(self.hx), self.hz)
        if lx.shape[0] != self.k or lz.shape[0] != self.k:
            raise QECError(f"{self.name}: failed to derive {self.k} logical pairs")
        # Pair: make the symplectic Gram matrix M = lx lz^T the identity.
        gram = (lx @ lz.T) % 2
        # Gaussian-eliminate gram by transforming lz (row ops on lz mirror
        # column ops on gram^T).
        m = gram.copy()
        lz = lz.copy()
        for i in range(self.k):
            pivot = np.nonzero(m[i, i:])[0]
            if pivot.size == 0:
                raise QECError(f"{self.name}: degenerate logical pairing")
            j = i + int(pivot[0])
            if j != i:
                lz[[i, j]] = lz[[j, i]]
                m[:, [i, j]] = m[:, [j, i]]
            for j2 in range(self.k):
                if j2 != i and m[i, j2]:
                    lz[j2] ^= lz[i]
                    m[:, j2] ^= m[:, i]
        if not np.array_equal((lx @ lz.T) % 2, np.eye(self.k, dtype=np.uint8)):
            raise QECError(f"{self.name}: logical pairing failed")
        return lx, lz

    def logical_x_support(self, i: int = 0) -> np.ndarray:
        return self._logical_x[i]

    def logical_z_support(self, i: int = 0) -> np.ndarray:
        return self._logical_z[i]

    def logical_x(self, i: int = 0) -> PauliString:
        x = self._logical_x[i]
        return PauliString(x, np.zeros(self.n, dtype=np.uint8))

    def logical_z(self, i: int = 0) -> PauliString:
        z = self._logical_z[i]
        return PauliString(np.zeros(self.n, dtype=np.uint8), z)

    # ------------------------------------------------------------------ #
    # stabilizers as Pauli strings
    # ------------------------------------------------------------------ #
    def x_stabilizers(self) -> List[PauliString]:
        return [PauliString(row, np.zeros(self.n, dtype=np.uint8)) for row in self.hx]

    def z_stabilizers(self) -> List[PauliString]:
        return [PauliString(np.zeros(self.n, dtype=np.uint8), row) for row in self.hz]

    def stabilizers(self) -> List[PauliString]:
        return self.x_stabilizers() + self.z_stabilizers()

    # ------------------------------------------------------------------ #
    # distance (brute force, CSS shortcut)
    # ------------------------------------------------------------------ #
    def distance(self, max_weight: Optional[int] = None) -> int:
        """Exact code distance by exhaustive search up to ``max_weight``.

        For CSS codes the distance is achieved by a pure-X or pure-Z
        logical, so the search is over binary vectors only:
        ``d = min weight over (ker hz \\ rs hx) union (ker hx \\ rs hz)``.
        Raises if no logical is found within ``max_weight``.
        """
        cap = max_weight if max_weight is not None else self.n
        for w in range(1, cap + 1):
            for support in combinations(range(self.n), w):
                v = np.zeros(self.n, dtype=np.uint8)
                v[list(support)] = 1
                if not np.any((self.hz @ v) % 2) and not gf2.row_space_contains(self.hx, v):
                    return w
                if not np.any((self.hx @ v) % 2) and not gf2.row_space_contains(self.hz, v):
                    return w
        raise QECError(f"{self.name}: no logical operator of weight <= {cap}")

    def verify_distance_at_least(self, d: int) -> bool:
        """True when no logical operator has weight < d."""
        for w in range(1, d):
            for support in combinations(range(self.n), w):
                v = np.zeros(self.n, dtype=np.uint8)
                v[list(support)] = 1
                if not np.any((self.hz @ v) % 2) and not gf2.row_space_contains(self.hx, v):
                    return False
                if not np.any((self.hx @ v) % 2) and not gf2.row_space_contains(self.hz, v):
                    return False
        return True

    # ------------------------------------------------------------------ #
    # syndromes
    # ------------------------------------------------------------------ #
    def syndrome_of(self, error: PauliString) -> np.ndarray:
        """Syndrome bits: X-checks (detect Z components), then Z-checks.

        Bit ``i`` is 1 when the error anticommutes with stabilizer ``i``.
        """
        if error.num_qubits != self.n:
            raise QECError("error acts on wrong number of qubits")
        sx = (self.hx @ error.z) % 2  # X-stabilizers anticommute with Z parts
        sz = (self.hz @ error.x) % 2  # Z-stabilizers anticommute with X parts
        return np.concatenate([sx, sz]).astype(np.uint8)

    @property
    def num_stabilizers(self) -> int:
        return int(self.hx.shape[0] + self.hz.shape[0])

    def __repr__(self) -> str:
        return f"CSSCode({self.name!r}, [[{self.n},{self.k}]])"


# ---------------------------------------------------------------------- #
# concrete codes
# ---------------------------------------------------------------------- #
def steane_code() -> CSSCode:
    """The [[7,1,3]] Steane code (Hamming-code CSS construction).

    This is the distance-3 triangular color code — the code whose 5-block
    encoding gives the paper's 35-qubit MSD circuit.
    """
    h = np.array(
        [
            [0, 0, 0, 1, 1, 1, 1],
            [0, 1, 1, 0, 0, 1, 1],
            [1, 0, 1, 0, 1, 0, 1],
        ],
        dtype=np.uint8,
    )
    return CSSCode(h, h, name="steane")


def repetition_code(n: int) -> CSSCode:
    """The [[n,1,1]] bit-flip repetition code (Z-checks only, d_x = 1).

    Pedagogical: corrects X errors up to weight (n-1)/2, none of the Z
    errors — a minimal decoder-training workload.
    """
    if n < 2:
        raise QECError("repetition code needs n >= 2")
    hz = np.zeros((n - 1, n), dtype=np.uint8)
    for i in range(n - 1):
        hz[i, i] = 1
        hz[i, i + 1] = 1
    # No X checks: hx is the empty matrix with n columns.
    hx = np.zeros((0, n), dtype=np.uint8)
    return CSSCode(hx, hz, name=f"repetition_{n}")


def rotated_surface_code(d: int) -> CSSCode:
    """The rotated surface code [[d*d, 1, d]] for odd ``d``.

    Qubits on a d x d grid (row-major).  Bulk plaquettes checkerboard
    between X and Z type; boundary half-plaquettes follow the standard
    rotated layout (X halves on top/bottom rows, Z halves on left/right
    columns).  Distance is verified in tests for d = 3, 5.
    """
    if d < 3 or d % 2 == 0:
        raise QECError("rotated surface code requires odd d >= 3")

    def q(r: int, c: int) -> int:
        return r * d + c

    x_checks: List[List[int]] = []
    z_checks: List[List[int]] = []
    # Bulk + boundary plaquettes are indexed by corner (r, c) of each 2x2
    # cell of the (d+1) x (d+1) dual grid.
    for r in range(-1, d):
        for c in range(-1, d):
            cells = [
                (r, c),
                (r, c + 1),
                (r + 1, c),
                (r + 1, c + 1),
            ]
            members = [q(rr, cc) for rr, cc in cells if 0 <= rr < d and 0 <= cc < d]
            if len(members) < 2:
                continue
            # Checkerboard: X-type when (r + c) is even.
            is_x = (r + c) % 2 == 0
            if len(members) == 4:
                (x_checks if is_x else z_checks).append(members)
            else:
                # Boundary halves: X halves live on top/bottom edges,
                # Z halves on left/right edges, alternating to keep the
                # checkerboard consistent.
                on_top_bottom = r == -1 or r == d - 1
                if on_top_bottom and is_x:
                    x_checks.append(members)
                elif not on_top_bottom and not is_x:
                    z_checks.append(members)

    hx = np.zeros((len(x_checks), d * d), dtype=np.uint8)
    for i, members in enumerate(x_checks):
        hx[i, members] = 1
    hz = np.zeros((len(z_checks), d * d), dtype=np.uint8)
    for i, members in enumerate(z_checks):
        hz[i, members] = 1
    return CSSCode(hx, hz, name=f"surface_{d}")
