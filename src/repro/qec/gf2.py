"""Dense GF(2) linear algebra for stabilizer-code machinery.

All matrices are uint8 NumPy arrays with entries in {0, 1}; arithmetic is
mod 2.  These routines back code construction (logical operators from
nullspaces), encoder synthesis (RREF pivots) and decoding (coset solving).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import QECError

__all__ = ["rref", "rank", "nullspace", "row_space_contains", "solve", "int_weight"]


def _as_gf2(matrix: np.ndarray) -> np.ndarray:
    out = np.asarray(matrix, dtype=np.uint8) % 2
    if out.ndim != 2:
        raise QECError(f"expected a 2-D matrix, got shape {out.shape}")
    return out


def rref(matrix: np.ndarray) -> Tuple[np.ndarray, List[int]]:
    """Reduced row echelon form over GF(2).

    Returns ``(R, pivots)`` where ``pivots[i]`` is the pivot column of row
    ``i``; zero rows are moved to the bottom and excluded from ``pivots``.
    """
    mat = _as_gf2(matrix).copy()
    rows, cols = mat.shape
    pivots: List[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        sel = np.nonzero(mat[r:, c])[0]
        if sel.size == 0:
            continue
        pivot_row = r + int(sel[0])
        if pivot_row != r:
            mat[[r, pivot_row]] = mat[[pivot_row, r]]
        # Eliminate this column from every other row.
        hits = np.nonzero(mat[:, c])[0]
        for h in hits:
            if h != r:
                mat[h] ^= mat[r]
        pivots.append(c)
        r += 1
    return mat, pivots


def rank(matrix: np.ndarray) -> int:
    """GF(2) rank."""
    _, pivots = rref(matrix)
    return len(pivots)


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis of the right nullspace: rows ``v`` with ``M v = 0 (mod 2)``.

    Returns a ``(dim, cols)`` matrix (possibly zero rows).
    """
    mat = _as_gf2(matrix)
    rows, cols = mat.shape
    red, pivots = rref(mat)
    free = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free), cols), dtype=np.uint8)
    for i, fc in enumerate(free):
        basis[i, fc] = 1
        for r, pc in enumerate(pivots):
            if red[r, fc]:
                basis[i, pc] = 1
    return basis


def row_space_contains(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """True when ``vector`` is a GF(2) combination of ``matrix`` rows."""
    mat = _as_gf2(matrix)
    vec = np.asarray(vector, dtype=np.uint8).reshape(1, -1) % 2
    return rank(mat) == rank(np.vstack([mat, vec]))


def solve(matrix: np.ndarray, rhs: np.ndarray) -> Optional[np.ndarray]:
    """One solution ``x`` of ``M x = b (mod 2)``, or ``None`` if infeasible."""
    mat = _as_gf2(matrix)
    b = np.asarray(rhs, dtype=np.uint8).reshape(-1) % 2
    rows, cols = mat.shape
    if b.shape[0] != rows:
        raise QECError(f"rhs length {b.shape[0]} != {rows} rows")
    aug = np.hstack([mat, b[:, None]])
    red, pivots = rref(aug)
    # Infeasible iff a pivot lands in the augmented column.
    if cols in pivots:
        return None
    x = np.zeros(cols, dtype=np.uint8)
    for r, pc in enumerate(pivots):
        x[pc] = red[r, cols]
    return x


def int_weight(vector: np.ndarray) -> int:
    """Hamming weight."""
    return int(np.count_nonzero(np.asarray(vector) % 2))
