"""Quantum error-correction substrate.

Everything the paper's workloads need: GF(2) linear algebra
(:mod:`repro.qec.gf2`), generic stabilizer/CSS code machinery with
machine-verified properties (:mod:`repro.qec.codes`), concrete codes —
the [[7,1,3]] Steane color code, the [[19,1,5]] triangular color code (the
distance-5 stand-in for the paper's [[17,1,5]]; see DESIGN.md), rotated
surface codes, and the non-CSS [[5,1,3]] perfect code
(:mod:`repro.qec.color_codes`, :mod:`repro.qec.five_qubit`) — CSS encoding
circuits (:mod:`repro.qec.encoding`), syndrome-extraction circuits
(:mod:`repro.qec.syndrome`), lookup/minimum-weight decoders
(:mod:`repro.qec.decoders`), and the 5->1 magic-state-distillation
protocol of paper Fig. 3 (:mod:`repro.qec.magic`).
"""

from repro.qec.codes import CSSCode, steane_code, repetition_code, rotated_surface_code
from repro.qec.color_codes import triangular_color_code
from repro.qec.five_qubit import FiveQubitCode
from repro.qec.encoding import css_encoding_circuit
from repro.qec.syndrome import syndrome_extraction_circuit
from repro.qec.decoders import LookupDecoder, MinimumWeightDecoder
from repro.qec.magic import (
    MSDOutcome,
    distill_5_to_1,
    magic_state_fidelity,
    msd_benchmark_circuit,
    msd_preparation_circuit,
    noisy_magic_state,
)

__all__ = [
    "CSSCode",
    "steane_code",
    "repetition_code",
    "rotated_surface_code",
    "triangular_color_code",
    "FiveQubitCode",
    "css_encoding_circuit",
    "syndrome_extraction_circuit",
    "LookupDecoder",
    "MinimumWeightDecoder",
    "MSDOutcome",
    "distill_5_to_1",
    "magic_state_fidelity",
    "msd_benchmark_circuit",
    "msd_preparation_circuit",
    "noisy_magic_state",
]
