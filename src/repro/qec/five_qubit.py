"""The [[5,1,3]] perfect code (non-CSS) — the engine of 5->1 distillation.

Stabilizers are the cyclic shifts of XZZXI; logicals are the transversal
X and Z strings.  Because the code is not CSS it does not fit
:class:`~repro.qec.codes.CSSCode`; this module provides exactly what the
Bravyi-Kitaev magic-state-distillation protocol needs: the code-space
projector and an orthonormal logical basis, built by explicit projection
(the code is only ever needed at its native 5 qubits = 32 dimensions).
"""

from __future__ import annotations

from functools import cached_property
from typing import List, Tuple

import numpy as np

from repro.channels.pauli import PauliString
from repro.errors import QECError

__all__ = ["FiveQubitCode"]


class FiveQubitCode:
    """The [[5,1,3]] code with dense projector / logical-basis access."""

    STABILIZER_LABELS = ("XZZXI", "IXZZX", "XIXZZ", "ZXIXZ")
    LOGICAL_X_LABEL = "XXXXX"
    LOGICAL_Z_LABEL = "ZZZZZ"

    def __init__(self):
        self.n = 5
        self.k = 1
        self.stabilizers: List[PauliString] = [
            PauliString.from_label(lab) for lab in self.STABILIZER_LABELS
        ]
        self.logical_x = PauliString.from_label(self.LOGICAL_X_LABEL)
        self.logical_z = PauliString.from_label(self.LOGICAL_Z_LABEL)
        for i, a in enumerate(self.stabilizers):
            for b in self.stabilizers[i + 1 :]:
                if not a.commutes_with(b):
                    raise QECError("five-qubit stabilizers fail to commute")
            if not a.commutes_with(self.logical_x) or not a.commutes_with(self.logical_z):
                raise QECError("logicals fail to commute with stabilizers")

    @cached_property
    def projector(self) -> np.ndarray:
        """Code-space projector ``prod_i (I + S_i) / 2`` (rank 2)."""
        proj = np.eye(32, dtype=np.complex128)
        for s in self.stabilizers:
            proj = proj @ (np.eye(32) + s.to_matrix()) / 2.0
        return proj

    @cached_property
    def logical_basis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Orthonormal ``(|0_L>, |1_L>)`` with the right logical-Z eigenvalues.

        ``|0_L>`` is the projection of |00000> (which has Z_L = +1 as
        Z_L |0...0> = +|0...0> survives the projector); ``|1_L>`` is
        ``X_L |0_L>``.
        """
        zero = np.zeros(32, dtype=np.complex128)
        zero[0] = 1.0
        zero_l = self.projector @ zero
        nrm = np.linalg.norm(zero_l)
        if nrm < 1e-12:
            raise QECError("projection of |00000> vanished")
        zero_l = zero_l / nrm
        one_l = self.logical_x.to_matrix() @ zero_l
        # Sanity: orthonormal, Z_L eigenvalues +1 / -1.
        zl = self.logical_z.to_matrix()
        if abs(np.vdot(zero_l, zl @ zero_l) - 1.0) > 1e-9:
            raise QECError("Z_L eigenvalue of |0_L> is not +1")
        if abs(np.vdot(one_l, zl @ one_l) + 1.0) > 1e-9:
            raise QECError("Z_L eigenvalue of |1_L> is not -1")
        return zero_l, one_l

    def logical_state(self, alpha: complex, beta: complex) -> np.ndarray:
        """Encoded ``alpha |0_L> + beta |1_L>`` (normalized)."""
        zero_l, one_l = self.logical_basis
        state = alpha * zero_l + beta * one_l
        nrm = np.linalg.norm(state)
        if nrm < 1e-12:
            raise QECError("requested logical state has zero norm")
        return state / nrm

    def decode_density_matrix(self, rho: np.ndarray) -> Tuple[np.ndarray, float]:
        """Project a 5-qubit density matrix onto the code space and decode.

        Returns ``(rho_logical, acceptance)`` where ``rho_logical`` is the
        normalized 2x2 logical density matrix in the ``(|0_L>, |1_L>)``
        basis and ``acceptance`` is the trivial-syndrome probability —
        exactly the post-selection step of 5->1 distillation.
        """
        rho = np.asarray(rho)
        if rho.shape != (32, 32):
            raise QECError(f"expected a 32x32 density matrix, got {rho.shape}")
        zero_l, one_l = self.logical_basis
        basis = np.stack([zero_l, one_l], axis=1)  # (32, 2)
        block = basis.conj().T @ rho @ basis
        acceptance = float(np.real(np.trace(block)))
        if acceptance <= 0:
            raise QECError("zero acceptance probability")
        return block / acceptance, acceptance

    def __repr__(self) -> str:
        return "FiveQubitCode([[5,1,3]])"
