"""Generic CSS encoding circuits (H + CNOT only — Clifford-verifiable).

Construction (standard projective encoder, derived from the stabilizer
formalism):

1. Bring ``Hx`` to reduced row echelon form with pivot columns ``P``.
2. Reduce the logical-X supports modulo ``Hx`` rows so they vanish on
   ``P``, then bring them to RREF among themselves; their pivots ``l_j``
   are the *data qubits*.
3. Emit the circuit on ``|0...0>`` (data qubits pre-loaded by the caller):

   a. for each logical ``j``: fan out ``CNOT(l_j -> q)`` over the rest of
      its support — after this pass the register holds ``X_L^b |0^n>``;
   b. for each RREF X-stabilizer row ``i``: ``H(p_i)`` then
      ``CNOT(p_i -> q)`` over the rest of the row — building
      ``prod_i (I + S_i^x)/sqrt(2)`` on top.

   The pivots guarantee every control is |0> when its H fires, which is
   what makes the result exactly the projected codeword
   ``prod (I+S^x) X_L^b |0^n>`` — stabilized by all X and Z checks with
   the right logical value.  Verified for every code in the library via
   the stabilizer backend (``tests/test_encoding.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import QECError
from repro.qec import gf2
from repro.qec.codes import CSSCode

__all__ = ["css_encoding_circuit", "EncoderInfo"]


@dataclass(frozen=True)
class EncoderInfo:
    """Metadata of a synthesized encoder.

    Attributes
    ----------
    data_qubits:
        ``data_qubits[j]`` is the physical qubit whose pre-circuit state
        becomes logical qubit ``j``.
    x_pivots:
        Pivot qubit of each X-stabilizer row (the qubits receiving H).
    logical_x_rows / logical_z_rows:
        The logical operator supports this encoder realizes (reduced
        representatives, consistent with the emitted circuit).
    """

    data_qubits: Tuple[int, ...]
    x_pivots: Tuple[int, ...]
    logical_x_rows: np.ndarray
    logical_z_rows: np.ndarray


def css_encoding_circuit(code: CSSCode) -> Tuple[Circuit, EncoderInfo]:
    """Synthesize the H/CNOT encoder for a CSS code.

    Returns ``(circuit, info)``.  The circuit assumes all qubits start in
    |0> except the data qubits, which carry the logical payload.
    """
    n = code.n
    hx_rref, x_pivots = gf2.rref(code.hx)
    hx_rref = hx_rref[: len(x_pivots)]  # drop zero rows
    pivot_set = set(x_pivots)

    # Reduce logical X rows to vanish on the X-pivot columns.
    lx = code._logical_x.copy()
    for j in range(lx.shape[0]):
        for r, p in enumerate(x_pivots):
            if lx[j, p]:
                lx[j] ^= hx_rref[r]
    if np.any(lx[:, list(pivot_set)]) if pivot_set else False:
        raise QECError(f"{code.name}: failed to clear logical X on pivots")

    # RREF the logicals among themselves (their pivots become data qubits).
    lx_rref, l_pivots = gf2.rref(lx)
    lx_rref = lx_rref[: len(l_pivots)]
    if len(l_pivots) != code.k:
        raise QECError(f"{code.name}: logical X rows are not independent")
    if pivot_set.intersection(l_pivots):
        raise QECError(f"{code.name}: data qubits collide with stabilizer pivots")

    # Re-pair logical Z with the reduced X representatives.  Adding
    # stabilizer rows preserves pairing, but the RREF among logicals mixes
    # rows: lx_rref = R @ lx, so the Gram matrix becomes R and we must
    # transform lz by (R^{-1})^T to restore lx_rref . lz'^T = I.
    lz = code._logical_z.copy()
    if code.k > 1:
        gram = (lx_rref @ lz.T) % 2  # equals R
        r_inv_cols = []
        for j in range(code.k):
            e = np.zeros(code.k, dtype=np.uint8)
            e[j] = 1
            col = gf2.solve(gram, e)
            if col is None:
                raise QECError(f"{code.name}: singular logical row transform")
            r_inv_cols.append(col)
        r_inv = np.stack(r_inv_cols, axis=1)  # gram @ r_inv = I
        lz = (r_inv.T @ lz) % 2

    circ = Circuit(n, name=f"encode_{code.name}")
    # (a) logical fan-out
    for j in range(code.k):
        control = l_pivots[j]
        for q in np.nonzero(lx_rref[j])[0]:
            if int(q) != control:
                circ.cx(control, int(q))
    # (b) X-stabilizer projection
    for i, p in enumerate(x_pivots):
        circ.h(p)
        for q in np.nonzero(hx_rref[i])[0]:
            if int(q) != p:
                circ.cx(p, int(q))

    info = EncoderInfo(
        data_qubits=tuple(int(p) for p in l_pivots),
        x_pivots=tuple(int(p) for p in x_pivots),
        logical_x_rows=lx_rref,
        logical_z_rows=lz,
    )
    return circ, info
