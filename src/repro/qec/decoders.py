"""Syndrome decoders: lookup tables and brute-force minimum weight.

These are the *classical* baselines an AI decoder trained on PTSBE data
would be compared against (paper §2.3).  Both operate on the CSS syndrome
convention of :meth:`~repro.qec.codes.CSSCode.syndrome_of`: X-check bits
first (detecting Z components), then Z-check bits (detecting X
components).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Dict, Optional, Tuple

import numpy as np

from repro.channels.pauli import PauliString, weight_bounded_paulis
from repro.errors import QECError
from repro.qec import gf2
from repro.qec.codes import CSSCode

__all__ = ["LookupDecoder", "MinimumWeightDecoder", "is_logical_error"]


def is_logical_error(code: CSSCode, residual: PauliString) -> bool:
    """True when ``residual`` (error * correction) acts on the logical state.

    The residual is harmless iff it lies in the stabilizer group; it is a
    logical operator iff it commutes with all checks but is *not* in the
    group.  A residual that anticommutes with some check would mean the
    correction didn't match the syndrome — flagged as an error.
    """
    syndrome = code.syndrome_of(residual)
    if np.any(syndrome):
        raise QECError("residual has nonzero syndrome; correction was inconsistent")
    x_ok = gf2.row_space_contains(code.hx, residual.x)
    z_ok = gf2.row_space_contains(code.hz, residual.z)
    return not (x_ok and z_ok)


class LookupDecoder:
    """Precomputed syndrome -> minimum-weight-correction table.

    The table enumerates all Pauli errors up to weight ``t`` (default:
    the code's correctable radius ``(d-1)//2``) keeping the lowest-weight
    representative per syndrome.  Decoding is then O(1) — the structure
    AlphaQubit-style learned decoders are benchmarked against.
    """

    def __init__(self, code: CSSCode, max_weight: Optional[int] = None, distance: Optional[int] = None):
        self.code = code
        if max_weight is None:
            d = distance if distance is not None else code.distance()
            max_weight = (d - 1) // 2
        self.max_weight = int(max_weight)
        self.table: Dict[bytes, PauliString] = {}
        identity = PauliString.identity(code.n)
        self.table[code.syndrome_of(identity).tobytes()] = identity
        for err in weight_bounded_paulis(code.n, self.max_weight):
            key = self.code.syndrome_of(err).tobytes()
            if key not in self.table:
                self.table[key] = err

    def decode(self, syndrome: np.ndarray) -> Optional[PauliString]:
        """Correction for ``syndrome``; None when outside the table."""
        key = np.asarray(syndrome, dtype=np.uint8).tobytes()
        return self.table.get(key)

    def decode_batch(self, syndromes: np.ndarray) -> Tuple[list, int]:
        """Decode rows of a (m, checks) matrix; returns (corrections, misses)."""
        out = []
        misses = 0
        for row in np.asarray(syndromes, dtype=np.uint8):
            corr = self.decode(row)
            if corr is None:
                misses += 1
            out.append(corr)
        return out, misses

    def __repr__(self) -> str:
        return (
            f"LookupDecoder({self.code.name}, t={self.max_weight}, "
            f"entries={len(self.table)})"
        )


class MinimumWeightDecoder:
    """Exhaustive minimum-weight decoding (exact but exponential).

    For CSS codes the X and Z corrections decouple: the Z-check syndrome
    is matched by a minimum-weight X-support (``hz v = s``), and the
    X-check syndrome by a Z-support.  Feasible for the library's small
    codes; used as the exactness reference for the lookup decoder.
    """

    def __init__(self, code: CSSCode, max_weight: Optional[int] = None):
        self.code = code
        self.max_weight = int(max_weight) if max_weight is not None else code.n

    def _min_weight_solution(self, check: np.ndarray, syndrome: np.ndarray) -> Optional[np.ndarray]:
        n = self.code.n
        if not np.any(syndrome):
            return np.zeros(n, dtype=np.uint8)
        for w in range(1, self.max_weight + 1):
            for support in combinations(range(n), w):
                v = np.zeros(n, dtype=np.uint8)
                v[list(support)] = 1
                if np.array_equal((check @ v) % 2, syndrome % 2):
                    return v
        return None

    def decode(self, syndrome: np.ndarray) -> Optional[PauliString]:
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        rx = self.code.hx.shape[0]
        s_x, s_z = syndrome[:rx], syndrome[rx:]
        # X-check bits flag Z components; Z-check bits flag X components.
        z_part = self._min_weight_solution(self.code.hx, s_x)
        x_part = self._min_weight_solution(self.code.hz, s_z)
        if z_part is None or x_part is None:
            return None
        return PauliString(x_part, z_part)

    def __repr__(self) -> str:
        return f"MinimumWeightDecoder({self.code.name})"
