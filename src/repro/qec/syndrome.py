"""Syndrome-extraction circuits (ancilla-coupled stabilizer readout).

One fresh ancilla per stabilizer per round (the deferred-measurement
contract forbids ancilla reuse): X-stabilizers read out through
``H - CX(ancilla -> data) - H``, Z-stabilizers through
``CX(data -> ancilla)``.  The emitted circuit is pure Clifford, so the
ideal (noiseless) syndrome of a fresh codeword is deterministic zero —
which is exactly what makes frame/trajectory noise attribution clean for
decoder-training datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import QECError
from repro.qec.codes import CSSCode
from repro.qec.encoding import css_encoding_circuit

__all__ = ["syndrome_extraction_circuit", "SyndromeLayout"]


@dataclass(frozen=True)
class SyndromeLayout:
    """Wiring record of a syndrome-extraction circuit.

    Attributes
    ----------
    data_qubits:
        The ``n`` code qubits (always ``0..n-1``).
    ancilla_of:
        ``ancilla_of[(round, check_index)]`` is the physical ancilla
        measured for that check; check indices run X-checks first, then
        Z-checks (matching :meth:`CSSCode.syndrome_of` bit order).
    rounds:
        Number of extraction rounds.
    measure_data:
        Whether data qubits are measured at the end (Z basis).
    """

    data_qubits: Tuple[int, ...]
    ancilla_of: Dict[Tuple[int, int], int]
    rounds: int
    measure_data: bool

    def syndrome_bit_count(self) -> int:
        return len(self.ancilla_of)


def syndrome_extraction_circuit(
    code: CSSCode,
    rounds: int = 1,
    include_encoder: bool = True,
    measure_data: bool = True,
) -> Tuple[Circuit, SyndromeLayout]:
    """Build encoder + ``rounds`` of stabilizer readout + final readout.

    The measurement order is: round 0's checks (X then Z), round 1's ...,
    then (optionally) all data qubits — so a shot's first
    ``rounds * (r_x + r_z)`` bits are syndrome bits in
    :meth:`CSSCode.syndrome_of` order.
    """
    if rounds < 1:
        raise QECError("rounds must be >= 1")
    num_checks = code.hx.shape[0] + code.hz.shape[0]
    total = code.n + rounds * num_checks
    circ = Circuit(total, name=f"syndrome_{code.name}_x{rounds}")

    if include_encoder:
        encoder, _ = css_encoding_circuit(code)
        circ.extend(encoder, qubit_map=list(range(code.n)))

    ancilla_of: Dict[Tuple[int, int], int] = {}
    next_ancilla = code.n
    for r in range(rounds):
        check = 0
        for row in code.hx:
            a = next_ancilla
            next_ancilla += 1
            ancilla_of[(r, check)] = a
            circ.h(a)
            for q in np.nonzero(row)[0]:
                circ.cx(a, int(q))
            circ.h(a)
            check += 1
        for row in code.hz:
            a = next_ancilla
            next_ancilla += 1
            ancilla_of[(r, check)] = a
            for q in np.nonzero(row)[0]:
                circ.cx(int(q), a)
            check += 1
    # Measurements: syndromes in round/check order, then data.
    for r in range(rounds):
        for c in range(num_checks):
            circ.measure(ancilla_of[(r, c)], key=f"synd_r{r}")
    if measure_data:
        circ.measure(*range(code.n), key="data")
    layout = SyndromeLayout(
        data_qubits=tuple(range(code.n)),
        ancilla_of=ancilla_of,
        rounds=rounds,
        measure_data=measure_data,
    )
    return circ, layout
