"""5->1 magic-state distillation (paper Fig. 3, Bravyi-Kitaev protocol).

Two faces of the protocol live here:

* **Exact physics** — :func:`distill_5_to_1` runs the real protocol on
  five noisy T-type magic states: form ``rho(eps)**(x5)``, project onto
  the [[5,1,3]] code space (trivial-syndrome post-selection), decode the
  logical qubit, and report output error + acceptance.  The protocol's
  hallmark numbers are all reproduced and verified in tests:
  ``eps_out -> 5 eps**2`` (quadratic suppression), acceptance ``-> 1/6``
  at small ``eps``, and the Bravyi-Kitaev threshold
  ``eps* = (1 - sqrt(3/7))/2 ~ 0.1727`` — the correctness anchor for the
  whole MSD stack.

* **Benchmark circuits** — :func:`msd_benchmark_circuit` builds the
  gate-level workload of paper Figs. 4/5: five logical qubits, each
  optionally encoded in a CSS code block (Steane -> 35 qubits,
  [[19,1,5]] -> 95 qubits standing in for the paper's 85), magic-state
  data preparation, the Fig. 3 sqrt(X)/sqrt(Y)/sqrt(X)^dag single-qubit
  pattern, ring entanglement, and readout of the top block in any of the
  three Pauli bases ("measured in all three Pauli bases so that the
  fidelity of the resulting magic state could be computed").  The exact
  QuEra gate ordering is not recoverable from the paper, so the circuit
  follows Fig. 3's gate inventory and the protocol's 5-block structure —
  which is what the performance benchmarks need (see DESIGN.md §1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import QECError
from repro.qec.codes import CSSCode
from repro.qec.encoding import css_encoding_circuit
from repro.qec.five_qubit import FiveQubitCode

__all__ = [
    "MAGIC_BLOCH",
    "magic_state_vector",
    "noisy_magic_state",
    "magic_state_fidelity",
    "bloch_from_expectations",
    "MSDOutcome",
    "distill_5_to_1",
    "msd_benchmark_circuit",
    "msd_preparation_circuit",
]

#: Bloch vector of the T-type magic state (the +(1,1,1) corner).
MAGIC_BLOCH = np.array([1.0, 1.0, 1.0]) / math.sqrt(3.0)

_PAULIS = {
    "x": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def magic_state_vector() -> np.ndarray:
    """|T> = cos(beta)|0> + e^{i pi/4} sin(beta)|1>, cos(2 beta) = 1/sqrt(3)."""
    beta = 0.5 * math.acos(1.0 / math.sqrt(3.0))
    return np.array([math.cos(beta), np.exp(1j * math.pi / 4) * math.sin(beta)])


def noisy_magic_state(epsilon: float) -> np.ndarray:
    """Density matrix ``(1-eps)|T><T| + eps |T_perp><T_perp|``.

    This is the standard depolarized-toward-the-antipode noise model of
    the Bravyi-Kitaev analysis.
    """
    if not (0.0 <= epsilon <= 1.0):
        raise QECError(f"epsilon must be in [0,1], got {epsilon}")
    t = magic_state_vector()
    rho_t = np.outer(t, t.conj())
    # The orthogonal state has the antipodal Bloch vector.
    rho_perp = np.eye(2) - rho_t
    return (1.0 - epsilon) * rho_t + epsilon * rho_perp


def bloch_from_expectations(ex: float, ey: float, ez: float) -> np.ndarray:
    """Assemble a Bloch vector from three Pauli expectation values."""
    return np.array([ex, ey, ez], dtype=np.float64)


def magic_state_fidelity(bloch: np.ndarray, target: Optional[np.ndarray] = None) -> float:
    """Fidelity of a single-qubit state (as Bloch vector) with a magic state.

    ``F = (1 + r . m) / 2`` — computable from the three Pauli-basis
    measurement batches exactly as paper Fig. 3 describes.
    """
    m = MAGIC_BLOCH if target is None else np.asarray(target, dtype=np.float64)
    r = np.asarray(bloch, dtype=np.float64)
    return float((1.0 + r @ m) / 2.0)


def _bloch_of_density(rho: np.ndarray) -> np.ndarray:
    return np.array([float(np.real(np.trace(rho @ _PAULIS[p]))) for p in "xyz"])


def _nearest_t_corner(bloch: np.ndarray) -> np.ndarray:
    """The T-type corner (+-1,+-1,+-1)/sqrt(3) closest to ``bloch``.

    The 5->1 protocol outputs a T-type state up to a known single-qubit
    Clifford; reporting against the nearest corner absorbs that fixed
    correction.
    """
    best, best_dot = None, -np.inf
    for signs in product((1.0, -1.0), repeat=3):
        corner = np.array(signs) / math.sqrt(3.0)
        d = float(bloch @ corner)
        if d > best_dot:
            best, best_dot = corner, d
    return best


@dataclass(frozen=True)
class MSDOutcome:
    """Result of one exact 5->1 distillation evaluation."""

    epsilon_in: float
    epsilon_out: float
    acceptance: float
    output_bloch: Tuple[float, float, float]
    target_corner: Tuple[float, float, float]

    def suppression_ratio(self) -> float:
        """eps_out / eps_in**2 — approaches 5 in the quadratic regime."""
        if self.epsilon_in <= 0:
            raise QECError("suppression ratio undefined at epsilon_in = 0")
        return self.epsilon_out / self.epsilon_in**2


def distill_5_to_1(epsilon: float, code: Optional[FiveQubitCode] = None) -> MSDOutcome:
    """Run the exact Bravyi-Kitaev 5->1 protocol at input error ``epsilon``.

    Builds ``rho(eps)**(x5)`` (32x32), projects onto the [[5,1,3]] code
    space, decodes the logical qubit, and measures the output against the
    nearest T-type magic state.
    """
    code = code or FiveQubitCode()
    rho1 = noisy_magic_state(epsilon)
    rho = np.ones((1, 1), dtype=np.complex128)
    for _ in range(5):
        rho = np.kron(rho, rho1)
    logical, acceptance = code.decode_density_matrix(rho)
    bloch = _bloch_of_density(logical)
    corner = _nearest_t_corner(bloch)
    fidelity = magic_state_fidelity(bloch, corner)
    return MSDOutcome(
        epsilon_in=float(epsilon),
        epsilon_out=float(1.0 - fidelity),
        acceptance=float(acceptance),
        output_bloch=tuple(float(v) for v in bloch),
        target_corner=tuple(float(v) for v in corner),
    )


# ---------------------------------------------------------------------- #
# benchmark circuits (Figs. 4 / 5 workloads)
# ---------------------------------------------------------------------- #
_MAGIC_BETA = 0.5 * math.acos(1.0 / math.sqrt(3.0))

#: Fig. 3's per-wire single-qubit gate inventory (sqrt-Pauli pattern).
_FIG3_WIRE_GATES = (
    ("sx", "sy", "sxdg"),
    ("sx", "sxdg"),
    ("sxdg",),
    ("sy", "sxdg"),
    ("sx", "sxdg"),
)


def _prepare_magic_data(circ: Circuit, qubit: int) -> None:
    """Rotate |0> to the T-type magic state (non-Clifford, by design)."""
    circ.ry(2 * _MAGIC_BETA, qubit)
    circ.rz(math.pi / 4, qubit)


def msd_benchmark_circuit(
    code: Optional[CSSCode] = None,
    basis: str = "z",
    measure_all: bool = True,
) -> Circuit:
    """The 5-logical-qubit MSD workload of paper Figs. 3-5.

    Parameters
    ----------
    code:
        ``None`` — bare 5-qubit logical-level circuit; a :class:`CSSCode`
        — each wire becomes an encoded block (Steane -> 35 physical
        qubits, the paper's statevector workload).
    basis:
        Readout basis for the top wire/block: ``"x"``, ``"y"`` or ``"z"``
        (Fig. 3's three-basis fidelity measurement).
    measure_all:
        Measure every qubit (dataset mode) or only the top wire/block.
    """
    if basis not in ("x", "y", "z"):
        raise QECError(f"basis must be x/y/z, got {basis!r}")
    block = 1 if code is None else code.n
    n = 5 * block
    circ = Circuit(n, name=f"msd_{'bare' if code is None else code.name}_{basis}")
    data_qubit_offset = 0
    if code is not None:
        encoder, info = css_encoding_circuit(code)
        data_qubit_offset = info.data_qubits[0]

    # Magic-state preparation per wire (data qubit first, then encode).
    for w in range(5):
        base = w * block
        _prepare_magic_data(circ, base + data_qubit_offset)
        if code is not None:
            circ.extend(encoder, qubit_map=list(range(base, base + block)))

    def transversal(gate_name: str, wire: int) -> None:
        base = wire * block
        for q in range(base, base + block):
            getattr(circ, gate_name)(q)

    def transversal_cz(wa: int, wb: int) -> None:
        for q in range(block):
            circ.cz(wa * block + q, wb * block + q)

    # Fig. 3 structure: first sqrt-Pauli column, ring entanglement,
    # closing sqrt-Pauli column.
    for w, gates in enumerate(_FIG3_WIRE_GATES):
        for g in gates[:-1]:
            transversal(g, w)
    for w in range(5):
        transversal_cz(w, (w + 1) % 5)
    for w, gates in enumerate(_FIG3_WIRE_GATES):
        transversal(gates[-1], w)

    # Basis change on the top wire for the three-basis fidelity readout.
    if basis == "x":
        transversal("h", 0)
    elif basis == "y":
        transversal("sdg", 0)
        transversal("h", 0)

    if measure_all:
        circ.measure_all()
    else:
        circ.measure(*range(block))
    return circ


def msd_preparation_circuit(code: CSSCode, measure: bool = True) -> Circuit:
    """Five encoded magic-state blocks, no inter-block gates.

    This is the "magic state distillation preparation circuit" of paper
    Fig. 5 (their 85-qubit tensor-network workload; [[19,1,5]] gives 95
    qubits here, Steane gives 35).
    """
    encoder, info = css_encoding_circuit(code)
    n = 5 * code.n
    circ = Circuit(n, name=f"msd_prep_{code.name}")
    for w in range(5):
        base = w * code.n
        _prepare_magic_data(circ, base + info.data_qubits[0])
        circ.extend(encoder, qubit_map=list(range(base, base + code.n)))
    if measure:
        circ.measure_all()
    return circ
