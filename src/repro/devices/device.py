"""Emulated compute devices and device meshes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import DeviceError

__all__ = ["Device", "DeviceMesh", "H100"]


@dataclass(frozen=True)
class Device:
    """One emulated accelerator.

    Attributes
    ----------
    device_id:
        Index within its mesh.
    memory_bytes:
        Usable state memory (the paper's H100s hold 80 GB of vRAM).
    name:
        Cosmetic label.
    """

    device_id: int
    memory_bytes: int
    name: str = "emulated-gpu"

    def fits(self, num_bytes: int) -> bool:
        return num_bytes <= self.memory_bytes


def H100(device_id: int = 0) -> Device:
    """An 80 GB H100-like device (the paper's hardware)."""
    return Device(device_id=device_id, memory_bytes=80 * 10**9, name="H100-80GB")


class DeviceMesh:
    """A homogeneous group of devices used for one simulation.

    ``num_devices`` must be a power of two so statevector slicing by
    leading qubits is exact (the standard distributed-statevector layout).
    """

    def __init__(self, num_devices: int, memory_bytes: int = 80 * 10**9, name: str = "mesh"):
        if num_devices <= 0 or (num_devices & (num_devices - 1)) != 0:
            raise DeviceError(f"num_devices must be a positive power of two, got {num_devices}")
        self.devices: List[Device] = [
            Device(device_id=i, memory_bytes=memory_bytes, name=f"{name}[{i}]")
            for i in range(num_devices)
        ]
        self.name = name

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def global_qubits(self) -> int:
        """Number of leading qubits consumed by the device index."""
        return self.num_devices.bit_length() - 1

    @property
    def total_memory_bytes(self) -> int:
        return sum(d.memory_bytes for d in self.devices)

    def __iter__(self):
        return iter(self.devices)

    def __repr__(self) -> str:
        return f"DeviceMesh({self.num_devices} x {self.devices[0].memory_bytes/1e9:.0f}GB)"
