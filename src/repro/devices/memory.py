"""Memory-footprint arithmetic for simulation planning.

Reproduces the paper's capacity statements: a 35-qubit statevector holds
``2**(n+1)`` float32 values (i.e. ``2**n`` complex64), which at 35 qubits
is 256 GiB — hence "four H100 GPUs with 80 GB of vRAM each ... the minimum
number able to accommodate the sizeable memory footprint" (§4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DeviceError

__all__ = [
    "statevector_bytes",
    "density_matrix_bytes",
    "mps_bytes",
    "min_devices_for_statevector",
]


def statevector_bytes(num_qubits: int, dtype=np.complex64) -> int:
    """Bytes to store a dense 2**n statevector."""
    if num_qubits <= 0:
        raise DeviceError("num_qubits must be positive")
    return (2**num_qubits) * np.dtype(dtype).itemsize


def density_matrix_bytes(num_qubits: int, dtype=np.complex64) -> int:
    """Bytes to store a dense 2**n x 2**n density matrix (the 4**n wall)."""
    if num_qubits <= 0:
        raise DeviceError("num_qubits must be positive")
    return (4**num_qubits) * np.dtype(dtype).itemsize


def mps_bytes(num_qubits: int, bond_dim: int, dtype=np.complex64) -> int:
    """Bytes for an MPS with uniform internal bond dimension ``chi``.

    Interior tensors are (chi, 2, chi); the two edge tensors are
    (1, 2, chi) / (chi, 2, 1).
    """
    if num_qubits <= 0 or bond_dim <= 0:
        raise DeviceError("num_qubits and bond_dim must be positive")
    item = np.dtype(dtype).itemsize
    if num_qubits == 1:
        return 2 * item
    interior = max(0, num_qubits - 2) * (bond_dim * 2 * bond_dim)
    edges = 2 * (2 * bond_dim)
    return (interior + edges) * item


def min_devices_for_statevector(
    num_qubits: int,
    device_memory_bytes: int = 80 * 10**9,
    dtype=np.complex64,
    workspace_factor: float = 1.0,
) -> int:
    """Smallest power-of-two device count that fits the statevector.

    ``workspace_factor`` scales the footprint for scratch buffers.  With
    the defaults this returns 4 for the paper's 35-qubit circuit.
    """
    need = statevector_bytes(num_qubits, dtype) * workspace_factor
    count = max(1, math.ceil(need / device_memory_bytes))
    return 1 << (count - 1).bit_length()  # round up to a power of two
