"""Analytic performance model calibrated to the paper's published numbers.

The paper's quantitative claims are arithmetic consequences of three
constants per backend: state-preparation time per trajectory (on the
reference 4-GPU group), per-shot sampling time, and the device count.
This module packages that arithmetic so the benchmarks can print
paper-vs-model rows:

* **Statevector** (35-qubit MSD): speedup saturates at ``t_prep/t_shot``
  ~ 10**6 (Fig. 4 "reaching ~10^6 for batch sizes of 10^6-10^7"), and a
  trillion-shot dataset at 10**6 shots/trajectory costs
  ``10**6 trajectories x (2 s + 10**6 x 2 us) x 4 GPUs = 4,444 GPU-hours``
  (paper: 4,445).
* **Tensor network** (85-qubit MSD prep): 16x at 10**3-shot batches and
  a million-shot dataset at 100 shots/trajectory costing 2,223 GPU-hours
  pins ``t_prep ~ 28 s`` and ``t_shot ~ 1.7 s`` per the same algebra.

The model also exposes the intra-trajectory device-scaling law used by
the Fig. 5 inset bench (near-linear, parameterized efficiency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import DeviceError

__all__ = [
    "BackendTimings",
    "PerfModel",
    "PAPER_STATEVECTOR_TIMINGS",
    "PAPER_TENSORNET_TIMINGS",
]


@dataclass(frozen=True)
class BackendTimings:
    """Calibrated cost constants for one backend at one workload size.

    Attributes
    ----------
    prep_seconds:
        Wall time to prepare one trajectory state on ``ref_devices``.
    shot_seconds:
        Wall time per additional shot from a prepared state.
    ref_devices:
        Device count the constants are calibrated at (the paper used 4
        H100s per trajectory for both workloads).
    scaling_efficiency:
        Exponent of the intra-trajectory strong-scaling law: doubling the
        devices divides prep time by ``2**scaling_efficiency`` ("nearly
        linear", Fig. 5 inset).
    """

    prep_seconds: float
    shot_seconds: float
    ref_devices: int = 4
    scaling_efficiency: float = 0.93

    def prep_on(self, num_devices: int) -> float:
        """Prep time on a different device count (strong scaling)."""
        if num_devices <= 0:
            raise DeviceError("num_devices must be positive")
        ratio = self.ref_devices / num_devices
        return self.prep_seconds * ratio**self.scaling_efficiency


#: 35-qubit MSD statevector workload (4 x H100), calibrated so that the
#: saturating speedup is 10**6 and the trillion-shot dataset costs the
#: paper's 4,445 GPU-hours.
PAPER_STATEVECTOR_TIMINGS = BackendTimings(prep_seconds=2.0, shot_seconds=2.0e-6)

#: 85-qubit MSD-preparation tensor-network workload (4 x H100), calibrated
#: so a 10**3-shot batch achieves ~16x and the million-shot dataset costs
#: the paper's 2,223 GPU-hours.
PAPER_TENSORNET_TIMINGS = BackendTimings(prep_seconds=28.0, shot_seconds=1.72)


class PerfModel:
    """Cost arithmetic for trajectory data collection."""

    def __init__(self, timings: BackendTimings):
        self.timings = timings

    # ------------------------------------------------------------------ #
    # per-trajectory / per-batch
    # ------------------------------------------------------------------ #
    def trajectory_seconds(self, shots: int, num_devices: Optional[int] = None) -> float:
        """Wall time of one trajectory: prepare once + batched shots."""
        devices = num_devices or self.timings.ref_devices
        return self.timings.prep_on(devices) + shots * self.timings.shot_seconds

    def baseline_seconds(self, shots: int, num_devices: Optional[int] = None) -> float:
        """Conventional trajectory method: re-prepare per shot."""
        devices = num_devices or self.timings.ref_devices
        per_shot = self.timings.prep_on(devices) + self.timings.shot_seconds
        return shots * per_shot

    def speedup(self, batch_shots: int, num_devices: Optional[int] = None) -> float:
        """PTSBE speedup over the conventional method for one batch size.

        ``speedup(m) = m (t_prep + t_shot) / (t_prep + m t_shot)`` —
        linear in ``m`` until it saturates at ``~ t_prep / t_shot``.
        """
        if batch_shots <= 0:
            raise DeviceError("batch_shots must be positive")
        return self.baseline_seconds(batch_shots, num_devices) / self.trajectory_seconds(
            batch_shots, num_devices
        )

    def saturating_speedup(self) -> float:
        """The asymptotic speedup ``(t_prep + t_shot) / t_shot``."""
        return (self.timings.prep_seconds + self.timings.shot_seconds) / self.timings.shot_seconds

    def shots_per_second(self, batch_shots: int, num_devices: Optional[int] = None) -> float:
        """Fig. 4/5 left-axis quantity."""
        return batch_shots / self.trajectory_seconds(batch_shots, num_devices)

    # ------------------------------------------------------------------ #
    # dataset campaigns (the GPU-hour headlines)
    # ------------------------------------------------------------------ #
    def dataset_gpu_hours(
        self,
        total_shots: int,
        shots_per_trajectory: int,
        num_devices_per_trajectory: Optional[int] = None,
    ) -> float:
        """GPU-hours to collect ``total_shots`` with PTSBE.

        Inter-trajectory parallelism is embarrassingly parallel, so
        GPU-hours are independent of how many trajectory groups run
        concurrently: (trajectories x wall time x devices per group).
        """
        if shots_per_trajectory <= 0:
            raise DeviceError("shots_per_trajectory must be positive")
        devices = num_devices_per_trajectory or self.timings.ref_devices
        trajectories = math.ceil(total_shots / shots_per_trajectory)
        wall = self.trajectory_seconds(shots_per_trajectory, devices)
        return trajectories * wall * devices / 3600.0

    def baseline_gpu_hours(
        self,
        total_shots: int,
        num_devices_per_trajectory: Optional[int] = None,
    ) -> float:
        """GPU-hours for the same dataset with per-shot re-preparation."""
        devices = num_devices_per_trajectory or self.timings.ref_devices
        return self.baseline_seconds(total_shots, devices) * devices / 3600.0

    def __repr__(self) -> str:
        return (
            f"PerfModel(prep={self.timings.prep_seconds:g}s, "
            f"shot={self.timings.shot_seconds:g}s, ref_devices={self.timings.ref_devices})"
        )
