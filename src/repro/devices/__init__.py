"""Emulated multi-GPU device layer.

The paper runs on NVIDIA Eos (H100 80 GB); this layer reproduces the
*structure* of that deployment on a CPU box: devices with memory
capacities (:mod:`repro.devices.device`, :mod:`repro.devices.memory`), an
honest distributed statevector whose slices live on separate emulated
devices with explicit, byte-counted exchanges
(:mod:`repro.devices.partition`), and an analytic performance model
calibrated to the paper's published numbers
(:mod:`repro.devices.perf_model`).
"""

from repro.devices.device import Device, DeviceMesh, H100
from repro.devices.memory import (
    density_matrix_bytes,
    min_devices_for_statevector,
    mps_bytes,
    statevector_bytes,
)
from repro.devices.partition import DistributedStatevector
from repro.devices.perf_model import (
    BackendTimings,
    PerfModel,
    PAPER_STATEVECTOR_TIMINGS,
    PAPER_TENSORNET_TIMINGS,
)

__all__ = [
    "Device",
    "DeviceMesh",
    "H100",
    "statevector_bytes",
    "density_matrix_bytes",
    "mps_bytes",
    "min_devices_for_statevector",
    "DistributedStatevector",
    "BackendTimings",
    "PerfModel",
    "PAPER_STATEVECTOR_TIMINGS",
    "PAPER_TENSORNET_TIMINGS",
]
