"""Honestly distributed statevector across emulated devices.

The state is sliced by its leading ``g = log2(D)`` qubits: device ``d``
owns the contiguous amplitude block whose top index bits equal ``d`` —
the standard multi-GPU statevector layout (paper §2.2: "operating on
slices of the state vectors and consolidating the results").

Gates on *local* qubits run independently per slice with zero
communication.  Gates touching *global* (slice-index) qubits gather the
2**k_g participating slices of each device group, apply the kernel, and
scatter back — every byte that crosses a device boundary is counted in
:attr:`bytes_communicated`, so tests can assert both bit-exactness against
the single-device backend *and* the expected communication volume.

Slice math routes through the pluggable array-module layer
(:mod:`repro.linalg.backend`), so the emulated devices run their kernels
on NumPy or CuPy exactly like the single-device backends; sampled shot
indices are always returned on host.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backends.statevector import StatevectorBackend, bits_from_indices
from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, NoiseOp
from repro.config import Config, DEFAULT_CONFIG
from repro.devices.device import DeviceMesh
from repro.errors import DeviceError
from repro.linalg.backend import get_array_backend

__all__ = ["DistributedStatevector"]


class DistributedStatevector:
    """A 2**n statevector split over a power-of-two device mesh."""

    def __init__(self, num_qubits: int, mesh: DeviceMesh, config: Optional[Config] = None):
        config = config or DEFAULT_CONFIG
        self.num_qubits = int(num_qubits)
        self.mesh = mesh
        self.global_qubits = mesh.global_qubits
        if self.global_qubits >= num_qubits:
            raise DeviceError(
                f"{mesh.num_devices} devices need at least {self.global_qubits + 1} qubits"
            )
        self.local_qubits = num_qubits - self.global_qubits
        self._config = config
        self._ab = get_array_backend(config.array_module)
        self._xp = self._ab.xp
        self.local_dim = 2**self.local_qubits
        self.slices: List[np.ndarray] = [
            self._xp.zeros(self.local_dim, dtype=config.dtype) for _ in mesh
        ]
        self.slices[0][0] = 1.0
        self.bytes_communicated = 0
        self.exchange_count = 0

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        for s in self.slices:
            s.fill(0)
        self.slices[0][0] = 1.0
        self.bytes_communicated = 0
        self.exchange_count = 0

    def gather(self) -> np.ndarray:
        """Reassemble the full state (devices own contiguous blocks)."""
        return self._xp.concatenate(self.slices)

    # ------------------------------------------------------------------ #
    def apply_matrix(self, matrix: np.ndarray, targets: Sequence[int]) -> None:
        targets = list(targets)
        k = len(targets)
        matrix = self._ab.asarray(matrix, dtype=self._config.dtype)
        if matrix.shape != (2**k, 2**k):
            raise DeviceError(f"matrix shape {matrix.shape} incompatible with {targets}")
        global_targets = [t for t in targets if t < self.global_qubits]
        if not global_targets:
            self._apply_local(matrix, targets)
        else:
            self._apply_with_exchange(matrix, targets, global_targets)

    def _apply_local(self, matrix: np.ndarray, targets: Sequence[int]) -> None:
        """All targets in the local part: independent per-device kernels."""
        xp = self._xp
        local = [t - self.global_qubits for t in targets]
        k = len(local)
        for d in range(self.mesh.num_devices):
            psi = self.slices[d].reshape((2,) * self.local_qubits)
            psi = xp.moveaxis(psi, local, range(k))
            shape = psi.shape
            flat = xp.ascontiguousarray(psi).reshape(2**k, -1)
            flat = matrix @ flat
            psi = xp.moveaxis(flat.reshape(shape), range(k), local)
            self.slices[d] = xp.ascontiguousarray(psi).reshape(-1)

    def _apply_with_exchange(
        self, matrix: np.ndarray, targets: Sequence[int], global_targets: Sequence[int]
    ) -> None:
        """Targets include slice-index bits: gather groups, apply, scatter.

        Devices whose indices differ only in the global-target bits form a
        group; their slices are stacked into extra leading axes so the
        standard kernel applies, then scattered back.  All participating
        slices count as communicated (they must cross device boundaries to
        meet, as an all-to-all among the group).
        """
        g = self.global_qubits
        kg = len(global_targets)
        # Bit positions of the global targets inside the device index
        # (device index bit for qubit q is at position g-1-q from the LSB).
        gbits = [g - 1 - t for t in global_targets]
        group_size = 2**kg
        free_bits = [b for b in range(g) if b not in gbits]

        local_targets = [t - g for t in targets if t >= g]
        k = len(targets)

        for free_assign in range(2 ** len(free_bits)):
            base = 0
            for i, b in enumerate(free_bits):
                if (free_assign >> i) & 1:
                    base |= 1 << b
            members = []
            for combo in range(group_size):
                idx = base
                for i, b in enumerate(gbits):
                    if (combo >> (kg - 1 - i)) & 1:
                        idx |= 1 << b
                members.append(idx)
            # Gather: stack member slices along new leading axes.
            xp = self._xp
            stacked = xp.stack([self.slices[d] for d in members], axis=0)
            stacked = stacked.reshape((2,) * kg + (2,) * self.local_qubits)
            self.bytes_communicated += sum(self.slices[d].nbytes for d in members)
            self.exchange_count += 1
            # Axis map: global target j -> axis j; local qubit l -> kg + l.
            axes = []
            for t in targets:
                if t < g:
                    axes.append(global_targets.index(t))
                else:
                    axes.append(kg + (t - g))
            psi = xp.moveaxis(stacked, axes, range(k))
            shape = psi.shape
            flat = xp.ascontiguousarray(psi).reshape(2**k, -1)
            flat = matrix @ flat
            psi = xp.moveaxis(flat.reshape(shape), range(k), axes)
            psi = xp.ascontiguousarray(psi).reshape(group_size, self.local_dim)
            for pos, d in enumerate(members):
                self.slices[d] = psi[pos].copy()

    # ------------------------------------------------------------------ #
    def norm_squared(self) -> float:
        """Local partial norms + an (emulated) all-reduce."""
        xp = self._xp
        partials = [float(xp.real(xp.vdot(s, s))) for s in self.slices]
        self.bytes_communicated += 8 * len(partials)  # the all-reduce scalars
        return float(sum(partials))

    def renormalize(self) -> float:
        n2 = self.norm_squared()
        if n2 <= 0:
            raise DeviceError("cannot renormalize a zero state")
        scale = 1.0 / np.sqrt(n2)
        for s in self.slices:
            s *= scale
        return n2

    def run_fixed(self, circuit: Circuit, kraus_choices: Optional[Dict[int, int]] = None) -> None:
        """Distributed version of the BE preparation primitive."""
        kraus_choices = kraus_choices or {}
        self.reset()
        for op in circuit:
            if isinstance(op, GateOp):
                self.apply_matrix(op.gate.matrix, op.qubits)
            elif isinstance(op, NoiseOp):
                idx = kraus_choices.get(op.site_id, op.channel.dominant_index())
                self.apply_matrix(op.channel.kraus_ops[idx], op.qubits)
                self.renormalize()

    # ------------------------------------------------------------------ #
    def sample(
        self, num_shots: int, qubits: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """Two-level distributed sampling: pick a device, then an offset.

        Mirrors the distributed bulk-sampling pattern: each device reports
        its probability mass (one all-reduce), shots are multinomially
        routed to devices, and each device samples its shots locally.
        """
        xp = self._xp
        block = np.array([float(xp.sum(xp.abs(s) ** 2)) for s in self.slices])
        self.bytes_communicated += 8 * len(block)
        total = block.sum()
        if total <= 0:
            raise DeviceError("state has zero norm")
        block = block / total
        per_device = rng.multinomial(num_shots, block)
        indices = np.empty(num_shots, dtype=np.int64)
        pos = 0
        for d, count in enumerate(per_device):
            if count == 0:
                continue
            probs = self._ab.to_host(xp.abs(self.slices[d]) ** 2)
            probs = probs / probs.sum()
            cum = np.cumsum(probs)
            cum[-1] = 1.0
            local = np.searchsorted(cum, rng.random(count), side="right")
            indices[pos : pos + count] = (d << self.local_qubits) | local
            self.bytes_communicated += int(count) * 8  # shipping shot indices
            pos += count
        # Shots were generated grouped by device; shuffle to restore
        # exchangeability of the shot stream.
        rng.shuffle(indices)
        return bits_from_indices(indices, qubits, self.num_qubits)

    def __repr__(self) -> str:
        return (
            f"DistributedStatevector(qubits={self.num_qubits}, devices={self.mesh.num_devices}, "
            f"comm={self.bytes_communicated/1e6:.2f}MB)"
        )
