"""Abstract pure-state backend interface.

Both the statevector and MPS backends implement this interface; the
trajectory baseline (:mod:`repro.trajectory.baseline`) and the batched
execution engine (:mod:`repro.execution.batched`) are written against it,
which is what makes PTSBE "agnostic to simulator design" (paper §3).

Semantics contract
------------------
* Measurements are *deferred*: circuits may place :class:`MeasureOp` ops
  anywhere, but no gate/noise op may touch a qubit after it is measured
  (validated in :func:`validate_deferred_measurement`).  Terminal bulk
  sampling is then exactly equivalent to mid-circuit measurement, because
  none of our workloads feed measurement results forward.
* ``apply_channel_choice`` applies one *fixed* Kraus operator, renormalizing
  the state — this is the primitive batched execution uses to realize a
  pre-sampled trajectory.
* ``branch_probabilities`` returns per-Kraus probabilities for the *current*
  state — the primitive the conventional trajectory baseline needs for
  general (non-unitary-mixture) channels.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.channels.kraus import KrausChannel
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import BackendError, ExecutionError, ZeroProbabilityTrajectory

__all__ = ["PureStateBackend", "validate_deferred_measurement"]


def validate_deferred_measurement(circuit: Circuit) -> None:
    """Raise when any qubit is operated on after being measured."""
    measured = set()
    for op in circuit:
        if isinstance(op, MeasureOp):
            measured.update(op.qubits)
        else:
            hit = measured.intersection(op.qubits)
            if hit:
                raise BackendError(
                    f"operation {op!r} acts on already-measured qubit(s) {sorted(hit)}; "
                    "this library defers measurements to circuit end"
                )


class PureStateBackend(abc.ABC):
    """A simulator holding one pure state of ``num_qubits`` qubits."""

    num_qubits: int

    # ------------------------------------------------------------------ #
    # state manipulation primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def reset(self) -> None:
        """Return to |0...0>."""

    @abc.abstractmethod
    def apply_matrix(self, matrix: np.ndarray, targets: Sequence[int]) -> None:
        """Apply a (2**k, 2**k) matrix to ``targets`` (no renormalization)."""

    @abc.abstractmethod
    def norm_squared(self) -> float:
        """<psi|psi> of the current (possibly unnormalized) state."""

    @abc.abstractmethod
    def renormalize(self) -> float:
        """Normalize the state; return the pre-normalization norm**2."""

    @abc.abstractmethod
    def sample(
        self, num_shots: int, qubits: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``num_shots`` computational-basis shots of ``qubits``.

        Returns a ``(num_shots, len(qubits))`` uint8 array of bits, column
        ``j`` being ``qubits[j]``.  This is the *batched* sampling primitive
        — its cost relative to state preparation is the entire PTSBE story.
        """

    # ------------------------------------------------------------------ #
    # derived operations (shared implementations)
    # ------------------------------------------------------------------ #
    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Apply a unitary gate."""
        self.apply_matrix(gate.matrix, qubits)

    def apply_channel_choice(
        self, channel: KrausChannel, qubits: Sequence[int], kraus_index: int
    ) -> float:
        """Apply Kraus operator ``kraus_index`` of ``channel`` and renormalize.

        Returns the squared norm *before* renormalization — i.e. the actual
        (state-dependent) probability this branch would have had under
        conventional trajectory sampling.  PTS consumers use it to compute
        importance weights for proportional estimation.
        """
        if not (0 <= kraus_index < len(channel)):
            raise BackendError(
                f"kraus_index {kraus_index} out of range for {channel.name!r} "
                f"({len(channel)} operators)"
            )
        self.apply_matrix(channel.kraus_ops[kraus_index], qubits)
        norm2 = self.norm_squared()
        if norm2 <= 1e-300:
            raise ZeroProbabilityTrajectory(
                f"Kraus branch {kraus_index} of {channel.name!r} annihilates the state"
            )
        self.renormalize()
        return norm2

    def branch_probabilities(
        self, channel: KrausChannel, qubits: Sequence[int]
    ) -> np.ndarray:
        """State-dependent probabilities ``<psi|K_i^dag K_i|psi>``.

        Default implementation computes the expectation of the Hermitian
        operator ``K_i^dag K_i`` via :meth:`expectation_local`; backends may
        override with something cheaper.
        """
        probs = np.empty(len(channel))
        for i, k in enumerate(channel.kraus_ops):
            probs[i] = max(0.0, float(np.real(self.expectation_local(k.conj().T @ k, qubits))))
        total = probs.sum()
        if total <= 0:
            raise BackendError(f"all branches of {channel.name!r} have zero probability")
        return probs / total

    @abc.abstractmethod
    def expectation_local(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """<psi| M_qubits |psi> for a local operator ``M``."""

    # ------------------------------------------------------------------ #
    # circuit execution with fixed noise choices (the BE primitive)
    # ------------------------------------------------------------------ #
    def run_fixed(
        self,
        circuit: Circuit,
        kraus_choices: Optional[Dict[int, int]] = None,
    ) -> float:
        """Prepare the trajectory state for fixed Kraus choices.

        ``kraus_choices`` maps ``site_id -> kraus_index``; sites absent from
        the map use the channel's dominant ("no error") operator.  Returns
        the product of actual branch probabilities encountered (the
        trajectory's true weight given the choices).
        """
        if not circuit.frozen:
            raise ExecutionError("run_fixed requires a frozen circuit")
        validate_deferred_measurement(circuit)
        kraus_choices = kraus_choices or {}
        self.reset()
        weight = 1.0
        for op in circuit:
            if isinstance(op, GateOp):
                self.apply_gate(op.gate, op.qubits)
            elif isinstance(op, NoiseOp):
                idx = kraus_choices.get(op.site_id)
                if idx is None:
                    idx = op.channel.dominant_index()
                weight *= self.apply_channel_choice(op.channel, op.qubits, idx)
            # MeasureOps are deferred; sampling happens afterwards.
        return weight
