"""Simulation backends.

Six backends, mirroring the paper's ecosystem:

* :class:`~repro.backends.statevector.StatevectorBackend` — dense 2**n
  simulator (the CUDA-Q ``nvidia`` backend stand-in);
* :class:`~repro.backends.batched_statevector.BatchedStatevectorBackend`
  — trajectory-stacked ``(B, 2**n)`` dense simulator powering the
  vectorized execution path;
* :class:`~repro.backends.mps.MPSBackend` — truncated matrix-product-state
  simulator (the ``tensornet`` stand-in) with naive vs. cached batched
  sampling;
* :class:`~repro.backends.density_matrix.DensityMatrixBackend` — exact
  4**n reference used to validate trajectory convergence;
* :class:`~repro.backends.stabilizer.StabilizerBackend` — Aaronson-
  Gottesman CHP tableau (the Clifford/Stim-style comparator);
* :mod:`repro.backends.pauli_frame` — Stim-style bulk Pauli-frame sampler
  for Clifford + Pauli-noise circuits.
"""

from repro.backends.base import PureStateBackend
from repro.backends.statevector import StatevectorBackend
from repro.backends.batched_statevector import BatchedStatevectorBackend
from repro.backends.density_matrix import DensityMatrixBackend
from repro.backends.mps import MPSBackend
from repro.backends.stabilizer import StabilizerBackend

__all__ = [
    "PureStateBackend",
    "StatevectorBackend",
    "BatchedStatevectorBackend",
    "DensityMatrixBackend",
    "MPSBackend",
    "StabilizerBackend",
]
