"""MPS shot sampling: naive per-shot vs. cached batched.

This module is the tensor-network half of the paper's contribution in
miniature.  Fig. 5's observation is that "the current sampling algorithm
for tensor networks requires nearly all of the tensor network contraction
process to reoccur for each sample", and that caching partial-contraction
intermediates lets large shot batches be drawn cheaply.  Here:

* :func:`sample_naive` re-computes the right-environment chain for *every
  shot* — the per-shot cost is ``O(n * chi**3)``, dominated by contraction,
  mimicking the unoptimized path;
* :func:`compute_right_environments` + :func:`sample_cached` compute the
  chain **once** and then draw all shots with a fully vectorized
  conditional sweep of cost ``O(n * m * chi**2)`` total.

Both produce identically distributed shots (verified against each other
and against the statevector backend in ``tests/test_mps.py``).

Sampling math: with right environments ``R[k]`` and a conditioned left
vector ``l`` (the contraction of the already-fixed bits), the unnormalized
probability of outcome ``i`` at site ``k`` is ``v_i R[k+1] v_i^dag`` with
``v_i = l @ A[k][:, i, :]``; dividing by the sum over ``i`` gives the exact
conditional distribution regardless of canonical form.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import BackendError

__all__ = [
    "compute_right_environments",
    "compute_right_environments_batched",
    "sample_cached",
    "sample_naive",
]


def compute_right_environments(tensors: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Right environment chain ``R[k]`` for ``k = 0..n`` (``R[n]`` is 1x1).

    ``R[k] = sum_i A[k][:, i, :] R[k+1] A[k][:, i, :]^dag`` — the identity-
    on-physical-legs transfer contraction from site ``k`` to the right edge.
    """
    n = len(tensors)
    envs: List[np.ndarray] = [None] * (n + 1)  # type: ignore[list-item]
    envs[n] = np.ones((1, 1), dtype=tensors[-1].dtype if n else np.complex128)
    for k in range(n - 1, -1, -1):
        a = tensors[k]
        # (a i b), (b c) -> (a i c); then against conj (d i c) -> (a d)
        tmp = np.tensordot(a, envs[k + 1], axes=([2], [0]))
        envs[k] = np.tensordot(tmp, a.conj(), axes=([1, 2], [1, 2]))
    return envs


def compute_right_environments_batched(
    tensors: Sequence[np.ndarray],
) -> List[np.ndarray]:
    """Batched right environments for a trajectory-stacked MPS.

    ``tensors[k]`` is ``(B, Dl, 2, Dr)``; the returned ``envs[k]`` is
    ``(B, Dl, Dl)`` — one independent environment chain per batch row,
    computed with two batched einsums per site instead of ``B`` separate
    :func:`compute_right_environments` sweeps.

    Because the stack is *not* renormalized during gate replay,
    ``envs[0][:, 0, 0].real`` is each row's unnormalized squared norm —
    exactly the trajectory weight (product of realized Kraus branch
    probabilities, less truncation losses), which the tensornet executor
    reads off for free from this same pass.
    """
    n = len(tensors)
    if n == 0:
        return [np.ones((1, 1, 1), dtype=np.complex128)]
    batch = tensors[-1].shape[0]
    envs: List[np.ndarray] = [None] * (n + 1)  # type: ignore[list-item]
    envs[n] = np.ones((batch, 1, 1), dtype=tensors[-1].dtype)
    for k in range(n - 1, -1, -1):
        a = tensors[k]
        tmp = np.einsum("maib,mbc->maic", a, envs[k + 1], optimize=True)
        envs[k] = np.einsum("maic,mdic->mad", tmp, a.conj(), optimize=True)
    return envs


def sample_cached(
    tensors: Sequence[np.ndarray],
    envs: Sequence[np.ndarray],
    num_shots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``num_shots`` shots with one vectorized left-to-right sweep.

    Returns ``(num_shots, n)`` uint8 bits, column ``k`` = site ``k``.
    """
    n = len(tensors)
    if num_shots == 0:
        return np.empty((0, n), dtype=np.uint8)
    bits = np.empty((num_shots, n), dtype=np.uint8)
    # Conditioned left vectors, one row per shot.
    left = np.ones((num_shots, 1), dtype=np.complex128)
    uniforms = rng.random((num_shots, n))
    for k in range(n):
        a = tensors[k]  # (Dl, 2, Dr)
        # v[m, i, :] = left[m] @ a[:, i, :]
        v = np.einsum("ma,aib->mib", left, a, optimize=True)
        # p[m, i] = v[m,i,:] R v[m,i,:]^dag  (real, >= 0 up to float noise)
        r = envs[k + 1]
        rv = np.einsum("mib,bc->mic", v, r, optimize=True)
        p = np.einsum("mic,mic->mi", rv, v.conj(), optimize=True).real
        np.clip(p, 0.0, None, out=p)
        total = p.sum(axis=1, keepdims=True)
        # Degenerate rows (numerically dead branches) fall back to uniform.
        dead = total[:, 0] <= 0
        if np.any(dead):
            p[dead] = 0.5
            total[dead] = 1.0
        p0 = p[:, 0] / total[:, 0]
        choice = (uniforms[:, k] >= p0).astype(np.uint8)
        bits[:, k] = choice
        chosen_v = v[np.arange(num_shots), choice]  # (m, Dr)
        chosen_p = p[np.arange(num_shots), choice]
        # Renormalize the conditioned vector to keep magnitudes O(1).
        scale = np.sqrt(np.maximum(chosen_p, 1e-300))
        left = chosen_v / scale[:, None]
    return bits


def sample_naive(
    tensors: Sequence[np.ndarray],
    num_shots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-shot sampling that redoes the contraction chain every shot.

    Deliberately unoptimized (this is the *baseline* of Fig. 5): each shot
    rebuilds the right environments — "nearly all of the tensor network
    contraction process" — before its conditional sweep.
    """
    n = len(tensors)
    bits = np.empty((num_shots, n), dtype=np.uint8)
    for shot in range(num_shots):
        envs = compute_right_environments(tensors)  # the redundant work
        bits[shot] = sample_cached(tensors, envs, 1, rng)[0]
    return bits
