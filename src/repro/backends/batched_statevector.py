"""Trajectory-stacked dense statevector backend (the vectorized BE engine).

Where :class:`~repro.backends.statevector.StatevectorBackend` evolves one
``2**n`` statevector at a time, this backend holds a ``(B, 2**n)`` *stack*
of trajectory states and applies every circuit moment to all ``B``
trajectories in one fused operation:

* **Shared work** is one fused kernel call: execution walks the circuit's
  compiled :class:`~repro.execution.plan.FusedPlan` — adjacent gates (and
  noise-branch operators) merged into per-window matrices when
  ``Config.fusion`` is on, one step per operation when it is off — and
  each coherent window updates every trajectory at once through a reshape
  view of the stack (:func:`~repro.linalg.apply.apply_compiled_stack`).
  The per-operation Python/dispatch overhead and buffer traffic of the
  serial engine — its dominant cost at moderate widths — is paid once per
  window instead of once per (operation, trajectory).
* **Divergent Kraus choices** are handled by *grouping*: at each noise
  window the stack rows are partitioned by their variant key — the tuple
  of prescribed Kraus indices at the window's sites (absent sites use the
  channel's dominant operator, exactly like
  :meth:`PureStateBackend.run_fixed`) — and each distinct fused variant is
  applied via the same batched kernel over its row sub-slice.  Since PTS
  trajectories overwhelmingly take the dominant branch, there are
  typically only one or two groups per window.
* **Batched renormalization** after each noise window runs the *shared*
  :func:`~repro.linalg.reductions.row_norms_squared` reduction once over
  the whole stack — the same row-independent reduction the serial
  backend's ``norm_squared`` applies to its state as a 1-row stack — so a
  stacked trajectory stays *bitwise identical* to the same trajectory run
  on :class:`StatevectorBackend` by construction, while the stack pays
  one device-resident reduction and a single host sync per noise window
  instead of B host-synced ``vdot`` calls (the former dominant
  stacked-path cost at large B).  The equivalence is asserted by the
  seed-fixed tests in ``tests/test_vectorized.py`` and
  ``tests/test_fusion.py``.

Rows whose prescribed Kraus branch annihilates the actual state (possible
for general, non-unitary-mixture channels whose nominal probabilities are
only priors) are marked *dead*: their weight drops to zero, the row is
zeroed, and no shots are drawn — matching the serial engine's
:class:`~repro.errors.ZeroProbabilityTrajectory` handling.

Sampling stays the cheap polynomial part of the PTSBE story: one
stack-wide cumulative tensor (``|stack|**2`` normalized and cumsummed
along the state axis, built on the array module in a single pass) serves
every row, and each row draws its full shot budget with one row-wise
``searchsorted`` over all shot uniforms at once — on a device module only
the final shot indices cross back to host.

The stack lives on the array module resolved from ``Config.array_module``
(:mod:`repro.linalg.backend`): NumPy on host, CuPy on GPU when available.
Per-row probability vectors are transferred to host at the sampling
boundary, and shots are always drawn with host NumPy streams — the
``(seed, trajectory_id)`` determinism contract does not depend on where
the stack was prepared.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import validate_deferred_measurement
from repro.backends.statevector import bits_from_indices
from repro.linalg.apply import apply_compiled_stack, apply_matrix_stack
from repro.linalg.backend import get_array_backend
from repro.linalg.reductions import row_norms_squared, scale_rows_inverse_sqrt
from repro.circuits.circuit import Circuit
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import BackendError, CapacityError, ExecutionError

__all__ = ["BatchedStatevectorBackend"]

#: Squared-norm threshold below which a trajectory row is considered
#: annihilated (same threshold as PureStateBackend.apply_channel_choice).
_DEAD_NORM = 1e-300


class BatchedStatevectorBackend:
    """Dense simulator evolving a ``(batch, 2**n)`` stack of pure states.

    This is *not* a :class:`~repro.backends.base.PureStateBackend`: it
    deliberately trades the one-state interface for stack-wide primitives.
    Use it through :class:`~repro.execution.vectorized.VectorizedExecutor`
    (or ``run_ptsbe(..., strategy="vectorized")``) rather than through
    :class:`~repro.execution.batched.BatchedExecutor`.

    Parameters
    ----------
    num_qubits:
        Width of every state in the stack.
    batch_size:
        Initial number of stacked trajectories; :meth:`reset` and
        :meth:`run_fixed_stack` may resize the stack.
    config:
        Optional :class:`~repro.config.Config`; the stack must fit the
        dense amplitude budget ``2**max_dense_qubits`` *in total*, i.e.
        ``batch_size * 2**num_qubits`` amplitudes.
    """

    def __init__(
        self,
        num_qubits: int,
        batch_size: int = 1,
        config: Optional[Config] = None,
    ):
        config = config or DEFAULT_CONFIG
        if num_qubits <= 0:
            raise BackendError(f"num_qubits must be positive, got {num_qubits}")
        if num_qubits > config.max_dense_qubits:
            raise CapacityError(
                f"{num_qubits} qubits exceeds the dense cap of {config.max_dense_qubits} "
                f"(a 2**{num_qubits} statevector per stacked trajectory)"
            )
        self.num_qubits = int(num_qubits)
        self._config = config
        self._ab = get_array_backend(config.array_module)
        self._xp = self._ab.xp
        self._dim = 2**self.num_qubits
        self._stack = self._xp.empty((0, self._dim), dtype=config.dtype)
        self._alive: np.ndarray = np.empty(0, dtype=bool)
        self._probs_cache: Dict[int, np.ndarray] = {}
        self._cum_stack = None  # (B, dim) cumulative tensor on the array module
        self._cum_totals: Optional[np.ndarray] = None  # host per-row norms
        self.preparations = 0  # total stacked trajectories prepared (dedup audit)
        #: Cumulative wall time spent renormalizing the stack after noise
        #: windows (reduction + scale + bookkeeping) — the benchmark
        #: counter behind the strategy table's renorm column.
        self.renorm_seconds = 0.0
        self.reset(batch_size)

    # ------------------------------------------------------------------ #
    # stack management
    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        return int(self._stack.shape[0])

    @property
    def max_batch_rows(self) -> int:
        """Largest stack that fits the dense amplitude budget."""
        return max(1, 2 ** max(0, self._config.max_dense_qubits - self.num_qubits))

    @property
    def alive(self) -> np.ndarray:
        """Boolean mask of rows that still hold a valid (non-dead) state."""
        return self._alive

    @property
    def config(self) -> Config:
        """The configuration this backend was built with."""
        return self._config

    @property
    def array_backend(self):
        """The resolved :class:`~repro.linalg.backend.ArrayBackend`."""
        return self._ab

    def reset(self, batch_size: Optional[int] = None) -> None:
        """Reset every row to |0...0>, optionally resizing the stack."""
        b = self.batch_size if batch_size is None else int(batch_size)
        if b <= 0:
            raise BackendError(f"batch_size must be positive, got {b}")
        if b > self.max_batch_rows:
            raise CapacityError(
                f"stack of {b} x 2**{self.num_qubits} amplitudes exceeds the dense "
                f"budget of 2**{self._config.max_dense_qubits} (max {self.max_batch_rows} rows)"
            )
        try:
            self._stack = self._xp.zeros((b, self._dim), dtype=self._config.dtype)
        except MemoryError as exc:
            # Within the configured budget but past what the host actually
            # has: surface the same actionable error type as the cap check
            # instead of a raw allocation failure.
            raise CapacityError(
                f"allocating a {b} x 2**{self.num_qubits} dense stack ran out "
                f"of memory; lower the batch size or use strategy "
                f"'tensornet'/'clifford' for wide circuits"
            ) from exc
        self._stack[:, 0] = 1.0
        self._alive = np.ones(b, dtype=bool)
        self._invalidate()

    def statevector(self, row: int):
        """Row ``row``'s amplitude array (a direct view — do not mutate).

        Lives on the backend's array module; use
        ``backend.array_backend.to_host(...)`` for a host copy.
        """
        return self._stack[row]

    def release(self) -> None:
        """Drop the stack and every sampling cache (device buffers too).

        The stack-completion boundary for streaming consumers: when a
        :class:`~repro.execution.streaming.StreamedResult` is abandoned
        mid-run, the executor calls this so the ``(B, 2**n)`` stack and
        the stack-wide cumulative tensor do not outlive the stream — on a
        CuPy module that is the difference between freeing device memory
        now and holding it until garbage collection.  Idempotent.  The
        backend stays usable, but the stack is gone: reallocate with an
        explicit size — ``reset(batch_size)`` or :meth:`run_fixed_stack`
        (an argument-less ``reset()`` has no previous size to restore and
        raises).
        """
        self._stack = self._xp.empty((0, self._dim), dtype=self._config.dtype)
        self._alive = np.empty(0, dtype=bool)
        self._invalidate()

    def _invalidate(self) -> None:
        self._probs_cache.clear()
        self._cum_stack = None
        self._cum_totals = None

    # ------------------------------------------------------------------ #
    # batched state evolution
    # ------------------------------------------------------------------ #
    def apply_matrix(
        self,
        matrix: np.ndarray,
        targets: Sequence[int],
        rows: Optional[Sequence[int]] = None,
    ) -> None:
        """Apply one ``(2**k, 2**k)`` matrix to ``targets`` of many rows.

        ``rows=None`` hits the whole stack with one fused kernel call
        (the shared-gate fast path); an explicit row list transforms only
        that sub-slice (the divergent-Kraus path).  No renormalization.
        """
        targets = list(targets)
        k = len(targets)
        dim_k = 2**k
        matrix = np.asarray(matrix) if not hasattr(matrix, "shape") else matrix
        if matrix.shape != (dim_k, dim_k):
            raise BackendError(
                f"matrix shape {matrix.shape} incompatible with targets {targets}"
            )
        if any(t < 0 or t >= self.num_qubits for t in targets):
            raise BackendError(f"targets {targets} out of range")
        if len(set(targets)) != k:
            raise BackendError(f"duplicate targets {targets}")

        if rows is not None:
            # Deduplicate so the gather/scatter (and the whole-stack
            # shortcut below) see well-defined fancy-index semantics.
            rows = np.unique(np.asarray(rows, dtype=np.intp))
            if rows.size and (rows[0] < 0 or rows[-1] >= self.batch_size):
                raise BackendError(
                    f"rows {rows.tolist()} out of range for a "
                    f"{self.batch_size}-row stack"
                )
            if rows.size == self.batch_size:
                rows = None  # the "sub-slice" is the whole stack
        if rows is None:
            self._stack = apply_matrix_stack(
                self._stack, matrix, targets, self.num_qubits, self._config.dtype,
                xp=self._xp,
            )
        else:
            if rows.size == 0:
                return
            self._stack[rows] = apply_matrix_stack(
                self._xp.ascontiguousarray(self._stack[rows]),
                matrix,
                targets,
                self.num_qubits,
                self._config.dtype,
                xp=self._xp,
            )
        self._invalidate()

    def norms_squared(self) -> np.ndarray:
        """Per-row <psi|psi> of the current stack (host NumPy).

        One stack-wide :func:`~repro.linalg.reductions.row_norms_squared`
        call — the same shared reduction the serial backend's
        ``norm_squared`` runs, so entry ``i`` is bitwise what
        ``StatevectorBackend`` would report for row ``i``'s state.
        """
        return self._ab.to_host(
            row_norms_squared(self._stack, self._xp)
        ).astype(np.float64, copy=False)

    # ------------------------------------------------------------------ #
    # stacked trajectory preparation (the vectorized BE primitive)
    # ------------------------------------------------------------------ #
    def run_fixed_stack(
        self,
        circuit: Circuit,
        choices_list: Sequence[Optional[Dict[int, int]]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Prepare one trajectory state per entry of ``choices_list``.

        Each entry maps ``site_id -> kraus_index`` exactly as in
        :meth:`PureStateBackend.run_fixed`; sites absent from a map use
        the channel's dominant operator.  Returns ``(weights, alive)``:
        the per-row product of actual branch probabilities, and a mask of
        rows whose prescribed branches were all realizable.  Dead rows
        have weight 0 and a zeroed state.

        Execution walks the circuit's compiled
        :class:`~repro.execution.plan.FusedPlan` — the same plan (same
        fused matrices, application order, and renormalization points) the
        serial :class:`StatevectorBackend` walks, which is what keeps
        stacked rows bitwise identical to serial preparations with fusion
        on or off.
        """
        # Imported lazily: repro.execution imports this module at package
        # init, so a top-level import would be circular.
        from repro.execution.plan import NoiseStep, get_fused_plan

        if not circuit.frozen:
            raise ExecutionError("run_fixed_stack requires a frozen circuit")
        if circuit.num_qubits != self.num_qubits:
            raise BackendError(
                f"circuit has {circuit.num_qubits} qubits, backend has {self.num_qubits}"
            )
        validate_deferred_measurement(circuit)
        if len(choices_list) == 0:
            raise ExecutionError("empty trajectory stack")
        plan = get_fused_plan(circuit, self._config)
        self.reset(len(choices_list))
        weights = np.ones(len(choices_list), dtype=np.float64)
        self.preparations += len(choices_list)
        for step in plan.steps:
            if isinstance(step, NoiseStep):
                self._apply_noise_step(step, choices_list, weights)
            else:
                self._apply_compiled_full(step.op)
            # MeasureOps are deferred; sampling happens afterwards.
        return weights, self._alive.copy()

    def _apply_compiled_full(self, op) -> None:
        """Apply a pre-compiled operator to the whole stack (no validation)."""
        self._stack = apply_compiled_stack(
            self._stack, op, self.num_qubits, xp=self._xp
        )
        self._invalidate()

    def _apply_noise_step(
        self,
        step,
        choices_list: Sequence[Optional[Dict[int, int]]],
        weights: np.ndarray,
    ) -> None:
        """Group rows by variant key, apply each group, renormalize rows."""
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for row, choices in enumerate(choices_list):
            if not self._alive[row]:
                continue
            groups.setdefault(step.key_for(choices), []).append(row)
        if not groups:
            return  # every row already dead: nothing to apply or scale
        if len(groups) == 1:
            # Unanimous variant: hit the whole stack in place (dead rows
            # are zero and stay zero under any operator).
            (key,) = groups
            self._apply_compiled_full(step.variant(key))
        elif groups:
            # Apply the majority variant to the whole stack in place, then
            # overwrite the (few) deviating rows from a pre-window snapshot
            # — this avoids gathering/scattering the large majority slice.
            majority = max(groups, key=lambda key: len(groups[key]))
            minority_rows = {
                key: np.asarray(rows, dtype=np.intp)
                for key, rows in groups.items()
                if key != majority
            }
            snapshots = {
                key: self._xp.ascontiguousarray(self._stack[rows])
                for key, rows in minority_rows.items()
            }
            self._apply_compiled_full(step.variant(majority))
            for key, rows in minority_rows.items():
                self._stack[rows] = apply_compiled_stack(
                    snapshots[key],
                    step.variant(key),
                    self.num_qubits,
                    xp=self._xp,
                )
        # Batched renormalization: one stack-wide reduction (the same
        # row-independent row_norms_squared the serial norm_squared runs,
        # so per-row results are bitwise serial-identical by construction)
        # and a single host sync for the (B,) norm vector — replacing the
        # per-row vdot sweep that cost one host sync per row and was the
        # dominant stacked-path cost at large B.  Dead rows (previously
        # dead, or annihilated by this window) get a unit divisor: x / 1.0
        # is bitwise x, and newly-dead rows are zeroed below anyway.
        xp = self._xp
        t0 = time.perf_counter()
        norms = row_norms_squared(self._stack, xp)
        norms_host = self._ab.to_host(norms)
        scale_rows_inverse_sqrt(self._stack, norms, xp, dead_norm=_DEAD_NORM)
        for rows in groups.values():
            for row in rows:
                n2 = float(norms_host[row])
                if n2 <= _DEAD_NORM:
                    # This branch annihilates the actual state (nominal
                    # probabilities are only priors for general channels).
                    self._alive[row] = False
                    weights[row] = 0.0
                    self._stack[row].fill(0)
                    continue
                weights[row] *= n2
        self.renorm_seconds += time.perf_counter() - t0
        self._invalidate()

    # ------------------------------------------------------------------ #
    # stacked probabilities and bulk sampling
    # ------------------------------------------------------------------ #
    def probabilities(self, row: int) -> np.ndarray:
        """|amplitude|**2 of one row (cached until the stack mutates).

        Always returned on host NumPy — the array-module boundary feeding
        the sampling layer.
        """
        cached = self._probs_cache.get(row)
        if cached is None:
            probs = self._xp.abs(self._stack[row]) ** 2
            total = probs.sum()
            if float(total) <= 0:
                raise BackendError(f"stack row {row} has zero norm (dead trajectory)")
            cached = self._ab.to_host(probs / total).astype(np.float64, copy=False)
            self._probs_cache[row] = cached
        return cached

    def probability_stack(self) -> np.ndarray:
        """The full ``(batch, 2**n)`` probability tensor (dead rows zero)."""
        out = np.zeros((self.batch_size, self._dim), dtype=np.float64)
        for row in range(self.batch_size):
            if self._alive[row]:
                out[row] = self.probabilities(row)
        return out

    def cumulative_stack(self):
        """The ``(batch, 2**n)`` cumulative-probability tensor, stack-wide.

        Built in one pass on the array module — ``|stack|**2``, per-row
        normalization, ``cumsum`` along the state axis, tail clamped to
        1.0 so ``searchsorted`` never falls off the end — replacing the
        old per-row Python loop.  The per-row arithmetic (element-wise
        square/divide, then a row-independent cumulative sum) matches the
        serial backend's per-state path exactly, so sampling stays bitwise
        identical to :class:`StatevectorBackend`.  Dead (zero-norm) rows
        come out all-zero with only the clamped tail entry at 1.0 — never
        a valid distribution — so sampling guards on the per-row norm and
        raises before such a row could be drawn from.

        The tensor stays on the array module (device-resident under
        CuPy); only final shot indices are transferred to host.
        """
        if self._cum_stack is None:
            xp = self._xp
            probs = xp.abs(self._stack) ** 2
            totals = probs.sum(axis=1, keepdims=True)
            self._cum_totals = self._ab.to_host(totals).reshape(-1).astype(
                np.float64, copy=False
            )
            safe = xp.where(totals > 0, totals, xp.asarray(1.0, dtype=totals.dtype))
            cum = xp.cumsum(
                (probs / safe).astype(np.float64, copy=False), axis=1
            )
            # Clamp the tail so searchsorted never falls off the end.
            cum[:, -1] = 1.0
            self._cum_stack = cum
        return self._cum_stack

    def sample_indices(
        self, row: int, num_shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Bulk-sample basis-state indices from one stacked trajectory.

        Uniforms always come from the host ``rng`` (the
        ``(seed, trajectory_id)`` determinism contract); the row-wise
        ``searchsorted`` runs wherever the cumulative tensor lives, and
        only the resulting shot indices cross back to host.
        """
        if num_shots < 0:
            raise BackendError("num_shots must be >= 0")
        if num_shots == 0:
            return np.empty(0, dtype=np.int64)
        cum = self.cumulative_stack()
        if self._cum_totals[row] <= 0:
            raise BackendError(f"stack row {row} has zero norm (dead trajectory)")
        r = rng.random(num_shots)
        indices = self._xp.searchsorted(cum[row], self._xp.asarray(r), side="right")
        # Shot indices are the one bulk device->host transfer of the
        # sampling hot path: stage through pinned memory under CuPy
        # (identity under NumPy) for DMA-speed copies.
        return self._ab.to_host_pinned(indices).astype(np.int64, copy=False)

    def sample(
        self,
        row: int,
        num_shots: int,
        qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``num_shots`` shots of ``qubits`` from stack row ``row``."""
        indices = self.sample_indices(row, num_shots, rng)
        return bits_from_indices(indices, qubits, self.num_qubits)

    def sample_stack(
        self,
        shots_per_row: Sequence[int],
        qubits: Sequence[int],
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        """Bulk multinomial sampling over the whole stack, one rng per row.

        Dead rows yield an empty ``(0, len(qubits))`` table.  Each live row
        draws its full budget in one vectorized ``searchsorted`` — the
        "sampling all m_alpha desired quantum bitstrings at once" step of
        the paper, here over the stacked probability tensor.
        """
        if len(shots_per_row) != self.batch_size or len(rngs) != self.batch_size:
            raise BackendError(
                f"expected {self.batch_size} shot counts and rngs, got "
                f"{len(shots_per_row)} and {len(rngs)}"
            )
        out: List[np.ndarray] = []
        for row, (shots, rng) in enumerate(zip(shots_per_row, rngs)):
            if not self._alive[row]:
                out.append(np.empty((0, len(qubits)), dtype=np.uint8))
            else:
                out.append(self.sample(row, shots, qubits, rng))
        return out

    def __repr__(self) -> str:
        return (
            f"BatchedStatevectorBackend(qubits={self.num_qubits}, "
            f"batch={self.batch_size}, dtype={self._config.dtype}, xp={self._ab.name})"
        )
