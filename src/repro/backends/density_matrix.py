"""Exact density-matrix backend (the 4**n reference).

This is the ground truth every approximation is validated against: the
conventional trajectory baseline, PTSBE's proportionally-resampled output
distribution, and the MPS backend all must converge to the distribution this
backend computes exactly.  It is deliberately simple and capped at few
qubits (paper §1: direct density-matrix simulation is "intractable beyond
~20 qubits"; for tests we stay well below).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.backends.statevector import bits_from_indices
from repro.channels.kraus import KrausChannel
from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import BackendError, CapacityError

__all__ = ["DensityMatrixBackend"]


class DensityMatrixBackend:
    """Exact open-system simulator: ``rho -> U rho U^dag`` / ``sum K rho K^dag``."""

    def __init__(self, num_qubits: int, config: Optional[Config] = None):
        config = config or DEFAULT_CONFIG
        if num_qubits <= 0:
            raise BackendError(f"num_qubits must be positive, got {num_qubits}")
        if num_qubits > config.max_density_qubits:
            raise CapacityError(
                f"{num_qubits} qubits exceeds the density-matrix cap of "
                f"{config.max_density_qubits} (4**n scaling)"
            )
        self.num_qubits = int(num_qubits)
        self._config = config
        self._dim = 2**num_qubits
        self._rho = np.zeros((self._dim, self._dim), dtype=np.complex128)
        self._rho[0, 0] = 1.0

    # ------------------------------------------------------------------ #
    @property
    def density_matrix(self) -> np.ndarray:
        return self._rho

    def reset(self) -> None:
        self._rho.fill(0)
        self._rho[0, 0] = 1.0

    def _apply_one_sided(self, matrix: np.ndarray, targets: Sequence[int], side: str) -> None:
        """Apply ``matrix`` to the row (ket) or column (bra) indices."""
        n = self.num_qubits
        k = len(targets)
        tensor = self._rho.reshape((2,) * (2 * n))
        axes = list(targets) if side == "ket" else [n + t for t in targets]
        tensor = np.moveaxis(tensor, axes, range(k))
        shape = tensor.shape
        flat = np.ascontiguousarray(tensor).reshape(2**k, -1)
        mat = matrix if side == "ket" else matrix.conj()
        flat = np.asarray(mat) @ flat
        tensor = np.moveaxis(flat.reshape(shape), range(k), axes)
        self._rho = np.ascontiguousarray(tensor).reshape(self._dim, self._dim)

    def apply_unitary(self, matrix: np.ndarray, targets: Sequence[int]) -> None:
        """rho -> U rho U^dag on the target qubits."""
        self._apply_one_sided(matrix, targets, "ket")
        self._apply_one_sided(matrix, targets, "bra")

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> None:
        self.apply_unitary(gate.matrix, qubits)

    def apply_channel(self, channel: KrausChannel, qubits: Sequence[int]) -> None:
        """Exact channel action: rho -> sum_i K_i rho K_i^dag."""
        out = np.zeros_like(self._rho)
        saved = self._rho
        for k in channel.kraus_ops:
            self._rho = saved.copy()
            self._apply_one_sided(k, qubits, "ket")
            self._apply_one_sided(k, qubits, "bra")
            out += self._rho
        self._rho = out

    def run(self, circuit: Circuit) -> "DensityMatrixBackend":
        """Execute a (frozen or not) noisy circuit exactly."""
        self.reset()
        for op in circuit:
            if isinstance(op, GateOp):
                self.apply_gate(op.gate, op.qubits)
            elif isinstance(op, NoiseOp):
                self.apply_channel(op.channel, op.qubits)
            # MeasureOps deferred: probabilities read off the final rho.
        return self

    # ------------------------------------------------------------------ #
    # read-out
    # ------------------------------------------------------------------ #
    def probabilities(self) -> np.ndarray:
        """Diagonal of rho — the exact shot distribution."""
        probs = np.real(np.diagonal(self._rho)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total <= 0:
            raise BackendError("density matrix has zero trace")
        return probs / total

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Exact marginal distribution over the listed qubits (in order)."""
        probs = self.probabilities().reshape((2,) * self.num_qubits)
        keep = list(qubits)
        drop = tuple(a for a in range(self.num_qubits) if a not in keep)
        marg = probs.sum(axis=drop) if drop else probs
        # Axes of marg are the kept qubits in ascending order; reorder to
        # the requested order.
        ascending = sorted(keep)
        perm = [ascending.index(q) for q in keep]
        return np.transpose(marg, perm).reshape(-1)

    def sample(
        self, num_shots: int, qubits: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """Bulk shot sampling from the exact distribution."""
        full = self.probabilities()
        cum = np.cumsum(full)
        cum[-1] = 1.0
        idx = np.searchsorted(cum, rng.random(num_shots), side="right")
        return bits_from_indices(idx.astype(np.int64), qubits, self.num_qubits)

    def expectation(self, operator: np.ndarray) -> complex:
        """tr(rho O) for a full-dimension operator."""
        return complex(np.trace(self._rho @ np.asarray(operator)))

    def purity(self) -> float:
        """tr(rho**2); 1 for pure states."""
        return float(np.real(np.trace(self._rho @ self._rho)))

    def fidelity_with_pure(self, state: np.ndarray) -> float:
        """<psi| rho |psi> against a pure reference state."""
        state = np.asarray(state).reshape(-1)
        return float(np.real(np.vdot(state, self._rho @ state)))

    def __repr__(self) -> str:
        return f"DensityMatrixBackend(qubits={self.num_qubits})"
