"""Matrix-product-state backend (the CUDA-Q ``tensornet`` stand-in).

State representation: a list of rank-3 tensors ``A[k]`` of shape
``(D_left, 2, D_right)``; the amplitude of bitstring ``b`` is
``prod_k A[k][:, b_k, :]`` contracted along the bonds.  Two-qubit gates on
non-adjacent qubits are swap-routed.  Every two-qubit application performs
a truncated SVD governed by ``max_bond`` and ``cutoff``; the cumulative
discarded probability weight is tracked in :attr:`truncation_error`.

Sampling supports two modes (see :mod:`repro.backends.mps_sampler`):

* ``mode="cached"`` — right environments computed once per prepared state,
  then batched vectorized conditional sampling (the PTSBE-enabling path);
* ``mode="naive"`` — the contraction chain is rebuilt per shot (the
  baseline whose cost Fig. 5's speedup is measured against).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.backends.base import PureStateBackend
from repro.backends.mps_sampler import (
    compute_right_environments,
    sample_cached,
    sample_naive,
)
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import BackendError
from repro.linalg.decompositions import truncated_svd, truncated_svd_batched
from repro.linalg.kron import permute_operator_qubits

__all__ = ["MPSBackend", "BatchedMPSStack"]

_SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=np.complex128,
)


class MPSBackend(PureStateBackend):
    """Truncated MPS simulator with naive / cached batched sampling."""

    def __init__(
        self,
        num_qubits: int,
        max_bond: Optional[int] = None,
        cutoff: Optional[float] = None,
        config: Optional[Config] = None,
    ):
        config = config or DEFAULT_CONFIG
        if num_qubits <= 0:
            raise BackendError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self._config = config
        self.max_bond = int(max_bond if max_bond is not None else config.default_bond_dim)
        self.cutoff = float(cutoff if cutoff is not None else config.svd_cutoff)
        if self.max_bond < 1:
            raise BackendError("max_bond must be >= 1")
        self.tensors: List[np.ndarray] = []
        self.truncation_error = 0.0
        self._envs_cache: Optional[List[np.ndarray]] = None
        self.reset()

    # ------------------------------------------------------------------ #
    # state management
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        zero = np.zeros((1, 2, 1), dtype=np.complex128)
        zero[0, 0, 0] = 1.0
        self.tensors = [zero.copy() for _ in range(self.num_qubits)]
        self.truncation_error = 0.0
        self._invalidate()

    def _invalidate(self) -> None:
        self._envs_cache = None

    def bond_dimensions(self) -> List[int]:
        """Current bond dimensions (n-1 internal bonds)."""
        return [self.tensors[k].shape[2] for k in range(self.num_qubits - 1)]

    def copy(self) -> "MPSBackend":
        out = MPSBackend.__new__(MPSBackend)
        out.num_qubits = self.num_qubits
        out._config = self._config
        out.max_bond = self.max_bond
        out.cutoff = self.cutoff
        out.tensors = [t.copy() for t in self.tensors]
        out.truncation_error = self.truncation_error
        out._envs_cache = None
        return out

    # ------------------------------------------------------------------ #
    # gate application
    # ------------------------------------------------------------------ #
    def apply_matrix(self, matrix: np.ndarray, targets: Sequence[int]) -> None:
        targets = list(targets)
        matrix = np.asarray(matrix, dtype=np.complex128)
        if any(t < 0 or t >= self.num_qubits for t in targets):
            raise BackendError(f"targets {targets} out of range")
        if len(targets) == 1:
            self._apply_1q(matrix, targets[0])
        elif len(targets) == 2:
            self._apply_2q(matrix, targets[0], targets[1])
        else:
            raise BackendError(
                f"MPS backend applies 1- and 2-qubit matrices natively; got "
                f"{len(targets)} targets (transpile with decompose_to_2q first)"
            )
        self._invalidate()

    def _apply_1q(self, matrix: np.ndarray, q: int) -> None:
        if matrix.shape != (2, 2):
            raise BackendError(f"expected 2x2 matrix, got {matrix.shape}")
        self.tensors[q] = np.einsum("oi,aib->aob", matrix, self.tensors[q], optimize=True)

    def _apply_2q(self, matrix: np.ndarray, qa: int, qb: int) -> None:
        if matrix.shape != (4, 4):
            raise BackendError(f"expected 4x4 matrix, got {matrix.shape}")
        if qa == qb:
            raise BackendError("two-qubit gate targets must differ")
        if qb < qa:
            # Reorder the operator so its first wire is the lower qubit.
            matrix = permute_operator_qubits(matrix, [1, 0])
            qa, qb = qb, qa
        # Swap-route qb down to qa+1.
        moved = []
        while qb > qa + 1:
            self._apply_adjacent(_SWAP, qb - 1)
            moved.append(qb - 1)
            qb -= 1
        self._apply_adjacent(matrix, qa)
        for pos in reversed(moved):
            self._apply_adjacent(_SWAP, pos)

    def _apply_adjacent(self, matrix: np.ndarray, q: int) -> None:
        """Apply a 4x4 matrix to adjacent sites (q, q+1) with truncation."""
        a, b = self.tensors[q], self.tensors[q + 1]
        dl, dr = a.shape[0], b.shape[2]
        theta = np.tensordot(a, b, axes=([2], [0]))  # (dl, i, j, dr)
        gate = matrix.reshape(2, 2, 2, 2)  # (o1, o2, i1, i2)
        theta = np.einsum("abij,lijr->labr", gate, theta, optimize=True)
        mat = theta.reshape(dl * 2, 2 * dr)
        u, s, vh, info = truncated_svd(mat, max_rank=self.max_bond, cutoff=self.cutoff)
        self.truncation_error += info.discarded_weight
        self.tensors[q] = u.reshape(dl, 2, info.kept)
        self.tensors[q + 1] = (s[:, None] * vh).reshape(info.kept, 2, dr)

    # ------------------------------------------------------------------ #
    # norms / expectations
    # ------------------------------------------------------------------ #
    def norm_squared(self) -> float:
        env = np.ones((1, 1), dtype=np.complex128)
        for a in self.tensors:
            # env (c a), a (a i b), conj(a) (c i d) -> (d b)
            tmp = np.tensordot(env, a, axes=([1], [0]))  # (c, i, b)
            env = np.tensordot(a.conj(), tmp, axes=([0, 1], [0, 1]))  # (d, b)
        return float(np.real(env[0, 0]))

    def renormalize(self) -> float:
        n2 = self.norm_squared()
        if n2 <= 0:
            raise BackendError("cannot renormalize a zero MPS")
        self.tensors[0] = self.tensors[0] / np.sqrt(n2)
        self._invalidate()
        return n2

    def inner(self, other: "MPSBackend") -> complex:
        """<self|other> via the mixed transfer-matrix contraction."""
        if other.num_qubits != self.num_qubits:
            raise BackendError("inner product requires equal qubit counts")
        env = np.ones((1, 1), dtype=np.complex128)
        for a_bra, a_ket in zip(self.tensors, other.tensors):
            tmp = np.tensordot(env, a_ket, axes=([1], [0]))  # (c, i, b)
            env = np.tensordot(a_bra.conj(), tmp, axes=([0, 1], [0, 1]))
        return complex(env[0, 0])

    def expectation_local(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """<psi|M|psi> by applying M to an *untruncated* copy.

        The copy uses an unbounded bond so the expectation is exact for the
        current state (one gate application at most doubles the bond).
        """
        work = self.copy()
        work.max_bond = max(4 * self.max_bond, 1 << 12)
        work.cutoff = 0.0
        work.apply_matrix(matrix, qubits)
        return self.inner(work)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _environments(self) -> List[np.ndarray]:
        if self._envs_cache is None:
            self._envs_cache = compute_right_environments(self.tensors)
        return self._envs_cache

    def sample(
        self,
        num_shots: int,
        qubits: Sequence[int],
        rng: np.random.Generator,
        mode: str = "cached",
    ) -> np.ndarray:
        """Draw shots; ``mode`` selects cached-batched or naive per-shot."""
        if num_shots < 0:
            raise BackendError("num_shots must be >= 0")
        if mode == "cached":
            bits = sample_cached(self.tensors, self._environments(), num_shots, rng)
        elif mode == "naive":
            bits = sample_naive(self.tensors, num_shots, rng)
        else:
            raise BackendError(f"unknown sampling mode {mode!r}")
        cols = list(qubits)
        return bits[:, cols]

    # ------------------------------------------------------------------ #
    # conversion (small n, for tests)
    # ------------------------------------------------------------------ #
    def to_statevector(self) -> np.ndarray:
        """Contract to a dense statevector (<= ~20 qubits)."""
        if self.num_qubits > 20:
            raise BackendError("to_statevector limited to <= 20 qubits")
        acc = self.tensors[0]  # (1, 2, D)
        for a in self.tensors[1:]:
            acc = np.tensordot(acc, a, axes=([acc.ndim - 1], [0]))
        # acc shape (1, 2, 2, ..., 2, 1)
        return np.ascontiguousarray(acc).reshape(-1)

    @classmethod
    def from_statevector(
        cls,
        state: np.ndarray,
        max_bond: Optional[int] = None,
        cutoff: float = 0.0,
        config: Optional[Config] = None,
    ) -> "MPSBackend":
        """Exact (or truncated) MPS decomposition of a dense state."""
        state = np.asarray(state, dtype=np.complex128).reshape(-1)
        n = int(round(np.log2(state.shape[0])))
        if 2**n != state.shape[0]:
            raise BackendError("state dimension is not a power of two")
        out = cls(n, max_bond=max_bond or (1 << 30), cutoff=cutoff, config=config)
        tensors: List[np.ndarray] = []
        rest = state.reshape(1, -1)
        dl = 1
        for k in range(n - 1):
            mat = rest.reshape(dl * 2, -1)
            u, s, vh, info = truncated_svd(mat, max_rank=out.max_bond, cutoff=cutoff)
            out.truncation_error += info.discarded_weight
            tensors.append(u.reshape(dl, 2, info.kept))
            rest = s[:, None] * vh
            dl = info.kept
        tensors.append(rest.reshape(dl, 2, 1))
        out.tensors = tensors
        out._invalidate()
        return out

    def __repr__(self) -> str:
        chi = max(self.bond_dimensions(), default=1)
        return (
            f"MPSBackend(qubits={self.num_qubits}, max_bond={self.max_bond}, "
            f"chi={chi}, trunc_err={self.truncation_error:.2e})"
        )


class BatchedMPSStack:
    """``B`` independent MPS states stacked along a leading batch axis.

    Site tensors have shape ``(B, D_l, 2, D_r)``: every trajectory in a
    dedup chunk shares one swap-routed gate schedule, so gate application
    and truncated SVDs become single batched einsum / GEMM calls over the
    whole stack instead of ``B`` Python-level replays.  Bond dimensions are
    kept *common* across rows (batched SVD retains the widest row's rank —
    see :func:`repro.linalg.decompositions.truncated_svd_batched`), which
    is what keeps the stack rectangular.

    The stack is deliberately **never renormalized mid-run**: each Kraus
    operator application scales a row's norm by its branch probability, so
    the final unnormalized squared norm per row telescopes to exactly the
    trajectory weight (times any truncation losses).  The executor reads
    both the weights and the sampling cache from one
    :func:`~repro.backends.mps_sampler.compute_right_environments_batched`
    pass at the end.  SVD cutoffs are relative to each row's largest
    singular value, so the unnormalized scale never distorts truncation.
    """

    def __init__(
        self,
        num_qubits: int,
        batch_size: int,
        max_bond: Optional[int] = None,
        cutoff: Optional[float] = None,
        config: Optional[Config] = None,
    ):
        config = config or DEFAULT_CONFIG
        if num_qubits <= 0:
            raise BackendError(f"num_qubits must be positive, got {num_qubits}")
        if batch_size <= 0:
            raise BackendError(f"batch_size must be positive, got {batch_size}")
        self.num_qubits = int(num_qubits)
        self.batch_size = int(batch_size)
        self._config = config
        self.max_bond = int(
            max_bond if max_bond is not None else config.resolved_tensornet_max_bond()
        )
        self.cutoff = float(
            cutoff if cutoff is not None else config.resolved_tensornet_cutoff()
        )
        if self.max_bond < 1:
            raise BackendError("max_bond must be >= 1")
        self.tensors: List[np.ndarray] = []
        self.truncation_error = np.zeros(self.batch_size)
        self.reset()

    def reset(self) -> None:
        zero = np.zeros((self.batch_size, 1, 2, 1), dtype=np.complex128)
        zero[:, 0, 0, 0] = 1.0
        self.tensors = [zero.copy() for _ in range(self.num_qubits)]
        self.truncation_error = np.zeros(self.batch_size)

    def bond_dimensions(self) -> List[int]:
        return [self.tensors[k].shape[3] for k in range(self.num_qubits - 1)]

    def row_tensors(self, m: int) -> List[np.ndarray]:
        """Zero-copy ``(D_l, 2, D_r)`` views of row ``m``'s site tensors."""
        return [t[m] for t in self.tensors]

    # ------------------------------------------------------------------ #
    # batched gate application (adjacency is the compiler's job)
    # ------------------------------------------------------------------ #
    def apply_1q(self, matrix: np.ndarray, q: int) -> None:
        """One shared 2x2 matrix applied to site ``q`` of every row."""
        self.tensors[q] = np.einsum(
            "oi,maib->maob", matrix, self.tensors[q], optimize=True
        )

    def apply_1q_rows(self, mats: np.ndarray, q: int) -> None:
        """Per-row ``(B, 2, 2)`` operators applied to site ``q``."""
        self.tensors[q] = np.einsum(
            "moi,maib->maob", mats, self.tensors[q], optimize=True
        )

    def apply_adjacent(self, matrix: np.ndarray, q: int) -> None:
        """One shared 4x4 matrix on adjacent sites ``(q, q+1)``."""
        theta, dl, dr = self._merge_pair(q)
        gate = matrix.reshape(2, 2, 2, 2)
        theta = np.einsum("abij,mlijs->mlabs", gate, theta, optimize=True)
        self._split_pair(theta, q, dl, dr)

    def apply_adjacent_rows(self, mats: np.ndarray, q: int) -> None:
        """Per-row ``(B, 4, 4)`` operators on adjacent sites ``(q, q+1)``."""
        theta, dl, dr = self._merge_pair(q)
        gates = mats.reshape(self.batch_size, 2, 2, 2, 2)
        theta = np.einsum("mabij,mlijs->mlabs", gates, theta, optimize=True)
        self._split_pair(theta, q, dl, dr)

    def apply_3site(self, matrix: np.ndarray, q: int) -> None:
        """One shared 8x8 matrix on contiguous sites ``(q, q+1, q+2)``.

        This is the fused k<=3 window primitive: three sites are merged,
        the operator is applied once, and the blob is split back with two
        batched truncated SVDs.
        """
        a, b, c = self.tensors[q], self.tensors[q + 1], self.tensors[q + 2]
        dl, dt = a.shape[1], c.shape[3]
        theta = np.einsum("mlir,mrjs->mlijs", a, b, optimize=True)
        theta = np.einsum("mlijs,mskt->mlijkt", theta, c, optimize=True)
        gate = matrix.reshape(2, 2, 2, 2, 2, 2)
        theta = np.einsum("abcijk,mlijkt->mlabct", gate, theta, optimize=True)
        # Split left site off: (B, dl*2, 4*dt)
        mat = theta.reshape(self.batch_size, dl * 2, 4 * dt)
        u, s, vh, k1, disc = truncated_svd_batched(
            mat, max_rank=self.max_bond, cutoff=self.cutoff
        )
        self.truncation_error += disc
        self.tensors[q] = u.reshape(self.batch_size, dl, 2, k1)
        rest = (s[:, :, None] * vh).reshape(self.batch_size, k1 * 2, 2 * dt)
        u, s, vh, k2, disc = truncated_svd_batched(
            rest, max_rank=self.max_bond, cutoff=self.cutoff
        )
        self.truncation_error += disc
        self.tensors[q + 1] = u.reshape(self.batch_size, k1, 2, k2)
        self.tensors[q + 2] = (s[:, :, None] * vh).reshape(self.batch_size, k2, 2, dt)

    def _merge_pair(self, q: int):
        a, b = self.tensors[q], self.tensors[q + 1]
        dl, dr = a.shape[1], b.shape[3]
        theta = np.einsum("mlir,mrjs->mlijs", a, b, optimize=True)
        return theta, dl, dr

    def _split_pair(self, theta: np.ndarray, q: int, dl: int, dr: int) -> None:
        mat = theta.reshape(self.batch_size, dl * 2, 2 * dr)
        u, s, vh, kept, disc = truncated_svd_batched(
            mat, max_rank=self.max_bond, cutoff=self.cutoff
        )
        self.truncation_error += disc
        self.tensors[q] = u.reshape(self.batch_size, dl, 2, kept)
        self.tensors[q + 1] = (s[:, :, None] * vh).reshape(self.batch_size, kept, 2, dr)

    # ------------------------------------------------------------------ #
    # norms (mostly for tests; the executor reads weights from the
    # batched environment pass instead)
    # ------------------------------------------------------------------ #
    def norms_squared(self) -> np.ndarray:
        """Per-row unnormalized squared norm (= running trajectory weight)."""
        env = np.ones((self.batch_size, 1, 1), dtype=np.complex128)
        for a in self.tensors:
            tmp = np.einsum("mca,maib->mcib", env, a, optimize=True)
            env = np.einsum("mcid,mcib->mdb", a.conj(), tmp, optimize=True)
        return env[:, 0, 0].real.copy()

    def row_statevector(self, m: int) -> np.ndarray:
        """Contract row ``m`` to a dense statevector (<= ~20 qubits)."""
        if self.num_qubits > 20:
            raise BackendError("row_statevector limited to <= 20 qubits")
        acc = self.tensors[0][m]
        for a in self.tensors[1:]:
            acc = np.tensordot(acc, a[m], axes=([acc.ndim - 1], [0]))
        return np.ascontiguousarray(acc).reshape(-1)

    def __repr__(self) -> str:
        chi = max(self.bond_dimensions(), default=1)
        return (
            f"BatchedMPSStack(qubits={self.num_qubits}, B={self.batch_size}, "
            f"max_bond={self.max_bond}, chi={chi})"
        )
