"""Dense statevector backend (the CUDA-Q ``nvidia`` backend stand-in).

Implementation notes (following the HPC guides):

* Gate application never materializes a ``2**n x 2**n`` operator.  The
  state lives as a flat ``2**n`` array; ``apply_matrix`` delegates to the
  shared :func:`~repro.linalg.apply.apply_matrix_stack` kernel, which
  exposes the target axes with pure reshape views and updates them in one
  ``einsum`` pass — the same kernel the trajectory-stacked backend runs,
  which keeps serial and vectorized execution bitwise identical.
* All state math routes through the pluggable array-module layer
  (:mod:`repro.linalg.backend`): the state lives on the ``xp`` namespace
  resolved from ``Config.array_module`` (NumPy on host, CuPy on GPU when
  available), while probabilities crossing the sampling boundary are
  transferred to host — shots are always drawn with host NumPy streams so
  the ``(seed, trajectory_id)`` determinism contract is independent of
  where the state was prepared.
* Bulk sampling is fully vectorized: one cumulative sum of the probability
  vector, then ``searchsorted`` over all shot uniforms at once.  Its cost is
  ``O(2**n + m log 2**n)`` — *polynomial in the state, trivial per shot* —
  which is exactly the asymmetry batched execution exploits (paper §3:
  "sampling all m_alpha desired quantum bitstrings at once, a task of mere
  polynomial complexity").
* A probability-vector cache is kept between samples and invalidated on any
  state mutation, so repeated ``sample`` calls on a prepared trajectory pay
  the ``O(2**n)`` reduction once (the paper's prepare-once/sample-many).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.backends.base import PureStateBackend, validate_deferred_measurement
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import (
    BackendError,
    CapacityError,
    ExecutionError,
    ZeroProbabilityTrajectory,
)
from repro.linalg.apply import apply_compiled_stack, apply_matrix_stack
from repro.linalg.backend import get_array_backend
from repro.linalg.reductions import row_norms_squared, scale_rows_inverse_sqrt

__all__ = ["StatevectorBackend", "bits_from_indices"]


def bits_from_indices(indices: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Extract bit columns for ``qubits`` from basis-state indices.

    Qubit 0 is the most significant bit of an index (library convention).
    Always host NumPy: shot indices cross the array-module boundary before
    they become :class:`~repro.execution.results.ShotTable` rows.
    Returns ``(len(indices), len(qubits))`` uint8.
    """
    indices = np.asarray(indices, dtype=np.uint64)
    shifts = np.array([num_qubits - 1 - q for q in qubits], dtype=np.uint64)
    return ((indices[:, None] >> shifts[None, :]) & 1).astype(np.uint8)


class StatevectorBackend(PureStateBackend):
    """Pure-state simulator storing all ``2**n`` amplitudes densely."""

    def __init__(self, num_qubits: int, config: Optional[Config] = None):
        config = config or DEFAULT_CONFIG
        if num_qubits <= 0:
            raise BackendError(f"num_qubits must be positive, got {num_qubits}")
        if num_qubits > config.max_dense_qubits:
            raise CapacityError(
                f"{num_qubits} qubits exceeds the dense cap of {config.max_dense_qubits} "
                f"(a 2**{num_qubits} statevector; the paper needed multiple H100s past ~33)"
            )
        self.num_qubits = int(num_qubits)
        self._config = config
        self._ab = get_array_backend(config.array_module)
        self._xp = self._ab.xp
        self._dim = 2**self.num_qubits
        self._state = self._xp.zeros(self._dim, dtype=config.dtype)
        self._state[0] = 1.0
        self._probs_cache: Optional[np.ndarray] = None
        self._cumsum_cache: Optional[np.ndarray] = None
        #: Cumulative wall time spent in post-noise-window renormalization
        #: (norm reduction + scale) across run_fixed calls — the benchmark
        #: counter behind the strategy table's renorm column.
        self.renorm_seconds = 0.0

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    @property
    def array_backend(self):
        """The resolved :class:`~repro.linalg.backend.ArrayBackend`."""
        return self._ab

    @property
    def statevector(self):
        """The amplitude array (a direct reference — do not mutate).

        Lives on the backend's array module; use
        ``backend.array_backend.to_host(...)`` for a host copy.
        """
        return self._state

    def set_statevector(self, state: np.ndarray, normalize: bool = False) -> None:
        """Load an externally prepared state (e.g. from a QEC encoder)."""
        state = self._ab.asarray(state, dtype=self._config.dtype).reshape(-1)
        if state.shape[0] != self._dim:
            raise BackendError(
                f"state has dimension {state.shape[0]}, expected {self._dim}"
            )
        if normalize:
            nrm = float(self._xp.linalg.norm(state))
            if nrm == 0:
                raise BackendError("cannot normalize the zero vector")
            state = state / nrm
        self._state = state.copy()
        self._invalidate()

    def reset(self) -> None:
        self._state.fill(0)
        self._state[0] = 1.0
        self._invalidate()

    def copy(self) -> "StatevectorBackend":
        out = StatevectorBackend.__new__(StatevectorBackend)
        out.num_qubits = self.num_qubits
        out._config = self._config
        out._ab = self._ab
        out._xp = self._xp
        out._dim = self._dim
        out._state = self._state.copy()
        out._probs_cache = None
        out._cumsum_cache = None
        out.renorm_seconds = 0.0
        return out

    def _invalidate(self) -> None:
        self._probs_cache = None
        self._cumsum_cache = None

    # ------------------------------------------------------------------ #
    # core primitives
    # ------------------------------------------------------------------ #
    def apply_matrix(self, matrix: np.ndarray, targets: Sequence[int]) -> None:
        targets = list(targets)
        k = len(targets)
        dim_k = 2**k
        matrix = np.asarray(matrix) if not hasattr(matrix, "shape") else matrix
        if matrix.shape != (dim_k, dim_k):
            raise BackendError(
                f"matrix shape {matrix.shape} incompatible with targets {targets}"
            )
        if any(t < 0 or t >= self.num_qubits for t in targets):
            raise BackendError(f"targets {targets} out of range")
        if len(set(targets)) != k:
            raise BackendError(f"duplicate targets {targets}")

        out = apply_matrix_stack(
            self._state.reshape(1, -1),
            matrix,
            targets,
            self.num_qubits,
            self._config.dtype,
            xp=self._xp,
        )
        self._state = out.reshape(-1)
        self._invalidate()

    def _apply_compiled(self, op) -> None:
        """Apply a pre-compiled operator, skipping per-call validation."""
        out = apply_compiled_stack(
            self._state.reshape(1, -1), op, self.num_qubits, xp=self._xp
        )
        self._state = out.reshape(-1)
        self._invalidate()

    def run_fixed(self, circuit, kraus_choices=None) -> float:
        """Plan-compiled trajectory preparation (fused when enabled).

        Overrides :meth:`PureStateBackend.run_fixed` to walk the circuit's
        :class:`~repro.execution.plan.FusedPlan` instead of its raw
        operation list: gate windows are single fused kernel passes, and
        each noise window applies the variant realizing this trajectory's
        Kraus choices, then renormalizes and multiplies the window's
        squared norm into the weight — the same telescoping product of
        branch probabilities the per-site base loop accumulates.  With
        ``Config.fusion="off"`` the plan is one step per operation and the
        arithmetic is identical to the base implementation.
        """
        # Imported lazily: repro.execution imports this module at package
        # init, so a top-level import would be circular.
        from repro.execution.plan import GateStep, get_fused_plan

        if not circuit.frozen:
            raise ExecutionError("run_fixed requires a frozen circuit")
        if circuit.num_qubits > self.num_qubits:
            raise BackendError(
                f"circuit has {circuit.num_qubits} qubits, backend has {self.num_qubits}"
            )
        validate_deferred_measurement(circuit)
        plan = get_fused_plan(circuit, self._config)
        choices = kraus_choices or {}
        self.reset()
        weight = 1.0
        for step in plan.steps:
            if isinstance(step, GateStep):
                self._apply_compiled(step.op)
            else:
                self._apply_compiled(step.variant(step.key_for(choices)))
                t0 = time.perf_counter()
                norm2 = self.norm_squared()
                if norm2 <= 1e-300:
                    raise ZeroProbabilityTrajectory(
                        f"Kraus window at sites {step.site_ids} annihilates the state"
                    )
                # Scale by the norm already in hand instead of renormalize()
                # (which would recompute the same reduction on the unchanged
                # state) — one reduction per window, through the shared
                # scale helper so the divisor arithmetic matches the
                # stacked backend bitwise at any state dtype.
                scale_rows_inverse_sqrt(
                    self._state.reshape(1, -1), np.array([norm2]), self._xp
                )
                self._invalidate()
                self.renorm_seconds += time.perf_counter() - t0
                weight *= norm2
        return weight

    def norm_squared(self) -> float:
        """<psi|psi> via the shared stack reduction (state as a 1-row stack).

        Routing through :func:`repro.linalg.reductions.row_norms_squared`
        is what makes serial and stacked renormalization bitwise identical
        *by construction*: the batched backend runs the very same
        row-independent reduction over its whole ``(B, 2**n)`` stack.
        """
        return float(
            row_norms_squared(self._state.reshape(1, -1), self._xp)[0]
        )

    def renormalize(self) -> float:
        n2 = self.norm_squared()
        if n2 <= 0:
            raise BackendError("cannot renormalize a zero state")
        # Shared scale helper (1-row stack): same divisor arithmetic as the
        # batched backend's per-window renormalization at any state dtype.
        scale_rows_inverse_sqrt(self._state.reshape(1, -1), np.array([n2]), self._xp)
        self._invalidate()
        return n2

    def expectation_local(self, matrix: np.ndarray, qubits: Sequence[int]) -> complex:
        """<psi|M|psi> without copying the full state twice."""
        xp = self._xp
        qubits = list(qubits)
        k = len(qubits)
        psi = self._state.reshape((2,) * self.num_qubits)
        psi = xp.moveaxis(psi, qubits, range(k))
        psi = xp.ascontiguousarray(psi).reshape(2**k, -1)
        phi = self._ab.asarray(matrix) @ psi
        return complex(xp.sum(psi.conj() * phi))

    def expectation_pauli(self, pauli) -> float:
        """Expectation of a :class:`~repro.channels.pauli.PauliString`."""
        work = self.copy()
        for q in pauli.support():
            xi, zi = int(pauli.x[q]), int(pauli.z[q])
            if xi and zi:
                mat = np.array([[0, -1j], [1j, 0]])
            elif xi:
                mat = np.array([[0.0, 1.0], [1.0, 0.0]])
            else:
                mat = np.array([[1.0, 0.0], [0.0, -1.0]])
            work.apply_matrix(mat, [q])
        val = complex(self._xp.vdot(self._state, work._state)) * pauli.phase_factor()
        return float(np.real(val))

    # ------------------------------------------------------------------ #
    # probabilities and sampling
    # ------------------------------------------------------------------ #
    def probabilities(self) -> np.ndarray:
        """|amplitude|**2 over all basis states (cached until mutation).

        Always returned on host: this is the array-module boundary that
        feeds sampling and analysis.
        """
        if self._probs_cache is None:
            probs = self._xp.abs(self._state) ** 2
            total = probs.sum()
            if float(total) <= 0:
                raise BackendError("state has zero norm")
            self._probs_cache = self._ab.to_host(probs / total).astype(
                np.float64, copy=False
            )
        return self._probs_cache

    def _cumulative(self):
        """Cached cumulative distribution, resident on the array module.

        The arithmetic (element-wise square/divide, cumulative sum, tail
        clamp) deliberately mirrors
        :meth:`BatchedStatevectorBackend.cumulative_stack` row for row —
        both run on the *same* module, so serial and stacked sampling stay
        bitwise identical whether the state lives on NumPy or CuPy (a
        host-side cumsum here against a device-side prefix scan there
        could disagree in the last ulp).
        """
        if self._cumsum_cache is None:
            xp = self._xp
            probs = xp.abs(self._state) ** 2
            total = probs.sum()
            if float(total) <= 0:
                raise BackendError("state has zero norm")
            cum = xp.cumsum((probs / total).astype(np.float64, copy=False))
            # Clamp the tail so searchsorted never falls off the end.
            cum[-1] = 1.0
            self._cumsum_cache = cum
        return self._cumsum_cache

    def sample_indices(self, num_shots: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorized bulk sampling of basis-state indices.

        Uniforms always come from the host ``rng`` (the determinism
        contract); ``searchsorted`` runs wherever the cumulative vector
        lives and only the shot indices cross back to host.
        """
        if num_shots < 0:
            raise BackendError("num_shots must be >= 0")
        if num_shots == 0:
            return np.empty(0, dtype=np.int64)
        cum = self._cumulative()
        r = rng.random(num_shots)
        indices = self._xp.searchsorted(cum, self._xp.asarray(r), side="right")
        # Shot indices are the one bulk device->host transfer of the
        # sampling hot path: stage through pinned memory under CuPy
        # (identity under NumPy) for DMA-speed copies.
        return self._ab.to_host_pinned(indices).astype(np.int64, copy=False)

    def sample(
        self, num_shots: int, qubits: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        indices = self.sample_indices(num_shots, rng)
        return bits_from_indices(indices, qubits, self.num_qubits)

    def measure_probability_one(self, qubit: int) -> float:
        """Marginal P(qubit = 1) of the current state."""
        probs = self.probabilities().reshape((2,) * self.num_qubits)
        return float(probs.sum(axis=tuple(a for a in range(self.num_qubits) if a != qubit))[1])

    def collapse(self, qubit: int, outcome: int) -> float:
        """Project ``qubit`` onto ``outcome`` and renormalize.

        Returns the probability of that outcome.  Used by the QEC layer for
        explicit post-selection (e.g. magic-state distillation accepts only
        trivial syndromes).
        """
        xp = self._xp
        psi = self._state.reshape((2,) * self.num_qubits)
        psi = xp.moveaxis(psi, [qubit], [0])
        p1 = float(xp.sum(xp.abs(psi[1]) ** 2))
        prob = p1 if outcome == 1 else 1.0 - p1
        if prob <= 0:
            raise BackendError(f"outcome {outcome} on qubit {qubit} has zero probability")
        psi[1 - outcome] = 0.0
        self._state = xp.ascontiguousarray(xp.moveaxis(psi, [0], [qubit])).reshape(-1)
        self.renormalize()
        return prob

    def fidelity_with(self, other: "StatevectorBackend") -> float:
        """|<psi|phi>|**2 against another backend of equal width."""
        if other.num_qubits != self.num_qubits:
            raise BackendError("fidelity requires equal qubit counts")
        return float(abs(complex(self._xp.vdot(self._state, other._state))) ** 2)

    def __repr__(self) -> str:
        return (
            f"StatevectorBackend(qubits={self.num_qubits}, dtype={self._config.dtype}, "
            f"xp={self._ab.name})"
        )
