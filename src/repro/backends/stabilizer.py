"""Aaronson-Gottesman CHP stabilizer tableau simulator.

The Clifford-only comparator the paper positions PTSBE against (§2.3: Stim
and friends).  Tracks n stabilizer + n destabilizer generators as binary
symplectic rows with sign bits; Clifford gates are O(n) column updates and
measurements are O(n^2) row sums.

Supported gates: h, s, sdg, x, y, z, cx, cz, swap, sx, sxdg, sy, sydg
(the square-root Paulis are Clifford, which is what makes the MSD circuit's
*structure* Clifford even though magic-state inputs are not).  Non-Clifford
gates raise :class:`BackendError` — by design; that limitation is the gap
PTSBE fills.

Noise: unitary-mixture channels whose unitaries are Pauli strings can be
sampled per-trajectory (:meth:`StabilizerBackend.apply_pauli_mixture`),
matching the Clifford+Pauli-noise restriction of Stim-style tools.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channels.kraus import KrausChannel
from repro.channels.pauli import PauliString
from repro.channels.unitary_mixture import as_unitary_mixture
from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import BackendError

__all__ = ["StabilizerBackend", "pauli_from_unitary"]


def pauli_from_unitary(matrix: np.ndarray, num_qubits: int) -> Optional[PauliString]:
    """Recognize a matrix as (phase times) a Pauli string, else ``None``.

    Algebraic recognition from the sparsity pattern instead of a trace
    test against all ``4**n`` Pauli matrices: a Pauli-string matrix has
    exactly one nonzero per column, ``M[j ^ a, j] = v0 * (-1)^popcount(
    zmask & j)`` with ``a`` the X mask and ``zmask`` the Z mask over
    basis-index bits (qubit 0 = most significant, the kron order of
    :func:`repro.channels.pauli.pauli_string_matrix`).  The X mask is
    read off column 0's nonzero row, the Z mask off the sign ratios at
    the power-of-two columns, then the whole matrix is verified against
    the implied pattern in one vectorized pass — O(4**n) work on a
    matrix that is already O(4**n) large, versus O(16**n) for the scan.
    """
    atol = 1e-8
    matrix = np.asarray(matrix, dtype=np.complex128)
    dim = 2**num_qubits
    if matrix.shape != (dim, dim):
        return None
    # X mask from column 0: the single nonzero sits at row a = xmask.
    col0 = matrix[:, 0]
    nonzero = np.nonzero(np.abs(col0) > atol)[0]
    if nonzero.size != 1:
        return None
    a = int(nonzero[0])
    v0 = complex(col0[a])
    # Overall scalar must be unit modulus (same contract as before).
    if abs(abs(v0) - 1.0) > atol:
        return None
    # Z mask from the sign ratio at each power-of-two column.
    zmask = 0
    for bit in range(num_qubits):
        j = 1 << bit
        ratio = complex(matrix[j ^ a, j]) / v0
        if abs(ratio - 1.0) <= atol:
            continue
        if abs(ratio + 1.0) <= atol:
            zmask |= j
        else:
            return None
    # Verify the full matrix against the implied single-nonzero pattern.
    cols = np.arange(dim)
    parity = np.bitwise_and(cols, zmask)
    for shift in (32, 16, 8, 4, 2, 1):  # XOR-fold popcount parity
        parity ^= parity >> shift
    signs = 1.0 - 2.0 * (parity & 1).astype(np.float64)
    residual = matrix.copy()
    residual[cols ^ a, cols] -= v0 * signs
    if not np.allclose(residual, 0.0, atol=atol):
        return None
    # Bit order: qubit 0 is the most significant basis-index bit.
    x = np.array([(a >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)], dtype=np.uint8)
    z = np.array([(zmask >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)], dtype=np.uint8)
    label = "".join(
        "Y" if xi and zi else "X" if xi else "Z" if zi else "I"
        for xi, zi in zip(x, z)
    )
    return PauliString.from_label(label)


class StabilizerBackend:
    """CHP tableau over ``num_qubits`` qubits.

    Rows 0..n-1 are destabilizers, rows n..2n-1 stabilizers.  ``x``/``z``
    are (2n, n) uint8 bit matrices, ``r`` the (2n,) sign bits.
    """

    def __init__(self, num_qubits: int):
        if num_qubits <= 0:
            raise BackendError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.reset()

    def reset(self) -> None:
        n = self.num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        self.x[:n] = np.eye(n, dtype=np.uint8)  # destabilizer i = X_i
        self.z[n:] = np.eye(n, dtype=np.uint8)  # stabilizer i = Z_i

    def copy(self) -> "StabilizerBackend":
        out = StabilizerBackend.__new__(StabilizerBackend)
        out.num_qubits = self.num_qubits
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out

    # ------------------------------------------------------------------ #
    # primitive gates (vectorized over all 2n rows)
    # ------------------------------------------------------------------ #
    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def sdg(self, q: int) -> None:
        self.s(q)
        self.zgate(q)

    def xgate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def ygate(self, q: int) -> None:
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def zgate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def cx(self, control: int, target: int) -> None:
        self.r ^= self.x[:, control] & self.z[:, target] & (
            self.x[:, target] ^ self.z[:, control] ^ 1
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    def sx(self, q: int) -> None:  # sqrt(X) = H S H (exactly)
        self.h(q)
        self.s(q)
        self.h(q)

    def sxdg(self, q: int) -> None:
        self.h(q)
        self.sdg(q)
        self.h(q)

    def sy(self, q: int) -> None:  # sqrt(Y) ~ X . H as a conjugation
        self.h(q)
        self.xgate(q)

    def sydg(self, q: int) -> None:
        self.xgate(q)
        self.h(q)

    _GATE_DISPATCH = {
        "h": "h",
        "s": "s",
        "sdg": "sdg",
        "x": "xgate",
        "y": "ygate",
        "z": "zgate",
        "i": None,
        "cx": "cx",
        "cz": "cz",
        "swap": "swap",
        "sx": "sx",
        "sxdg": "sxdg",
        "sy": "sy",
        "sydg": "sydg",
    }

    def apply_gate_by_name(self, name: str, qubits: Sequence[int]) -> None:
        method = self._GATE_DISPATCH.get(name.lower(), "missing")
        if method == "missing":
            raise BackendError(
                f"gate {name!r} is not Clifford (or not supported by the tableau backend)"
            )
        if method is None:
            return
        getattr(self, method)(*qubits)

    def apply_pauli(self, pauli: PauliString) -> None:
        """Apply a Pauli string (e.g. a sampled noise operator)."""
        for q in pauli.support():
            xi, zi = int(pauli.x[q]), int(pauli.z[q])
            if xi and zi:
                self.ygate(q)
            elif xi:
                self.xgate(q)
            else:
                self.zgate(q)

    # ------------------------------------------------------------------ #
    # row arithmetic (Aaronson-Gottesman "rowsum")
    # ------------------------------------------------------------------ #
    @staticmethod
    def _g_vector(x1, z1, x2, z2) -> np.ndarray:
        """Phase exponent contribution of multiplying single-qubit Paulis."""
        x1 = x1.astype(np.int8)
        z1 = z1.astype(np.int8)
        x2 = x2.astype(np.int8)
        z2 = z2.astype(np.int8)
        # Cases per Aaronson-Gottesman:
        #   (0,0): 0; (1,1): z2 - x2; (1,0): z2*(2*x2 - 1); (0,1): x2*(1 - 2*z2)
        out = np.zeros_like(x1, dtype=np.int64)
        both = (x1 == 1) & (z1 == 1)
        out = np.where(both, z2 - x2, out)
        xonly = (x1 == 1) & (z1 == 0)
        out = np.where(xonly, z2 * (2 * x2 - 1), out)
        zonly = (x1 == 0) & (z1 == 1)
        out = np.where(zonly, x2 * (1 - 2 * z2), out)
        return out

    def _rowsum_into(self, hx, hz, hr, i: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """Multiply arbitrary row (hx, hz, hr) by tableau row i."""
        g = int(self._g_vector(self.x[i], self.z[i], hx, hz).sum())
        phase = (2 * int(hr) + 2 * int(self.r[i]) + g) % 4
        return hx ^ self.x[i], hz ^ self.z[i], 1 if phase == 2 else 0

    def _rowsum(self, h: int, i: int) -> None:
        self.x[h], self.z[h], self.r[h] = self._rowsum_into(self.x[h], self.z[h], self.r[h], i)

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #
    def measure(
        self,
        qubit: int,
        rng: Optional[np.random.Generator] = None,
        force: Optional[int] = None,
    ) -> Tuple[int, bool]:
        """Measure ``qubit`` in the Z basis; return ``(outcome, was_random)``.

        ``force`` pins the outcome to 0/1 *when the measurement is random*
        (used by the Pauli-frame sampler to map the ideal affine outcome
        space); deterministic measurements ignore it, since their outcome
        is fixed by the state.
        """
        n = self.num_qubits
        stab_rows = np.nonzero(self.x[n:, qubit])[0]
        if stab_rows.size > 0:
            # Random outcome.
            p = int(stab_rows[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, qubit]:
                    self._rowsum(i, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, qubit] = 1
            if force is not None:
                outcome = int(force)
            else:
                if rng is None:
                    raise BackendError("random measurement requires an rng")
                outcome = int(rng.integers(0, 2))
            self.r[p] = outcome
            return outcome, True
        # Deterministic outcome: accumulate stabilizer rows indexed by the
        # destabilizers that anticommute with Z_qubit.
        hx = np.zeros(n, dtype=np.uint8)
        hz = np.zeros(n, dtype=np.uint8)
        hr = 0
        for i in range(n):
            if self.x[i, qubit]:
                hx, hz, hr = self._rowsum_into(hx, hz, hr, i + n)
        return int(hr), False

    def measure_many(
        self,
        qubits: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        forces: Optional[Dict[int, int]] = None,
    ) -> Tuple[List[int], List[bool]]:
        """Measure qubits in order; returns outcomes and was-random flags."""
        outcomes: List[int] = []
        random_flags: List[bool] = []
        forces = forces or {}
        for pos, q in enumerate(qubits):
            out, was_random = self.measure(q, rng=rng, force=forces.get(pos))
            outcomes.append(out)
            random_flags.append(was_random)
        return outcomes, random_flags

    # ------------------------------------------------------------------ #
    # expectation / stabilizer queries
    # ------------------------------------------------------------------ #
    def expectation_pauli(self, pauli: PauliString) -> int:
        """<P> for a Pauli string: +1/-1 if stabilized, else 0."""
        n = self.num_qubits
        # P is in the stabilizer group (up to sign) iff it commutes with
        # every stabilizer; equivalently iff it anticommutes with no
        # stabilizer.  Build P from stabilizer rows using destabilizer
        # anticommutation pattern.
        hx = np.zeros(n, dtype=np.uint8)
        hz = np.zeros(n, dtype=np.uint8)
        hr = 0
        target_x = pauli.x.astype(np.uint8)
        target_z = pauli.z.astype(np.uint8)
        # Determine combination: P must equal product of stabilizers S_i for
        # i where destabilizer_i anticommutes with P.
        for i in range(n):
            # symplectic product of destabilizer row i with P
            anti = (int(np.count_nonzero(self.x[i] & target_z))
                    + int(np.count_nonzero(self.z[i] & target_x))) % 2
            if anti:
                hx, hz, hr = self._rowsum_into(hx, hz, hr, i + n)
        if not (np.array_equal(hx, target_x) and np.array_equal(hz, target_z)):
            return 0
        # Compare signs: hr gives the sign of the product as an X-Z ordered
        # phase-free word; account for pauli's own phase convention.
        sign_target = pauli.phase_factor()
        if abs(sign_target.imag) > 1e-12:
            raise BackendError("expectation of a non-Hermitian Pauli is undefined")
        # Tableau rows represent Hermitian Paulis (Y where x=z=1) with sign
        # (-1)^r, so the comparison is a pure +/-1 sign match.
        product_sign = -1.0 if hr else 1.0
        return int(round(product_sign * np.real(sign_target)))

    # ------------------------------------------------------------------ #
    # circuit execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        circuit: Circuit,
        rng: Optional[np.random.Generator] = None,
        kraus_choices: Optional[Dict[int, int]] = None,
    ) -> None:
        """Execute gates + (Pauli-mixture) noise; measurements are deferred.

        With ``kraus_choices`` the noise sites are pinned (PTS semantics);
        otherwise each site is sampled from its nominal probabilities using
        ``rng`` (conventional trajectory semantics).
        """
        self.reset()
        for op in circuit:
            if isinstance(op, GateOp):
                self.apply_gate_by_name(op.gate.name, op.qubits)
            elif isinstance(op, NoiseOp):
                idx = None
                if kraus_choices is not None:
                    # PTS semantics: unpinned sites take the dominant branch.
                    idx = kraus_choices.get(op.site_id, op.channel.dominant_index())
                self.apply_pauli_mixture(op.channel, op.qubits, rng=rng, index=idx)

    def apply_pauli_mixture(
        self,
        channel: KrausChannel,
        qubits: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        index: Optional[int] = None,
    ) -> int:
        """Apply one branch of a Pauli-mixture channel; returns the index."""
        mixture = as_unitary_mixture(channel)
        if mixture is None:
            raise BackendError(
                f"channel {channel.name!r} is not a unitary mixture; the tableau "
                "backend requires Pauli-mixture noise (the Stim-style restriction)"
            )
        if index is None:
            if rng is None:
                raise BackendError("sampling a noise branch requires an rng")
            index = int(rng.choice(len(mixture.probs), p=np.asarray(mixture.probs)))
        local = pauli_from_unitary(mixture.unitaries[index], len(qubits))
        if local is None:
            raise BackendError(
                f"branch {index} of {channel.name!r} is not a Pauli string; "
                "the tableau backend requires Pauli noise"
            )
        # Embed the local Pauli into the full register.
        full = PauliString.identity(self.num_qubits)
        for pos, q in enumerate(qubits):
            full.x[q] = local.x[pos]
            full.z[q] = local.z[pos]
        self.apply_pauli(full)
        return index

    def sample(
        self,
        num_shots: int,
        qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Shot sampling by measuring fresh tableau copies (O(m n^2)).

        This is deliberately the slow single-shot path; bulk Clifford
        sampling lives in :mod:`repro.backends.pauli_frame`.
        """
        out = np.empty((num_shots, len(qubits)), dtype=np.uint8)
        for shot in range(num_shots):
            work = self.copy()
            outcomes, _ = work.measure_many(qubits, rng=rng)
            out[shot] = outcomes
        return out

    def stabilizer_generators(self) -> List[PauliString]:
        """Current stabilizer generators as phase-tracked Pauli strings."""
        n = self.num_qubits
        gens = []
        for i in range(n, 2 * n):
            # Row operator = (-1)^r (x) sigma(x,z) with sigma(1,1) = Y = iXZ,
            # so in the X-Z word convention the phase is 2r + (#Y).
            ys = int(np.count_nonzero(self.x[i] & self.z[i]))
            phase = (2 * int(self.r[i]) + ys) % 4
            gens.append(PauliString(self.x[i].copy(), self.z[i].copy(), phase))
        return gens

    def __repr__(self) -> str:
        return f"StabilizerBackend(qubits={self.num_qubits})"
