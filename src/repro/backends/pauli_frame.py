"""Stim-style Pauli-frame bulk sampler for Clifford + Pauli-noise circuits.

This is the "reference frame sampler [able] to efficiently bulk sample
noisy simulation data at a rate of MHz" that paper §2.3 credits to Stim —
the baseline whose restriction to Clifford circuits motivates PTSBE.

Method (valid for circuits with *terminal* measurements, which is the
library-wide deferred-measurement contract):

1.  One tableau run of the ideal circuit maps the noiseless outcome
    distribution, which for stabilizer circuits is uniform over an affine
    subspace of GF(2)^k: a reference sample ``b_ref`` plus one generator
    per random measurement (obtained by re-running with that outcome
    forced to 1).
2.  Noise is handled entirely by Pauli *frames*: an (m, n) pair of X/Z bit
    matrices, one row per shot, propagated through the Clifford gates with
    O(1) column updates and XOR-ed with vectorized per-site error draws.
3.  A shot's outcome is ``b_ref XOR (random combination of generators)
    XOR frame_x[measured qubits]`` — a frame X component anticommutes with
    the measured Z and flips the outcome.

Everything after the (single) tableau analysis is pure vectorized NumPy
over the shot axis, which is what makes this path orders of magnitude
faster than per-shot state simulation — and why Clifford-only tools win
whenever they are applicable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.stabilizer import StabilizerBackend, pauli_from_unitary
from repro.channels.unitary_mixture import as_unitary_mixture
from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import BackendError

__all__ = ["FrameSampler", "frame_sample"]


@dataclass
class _NoiseSite:
    """Pre-analyzed Pauli-mixture site: per-branch frame bit patterns."""

    op_index: int
    qubits: Tuple[int, ...]
    probs: np.ndarray  # (branches,)
    x_patterns: np.ndarray  # (branches, n) uint8
    z_patterns: np.ndarray  # (branches, n) uint8


class FrameSampler:
    """Compiled bulk sampler for one Clifford + Pauli-noise circuit."""

    def __init__(self, circuit: Circuit):
        if not circuit.frozen:
            raise BackendError("FrameSampler requires a frozen circuit")
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self.measured_qubits = list(circuit.measured_qubits)
        if not self.measured_qubits:
            raise BackendError("FrameSampler requires at least one measurement")
        self._analyze_ideal()
        self._analyze_noise()

    # ------------------------------------------------------------------ #
    # one-time tableau analysis of the ideal circuit
    # ------------------------------------------------------------------ #
    def _ideal_run(self, forces: Dict[int, int]) -> Tuple[List[int], List[bool]]:
        backend = StabilizerBackend(self.num_qubits)
        for op in self.circuit:
            if isinstance(op, GateOp):
                backend.apply_gate_by_name(op.gate.name, op.qubits)
            # NoiseOps ignored in the ideal pass; MeasureOps deferred.
        # Force every random measurement (default 0) so no rng is needed.
        full_forces = {i: forces.get(i, 0) for i in range(len(self.measured_qubits))}
        return backend.measure_many(self.measured_qubits, forces=full_forces)

    def _analyze_ideal(self) -> None:
        reference, random_flags = self._ideal_run({})
        self.reference = np.array(reference, dtype=np.uint8)
        self.random_positions = [i for i, f in enumerate(random_flags) if f]
        generators = []
        for pos in self.random_positions:
            flipped, _ = self._ideal_run({pos: 1})
            generators.append(np.array(flipped, dtype=np.uint8) ^ self.reference)
        self.generators = (
            np.array(generators, dtype=np.uint8)
            if generators
            else np.zeros((0, len(self.measured_qubits)), dtype=np.uint8)
        )

    # ------------------------------------------------------------------ #
    # one-time noise-site compilation
    # ------------------------------------------------------------------ #
    def _analyze_noise(self) -> None:
        self.sites: List[_NoiseSite] = []
        for op_index, op in enumerate(self.circuit):
            if not isinstance(op, NoiseOp):
                continue
            mixture = as_unitary_mixture(op.channel)
            if mixture is None:
                raise BackendError(
                    f"channel {op.channel.name!r} is not a Pauli mixture; the frame "
                    "sampler has the Stim restriction (Clifford + Pauli noise)"
                )
            branches = len(mixture.probs)
            xpat = np.zeros((branches, self.num_qubits), dtype=np.uint8)
            zpat = np.zeros((branches, self.num_qubits), dtype=np.uint8)
            for b, unitary in enumerate(mixture.unitaries):
                local = pauli_from_unitary(unitary, len(op.qubits))
                if local is None:
                    raise BackendError(
                        f"branch {b} of {op.channel.name!r} is not a Pauli string"
                    )
                for pos, q in enumerate(op.qubits):
                    xpat[b, q] = local.x[pos]
                    zpat[b, q] = local.z[pos]
            self.sites.append(
                _NoiseSite(
                    op_index=op_index,
                    qubits=op.qubits,
                    probs=np.asarray(mixture.probs, dtype=np.float64),
                    x_patterns=xpat,
                    z_patterns=zpat,
                )
            )

    # ------------------------------------------------------------------ #
    # bulk sampling
    # ------------------------------------------------------------------ #
    @staticmethod
    def _propagate_gate(name: str, qubits: Sequence[int], fx: np.ndarray, fz: np.ndarray) -> None:
        """Conjugate all shot frames through one Clifford gate (in place)."""
        name = name.lower()
        if name in ("i", "x", "y", "z"):
            return  # Paulis commute with Pauli frames up to irrelevant phase
        if name == "h":
            q = qubits[0]
            fx[:, q], fz[:, q] = fz[:, q].copy(), fx[:, q].copy()
        elif name in ("s", "sdg"):
            q = qubits[0]
            fz[:, q] ^= fx[:, q]
        elif name in ("sx", "sxdg"):
            q = qubits[0]
            fx[:, q] ^= fz[:, q]
        elif name in ("sy", "sydg"):
            q = qubits[0]
            fx[:, q], fz[:, q] = fz[:, q].copy(), fx[:, q].copy()
        elif name == "cx":
            c, t = qubits
            fx[:, t] ^= fx[:, c]
            fz[:, c] ^= fz[:, t]
        elif name == "cz":
            a, b = qubits
            fz[:, b] ^= fx[:, a]
            fz[:, a] ^= fx[:, b]
        elif name == "swap":
            a, b = qubits
            fx[:, [a, b]] = fx[:, [b, a]]
            fz[:, [a, b]] = fz[:, [b, a]]
        else:
            raise BackendError(f"gate {name!r} unsupported by the frame sampler")

    def sample(self, num_shots: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``(num_shots, k)`` measurement bits for the noisy circuit."""
        m = num_shots
        n = self.num_qubits
        fx = np.zeros((m, n), dtype=np.uint8)
        fz = np.zeros((m, n), dtype=np.uint8)
        site_iter = iter(self.sites)
        next_site = next(site_iter, None)
        for op_index, op in enumerate(self.circuit):
            if isinstance(op, GateOp):
                self._propagate_gate(op.gate.name, op.qubits, fx, fz)
            elif isinstance(op, NoiseOp):
                assert next_site is not None and next_site.op_index == op_index
                site = next_site
                next_site = next(site_iter, None)
                # Vectorized branch draw for all shots at this site.
                cum = np.cumsum(site.probs)
                cum[-1] = 1.0
                draws = np.searchsorted(cum, rng.random(m), side="right")
                fx ^= site.x_patterns[draws]
                fz ^= site.z_patterns[draws]
        # Ideal randomness: uniform combination of affine generators.
        out = np.broadcast_to(self.reference, (m, len(self.measured_qubits))).copy()
        if len(self.random_positions):
            coeffs = rng.integers(0, 2, size=(m, len(self.random_positions)), dtype=np.uint8)
            out ^= (coeffs @ self.generators) & 1
        # Frame X components flip terminal Z measurements.
        out ^= fx[:, self.measured_qubits]
        return out


def frame_sample(
    circuit: Circuit, num_shots: int, rng: np.random.Generator
) -> np.ndarray:
    """One-call convenience wrapper: compile + sample."""
    return FrameSampler(circuit).sample(num_shots, rng)
