"""Stim-style Pauli-frame bulk sampler for Clifford + Pauli-noise circuits.

This is the "reference frame sampler [able] to efficiently bulk sample
noisy simulation data at a rate of MHz" that paper §2.3 credits to Stim —
the baseline whose restriction to Clifford circuits motivates PTSBE.

Method (valid for circuits with *terminal* measurements, which is the
library-wide deferred-measurement contract):

1.  One tableau run of the ideal circuit maps the noiseless outcome
    distribution, which for stabilizer circuits is uniform over an affine
    subspace of GF(2)^k: a reference sample ``b_ref`` plus one generator
    per random measurement (obtained by re-running with that outcome
    forced to 1).
2.  Noise is handled entirely by Pauli *frames*: an (m, n) pair of X/Z bit
    matrices, one row per shot, propagated through the Clifford gates with
    O(1) column updates and XOR-ed with vectorized per-site error draws.
3.  A shot's outcome is ``b_ref XOR (random combination of generators)
    XOR frame_x[measured qubits]`` — a frame X component anticommutes with
    the measured Z and flips the outcome.

Everything after the (single) tableau analysis is pure vectorized NumPy
over the shot axis, which is what makes this path orders of magnitude
faster than per-shot state simulation — and why Clifford-only tools win
whenever they are applicable.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.stabilizer import StabilizerBackend, pauli_from_unitary
from repro.channels.unitary_mixture import as_unitary_mixture
from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import BackendError

__all__ = ["FrameSampler", "frame_sample"]


@dataclass
class _NoiseSite:
    """Pre-analyzed Pauli-mixture site: per-branch frame bit patterns.

    ``x_patterns``/``z_patterns`` are the branch Paulis *at* the site;
    ``end_x_patterns`` are the same branches conjugated through every
    Clifford gate after the site to the end of the circuit, which is what
    makes fixed-choice (PTS) sampling O(1) per spec: a spec's terminal
    frame is just the XOR of its chosen branches' end patterns.
    """

    op_index: int
    site_id: int
    dominant_index: int
    qubits: Tuple[int, ...]
    probs: np.ndarray  # (branches,)
    x_patterns: np.ndarray  # (branches, n) uint8
    z_patterns: np.ndarray  # (branches, n) uint8
    end_x_patterns: np.ndarray = None  # (branches, n) uint8, filled post-walk


class FrameSampler:
    """Compiled bulk sampler for one Clifford + Pauli-noise circuit."""

    def __init__(self, circuit: Circuit):
        if not circuit.frozen:
            raise BackendError("FrameSampler requires a frozen circuit")
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        self.measured_qubits = list(circuit.measured_qubits)
        if not self.measured_qubits:
            raise BackendError("FrameSampler requires at least one measurement")
        self._measured_index = np.asarray(self.measured_qubits, dtype=np.intp)
        self._combo_tables: Optional[List[np.ndarray]] = None
        self._packed_tables_cache: Optional[List[np.ndarray]] = None
        self._analyze_ideal()
        self._analyze_noise()

    # ------------------------------------------------------------------ #
    # one-time tableau analysis of the ideal circuit
    # ------------------------------------------------------------------ #
    def _ideal_run(self, forces: Dict[int, int]) -> Tuple[List[int], List[bool]]:
        backend = StabilizerBackend(self.num_qubits)
        for op in self.circuit:
            if isinstance(op, GateOp):
                backend.apply_gate_by_name(op.gate.name, op.qubits)
            # NoiseOps ignored in the ideal pass; MeasureOps deferred.
        # Force every random measurement (default 0) so no rng is needed.
        full_forces = {i: forces.get(i, 0) for i in range(len(self.measured_qubits))}
        return backend.measure_many(self.measured_qubits, forces=full_forces)

    def _analyze_ideal(self) -> None:
        reference, random_flags = self._ideal_run({})
        self.reference = np.array(reference, dtype=np.uint8)
        self.random_positions = [i for i, f in enumerate(random_flags) if f]
        generators = []
        for pos in self.random_positions:
            flipped, _ = self._ideal_run({pos: 1})
            generators.append(np.array(flipped, dtype=np.uint8) ^ self.reference)
        self.generators = (
            np.array(generators, dtype=np.uint8)
            if generators
            else np.zeros((0, len(self.measured_qubits)), dtype=np.uint8)
        )

    # ------------------------------------------------------------------ #
    # one-time noise-site compilation
    # ------------------------------------------------------------------ #
    def _analyze_noise(self) -> None:
        self.sites: List[_NoiseSite] = []
        for op_index, op in enumerate(self.circuit):
            if not isinstance(op, NoiseOp):
                continue
            mixture = as_unitary_mixture(op.channel)
            if mixture is None:
                raise BackendError(
                    f"channel {op.channel.name!r} is not a Pauli mixture; the frame "
                    "sampler has the Stim restriction (Clifford + Pauli noise)"
                )
            branches = len(mixture.probs)
            xpat = np.zeros((branches, self.num_qubits), dtype=np.uint8)
            zpat = np.zeros((branches, self.num_qubits), dtype=np.uint8)
            for b, unitary in enumerate(mixture.unitaries):
                local = pauli_from_unitary(unitary, len(op.qubits))
                if local is None:
                    raise BackendError(
                        f"branch {b} of {op.channel.name!r} is not a Pauli string"
                    )
                for pos, q in enumerate(op.qubits):
                    xpat[b, q] = local.x[pos]
                    zpat[b, q] = local.z[pos]
            self.sites.append(
                _NoiseSite(
                    op_index=op_index,
                    site_id=op.site_id,
                    dominant_index=op.channel.dominant_index(),
                    qubits=op.qubits,
                    probs=np.asarray(mixture.probs, dtype=np.float64),
                    x_patterns=xpat,
                    z_patterns=zpat,
                )
            )
        self._propagate_site_patterns()

    def _propagate_site_patterns(self) -> None:
        """Conjugate every site's branch patterns to the end of the circuit.

        One forward walk: a site's branch rows join the working stack when
        the walk reaches it, so each subsequent gate's O(1) column update
        hits exactly the branches the gate acts after.  The resulting
        ``end_x_patterns`` let :meth:`frame_for_choices` assemble a fixed
        trajectory's terminal frame without touching the gate list again.
        """
        total = sum(len(site.probs) for site in self.sites)
        fx = np.zeros((total, self.num_qubits), dtype=np.uint8)
        fz = np.zeros((total, self.num_qubits), dtype=np.uint8)
        spans: List[Tuple[int, int]] = []
        active = 0
        site_iter = iter(self.sites)
        next_site = next(site_iter, None)
        for op_index, op in enumerate(self.circuit):
            if isinstance(op, GateOp):
                if active:
                    self._propagate_gate(op.gate.name, op.qubits, fx[:active], fz[:active])
            elif isinstance(op, NoiseOp):
                assert next_site is not None and next_site.op_index == op_index
                branches = len(next_site.probs)
                fx[active : active + branches] = next_site.x_patterns
                fz[active : active + branches] = next_site.z_patterns
                spans.append((active, active + branches))
                active += branches
                next_site = next(site_iter, None)
        for site, (start, stop) in zip(self.sites, spans):
            site.end_x_patterns = fx[start:stop].copy()

    # ------------------------------------------------------------------ #
    # fixed-choice (PTS) sampling
    # ------------------------------------------------------------------ #
    def frame_for_choices(self, choices: Dict[int, int]) -> Tuple[np.ndarray, float]:
        """Terminal frame flips on the measured qubits + exact weight.

        ``choices`` maps deviating ``site_id`` to Kraus index (PTS
        semantics: unpinned sites take the dominant branch).  Because a
        spec's Kraus choices are *fixed*, its frame is deterministic — the
        XOR over sites of the chosen branch's end-propagated X pattern —
        and the trajectory weight is exactly the product of the chosen
        branch probabilities (Pauli mixtures are unitary mixtures, so
        nominal probabilities are exact).
        """
        flips = np.zeros(len(self.measured_qubits), dtype=np.uint8)
        weight = 1.0
        measured = self._measured_index
        for site in self.sites:
            branch = choices.get(site.site_id, site.dominant_index)
            if not 0 <= branch < len(site.probs):
                raise BackendError(
                    f"site {site.site_id}: Kraus index {branch} out of range "
                    f"for {len(site.probs)} branches"
                )
            flips ^= site.end_x_patterns[branch][measured]
            weight *= float(site.probs[branch])
        return flips, weight

    #: Generators per XOR-combination lookup table: 2**12 rows of k bytes
    #: stays comfortably cache-resident while covering 12 random
    #: measurements per table (most circuits need exactly one table).
    _COMBO_GROUP_BITS = 12

    def _combination_tables(self) -> List[np.ndarray]:
        """Lazy per-group lookup tables of all generator XOR combinations.

        Row ``c`` of a group's table is the XOR of the group's generators
        selected by the bits of ``c``, built by doubling — so a uniform
        row index is exactly a uniform coefficient vector, and bulk
        sampling becomes one integer draw plus one gather per group
        instead of a (shots x r) uint8 matmul (which has no BLAS path).
        """
        if self._combo_tables is None:
            k = len(self.measured_qubits)
            tables = []
            for start in range(0, len(self.random_positions), self._COMBO_GROUP_BITS):
                group = self.generators[start : start + self._COMBO_GROUP_BITS]
                table = np.zeros((1 << len(group), k), dtype=np.uint8)
                for i in range(len(group)):
                    half = 1 << i
                    np.bitwise_xor(table[:half], group[i], out=table[half : 2 * half])
                tables.append(table)
            self._combo_tables = tables
        return self._combo_tables

    #: Generators per *packed* lookup table: rows are whole bit-vectors
    #: packed into one integer word, so a 2**16-row uint64 table is 512 KiB
    #: (cache-resident) while covering 16 random measurements at once.
    _PACKED_GROUP_BITS = 16

    def _packed_word_dtype(self):
        """Smallest unsigned dtype holding all k measured bits (None if >64)."""
        k = len(self.measured_qubits)
        if k <= 16:
            return np.uint16
        if k <= 32:
            return np.uint32
        if k <= 64:
            return np.uint64
        return None

    @staticmethod
    def _pack_word(bits: np.ndarray) -> int:
        """Pack a k-bit uint8 vector into an int (bit j = measured bit j)."""
        word = 0
        for j in np.flatnonzero(bits):
            word |= 1 << int(j)
        return word

    def _packed_combination_tables(self) -> List[np.ndarray]:
        """Packed-word variant of :meth:`_combination_tables`.

        Same doubling construction, but each table row is the whole k-bit
        outcome packed into one unsigned word — so the per-group gather is
        1-D (2–8 bytes per shot instead of k), group XORs are single word
        ops, and the bits are unpacked to ``(shots, k)`` uint8 exactly
        once per trajectory in :meth:`_unpack_words`.
        """
        if self._packed_tables_cache is None:
            word = self._packed_word_dtype()
            gen_words = [self._pack_word(g) for g in self.generators]
            tables = []
            for start in range(0, len(self.random_positions), self._PACKED_GROUP_BITS):
                group = gen_words[start : start + self._PACKED_GROUP_BITS]
                table = np.zeros(1 << len(group), dtype=word)
                for i, gen in enumerate(group):
                    half = 1 << i
                    np.bitwise_xor(table[:half], word(gen), out=table[half : 2 * half])
                tables.append(table)
            self._packed_tables_cache = tables
        return self._packed_tables_cache

    def _unpack_words(self, packed: np.ndarray, num_shots: int) -> np.ndarray:
        """Unpack (num_shots,) words back to (num_shots, k) uint8 bits."""
        k = len(self.measured_qubits)
        if sys.byteorder != "little":  # pragma: no cover - x86/arm are little
            packed = packed.byteswap()
        nbytes = packed.dtype.itemsize
        bits = np.unpackbits(
            packed.view(np.uint8).reshape(num_shots, nbytes),
            axis=1,
            bitorder="little",
        )
        return bits[:, :k]

    def sample_fixed(
        self, flips: np.ndarray, num_shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Bulk-sample ``(num_shots, k)`` bits for one fixed trajectory.

        ``flips`` comes from :meth:`frame_for_choices`; the only per-shot
        randomness left is the uniform combination of the ideal circuit's
        affine outcome generators — one uniform table-row draw and one
        1-D gather-XOR per generator group, over packed words when k fits
        a machine word (see :meth:`_packed_combination_tables`).
        """
        k = len(self.measured_qubits)
        base = self.reference ^ flips
        if not self.random_positions:
            out = np.empty((num_shots, k), dtype=np.uint8)
            out[:] = base
            return out
        word = self._packed_word_dtype()
        if word is None:
            # >64 measured qubits: fall back to the unpacked 2-D tables.
            tables = self._combination_tables()
            draws = rng.integers(0, len(tables[0]), size=num_shots, dtype=np.uint16)
            out = np.take(tables[0] ^ base, draws, axis=0)
            for table in tables[1:]:
                draws = rng.integers(0, len(table), size=num_shots, dtype=np.uint16)
                out ^= np.take(table, draws, axis=0)
            return out
        tables = self._packed_combination_tables()
        # Fold the trajectory's fixed flips into the first table (a
        # cache-sized copy) so the per-shot work is one uint16 draw + one
        # 1-D gather per group — no extra full-size XOR pass per shot.
        draws = rng.integers(
            0, len(tables[0]) - 1, size=num_shots, dtype=np.uint16, endpoint=True
        )
        packed = np.take(tables[0] ^ word(self._pack_word(base)), draws)
        for table in tables[1:]:
            draws = rng.integers(
                0, len(table) - 1, size=num_shots, dtype=np.uint16, endpoint=True
            )
            packed ^= np.take(table, draws)
        return self._unpack_words(packed, num_shots)

    # ------------------------------------------------------------------ #
    # bulk sampling
    # ------------------------------------------------------------------ #
    @staticmethod
    def _propagate_gate(name: str, qubits: Sequence[int], fx: np.ndarray, fz: np.ndarray) -> None:
        """Conjugate all shot frames through one Clifford gate (in place)."""
        name = name.lower()
        if name in ("i", "x", "y", "z"):
            return  # Paulis commute with Pauli frames up to irrelevant phase
        if name == "h":
            q = qubits[0]
            fx[:, q], fz[:, q] = fz[:, q].copy(), fx[:, q].copy()
        elif name in ("s", "sdg"):
            q = qubits[0]
            fz[:, q] ^= fx[:, q]
        elif name in ("sx", "sxdg"):
            q = qubits[0]
            fx[:, q] ^= fz[:, q]
        elif name in ("sy", "sydg"):
            q = qubits[0]
            fx[:, q], fz[:, q] = fz[:, q].copy(), fx[:, q].copy()
        elif name == "cx":
            c, t = qubits
            fx[:, t] ^= fx[:, c]
            fz[:, c] ^= fz[:, t]
        elif name == "cz":
            a, b = qubits
            fz[:, b] ^= fx[:, a]
            fz[:, a] ^= fx[:, b]
        elif name == "swap":
            a, b = qubits
            fx[:, [a, b]] = fx[:, [b, a]]
            fz[:, [a, b]] = fz[:, [b, a]]
        else:
            raise BackendError(f"gate {name!r} unsupported by the frame sampler")

    def sample(self, num_shots: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``(num_shots, k)`` measurement bits for the noisy circuit."""
        m = num_shots
        n = self.num_qubits
        fx = np.zeros((m, n), dtype=np.uint8)
        fz = np.zeros((m, n), dtype=np.uint8)
        site_iter = iter(self.sites)
        next_site = next(site_iter, None)
        for op_index, op in enumerate(self.circuit):
            if isinstance(op, GateOp):
                self._propagate_gate(op.gate.name, op.qubits, fx, fz)
            elif isinstance(op, NoiseOp):
                assert next_site is not None and next_site.op_index == op_index
                site = next_site
                next_site = next(site_iter, None)
                # Vectorized branch draw for all shots at this site.
                cum = np.cumsum(site.probs)
                cum[-1] = 1.0
                draws = np.searchsorted(cum, rng.random(m), side="right")
                fx ^= site.x_patterns[draws]
                fz ^= site.z_patterns[draws]
        # Ideal randomness: uniform combination of affine generators.
        out = np.broadcast_to(self.reference, (m, len(self.measured_qubits))).copy()
        if len(self.random_positions):
            coeffs = rng.integers(0, 2, size=(m, len(self.random_positions)), dtype=np.uint8)
            out ^= (coeffs @ self.generators) & 1
        # Frame X components flip terminal Z measurements.
        out ^= fx[:, self.measured_qubits]
        return out


def frame_sample(
    circuit: Circuit, num_shots: int, rng: np.random.Generator
) -> np.ndarray:
    """One-call convenience wrapper: compile + sample."""
    return FrameSampler(circuit).sample(num_shots, rng)
