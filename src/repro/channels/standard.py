"""The standard noise-channel menagerie.

Unitary mixtures (state-independent probabilities — Algorithm 1's fast
path): depolarizing, bit/phase flip, general Pauli channels, two-qubit
depolarizing.  Genuinely non-unitary channels (exercising the
state-dependent branch): amplitude damping, generalized amplitude damping,
phase damping (equivalent to a phase flip but expressed in non-unitary
Kraus form here, deliberately, to test the general path), and reset.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.channels.kraus import KrausChannel
from repro.channels.pauli import pauli_string_matrix
from repro.errors import ChannelError

__all__ = [
    "depolarizing",
    "two_qubit_depolarizing",
    "bit_flip",
    "phase_flip",
    "pauli_channel",
    "amplitude_damping",
    "generalized_amplitude_damping",
    "phase_damping",
    "reset_channel",
]

_I = np.eye(2, dtype=np.complex128)
_X = pauli_string_matrix("X")
_Y = pauli_string_matrix("Y")
_Z = pauli_string_matrix("Z")


def _check_prob(p: float, name: str, upper: float = 1.0) -> float:
    if not (0.0 <= p <= upper):
        raise ChannelError(f"{name}: probability {p} outside [0, {upper}]")
    return float(p)


def depolarizing(p: float) -> KrausChannel:
    """Single-qubit depolarizing channel.

    With probability ``p`` one of X, Y, Z is applied uniformly (the paper's
    canonical example of a unitary mixture of Pauli unitaries).
    """
    _check_prob(p, "depolarizing")
    ops = [math.sqrt(1 - p) * _I] if p < 1 else []
    if p > 0:
        ops += [math.sqrt(p / 3) * P for P in (_X, _Y, _Z)]
    return KrausChannel(f"depolarizing({p:g})", ops, check=False)


def two_qubit_depolarizing(p: float) -> KrausChannel:
    """Two-qubit depolarizing: uniform over the 15 non-identity Paulis."""
    _check_prob(p, "two_qubit_depolarizing")
    from repro.channels.pauli import all_pauli_labels

    labels = [lab for lab in all_pauli_labels(2) if lab != "II"]
    ops = [math.sqrt(1 - p) * np.eye(4, dtype=np.complex128)] if p < 1 else []
    if p > 0:
        ops += [math.sqrt(p / 15) * pauli_string_matrix(lab) for lab in labels]
    return KrausChannel(f"depolarizing2({p:g})", ops, check=False)


def bit_flip(p: float) -> KrausChannel:
    """X with probability ``p``."""
    _check_prob(p, "bit_flip")
    ops = [math.sqrt(1 - p) * _I] if p < 1 else []
    if p > 0:
        ops.append(math.sqrt(p) * _X)
    return KrausChannel(f"bit_flip({p:g})", ops, check=False)


def phase_flip(p: float) -> KrausChannel:
    """Z with probability ``p``."""
    _check_prob(p, "phase_flip")
    ops = [math.sqrt(1 - p) * _I] if p < 1 else []
    if p > 0:
        ops.append(math.sqrt(p) * _Z)
    return KrausChannel(f"phase_flip({p:g})", ops, check=False)


def pauli_channel(px: float, py: float, pz: float) -> KrausChannel:
    """General single-qubit Pauli channel with independent X/Y/Z rates."""
    for v, nm in ((px, "px"), (py, "py"), (pz, "pz")):
        _check_prob(v, f"pauli_channel {nm}")
    p0 = 1.0 - px - py - pz
    if p0 < -1e-12:
        raise ChannelError(f"pauli_channel: rates sum to {px+py+pz} > 1")
    p0 = max(p0, 0.0)
    ops = []
    for prob, mat in ((p0, _I), (px, _X), (py, _Y), (pz, _Z)):
        if prob > 0:
            ops.append(math.sqrt(prob) * mat)
    return KrausChannel(f"pauli({px:g},{py:g},{pz:g})", ops, check=False)


def amplitude_damping(gamma: float) -> KrausChannel:
    """T1 decay: |1> relaxes to |0> with probability ``gamma``.

    *Not* a unitary mixture — exercises the state-dependent trajectory
    branch of paper Algorithm 1.
    """
    _check_prob(gamma, "amplitude_damping")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    return KrausChannel(f"amp_damp({gamma:g})", [k0, k1], check=False)


def generalized_amplitude_damping(gamma: float, p_excited: float) -> KrausChannel:
    """Finite-temperature T1: decay toward a thermal mixture."""
    _check_prob(gamma, "generalized_amplitude_damping gamma")
    _check_prob(p_excited, "generalized_amplitude_damping p_excited")
    pg = 1.0 - p_excited
    k0 = math.sqrt(pg) * np.array([[1, 0], [0, math.sqrt(1 - gamma)]])
    k1 = math.sqrt(pg) * np.array([[0, math.sqrt(gamma)], [0, 0]])
    k2 = math.sqrt(p_excited) * np.array([[math.sqrt(1 - gamma), 0], [0, 1]])
    k3 = math.sqrt(p_excited) * np.array([[0, 0], [math.sqrt(gamma), 0]])
    ops = [k for k in (k0, k1, k2, k3) if np.any(np.abs(k) > 0)]
    return KrausChannel(f"gad({gamma:g},{p_excited:g})", ops, check=False)


def phase_damping(lam: float) -> KrausChannel:
    """Pure dephasing in explicitly non-unitary Kraus form.

    Physically equivalent to ``phase_flip((1 - sqrt(1-lam))/2)`` but the
    Kraus operators here are *not* scaled unitaries, so unitary-mixture
    detection correctly rejects it — used to test that code path.
    """
    _check_prob(lam, "phase_damping")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=np.complex128)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=np.complex128)
    return KrausChannel(f"phase_damp({lam:g})", [k0, k1], check=False)


def reset_channel(p: float) -> KrausChannel:
    """With probability ``p`` the qubit is reset to |0>."""
    _check_prob(p, "reset_channel")
    sq = math.sqrt(p)
    k0 = math.sqrt(1 - p) * _I
    k1 = sq * np.array([[1, 0], [0, 0]], dtype=np.complex128)
    k2 = sq * np.array([[0, 1], [0, 0]], dtype=np.complex128)
    ops = [k0, k1, k2] if p > 0 else [k0]
    return KrausChannel(f"reset({p:g})", ops, check=False)
