"""The standard noise-channel menagerie.

Unitary mixtures (state-independent probabilities — Algorithm 1's fast
path): depolarizing, bit/phase flip, general Pauli channels, two-qubit
depolarizing.  Genuinely non-unitary channels (exercising the
state-dependent branch): amplitude damping, generalized amplitude damping,
phase damping (equivalent to a phase flip but expressed in non-unitary
Kraus form here, deliberately, to test the general path), and reset.

On top of the individual channels, this module keeps the **named
device-noise profile registry** the scenario sweep harness
(:mod:`repro.sweep`) references: each :class:`DeviceNoiseProfile` is a
calibrated preset (per-wire 1q/2q depolarizing rates, SPAM flip rates,
optionally T1 amplitude damping) that expands into a full
:class:`~repro.channels.noise_model.NoiseModel` bound to every standard
gate name — the qsimbench-style "device noise profile" sweep axis.
Profiles whose channels are all unitary mixtures advertise it
(:attr:`DeviceNoiseProfile.unitary_mixture_only`), which the sweep's
density-matrix distribution oracle uses to decide whether nominal
trajectory probabilities are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.channels.kraus import KrausChannel
from repro.channels.pauli import pauli_string_matrix
from repro.errors import ChannelError

__all__ = [
    "depolarizing",
    "two_qubit_depolarizing",
    "bit_flip",
    "phase_flip",
    "pauli_channel",
    "amplitude_damping",
    "generalized_amplitude_damping",
    "phase_damping",
    "reset_channel",
    "DeviceNoiseProfile",
    "register_profile",
    "device_profile",
    "profile_names",
    "NOISY_ONE_QUBIT_GATES",
    "NOISY_TWO_QUBIT_GATES",
]

_I = np.eye(2, dtype=np.complex128)
_X = pauli_string_matrix("X")
_Y = pauli_string_matrix("Y")
_Z = pauli_string_matrix("Z")


def _check_prob(p: float, name: str, upper: float = 1.0) -> float:
    if not (0.0 <= p <= upper):
        raise ChannelError(f"{name}: probability {p} outside [0, {upper}]")
    return float(p)


def depolarizing(p: float) -> KrausChannel:
    """Single-qubit depolarizing channel.

    With probability ``p`` one of X, Y, Z is applied uniformly (the paper's
    canonical example of a unitary mixture of Pauli unitaries).
    """
    _check_prob(p, "depolarizing")
    ops = [math.sqrt(1 - p) * _I] if p < 1 else []
    if p > 0:
        ops += [math.sqrt(p / 3) * P for P in (_X, _Y, _Z)]
    return KrausChannel(f"depolarizing({p:g})", ops, check=False)


def two_qubit_depolarizing(p: float) -> KrausChannel:
    """Two-qubit depolarizing: uniform over the 15 non-identity Paulis."""
    _check_prob(p, "two_qubit_depolarizing")
    from repro.channels.pauli import all_pauli_labels

    labels = [lab for lab in all_pauli_labels(2) if lab != "II"]
    ops = [math.sqrt(1 - p) * np.eye(4, dtype=np.complex128)] if p < 1 else []
    if p > 0:
        ops += [math.sqrt(p / 15) * pauli_string_matrix(lab) for lab in labels]
    return KrausChannel(f"depolarizing2({p:g})", ops, check=False)


def bit_flip(p: float) -> KrausChannel:
    """X with probability ``p``."""
    _check_prob(p, "bit_flip")
    ops = [math.sqrt(1 - p) * _I] if p < 1 else []
    if p > 0:
        ops.append(math.sqrt(p) * _X)
    return KrausChannel(f"bit_flip({p:g})", ops, check=False)


def phase_flip(p: float) -> KrausChannel:
    """Z with probability ``p``."""
    _check_prob(p, "phase_flip")
    ops = [math.sqrt(1 - p) * _I] if p < 1 else []
    if p > 0:
        ops.append(math.sqrt(p) * _Z)
    return KrausChannel(f"phase_flip({p:g})", ops, check=False)


def pauli_channel(px: float, py: float, pz: float) -> KrausChannel:
    """General single-qubit Pauli channel with independent X/Y/Z rates."""
    for v, nm in ((px, "px"), (py, "py"), (pz, "pz")):
        _check_prob(v, f"pauli_channel {nm}")
    p0 = 1.0 - px - py - pz
    if p0 < -1e-12:
        raise ChannelError(f"pauli_channel: rates sum to {px+py+pz} > 1")
    p0 = max(p0, 0.0)
    ops = []
    for prob, mat in ((p0, _I), (px, _X), (py, _Y), (pz, _Z)):
        if prob > 0:
            ops.append(math.sqrt(prob) * mat)
    return KrausChannel(f"pauli({px:g},{py:g},{pz:g})", ops, check=False)


def amplitude_damping(gamma: float) -> KrausChannel:
    """T1 decay: |1> relaxes to |0> with probability ``gamma``.

    *Not* a unitary mixture — exercises the state-dependent trajectory
    branch of paper Algorithm 1.
    """
    _check_prob(gamma, "amplitude_damping")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    return KrausChannel(f"amp_damp({gamma:g})", [k0, k1], check=False)


def generalized_amplitude_damping(gamma: float, p_excited: float) -> KrausChannel:
    """Finite-temperature T1: decay toward a thermal mixture."""
    _check_prob(gamma, "generalized_amplitude_damping gamma")
    _check_prob(p_excited, "generalized_amplitude_damping p_excited")
    pg = 1.0 - p_excited
    k0 = math.sqrt(pg) * np.array([[1, 0], [0, math.sqrt(1 - gamma)]])
    k1 = math.sqrt(pg) * np.array([[0, math.sqrt(gamma)], [0, 0]])
    k2 = math.sqrt(p_excited) * np.array([[math.sqrt(1 - gamma), 0], [0, 1]])
    k3 = math.sqrt(p_excited) * np.array([[0, 0], [math.sqrt(gamma), 0]])
    ops = [k for k in (k0, k1, k2, k3) if np.any(np.abs(k) > 0)]
    return KrausChannel(f"gad({gamma:g},{p_excited:g})", ops, check=False)


def phase_damping(lam: float) -> KrausChannel:
    """Pure dephasing in explicitly non-unitary Kraus form.

    Physically equivalent to ``phase_flip((1 - sqrt(1-lam))/2)`` but the
    Kraus operators here are *not* scaled unitaries, so unitary-mixture
    detection correctly rejects it — used to test that code path.
    """
    _check_prob(lam, "phase_damping")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=np.complex128)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=np.complex128)
    return KrausChannel(f"phase_damp({lam:g})", [k0, k1], check=False)


def reset_channel(p: float) -> KrausChannel:
    """With probability ``p`` the qubit is reset to |0>."""
    _check_prob(p, "reset_channel")
    sq = math.sqrt(p)
    k0 = math.sqrt(1 - p) * _I
    k1 = sq * np.array([[1, 0], [0, 0]], dtype=np.complex128)
    k2 = sq * np.array([[0, 1], [0, 0]], dtype=np.complex128)
    ops = [k0, k1, k2] if p > 0 else [k0]
    return KrausChannel(f"reset({p:g})", ops, check=False)


# --------------------------------------------------------------------------- #
# named device-noise profiles (the sweep harness's "device" axis)
# --------------------------------------------------------------------------- #

#: Gate names a profile binds its single-qubit channels to — every 1q gate
#: the workload library emits.
NOISY_ONE_QUBIT_GATES: Tuple[str, ...] = ("h", "x", "s", "t", "rx", "ry", "rz")

#: Gate names a profile binds its two-qubit channels to.
NOISY_TWO_QUBIT_GATES: Tuple[str, ...] = ("cx", "cz", "swap")


@dataclass(frozen=True)
class DeviceNoiseProfile:
    """A calibrated, named device noise preset.

    ``p1``/``p2`` are per-gate depolarizing rates (1q per wire, 2q on the
    full pair), ``p_prep``/``p_meas`` are SPAM bit-flip rates, and
    ``gamma1`` is an optional per-1q-gate amplitude-damping rate — setting
    it makes the profile *general* (non-unitary-mixture), which the
    sweep's distribution oracle must treat differently because nominal
    trajectory probabilities become priors rather than exact weights.
    """

    name: str
    p1: float
    p2: float
    p_prep: float = 0.0
    p_meas: float = 0.0
    gamma1: float = 0.0
    description: str = ""

    @property
    def unitary_mixture_only(self) -> bool:
        """True when every bound channel is a unitary mixture.

        Depolarizing and bit-flip channels are mixtures of scaled
        unitaries (state-independent branch probabilities, paper §2.2);
        amplitude damping is not.
        """
        return self.gamma1 == 0.0

    def noise_model(self):
        """Expand the preset into a :class:`~repro.channels.noise_model.NoiseModel`."""
        from repro.channels.noise_model import NoiseModel

        model = NoiseModel(name=self.name)
        if self.p1 > 0:
            for gate in NOISY_ONE_QUBIT_GATES:
                model.add_all_qubit_gate_noise(gate, depolarizing(self.p1))
        if self.p2 > 0:
            for gate in NOISY_TWO_QUBIT_GATES:
                model.add_all_qubit_gate_noise(gate, two_qubit_depolarizing(self.p2))
        if self.gamma1 > 0:
            for gate in NOISY_ONE_QUBIT_GATES:
                model.add_all_qubit_gate_noise(gate, amplitude_damping(self.gamma1))
        if self.p_prep > 0:
            model.add_preparation_noise(bit_flip(self.p_prep))
        if self.p_meas > 0:
            model.add_measurement_noise(bit_flip(self.p_meas))
        return model


_PROFILES: Dict[str, DeviceNoiseProfile] = {}


def register_profile(profile: DeviceNoiseProfile) -> DeviceNoiseProfile:
    """Add a profile to the registry (rejects duplicate names)."""
    if profile.name in _PROFILES:
        raise ChannelError(f"noise profile {profile.name!r} already registered")
    for value, nm in (
        (profile.p1, "p1"),
        (profile.p2, "p2"),
        (profile.p_prep, "p_prep"),
        (profile.p_meas, "p_meas"),
        (profile.gamma1, "gamma1"),
    ):
        _check_prob(value, f"profile {profile.name!r} {nm}")
    _PROFILES[profile.name] = profile
    return profile


def profile_names() -> List[str]:
    """Registered profile names, in registration order."""
    return list(_PROFILES)


def device_profile(name: str) -> DeviceNoiseProfile:
    if name not in _PROFILES:
        known = ", ".join(repr(n) for n in _PROFILES)
        raise ChannelError(f"unknown noise profile {name!r}; registered: {known}")
    return _PROFILES[name]


# Calibrated presets: rates chosen around published device medians so the
# sweep's noise axis spans realistic regimes (light ion-trap noise up to a
# stress-test heavy profile) plus one genuinely non-unitary profile that
# exercises the state-dependent trajectory branch.
register_profile(
    DeviceNoiseProfile(
        name="uniform_depolarizing",
        p1=2e-3,
        p2=1.5e-2,
        p_prep=2e-3,
        p_meas=1e-2,
        description="Generic depolarizing + SPAM flips (mid-range rates)",
    )
)
register_profile(
    DeviceNoiseProfile(
        name="superconducting_median",
        p1=8e-4,
        p2=7e-3,
        p_prep=1.5e-3,
        p_meas=1.8e-2,
        description="Transmon-like medians: fast gates, lossy readout",
    )
)
register_profile(
    DeviceNoiseProfile(
        name="trapped_ion_median",
        p1=2e-4,
        p2=5e-3,
        p_prep=1e-3,
        p_meas=3e-3,
        description="Ion-trap-like medians: high-fidelity 1q, clean readout",
    )
)
register_profile(
    DeviceNoiseProfile(
        name="heavy_depolarizing",
        p1=8e-3,
        p2=4e-2,
        p_prep=5e-3,
        p_meas=2e-2,
        description="Stress profile: error rates ~5x superconducting medians",
    )
)
register_profile(
    DeviceNoiseProfile(
        name="relaxation_dominated",
        p1=5e-4,
        p2=8e-3,
        p_prep=1e-3,
        p_meas=1e-2,
        gamma1=8e-3,
        description="T1-dominated: amplitude damping per 1q gate (non-unitary)",
    )
)
