"""Noise models: rules binding channels to circuit operations.

A :class:`NoiseModel` is how users declare "every CX is followed by
two-qubit depolarizing at 1%, every measurement is preceded by a bit flip
at 0.5%" — the noise-model lookup of paper Algorithm 1, line 3
(``noiseChannel <- lookUp(noiseModel, operator)``).

Binding rules, in increasing specificity (all matching rules fire):

* ``add_all_qubit_gate_noise(gate_name, channel)`` — after every instance
  of the named gate, on its qubits;
* ``add_gate_noise(gate_name, qubits, channel)`` — only when the gate acts
  on exactly those qubits;
* ``add_idle_noise(channel)`` — per-moment noise on idle qubits;
* ``add_preparation_noise(channel)`` / ``add_measurement_noise(channel)``
  — boundary noise on every qubit.

``NoiseModel.apply(circuit)`` produces the noisy circuit (gates interleaved
with :class:`~repro.circuits.operations.NoiseOp` attachment points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.channels.kraus import KrausChannel
from repro.circuits.circuit import Circuit
from repro.circuits.moments import schedule_moments
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import NoiseModelError

__all__ = ["NoiseModel"]


@dataclass
class _GateRule:
    gate_name: str
    channel: KrausChannel
    qubits: Optional[Tuple[int, ...]]  # None = any qubits


class NoiseModel:
    """A set of channel-binding rules applied to circuits."""

    def __init__(self, name: str = "noise_model"):
        self.name = name
        self._gate_rules: List[_GateRule] = []
        self._prep_channel: Optional[KrausChannel] = None
        self._meas_channel: Optional[KrausChannel] = None
        self._idle_channel: Optional[KrausChannel] = None

    # ------------------------------------------------------------------ #
    # rule construction
    # ------------------------------------------------------------------ #
    def add_all_qubit_gate_noise(self, gate_name: str, channel: KrausChannel) -> "NoiseModel":
        """Attach ``channel`` after every instance of ``gate_name``.

        Single-qubit channels bound to multi-qubit gates fan out to each
        qubit of the gate (the usual per-wire depolarizing convention);
        a channel of matching arity attaches once to the full qubit tuple.
        """
        self._gate_rules.append(_GateRule(gate_name.lower(), channel, None))
        return self

    def add_gate_noise(
        self, gate_name: str, qubits: Sequence[int], channel: KrausChannel
    ) -> "NoiseModel":
        """Attach ``channel`` after ``gate_name`` on exactly ``qubits``."""
        self._gate_rules.append(_GateRule(gate_name.lower(), channel, tuple(qubits)))
        return self

    def add_preparation_noise(self, channel: KrausChannel) -> "NoiseModel":
        """Attach single-qubit ``channel`` to every qubit at circuit start."""
        if channel.num_qubits != 1:
            raise NoiseModelError("preparation noise must be a single-qubit channel")
        self._prep_channel = channel
        return self

    def add_measurement_noise(self, channel: KrausChannel) -> "NoiseModel":
        """Attach single-qubit ``channel`` to each measured qubit, pre-readout."""
        if channel.num_qubits != 1:
            raise NoiseModelError("measurement noise must be a single-qubit channel")
        self._meas_channel = channel
        return self

    def add_idle_noise(self, channel: KrausChannel) -> "NoiseModel":
        """Attach single-qubit ``channel`` to idle qubits in each moment."""
        if channel.num_qubits != 1:
            raise NoiseModelError("idle noise must be a single-qubit channel")
        self._idle_channel = channel
        return self

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def channels_for(self, op: GateOp) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        """All (channel, target-qubits) pairs the rules bind to ``op``."""
        out: List[Tuple[KrausChannel, Tuple[int, ...]]] = []
        for rule in self._gate_rules:
            if rule.gate_name != op.gate.name.lower():
                continue
            if rule.qubits is not None and rule.qubits != op.qubits:
                continue
            ch = rule.channel
            if ch.num_qubits == len(op.qubits):
                out.append((ch, op.qubits))
            elif ch.num_qubits == 1:
                out.extend((ch, (q,)) for q in op.qubits)
            else:
                raise NoiseModelError(
                    f"rule for {rule.gate_name!r}: channel arity {ch.num_qubits} "
                    f"incompatible with gate on {len(op.qubits)} qubit(s)"
                )
        return out

    def apply(self, circuit: Circuit) -> Circuit:
        """Build the noisy circuit (not yet frozen)."""
        noisy = Circuit(circuit.num_qubits, name=f"{circuit.name}_noisy")
        if self._prep_channel is not None:
            for q in range(circuit.num_qubits):
                noisy.attach(self._prep_channel, q)

        if self._idle_channel is not None:
            # Idle noise needs moment structure: walk moments, pad idles.
            for moment in schedule_moments(circuit):
                busy = set()
                for op in moment:
                    busy.update(op.qubits)
                    self._emit(noisy, op)
                for q in range(circuit.num_qubits):
                    if q not in busy:
                        noisy.attach(self._idle_channel, q)
        else:
            for op in circuit:
                self._emit(noisy, op)
        return noisy

    def _emit(self, noisy: Circuit, op) -> None:
        if isinstance(op, GateOp):
            noisy.gate(op.gate, *op.qubits)
            for channel, qubits in self.channels_for(op):
                noisy.attach(channel, *qubits)
        elif isinstance(op, MeasureOp):
            if self._meas_channel is not None:
                for q in op.qubits:
                    noisy.attach(self._meas_channel, q)
            noisy.append(MeasureOp(op.qubits, key=op.key))
        elif isinstance(op, NoiseOp):
            noisy.attach(op.channel, *op.qubits)
        else:  # pragma: no cover - defensive
            raise NoiseModelError(f"unknown operation type {type(op)!r}")

    def __repr__(self) -> str:
        return (
            f"NoiseModel({self.name!r}, gate_rules={len(self._gate_rules)}, "
            f"prep={self._prep_channel is not None}, meas={self._meas_channel is not None}, "
            f"idle={self._idle_channel is not None})"
        )
