"""General quantum channels as Kraus-operator sets.

A :class:`KrausChannel` is the library's representation of the "noisy
operations" of paper Fig. 2: a set ``{K_i}`` satisfying the completely
positive trace-preserving condition ``sum_i K_i^dag K_i = I``.  Each Kraus
operator carries a *nominal probability* — exact for unitary-mixture
channels (state-independent), and the identity-state prior
``tr(K_i^dag K_i)/2^k`` otherwise — which is what Pre-Trajectory Sampling
uses to weight its strategic choices before any state exists.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ATOL
from repro.errors import ChannelError

__all__ = ["KrausChannel"]


class KrausChannel:
    """A CPTP map given by Kraus operators.

    Parameters
    ----------
    name:
        Identifier used in provenance metadata and noise-model binding.
    kraus_ops:
        Sequence of equal-shape square matrices ``(2**k, 2**k)``.
    check:
        Verify the CPTP condition on construction.
    """

    __slots__ = ("name", "kraus_ops", "num_qubits", "_nominal")

    def __init__(self, name: str, kraus_ops: Sequence[np.ndarray], check: bool = True):
        ops = [np.asarray(k, dtype=np.complex128) for k in kraus_ops]
        if not ops:
            raise ChannelError(f"channel {name!r}: needs at least one Kraus operator")
        dim = ops[0].shape[0]
        for k in ops:
            if k.ndim != 2 or k.shape != (dim, dim):
                raise ChannelError(
                    f"channel {name!r}: all Kraus operators must be square of equal size"
                )
        nq = int(round(math.log2(dim)))
        if 2**nq != dim:
            raise ChannelError(f"channel {name!r}: dimension {dim} is not a power of two")
        if check:
            total = sum(k.conj().T @ k for k in ops)
            if not np.allclose(total, np.eye(dim), atol=1e-7):
                raise ChannelError(f"channel {name!r}: Kraus operators violate CPTP")
        self.name = name
        self.kraus_ops = tuple(ops)
        self.num_qubits = nq
        # Nominal probabilities: tr(K^dag K) / dim.  These sum to exactly 1
        # by the CPTP condition and equal the true application probability
        # for any input state when the channel is a unitary mixture.
        self._nominal = tuple(
            float(np.real(np.trace(k.conj().T @ k)) / dim) for k in ops
        )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.kraus_ops)

    def __getitem__(self, idx: int) -> np.ndarray:
        return self.kraus_ops[idx]

    @property
    def dim(self) -> int:
        return self.kraus_ops[0].shape[0]

    @property
    def nominal_probs(self) -> Tuple[float, ...]:
        """State-independent prior probability of each Kraus operator."""
        return self._nominal

    def dominant_index(self) -> int:
        """Index of the highest-nominal-probability ("no error") operator."""
        return int(np.argmax(self._nominal))

    def is_trivial(self) -> bool:
        """True when the channel is the identity channel."""
        ident = np.eye(self.dim)
        return len(self.kraus_ops) == 1 and np.allclose(
            self.kraus_ops[0].conj().T @ self.kraus_ops[0], ident, atol=ATOL
        )

    # ------------------------------------------------------------------ #
    # state-dependent probabilities (paper Algorithm 1, general branch)
    # ------------------------------------------------------------------ #
    def probabilities_for_state(
        self, state: np.ndarray, apply_fn
    ) -> np.ndarray:
        """Per-operator probabilities ``<psi| K^dag K |psi>`` for ``state``.

        ``apply_fn(matrix) -> ndarray`` must apply ``matrix`` to the
        channel's target qubits of ``state`` and return the (unnormalized)
        result; this keeps the channel agnostic of backend layout.
        """
        probs = np.empty(len(self.kraus_ops))
        for i, k in enumerate(self.kraus_ops):
            phi = apply_fn(k)
            probs[i] = float(np.real(np.vdot(phi, phi)))
        # Guard against float drift; CPTP guarantees the exact sum is 1.
        total = probs.sum()
        if total <= 0:
            raise ChannelError(f"channel {self.name!r}: state annihilated by all Kraus ops")
        return probs / total

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def compose_unitary(self, unitary: np.ndarray, before: bool = True) -> "KrausChannel":
        """Absorb a unitary into the channel (``K_i U`` or ``U K_i``)."""
        u = np.asarray(unitary, dtype=np.complex128)
        ops = [k @ u if before else u @ k for k in self.kraus_ops]
        return KrausChannel(f"{self.name}*u", ops, check=False)

    def choi_matrix(self) -> np.ndarray:
        """Choi matrix ``sum_i |K_i>> <<K_i|`` (column-stacking convention)."""
        d = self.dim
        choi = np.zeros((d * d, d * d), dtype=np.complex128)
        for k in self.kraus_ops:
            vec = k.reshape(-1, order="F")
            choi += np.outer(vec, vec.conj())
        return choi

    def apply_to_density_matrix(self, rho: np.ndarray) -> np.ndarray:
        """Exact action ``rho -> sum_i K_i rho K_i^dag`` (matching dims)."""
        rho = np.asarray(rho)
        out = np.zeros_like(rho, dtype=np.complex128)
        for k in self.kraus_ops:
            out += k @ rho @ k.conj().T
        return out

    def pauli_twirl(self) -> "KrausChannel":
        """Pauli-twirled version of a single-qubit channel.

        Twirling conjugates the channel by uniformly random Paulis, which
        projects it onto a Pauli channel with the same Pauli-error rates —
        the "tailored error injection (Pauli twirling)" scenario of the
        paper's contribution list.
        """
        if self.num_qubits != 1:
            raise ChannelError("pauli_twirl implemented for single-qubit channels")
        from repro.channels.pauli import pauli_string_matrix

        paulis = [pauli_string_matrix(c) for c in "IXYZ"]
        # Pauli error rates from the Choi/chi diagonal: p_a = sum_i |tr(P_a K_i)|^2 / d^2
        rates = np.zeros(4)
        for a, p in enumerate(paulis):
            for k in self.kraus_ops:
                rates[a] += abs(np.trace(p.conj().T @ k)) ** 2 / 4.0
        rates = rates / rates.sum()
        ops = [math.sqrt(float(r)) * p for r, p in zip(rates, paulis) if r > 1e-15]
        return KrausChannel(f"{self.name}_twirled", ops, check=False)

    def __repr__(self) -> str:
        return (
            f"KrausChannel({self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self.kraus_ops)})"
        )
