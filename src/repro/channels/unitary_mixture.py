"""Unitary-mixture channel detection (CUDA-Q pre-existing feature #2).

A channel is a *unitary mixture* when every Kraus operator is a scaled
unitary, ``K_i = sqrt(p_i) U_i``.  For such channels the trajectory-branch
probabilities ``<psi|K_i^dag K_i|psi> = p_i`` are state-independent, so the
simulator can skip the per-step expectation-value computation (paper
Algorithm 1's ``unitaryMixture`` branch) and — crucially for PTS — the
joint probability of an entire pre-sampled trajectory is exactly the
product of per-site ``p_i``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.channels.kraus import KrausChannel
from repro.errors import ChannelError

__all__ = ["UnitaryMixture", "as_unitary_mixture", "is_unitary_mixture"]


class UnitaryMixture:
    """Decomposition of a channel into ``(p_i, U_i)`` pairs."""

    __slots__ = ("channel", "probs", "unitaries")

    def __init__(self, channel: KrausChannel, probs: Tuple[float, ...], unitaries: Tuple[np.ndarray, ...]):
        self.channel = channel
        self.probs = probs
        self.unitaries = unitaries

    def __len__(self) -> int:
        return len(self.probs)

    def __repr__(self) -> str:
        return f"UnitaryMixture({self.channel.name!r}, branches={len(self.probs)})"


def _scaled_unitary_factor(kraus: np.ndarray, atol: float) -> Optional[float]:
    """If ``K = sqrt(p) U`` with ``U`` unitary, return ``p``; else None.

    ``K^dag K = p I`` is necessary and sufficient.
    """
    gram = kraus.conj().T @ kraus
    p = float(np.real(gram[0, 0]))
    if p < atol:
        return None
    if np.allclose(gram, p * np.eye(gram.shape[0]), atol=atol):
        return p
    return None


def as_unitary_mixture(channel: KrausChannel, atol: float = 1e-9) -> Optional[UnitaryMixture]:
    """Detect and decompose a unitary-mixture channel.

    Returns ``None`` when any Kraus operator is not a scaled unitary (e.g.
    amplitude damping).  This mirrors CUDA-Q's automatic channel analysis.
    """
    probs: List[float] = []
    unitaries: List[np.ndarray] = []
    for k in channel.kraus_ops:
        p = _scaled_unitary_factor(k, atol)
        if p is None:
            return None
        probs.append(p)
        unitaries.append(k / np.sqrt(p))
    total = sum(probs)
    if abs(total - 1.0) > 1e-6:
        raise ChannelError(
            f"channel {channel.name!r}: scaled-unitary probabilities sum to {total}, not 1"
        )
    return UnitaryMixture(channel, tuple(probs), tuple(unitaries))


def is_unitary_mixture(channel: KrausChannel, atol: float = 1e-9) -> bool:
    """Predicate form of :func:`as_unitary_mixture`."""
    return as_unitary_mixture(channel, atol) is not None
