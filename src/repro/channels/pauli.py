"""Pauli-string algebra.

:class:`PauliString` is a phase-tracked n-qubit Pauli operator in the
symplectic (x-bits, z-bits) representation.  It backs three subsystems:

* the stabilizer tableau backend (:mod:`repro.backends.stabilizer`);
* Pauli twirling in the tailored PTS samplers (:mod:`repro.pts.tailored`);
* the QEC code machinery (:mod:`repro.qec`).

Representation: ``P = i**phase * prod_q X_q**x[q] * Z_q**z[q]`` with
``phase`` in {0,1,2,3}.  Note the fixed X-then-Z factor order per qubit;
``Y = i * X Z`` so the label "Y" corresponds to ``x=1, z=1, phase += 1``.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChannelError

__all__ = ["PauliString", "pauli_string_matrix", "all_pauli_labels", "weight_bounded_paulis"]

_SINGLE = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


class PauliString:
    """Phase-tracked Pauli string on ``n`` qubits."""

    __slots__ = ("x", "z", "phase")

    def __init__(self, x: np.ndarray, z: np.ndarray, phase: int = 0):
        self.x = np.asarray(x, dtype=np.uint8) % 2
        self.z = np.asarray(z, dtype=np.uint8) % 2
        if self.x.shape != self.z.shape or self.x.ndim != 1:
            raise ChannelError("x and z bit vectors must be equal-length 1-D arrays")
        self.phase = int(phase) % 4

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        return cls(np.zeros(num_qubits, dtype=np.uint8), np.zeros(num_qubits, dtype=np.uint8))

    @classmethod
    def from_label(cls, label: str, phase: int = 0) -> "PauliString":
        """Build from a label like ``"XIZY"`` (qubit 0 is the left char)."""
        n = len(label)
        x = np.zeros(n, dtype=np.uint8)
        z = np.zeros(n, dtype=np.uint8)
        ph = phase
        for i, ch in enumerate(label.upper()):
            if ch == "I":
                continue
            if ch == "X":
                x[i] = 1
            elif ch == "Z":
                z[i] = 1
            elif ch == "Y":
                x[i] = 1
                z[i] = 1
                ph += 1  # Y = i * X Z
            else:
                raise ChannelError(f"invalid Pauli character {ch!r} in {label!r}")
        return cls(x, z, ph)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, kind: str) -> "PauliString":
        """Single-qubit Pauli ``kind`` on ``qubit``, identity elsewhere."""
        label = ["I"] * num_qubits
        label[qubit] = kind.upper()
        return cls.from_label("".join(label))

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return len(self.x)

    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return int(np.count_nonzero(self.x | self.z))

    def support(self) -> Tuple[int, ...]:
        """Qubits on which the string acts nontrivially."""
        return tuple(int(q) for q in np.nonzero(self.x | self.z)[0])

    def label(self) -> str:
        """Phase-free label (``"XIZY"`` style)."""
        out = []
        for xi, zi in zip(self.x, self.z):
            if xi and zi:
                out.append("Y")
            elif xi:
                out.append("X")
            elif zi:
                out.append("Z")
            else:
                out.append("I")
        return "".join(out)

    def phase_factor(self) -> complex:
        """The overall scalar ``i**phase`` adjusted so labels are Hermitian.

        ``PauliString.from_label`` stores Y as ``i * XZ``; this returns the
        net scalar multiplying the Hermitian Pauli-matrix product of
        :meth:`label`.
        """
        # Each Y in the label contributes a stored +1 phase that the
        # Hermitian Y matrix already includes, so subtract them.
        ys = int(np.count_nonzero(self.x & self.z))
        return 1j ** ((self.phase - ys) % 4)

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "PauliString") -> "PauliString":
        """Group multiplication with phase tracking: self * other."""
        if self.num_qubits != other.num_qubits:
            raise ChannelError("Pauli strings act on different qubit counts")
        # (X^a Z^b)(X^c Z^d) = (-1)^(b.c) X^(a+c) Z^(b+d) per qubit.
        anti = int(np.count_nonzero(self.z & other.x))
        phase = (self.phase + other.phase + 2 * anti) % 4
        return PauliString(self.x ^ other.x, self.z ^ other.z, phase)

    def commutes_with(self, other: "PauliString") -> bool:
        """Symplectic commutation test (phases are irrelevant)."""
        if self.num_qubits != other.num_qubits:
            raise ChannelError("Pauli strings act on different qubit counts")
        sym = int(np.count_nonzero(self.x & other.z)) + int(np.count_nonzero(self.z & other.x))
        return sym % 2 == 0

    def adjoint(self) -> "PauliString":
        """Hermitian adjoint (inverts the phase)."""
        # (i^p X^a Z^b)^dag = (-i)^p Z^b X^a = (-i)^p (-1)^(a.b) X^a Z^b
        anti = int(np.count_nonzero(self.x & self.z))
        return PauliString(self.x.copy(), self.z.copy(), (-self.phase + 2 * anti) % 4)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PauliString)
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.z, other.z)
            and self.phase == other.phase
        )

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase))

    def equal_up_to_phase(self, other: "PauliString") -> bool:
        return np.array_equal(self.x, other.x) and np.array_equal(self.z, other.z)

    # ------------------------------------------------------------------ #
    # dense
    # ------------------------------------------------------------------ #
    def to_matrix(self) -> np.ndarray:
        """Dense matrix, including the tracked phase (small n only)."""
        n = self.num_qubits
        if n > 12:
            raise ChannelError("to_matrix() limited to <= 12 qubits")
        mat = np.ones((1, 1), dtype=np.complex128)
        for xi, zi in zip(self.x, self.z):
            factor = _SINGLE["I"]
            if xi and zi:
                factor = _SINGLE["X"] @ _SINGLE["Z"]  # = -i Y
            elif xi:
                factor = _SINGLE["X"]
            elif zi:
                factor = _SINGLE["Z"]
            mat = np.kron(mat, factor)
        return (1j**self.phase) * mat

    def __repr__(self) -> str:
        prefix = {0: "+", 1: "+i", 2: "-", 3: "-i"}[self.phase]
        return f"{prefix}{self.label()}"


def pauli_string_matrix(label: str) -> np.ndarray:
    """Dense Hermitian matrix of a Pauli label (``Y`` is the usual Y)."""
    mat = np.ones((1, 1), dtype=np.complex128)
    for ch in label.upper():
        if ch not in _SINGLE:
            raise ChannelError(f"invalid Pauli character {ch!r}")
        mat = np.kron(mat, _SINGLE[ch])
    return mat


@lru_cache(maxsize=8)
def all_pauli_labels(num_qubits: int) -> Tuple[str, ...]:
    """All ``4**n`` Pauli labels on ``n`` qubits (lexicographic IXYZ order)."""
    if num_qubits > 8:
        raise ChannelError("all_pauli_labels limited to <= 8 qubits")
    return tuple("".join(p) for p in product("IXYZ", repeat=num_qubits))


def weight_bounded_paulis(num_qubits: int, max_weight: int) -> Iterable[PauliString]:
    """Yield every Pauli string of weight 1..max_weight (no identity).

    Used by the brute-force code-distance verifier; the count is
    ``sum_w C(n, w) 3**w`` so keep ``max_weight`` small.
    """
    from itertools import combinations

    for w in range(1, max_weight + 1):
        for support in combinations(range(num_qubits), w):
            for kinds in product("XYZ", repeat=w):
                label = ["I"] * num_qubits
                for q, k in zip(support, kinds):
                    label[q] = k
                yield PauliString.from_label("".join(label))
