"""Quantum channels: Kraus operators, standard noise, noise models.

This package implements the error formalism of paper §2.2: channels as sets
of Kraus operators satisfying the CPTP condition, automatic detection of
unitary-mixture channels (``K_i = sqrt(p_i) U_i``, CUDA-Q's fast path), the
standard noise menagerie, Pauli-string algebra (used for twirling and the
stabilizer machinery), and :class:`~repro.channels.noise_model.NoiseModel`
— the rule set binding channels to circuit operations.
"""

from repro.channels.kraus import KrausChannel
from repro.channels.unitary_mixture import UnitaryMixture, as_unitary_mixture
from repro.channels.standard import (
    DeviceNoiseProfile,
    amplitude_damping,
    bit_flip,
    depolarizing,
    device_profile,
    generalized_amplitude_damping,
    pauli_channel,
    phase_damping,
    phase_flip,
    profile_names,
    register_profile,
    reset_channel,
    two_qubit_depolarizing,
)
from repro.channels.pauli import (
    PauliString,
    all_pauli_labels,
    pauli_string_matrix,
)
from repro.channels.noise_model import NoiseModel

__all__ = [
    "KrausChannel",
    "UnitaryMixture",
    "as_unitary_mixture",
    "depolarizing",
    "two_qubit_depolarizing",
    "bit_flip",
    "phase_flip",
    "pauli_channel",
    "amplitude_damping",
    "generalized_amplitude_damping",
    "phase_damping",
    "reset_channel",
    "DeviceNoiseProfile",
    "device_profile",
    "profile_names",
    "register_profile",
    "PauliString",
    "pauli_string_matrix",
    "all_pauli_labels",
    "NoiseModel",
]
