"""Sweep runner: expand a spec into cells, drive each through PTSBE.

One cell = (family, width, profile) under the spec's global axes.  For
each cell the runner:

1. builds the measured ideal circuit from the workload registry and
   interleaves the named device noise profile;
2. constructs the PTS sampler (``exhaustive`` enumerates every trajectory
   above a cutoff and apportions the cell's shot budget proportionally —
   the mode whose pooled histogram the distribution oracle can check;
   ``probabilistic`` is paper Algorithm 2 with uniform shots);
3. runs :func:`~repro.execution.batched.run_ptsbe_stream` once per listed
   strategy with the *same* resolved seed, collecting streamed chunks and
   the finalized table from the same run (streaming is delivery-only, so
   one run serves both the streaming-concat and the cross-strategy
   checks);
4. attaches the differential conformance oracle
   (:mod:`repro.sweep.oracle`) and per-strategy timings.

Widths outside a family's registered range produce ``skip`` cells — the
coverage matrix shows the hole instead of the run dying.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.channels.standard import DeviceNoiseProfile, device_profile
from repro.circuits.library import get_workload, noisy
from repro.errors import SweepError
from repro.execution.batched import run_ptsbe_stream
from repro.execution.results import ShotTable
from repro.pts.base import PTSAlgorithm
from repro.pts.exhaustive import ExhaustivePTS
from repro.pts.probabilistic import ProbabilisticPTS
from repro.sweep.oracle import (
    FAIL,
    PASS,
    SKIP,
    OracleFinding,
    check_distribution,
    check_strategy_equivalence,
    check_streaming_concat,
)
from repro.sweep.spec import CellSpec, OracleSpec, SweepSpec

__all__ = [
    "DISTRIBUTIONAL_STRATEGIES",
    "TIMEOUT",
    "StrategyOutcome",
    "CellResult",
    "SweepResult",
    "make_sampler",
    "run_cell",
    "run_sweep",
]

#: Cell status for a run that finished but blew its wall-clock budget.
TIMEOUT = "timeout"

#: Strategies whose conformance contract is distributional rather than
#: bitwise: ``clifford`` draws shots through a different stochastic
#: mechanism, and ``tensornet`` additionally truncates amplitudes (SVD
#: cutoff / bond cap), so both are excluded from the bitwise equivalence
#: tier and each gets its own density-matrix distribution finding.
DISTRIBUTIONAL_STRATEGIES = ("clifford", "tensornet")


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's run of one cell: timing + its oracle verdicts."""

    strategy: str
    seconds: float
    shots: int
    trajectories: int
    chunks: int
    equivalent: Optional[bool]  # None for the reference strategy itself
    stream_ok: Optional[bool]  # None when the streaming tier is disabled
    #: Recovery actions (retries, rebins, batch halvings) the run took;
    #: 0 for fault-free runs.  Under an injected REPRO_FAULTS plan a
    #: passing cell with ``recovery > 0`` is the chaos-smoke evidence:
    #: faults fired *and* the oracle still held.
    recovery: int = 0

    @property
    def shots_per_second(self) -> float:
        return self.shots / self.seconds if self.seconds > 0 else float("inf")

    @property
    def verified(self) -> bool:
        """No tier this strategy participates in failed."""
        return self.equivalent is not False and self.stream_ok is not False


@dataclass
class CellResult:
    """Everything one sweep cell produced: outcomes, findings, provenance."""

    spec: CellSpec
    status: str  # "pass" | "fail" | "skip" | "timeout"
    skip_reason: str = ""
    outcomes: List[StrategyOutcome] = field(default_factory=list)
    findings: List[OracleFinding] = field(default_factory=list)
    coverage: float = 0.0
    resolved_seed: Optional[int] = None
    #: Wall-clock seconds the whole cell took (all strategies + oracle).
    elapsed_seconds: float = 0.0

    @property
    def cell_id(self) -> str:
        return self.spec.cell_id

    def finding(self, check: str) -> Optional[OracleFinding]:
        for f in self.findings:
            if f.check == check:
                return f
        return None

    def outcome(self, strategy: str) -> Optional[StrategyOutcome]:
        for o in self.outcomes:
            if o.strategy == strategy:
                return o
        return None

    def verified_strategies(self) -> List[str]:
        """Strategies whose (family, width, strategy) combo counts as verified.

        A combo is verified when the cell ran, no cell-level finding
        failed, and the strategy's own equivalence/streaming verdicts
        passed.
        """
        if self.status != PASS:
            return []
        return [o.strategy for o in self.outcomes if o.verified]

    def workload_dict(self) -> Dict[str, Any]:
        """Provenance block for the cell's ``BENCH_*.json`` document."""
        return {
            "family": self.spec.family,
            "num_qubits": self.spec.width,
            "profile": self.spec.profile,
            "shots": self.spec.shots,
            "sampler": self.spec.sampler,
            "seed": self.spec.seed,
            "coverage": self.coverage,
            "status": self.status,
        }

    def bench_rows(self) -> List[Dict[str, Any]]:
        """Flat scalar rows (one per strategy) for the benchmark harness."""
        dist = self.finding("distribution")
        rows = []
        for o in self.outcomes:
            row: Dict[str, Any] = {
                "family": self.spec.family,
                "width": self.spec.width,
                "profile": self.spec.profile,
                "strategy": o.strategy,
                "trajectories": o.trajectories,
                "shots": o.shots,
                "shots_per_second": o.shots_per_second,
                "seconds": o.seconds,
                "equivalence": "reference" if o.equivalent is None else (
                    "pass" if o.equivalent else "fail"
                ),
                "streaming": "skip" if o.stream_ok is None else (
                    "pass" if o.stream_ok else "fail"
                ),
                "distribution": dist.status if dist is not None else "skip",
            }
            if dist is not None and dist.metric("tvd") is not None:
                row["tvd"] = dist.metric("tvd")
                row["tvd_bound"] = dist.metric("tvd_bound")
            rows.append(row)
        return rows


@dataclass
class SweepResult:
    """All cell results of one sweep run, plus the spec that produced them."""

    spec: SweepSpec
    cells: List[CellResult] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {PASS: 0, FAIL: 0, SKIP: 0, TIMEOUT: 0}
        for cell in self.cells:
            out[cell.status] += 1
        return out

    @property
    def failed(self) -> bool:
        return any(cell.status == FAIL for cell in self.cells)

    @property
    def timed_out(self) -> bool:
        return any(cell.status == TIMEOUT for cell in self.cells)

    def verified_combos(self) -> List[Tuple[str, int, str]]:
        """All verified (family, width, strategy) combos across cells."""
        combos = []
        for cell in self.cells:
            for strategy in cell.verified_strategies():
                combos.append((cell.spec.family, cell.spec.width, strategy))
        return combos


def make_sampler(cell: CellSpec) -> PTSAlgorithm:
    """Construct the PTS sampler a cell prescribes.

    ``exhaustive``: branch-and-bound enumeration above ``cutoff``
    (default 1e-5), the cell's whole shot budget apportioned by relative
    joint probability — deterministic and distribution-oracle-friendly.
    ``probabilistic``: Algorithm 2 with ``nsamples`` draws (default 200)
    and the budget split uniformly across them.
    """
    options = dict(cell.sampler_options)
    if cell.sampler == "exhaustive":
        cutoff = float(options.pop("cutoff", 1e-5))
        max_errors = options.pop("max_errors", None)
        if options:
            raise SweepError(f"unknown exhaustive sampler options: {sorted(options)}")
        return ExhaustivePTS(
            cutoff=cutoff,
            nshots=None,
            total_shots=cell.shots,
            max_errors=None if max_errors is None else int(max_errors),
        )
    if cell.sampler == "probabilistic":
        nsamples = int(options.pop("nsamples", 200))
        if options:
            raise SweepError(
                f"unknown probabilistic sampler options: {sorted(options)}"
            )
        return ProbabilisticPTS(
            nsamples=nsamples, nshots=max(1, cell.shots // nsamples)
        )
    raise SweepError(f"unknown sampler {cell.sampler!r}")


def _run_strategy(
    circuit,
    sampler: PTSAlgorithm,
    strategy: str,
    seed: int,
    executor_kwargs: Optional[Dict[str, Any]],
) -> Tuple[ShotTable, Tuple[ShotTable, ...], StrategyOutcome, int]:
    """One strategy's streamed run: chunk tables + finalized table + timing."""
    t0 = time.perf_counter()
    stream = run_ptsbe_stream(
        circuit,
        sampler,
        seed=seed,
        strategy=strategy,
        executor_kwargs=executor_kwargs,
    )
    chunk_tables = tuple(chunk.shot_table() for chunk in stream if chunk.num_shots)
    result = stream.finalize()
    seconds = time.perf_counter() - t0
    table = result.shot_table()
    outcome = StrategyOutcome(
        strategy=strategy,
        seconds=seconds,
        shots=table.num_shots,
        trajectories=result.num_trajectories,
        chunks=len(chunk_tables),
        equivalent=None,
        stream_ok=None,
        recovery=len(result.recovery),
    )
    return table, chunk_tables, outcome, result.seed


def run_cell(
    cell: CellSpec,
    strategies: Tuple[str, ...],
    oracle: OracleSpec,
    executor_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
) -> CellResult:
    """Run one sweep cell through every strategy and the full oracle.

    ``executor_kwargs`` optionally maps strategy name to extra executor
    constructor arguments (e.g. ``{"sharded": {"devices": 2}}``).  The
    first listed *bitwise* strategy — ``serial`` is forced to the front
    when present — is the differential reference.

    The :data:`DISTRIBUTIONAL_STRATEGIES` (``clifford``, ``tensornet``)
    are excluded from the bitwise equivalence tier: the frame engine
    draws its per-shot randomness through a different stochastic
    mechanism, and the tensornet engine additionally truncates amplitudes
    — so their tables are seeded-reproducible but not bitwise equal to
    the dense ones.  Their conformance contract is distributional — each
    such table gets its own distribution finding against the exact
    density-matrix reference (subject to the same width/mixture gates).

    When the cell carries a ``budget_seconds`` and its total wall clock
    exceeds it, a cell that would have passed is reported ``timeout``
    instead (an oracle *failure* still wins — a budget overrun must not
    mask a conformance bug).
    """
    family = get_workload(cell.family)
    if not family.supports(cell.width):
        return CellResult(
            spec=cell,
            status=SKIP,
            skip_reason=f"width {cell.width} outside {cell.family!r} range "
            f"[{family.min_width}, {family.max_width}]",
        )
    cell_t0 = time.perf_counter()
    profile: DeviceNoiseProfile = device_profile(cell.profile)
    circuit = noisy(family.build(cell.width, seed=cell.seed), profile.noise_model())
    sampler = make_sampler(cell)

    ordered = sorted(strategies, key=lambda s: s != "serial")
    dense = [s for s in ordered if s not in DISTRIBUTIONAL_STRATEGIES]
    distributional = [s for s in ordered if s in DISTRIBUTIONAL_STRATEGIES]
    reference_strategy = (dense or ordered)[0]
    tables: Dict[str, ShotTable] = {}
    outcomes: List[StrategyOutcome] = []
    findings: List[OracleFinding] = []
    resolved_seed: Optional[int] = None
    for strategy in ordered:
        kwargs = (executor_kwargs or {}).get(strategy)
        table, chunk_tables, outcome, seed = _run_strategy(
            circuit, sampler, strategy, cell.seed, kwargs
        )
        resolved_seed = seed if resolved_seed is None else resolved_seed
        stream_ok: Optional[bool] = None
        if oracle.streaming:
            finding = check_streaming_concat(strategy, chunk_tables, table)
            findings.append(finding)
            stream_ok = finding.status == PASS
        tables[strategy] = table
        outcomes.append(
            StrategyOutcome(
                strategy=outcome.strategy,
                seconds=outcome.seconds,
                shots=outcome.shots,
                trajectories=outcome.trajectories,
                chunks=outcome.chunks,
                equivalent=None,
                stream_ok=stream_ok,
                recovery=outcome.recovery,
            )
        )

    # Coverage comes from re-running the sampler once against the same
    # stream the executors derived theirs from (deterministic for
    # exhaustive, seed-fixed for probabilistic) — cheap relative to state
    # preparation.
    from repro.rng import StreamFactory

    pts_result = sampler.sample(circuit, StreamFactory(cell.seed).rng_for(0))
    coverage = pts_result.coverage()

    if oracle.strategy_equivalence and len(dense) > 1:
        reference = tables[reference_strategy]
        others = {s: tables[s] for s in dense if s != reference_strategy}
        findings.append(
            check_strategy_equivalence(reference_strategy, reference, others)
        )
        from repro.sweep.oracle import _tables_identical

        for i, outcome in enumerate(outcomes):
            if outcome.strategy == reference_strategy or outcome.strategy not in others:
                continue
            outcomes[i] = StrategyOutcome(
                strategy=outcome.strategy,
                seconds=outcome.seconds,
                shots=outcome.shots,
                trajectories=outcome.trajectories,
                chunks=outcome.chunks,
                equivalent=_tables_identical(reference, tables[outcome.strategy]),
                stream_ok=outcome.stream_ok,
                recovery=outcome.recovery,
            )

    findings.append(
        check_distribution(
            circuit,
            tables[reference_strategy],
            coverage,
            oracle,
            unitary_mixture=profile.unitary_mixture_only,
            proportional_shots=(cell.sampler == "exhaustive"),
        )
    )
    # Each distributional-contract table (clifford / tensornet) is
    # verified on its own — it cannot ride on the reference's finding
    # because it is not bitwise tied to the reference table.
    for strategy in distributional:
        if strategy == reference_strategy:
            continue
        f = check_distribution(
            circuit,
            tables[strategy],
            coverage,
            oracle,
            unitary_mixture=profile.unitary_mixture_only,
            proportional_shots=(cell.sampler == "exhaustive"),
        )
        findings.append(
            OracleFinding(
                check="distribution",
                status=f.status,
                detail=f"{strategy}: {f.detail}",
                metrics=f.metrics,
            )
        )

    elapsed = time.perf_counter() - cell_t0
    status = FAIL if any(f.status == FAIL for f in findings) else PASS
    if (
        status == PASS
        and cell.budget_seconds is not None
        and elapsed > cell.budget_seconds
    ):
        status = TIMEOUT
    return CellResult(
        spec=cell,
        status=status,
        outcomes=outcomes,
        findings=findings,
        coverage=coverage,
        resolved_seed=resolved_seed,
        elapsed_seconds=elapsed,
    )


def run_sweep(
    spec: SweepSpec,
    executor_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
    progress: Optional[Callable[[CellResult], None]] = None,
) -> SweepResult:
    """Run every cell of a validated spec; never raises on oracle failure.

    ``progress`` (if given) is called with each finished
    :class:`CellResult` — the CLI uses it to print the matrix as it
    fills in.
    """
    spec.validate()
    result = SweepResult(spec=spec)
    for cell in spec.expand():
        cell_result = run_cell(cell, cell.strategies, spec.oracle, executor_kwargs)
        result.cells.append(cell_result)
        if progress is not None:
            progress(cell_result)
    return result
