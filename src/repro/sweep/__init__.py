"""Scenario sweep harness: declarative coverage with a conformance oracle.

The paper's throughput claims are validated on single circuits; the
ROADMAP's north star demands coverage across "as many scenarios as you
can imagine".  This package turns that into a measured artifact, the way
qsimbench sweeps algorithm families × sizes × device noise profiles:

* :mod:`repro.sweep.spec` — a declarative sweep specification (dataclass
  plus YAML/JSON loader) naming circuit families from the workload
  registry (:mod:`repro.circuits.library`), width ranges, device noise
  profiles (:mod:`repro.channels.standard`), a shot budget, and the
  execution strategies to cross-check;
* :mod:`repro.sweep.oracle` — the differential conformance oracle every
  cell runs through: all strategies bitwise-identical to serial, streamed
  chunks concatenating to the materialized table, and (at small widths,
  for unitary-mixture profiles) the empirical shot distribution agreeing
  with the exact density-matrix reference within TVD/chi-square bounds;
* :mod:`repro.sweep.runner` — expands the spec into cells and drives each
  through :func:`~repro.execution.batched.run_ptsbe_stream`;
* :mod:`repro.sweep.report` — renders the coverage/perf matrix
  (families × widths × strategies: pass/fail/skip + shots/s) to markdown
  and JSON.

The benchmark entry point is ``benchmarks/bench_sweep.py``, which emits
one schema-valid ``BENCH_*.json`` per cell so ``bench_compare`` can guard
the whole matrix against regression.
"""

from repro.sweep.spec import (
    CellSpec,
    FamilySweep,
    OracleSpec,
    SweepSpec,
    SweepSpecError,
    load_spec,
    spec_from_dict,
)
from repro.sweep.oracle import (
    OracleFinding,
    check_distribution,
    check_strategy_equivalence,
    check_streaming_concat,
)
from repro.sweep.runner import (
    CellResult,
    StrategyOutcome,
    SweepResult,
    make_sampler,
    run_cell,
    run_sweep,
)
from repro.sweep.report import coverage_matrix, render_markdown, summary_dict, write_report

__all__ = [
    "CellSpec",
    "FamilySweep",
    "OracleSpec",
    "SweepSpec",
    "SweepSpecError",
    "load_spec",
    "spec_from_dict",
    "OracleFinding",
    "check_distribution",
    "check_strategy_equivalence",
    "check_streaming_concat",
    "CellResult",
    "StrategyOutcome",
    "SweepResult",
    "make_sampler",
    "run_cell",
    "run_sweep",
    "coverage_matrix",
    "render_markdown",
    "summary_dict",
    "write_report",
]
