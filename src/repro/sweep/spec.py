"""Declarative sweep specification: dataclasses + YAML/JSON loader.

A sweep spec is a small document (usually YAML, JSON works identically)
naming what to cover and how hard to check it:

.. code-block:: yaml

    name: smoke
    seed: 11
    shots: 6000                 # total shot budget per cell
    sampler: exhaustive          # or "probabilistic"
    sampler_options: {cutoff: 1.0e-5}
    strategies: [serial, vectorized]
    oracle:
      distribution_max_qubits: 6
      tvd_tolerance: 0.06
    sweeps:
      - family: ghz
        widths: [3, 5]
        profiles: [superconducting_median]
      - family: bernstein_vazirani
        widths: [4, 6]
        profiles: [uniform_depolarizing]

``sweeps`` entries cross their ``widths`` with their ``profiles``; the
global axes (shot budget, sampler, strategies, oracle) apply to every
resulting cell.  An entry may carry its own ``strategies: [clifford]``
override — how a wide Clifford family runs past the dense width cap
while the rest of the spec keeps the dense cross-strategy matrix.  Validation happens at construction: unknown families,
profiles, or strategies fail with the list of registered names, so a typo
dies before any state is prepared.  Widths *outside a family's registered
range* are not errors — the runner marks those cells ``skip`` so one spec
can sweep families of different reach.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.channels.standard import profile_names
from repro.circuits.library import workload_names
from repro.errors import SweepError

__all__ = [
    "SweepSpecError",
    "OracleSpec",
    "FamilySweep",
    "CellSpec",
    "SweepSpec",
    "spec_from_dict",
    "load_spec",
]

#: Samplers the runner knows how to construct (see runner.make_sampler).
VALID_SAMPLERS = ("exhaustive", "probabilistic")


class SweepSpecError(SweepError):
    """Invalid sweep specification."""


@dataclass(frozen=True)
class OracleSpec:
    """Which conformance tiers run, and how tight their tolerances are.

    ``distribution_max_qubits`` caps the density-matrix tier (4**n memory);
    ``tvd_tolerance`` is the *sampling* allowance on top of the spec's
    un-enumerated probability mass (the oracle adds ``1 - coverage``
    itself); ``chi_square_alpha`` is the false-positive rate of the
    chi-square test, which only runs when coverage is near-complete
    (see :func:`repro.sweep.oracle.check_distribution`).
    """

    strategy_equivalence: bool = True
    streaming: bool = True
    distribution_max_qubits: int = 6
    tvd_tolerance: float = 0.06
    chi_square_alpha: float = 1e-4

    def validate(self) -> "OracleSpec":
        if self.distribution_max_qubits < 0:
            raise SweepSpecError("distribution_max_qubits must be >= 0")
        if not (0.0 < self.tvd_tolerance < 1.0):
            raise SweepSpecError(
                f"tvd_tolerance must be in (0, 1), got {self.tvd_tolerance}"
            )
        if not (0.0 < self.chi_square_alpha < 1.0):
            raise SweepSpecError(
                f"chi_square_alpha must be in (0, 1), got {self.chi_square_alpha}"
            )
        return self


@dataclass(frozen=True)
class FamilySweep:
    """One circuit family crossed with widths and device noise profiles.

    ``strategies`` optionally overrides the sweep-level strategy list for
    this entry's cells — how a wide Clifford family routes around the
    dense width cap (``[clifford]``) while the rest of the spec keeps the
    dense cross-strategy matrix.
    """

    family: str
    widths: Tuple[int, ...]
    profiles: Tuple[str, ...]
    strategies: Optional[Tuple[str, ...]] = None
    #: Per-cell wall-clock budget override for this entry (seconds);
    #: ``None`` inherits :attr:`SweepSpec.cell_budget_seconds`.
    budget_seconds: Optional[float] = None

    def validate(self) -> "FamilySweep":
        from repro.execution.batched import STRATEGY_BUILDERS

        if self.family not in workload_names():
            raise SweepSpecError(
                f"unknown workload family {self.family!r}; "
                f"registered: {', '.join(workload_names())}"
            )
        if self.strategies is not None:
            if not self.strategies:
                raise SweepSpecError(
                    f"family {self.family!r}: strategies override must be "
                    "non-empty (omit it to inherit the sweep-level list)"
                )
            for s in self.strategies:
                if s not in STRATEGY_BUILDERS:
                    raise SweepSpecError(
                        f"family {self.family!r}: unknown strategy {s!r}; "
                        f"valid: {', '.join(sorted(STRATEGY_BUILDERS))}"
                    )
            if len(set(self.strategies)) != len(self.strategies):
                raise SweepSpecError(
                    f"family {self.family!r}: strategies must be unique"
                )
        if not self.widths:
            raise SweepSpecError(f"family {self.family!r}: widths must be non-empty")
        for w in self.widths:
            if not isinstance(w, int) or w < 1:
                raise SweepSpecError(
                    f"family {self.family!r}: widths must be positive ints, got {w!r}"
                )
        if not self.profiles:
            raise SweepSpecError(f"family {self.family!r}: profiles must be non-empty")
        for p in self.profiles:
            if p not in profile_names():
                raise SweepSpecError(
                    f"unknown noise profile {p!r}; "
                    f"registered: {', '.join(profile_names())}"
                )
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise SweepSpecError(
                f"family {self.family!r}: budget_seconds must be positive, "
                f"got {self.budget_seconds}"
            )
        return self


@dataclass(frozen=True)
class CellSpec:
    """One fully-expanded sweep cell: (family, width, profile) + run config."""

    family: str
    width: int
    profile: str
    shots: int
    sampler: str
    sampler_options: Tuple[Tuple[str, Any], ...]
    seed: int
    #: Strategies this cell runs (the family entry's override, else the
    #: sweep-level list — already resolved by :meth:`SweepSpec.expand`).
    strategies: Tuple[str, ...] = ("serial", "vectorized")
    #: Wall-clock budget for the whole cell (seconds); exceeding it marks
    #: the cell ``timeout`` in the matrix.  ``None`` = unbudgeted.
    budget_seconds: Optional[float] = None

    @property
    def cell_id(self) -> str:
        return f"{self.family}_w{self.width}_{self.profile}"

    def __repr__(self) -> str:
        return f"CellSpec({self.cell_id}, shots={self.shots}, sampler={self.sampler})"


@dataclass(frozen=True)
class SweepSpec:
    """The whole declarative sweep: global axes + per-family sweeps."""

    name: str
    sweeps: Tuple[FamilySweep, ...]
    strategies: Tuple[str, ...] = ("serial", "vectorized")
    shots: int = 20_000
    sampler: str = "exhaustive"
    sampler_options: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 7
    oracle: OracleSpec = field(default_factory=OracleSpec)
    #: Default per-cell wall-clock budget (seconds); a cell exceeding it
    #: is reported ``timeout`` (nonzero exit under ``--strict``).  Family
    #: entries may override via :attr:`FamilySweep.budget_seconds`.
    cell_budget_seconds: Optional[float] = None

    def validate(self) -> "SweepSpec":
        from repro.execution.batched import STRATEGY_BUILDERS

        if not self.name:
            raise SweepSpecError("sweep needs a non-empty name")
        if not self.sweeps:
            raise SweepSpecError("sweep needs at least one family entry")
        if not self.strategies:
            raise SweepSpecError("sweep needs at least one strategy")
        for s in self.strategies:
            if s not in STRATEGY_BUILDERS:
                raise SweepSpecError(
                    f"unknown strategy {s!r}; valid: "
                    f"{', '.join(sorted(STRATEGY_BUILDERS))}"
                )
        if len(set(self.strategies)) != len(self.strategies):
            raise SweepSpecError("strategies must be unique")
        if self.shots < 1:
            raise SweepSpecError(f"shots must be positive, got {self.shots}")
        if self.sampler not in VALID_SAMPLERS:
            raise SweepSpecError(
                f"unknown sampler {self.sampler!r}; valid: {', '.join(VALID_SAMPLERS)}"
            )
        if self.cell_budget_seconds is not None and self.cell_budget_seconds <= 0:
            raise SweepSpecError(
                f"cell_budget_seconds must be positive, got "
                f"{self.cell_budget_seconds}"
            )
        self.oracle.validate()
        for sweep in self.sweeps:
            sweep.validate()
        return self

    def expand(self) -> List[CellSpec]:
        """Cross every family entry's widths × profiles into cells.

        Cell order is deterministic (spec order, widths outer, profiles
        inner) and duplicate (family, width, profile) triples are
        rejected — each cell must name one unambiguous scenario.
        """
        cells: List[CellSpec] = []
        seen = set()
        for sweep in self.sweeps:
            for width in sweep.widths:
                for profile in sweep.profiles:
                    key = (sweep.family, width, profile)
                    if key in seen:
                        raise SweepSpecError(
                            f"duplicate sweep cell {sweep.family}_w{width}_{profile}"
                        )
                    seen.add(key)
                    cells.append(
                        CellSpec(
                            family=sweep.family,
                            width=width,
                            profile=profile,
                            shots=self.shots,
                            sampler=self.sampler,
                            sampler_options=self.sampler_options,
                            seed=self.seed,
                            strategies=(
                                sweep.strategies
                                if sweep.strategies is not None
                                else self.strategies
                            ),
                            budget_seconds=(
                                sweep.budget_seconds
                                if sweep.budget_seconds is not None
                                else self.cell_budget_seconds
                            ),
                        )
                    )
        return cells

    def to_dict(self) -> Dict[str, Any]:
        """Round-trippable plain-dict form (report provenance)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "shots": self.shots,
            "sampler": self.sampler,
            "sampler_options": dict(self.sampler_options),
            "strategies": list(self.strategies),
            **(
                {"cell_budget_seconds": self.cell_budget_seconds}
                if self.cell_budget_seconds is not None
                else {}
            ),
            "oracle": {
                "strategy_equivalence": self.oracle.strategy_equivalence,
                "streaming": self.oracle.streaming,
                "distribution_max_qubits": self.oracle.distribution_max_qubits,
                "tvd_tolerance": self.oracle.tvd_tolerance,
                "chi_square_alpha": self.oracle.chi_square_alpha,
            },
            "sweeps": [
                {
                    "family": s.family,
                    "widths": list(s.widths),
                    "profiles": list(s.profiles),
                    **(
                        {"strategies": list(s.strategies)}
                        if s.strategies is not None
                        else {}
                    ),
                    **(
                        {"budget_seconds": s.budget_seconds}
                        if s.budget_seconds is not None
                        else {}
                    ),
                }
                for s in self.sweeps
            ],
        }


def _require_mapping(value: Any, where: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise SweepSpecError(f"{where} must be a mapping, got {type(value).__name__}")
    return value


def _reject_unknown_keys(data: Mapping, allowed: Sequence[str], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SweepSpecError(
            f"{where}: unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def spec_from_dict(data: Mapping[str, Any]) -> SweepSpec:
    """Build and validate a :class:`SweepSpec` from a plain mapping."""
    data = _require_mapping(data, "sweep spec")
    _reject_unknown_keys(
        data,
        ("name", "seed", "shots", "sampler", "sampler_options", "strategies",
         "oracle", "sweeps", "cell_budget_seconds"),
        "sweep spec",
    )
    oracle_data = _require_mapping(data.get("oracle", {}), "oracle")
    _reject_unknown_keys(
        oracle_data,
        ("strategy_equivalence", "streaming", "distribution_max_qubits",
         "tvd_tolerance", "chi_square_alpha"),
        "oracle",
    )
    defaults = OracleSpec()
    oracle = OracleSpec(
        strategy_equivalence=bool(
            oracle_data.get("strategy_equivalence", defaults.strategy_equivalence)
        ),
        streaming=bool(oracle_data.get("streaming", defaults.streaming)),
        distribution_max_qubits=int(
            oracle_data.get("distribution_max_qubits", defaults.distribution_max_qubits)
        ),
        tvd_tolerance=float(oracle_data.get("tvd_tolerance", defaults.tvd_tolerance)),
        chi_square_alpha=float(
            oracle_data.get("chi_square_alpha", defaults.chi_square_alpha)
        ),
    )
    sweeps = []
    entries = data.get("sweeps")
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise SweepSpecError("sweeps must be a list of family entries")
    for i, entry in enumerate(entries):
        entry = _require_mapping(entry, f"sweeps[{i}]")
        _reject_unknown_keys(
            entry,
            ("family", "widths", "profiles", "strategies", "budget_seconds"),
            f"sweeps[{i}]",
        )
        try:
            widths = tuple(int(w) for w in entry["widths"])
            profiles = tuple(str(p) for p in entry["profiles"])
            family = str(entry["family"])
        except KeyError as exc:
            raise SweepSpecError(f"sweeps[{i}] missing required key {exc}")
        entry_strategies = (
            tuple(str(s) for s in entry["strategies"])
            if "strategies" in entry
            else None
        )
        entry_budget = (
            float(entry["budget_seconds"]) if "budget_seconds" in entry else None
        )
        sweeps.append(
            FamilySweep(
                family=family,
                widths=widths,
                profiles=profiles,
                strategies=entry_strategies,
                budget_seconds=entry_budget,
            )
        )
    sampler_options = _require_mapping(
        data.get("sampler_options", {}), "sampler_options"
    )
    budget = data.get("cell_budget_seconds")
    spec = SweepSpec(
        name=str(data.get("name", "sweep")),
        sweeps=tuple(sweeps),
        strategies=tuple(str(s) for s in data.get("strategies", ("serial", "vectorized"))),
        shots=int(data.get("shots", 20_000)),
        sampler=str(data.get("sampler", "exhaustive")),
        sampler_options=tuple(sorted(sampler_options.items())),
        seed=int(data.get("seed", 7)),
        oracle=oracle,
        cell_budget_seconds=float(budget) if budget is not None else None,
    )
    return spec.validate()


def load_spec(path: str) -> SweepSpec:
    """Load a sweep spec from a YAML or JSON file.

    YAML is parsed when PyYAML is importable; otherwise (and always for
    ``.json`` paths) the file is read as JSON — so a JSON spec keeps the
    harness fully usable on a box without PyYAML.
    """
    with open(path) as fh:
        text = fh.read()
    if path.endswith(".json"):
        return spec_from_dict(json.loads(text))
    try:
        import yaml
    except ImportError:
        try:
            return spec_from_dict(json.loads(text))
        except json.JSONDecodeError:
            raise SweepSpecError(
                f"{path}: PyYAML is not installed and the file is not valid "
                "JSON; install pyyaml or provide a .json spec"
            )
    data = yaml.safe_load(text)
    return spec_from_dict(data)
