"""The differential conformance oracle: what "verified" means per cell.

Three tiers, cheapest first:

1. **Strategy equivalence** — every listed strategy's shot table must be
   bitwise identical to the serial reference (same bits, same per-shot
   trajectory ids).  This is the repo's strongest standing invariant
   (one Philox stream per ``(seed, trajectory_id)``), so any drift is a
   real bug, not tolerance noise.
2. **Streaming concatenation** — the chunks yielded by
   ``execute_stream`` must concatenate to the same strategy's
   materialized table bitwise.  Verifies the delivery layer never
   reorders, drops, or duplicates trajectories.
3. **Distribution** (small widths only) — the pooled empirical shot
   distribution must agree with the exact density-matrix reference.
   This tier is *statistical*, so it is gated on the conditions that
   make it sound:

   * the device profile is a unitary mixture (nominal trajectory
     probabilities are exact, not priors);
   * shots were apportioned proportionally to trajectory probability
     (the ``exhaustive`` sampler's ``total_shots`` mode), so the pooled
     histogram estimates the coverage-restricted exact distribution;
   * width ≤ ``distribution_max_qubits`` (4**n density-matrix cost).

   The TVD bound is ``tvd_tolerance + (1 - coverage)``: sampling
   allowance plus the probability mass the enumeration provably did not
   cover.  A chi-square test at ``chi_square_alpha`` additionally runs
   when coverage is near-complete (un-covered mass below half the
   per-cell standard error), where the restricted and full distributions
   are statistically indistinguishable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.convergence import exact_distribution
from repro.circuits.circuit import Circuit
from repro.data.stats import chi_square_statistic, total_variation_distance
from repro.errors import SweepError
from repro.execution.results import ShotTable
from repro.sweep.spec import OracleSpec

__all__ = [
    "OracleFinding",
    "check_strategy_equivalence",
    "check_streaming_concat",
    "check_distribution",
    "chi_square_critical_value",
]

PASS, FAIL, SKIP = "pass", "fail", "skip"


@dataclass(frozen=True)
class OracleFinding:
    """Outcome of one oracle tier on one cell (or one strategy)."""

    check: str  # "strategy_equivalence" | "streaming_concat" | "distribution"
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""
    metrics: Tuple[Tuple[str, float], ...] = ()

    @property
    def ok(self) -> bool:
        """Skips do not fail a cell; only an explicit mismatch does."""
        return self.status != FAIL

    def metric(self, name: str) -> Optional[float]:
        return dict(self.metrics).get(name)

    def __repr__(self) -> str:
        extra = f", {self.detail}" if self.detail else ""
        return f"OracleFinding({self.check}: {self.status}{extra})"


def _tables_identical(a: ShotTable, b: ShotTable) -> bool:
    return (
        a.measured_qubits == b.measured_qubits
        and a.bits.shape == b.bits.shape
        and np.array_equal(a.bits, b.bits)
        and np.array_equal(a.trajectory_ids, b.trajectory_ids)
    )


def check_strategy_equivalence(
    reference_strategy: str,
    reference: ShotTable,
    others: Dict[str, ShotTable],
) -> OracleFinding:
    """Every strategy's table must equal the reference bitwise."""
    mismatched = [
        name for name, table in others.items() if not _tables_identical(reference, table)
    ]
    if mismatched:
        return OracleFinding(
            check="strategy_equivalence",
            status=FAIL,
            detail=(
                f"{', '.join(sorted(mismatched))} diverge from "
                f"{reference_strategy} reference"
            ),
        )
    return OracleFinding(
        check="strategy_equivalence",
        status=PASS,
        detail=f"{len(others)} strategies bitwise-equal to {reference_strategy}",
    )


def check_streaming_concat(
    strategy: str, chunks: Tuple[ShotTable, ...], materialized: ShotTable
) -> OracleFinding:
    """Concatenated streamed chunks must reproduce the materialized table."""
    if not chunks:
        return OracleFinding(
            check="streaming_concat",
            status=FAIL,
            detail=f"{strategy}: stream yielded no chunks",
        )
    concatenated = ShotTable.concatenate(list(chunks))
    if not _tables_identical(concatenated, materialized):
        return OracleFinding(
            check="streaming_concat",
            status=FAIL,
            detail=f"{strategy}: streamed chunks do not concatenate to table",
        )
    return OracleFinding(
        check="streaming_concat",
        status=PASS,
        detail=f"{strategy}: {len(chunks)} chunks concatenate bitwise",
    )


def chi_square_critical_value(dof: int, alpha: float) -> float:
    """Upper critical value of chi-square at significance ``alpha``.

    Uses scipy when importable; otherwise the Wilson–Hilferty cube
    approximation (accurate to a few percent for dof >= 3, conservative
    enough for an oracle threshold).
    """
    if dof < 1:
        raise SweepError(f"dof must be >= 1, got {dof}")
    try:
        from scipy.stats import chi2

        return float(chi2.ppf(1.0 - alpha, dof))
    except ImportError:
        # Wilson–Hilferty: chi2 ~ dof * (1 - 2/(9 dof) + z sqrt(2/(9 dof)))^3
        # with z the standard-normal quantile, itself approximated by
        # Acklam-style rational fit via the error-function inverse.
        z = math.sqrt(2.0) * _erfinv(1.0 - 2.0 * alpha)
        h = 2.0 / (9.0 * dof)
        return float(dof * (1.0 - h + z * math.sqrt(h)) ** 3)


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki approximation, |err| < 6e-3)."""
    a = 0.147
    ln_term = math.log(max(1.0 - y * y, 1e-300))
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first**2 - ln_term / a) - first), y
    )


def check_distribution(
    circuit: Circuit,
    table: ShotTable,
    coverage: float,
    oracle: OracleSpec,
    unitary_mixture: bool,
    proportional_shots: bool,
) -> OracleFinding:
    """Empirical pooled distribution vs. the exact density-matrix reference.

    ``coverage`` is the summed nominal probability of the sampled
    trajectory set (``PTSResult.coverage()``); the un-covered tail is an
    honest bias term, so it widens the TVD bound instead of being
    silently absorbed by a loose tolerance.
    """
    width = circuit.num_qubits
    if width > oracle.distribution_max_qubits:
        return OracleFinding(
            check="distribution",
            status=SKIP,
            detail=f"width {width} > distribution_max_qubits "
            f"{oracle.distribution_max_qubits}",
        )
    if not unitary_mixture:
        return OracleFinding(
            check="distribution",
            status=SKIP,
            detail="profile has non-unitary channels: nominal trajectory "
            "probabilities are priors, pooled histogram is not comparable",
        )
    if not proportional_shots:
        return OracleFinding(
            check="distribution",
            status=SKIP,
            detail="shots not apportioned proportionally to trajectory "
            "probability; pooled histogram is deliberately biased",
        )
    exact = exact_distribution(circuit)
    empirical = table.empirical_distribution(len(exact))
    tvd = total_variation_distance(empirical, exact)
    uncovered = max(0.0, 1.0 - coverage)
    bound = oracle.tvd_tolerance + uncovered
    metrics = [("tvd", tvd), ("tvd_bound", bound), ("coverage", coverage)]
    if tvd > bound:
        return OracleFinding(
            check="distribution",
            status=FAIL,
            detail=f"TVD {tvd:.4f} exceeds bound {bound:.4f} "
            f"(tolerance {oracle.tvd_tolerance} + uncovered {uncovered:.4f})",
            metrics=tuple(metrics),
        )
    # Chi-square only where the coverage restriction is statistically
    # invisible: uncovered mass below half of one standard error of the
    # pooled histogram.
    shots = table.num_shots
    if uncovered <= 0.5 / math.sqrt(max(shots, 1)):
        counts = empirical * shots
        stat, dof = chi_square_statistic(counts, exact)
        critical = chi_square_critical_value(dof, oracle.chi_square_alpha)
        metrics += [("chi_square", stat), ("chi_square_critical", critical)]
        if stat > critical:
            return OracleFinding(
                check="distribution",
                status=FAIL,
                detail=f"chi-square {stat:.1f} exceeds critical {critical:.1f} "
                f"at alpha={oracle.chi_square_alpha:g} (dof={dof})",
                metrics=tuple(metrics),
            )
    return OracleFinding(
        check="distribution",
        status=PASS,
        detail=f"TVD {tvd:.4f} within bound {bound:.4f}",
        metrics=tuple(metrics),
    )
