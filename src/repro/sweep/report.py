"""Coverage/perf matrix rendering: markdown for humans, JSON for CI.

The product of a sweep is not one number but a *matrix*: which
(family × width × strategy) combos are verified by the conformance
oracle, at what throughput, and where the holes are (skipped widths,
skipped oracle tiers, outright failures).  ``render_markdown`` draws it
as one table per noise profile; ``summary_dict`` emits the same content
as JSON so CI can diff coverage across commits and upload the matrix as
an artifact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.sweep.oracle import FAIL, PASS, SKIP
from repro.sweep.runner import TIMEOUT, CellResult, SweepResult

__all__ = [
    "coverage_matrix",
    "render_markdown",
    "summary_dict",
    "write_report",
]

_STATUS_MARK = {PASS: "✓", FAIL: "✗", SKIP: "–", TIMEOUT: "⏱"}


def _format_rate(rate: float) -> str:
    return f"{rate:.2e}" if rate == rate and rate != float("inf") else "-"


def coverage_matrix(result: SweepResult) -> List[Dict[str, Any]]:
    """One flat record per (family, width, profile, strategy) combo.

    ``status`` is the combo's verdict: the cell status unless the
    strategy's own equivalence/streaming verdicts failed.
    """
    records: List[Dict[str, Any]] = []
    for cell in result.cells:
        if cell.status == SKIP:
            for strategy in result.spec.strategies:
                records.append(
                    {
                        "family": cell.spec.family,
                        "width": cell.spec.width,
                        "profile": cell.spec.profile,
                        "strategy": strategy,
                        "status": SKIP,
                        "detail": cell.skip_reason,
                        "shots_per_second": None,
                        "recovery": 0,
                    }
                )
            continue
        verified = set(cell.verified_strategies())
        for outcome in cell.outcomes:
            if cell.status == TIMEOUT:
                # The cell's checks passed but it blew its wall-clock
                # budget: the combo is not *verified*, but it is not a
                # conformance failure either.
                combo_status = TIMEOUT if outcome.verified else FAIL
            else:
                combo_status = PASS if outcome.strategy in verified else FAIL
            records.append(
                {
                    "family": cell.spec.family,
                    "width": cell.spec.width,
                    "profile": cell.spec.profile,
                    "strategy": outcome.strategy,
                    "status": combo_status,
                    "detail": "",
                    "shots_per_second": outcome.shots_per_second,
                    "recovery": outcome.recovery,
                }
            )
    return records


def _cell_label(cell: CellResult, strategy: str) -> str:
    if cell.status == SKIP:
        return _STATUS_MARK[SKIP]
    outcome = cell.outcome(strategy)
    if outcome is None:
        return _STATUS_MARK[SKIP]
    if cell.status == TIMEOUT:
        mark = _STATUS_MARK[TIMEOUT] if outcome.verified else _STATUS_MARK[FAIL]
    else:
        ok = strategy in cell.verified_strategies()
        mark = _STATUS_MARK[PASS] if ok else _STATUS_MARK[FAIL]
    return f"{mark} {_format_rate(outcome.shots_per_second)}"


def render_markdown(result: SweepResult) -> str:
    """The human-facing coverage/perf matrix.

    One table per profile: rows are family × width, one column per
    strategy (mark + shots/s), one column for the distribution-oracle
    tier.  A summary header counts verified combos, and failed cells get
    their oracle details listed below the tables.
    """
    spec = result.spec
    counts = result.counts()
    combos = result.verified_combos()
    lines = [
        f"# Sweep coverage matrix — `{spec.name}`",
        "",
        f"- cells: {len(result.cells)} "
        f"(pass {counts[PASS]}, fail {counts[FAIL]}, skip {counts[SKIP]}, "
        f"timeout {counts[TIMEOUT]})",
        f"- verified (family × width × strategy) combos: {len(combos)}",
        f"- strategies: {', '.join(spec.strategies)} · sampler: {spec.sampler} "
        f"· shots/cell: {spec.shots} · seed: {spec.seed}",
        "",
        "Cell entries: `✓ shots/s` verified, `✗` oracle failure, `–` skipped, "
        "`⏱` over wall-clock budget. "
        "`dm oracle` is the density-matrix distribution tier "
        "(pass/fail/skip + TVD).",
        "",
    ]
    profiles: List[str] = []
    for cell in result.cells:
        if cell.spec.profile not in profiles:
            profiles.append(cell.spec.profile)
    for profile in profiles:
        cells = [c for c in result.cells if c.spec.profile == profile]
        lines.append(f"## profile: `{profile}`")
        lines.append("")
        header = ["family", "width"] + list(spec.strategies) + ["dm oracle"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for cell in cells:
            dist = cell.finding("distribution")
            if dist is None:
                dm = _STATUS_MARK[SKIP]
            elif dist.metric("tvd") is not None:
                dm = f"{_STATUS_MARK[dist.status]} tvd={dist.metric('tvd'):.3f}"
            else:
                dm = _STATUS_MARK[dist.status]
            row = [cell.spec.family, str(cell.spec.width)]
            row += [_cell_label(cell, s) for s in spec.strategies]
            row.append(dm)
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    failed = [c for c in result.cells if c.status == FAIL]
    if failed:
        lines.append("## Failures")
        lines.append("")
        for cell in failed:
            for finding in cell.findings:
                if finding.status == FAIL:
                    lines.append(f"- `{cell.cell_id}` {finding.check}: {finding.detail}")
        lines.append("")
    timeouts = [c for c in result.cells if c.status == TIMEOUT]
    if timeouts:
        lines.append("## Timeouts")
        lines.append("")
        for cell in timeouts:
            lines.append(
                f"- `{cell.cell_id}`: {cell.elapsed_seconds:.1f}s over budget "
                f"{cell.spec.budget_seconds:.1f}s"
            )
        lines.append("")
    skipped = [c for c in result.cells if c.status == SKIP]
    if skipped:
        lines.append("## Skipped cells")
        lines.append("")
        for cell in skipped:
            lines.append(f"- `{cell.cell_id}`: {cell.skip_reason}")
        lines.append("")
    return "\n".join(lines)


def summary_dict(result: SweepResult) -> Dict[str, Any]:
    """Machine-readable sweep summary (spec + matrix + per-cell findings)."""
    counts = result.counts()
    return {
        "spec": result.spec.to_dict(),
        "cells": {
            "total": len(result.cells),
            "pass": counts[PASS],
            "fail": counts[FAIL],
            "skip": counts[SKIP],
            "timeout": counts[TIMEOUT],
        },
        "verified_combos": [
            {"family": f, "width": w, "strategy": s}
            for f, w, s in result.verified_combos()
        ],
        "matrix": coverage_matrix(result),
        "findings": [
            {
                "cell": cell.cell_id,
                "status": cell.status,
                "skip_reason": cell.skip_reason,
                "coverage": cell.coverage,
                "resolved_seed": cell.resolved_seed,
                "elapsed_seconds": cell.elapsed_seconds,
                "budget_seconds": cell.spec.budget_seconds,
                "strategies": [
                    {
                        "strategy": o.strategy,
                        "recovery": o.recovery,
                        "shots_per_second": o.shots_per_second,
                    }
                    for o in cell.outcomes
                ],
                "checks": [
                    {
                        "check": f.check,
                        "status": f.status,
                        "detail": f.detail,
                        "metrics": dict(f.metrics),
                    }
                    for f in cell.findings
                ],
            }
            for cell in result.cells
        ],
    }


def write_report(
    result: SweepResult,
    markdown_path: Optional[str] = None,
    json_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Write the markdown and/or JSON reports; returns the summary dict."""
    summary = summary_dict(result)
    if markdown_path:
        with open(markdown_path, "w") as fh:
            fh.write(render_markdown(result))
            fh.write("\n")
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return summary
