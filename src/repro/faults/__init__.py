"""Fault tolerance for the execution layer.

Deterministic fault injection (:mod:`repro.faults.plan`), seed-exact
retry with deterministic backoff jitter, and structured recovery
reporting (:mod:`repro.faults.retry`).  Configured through
``Config.fault_plan`` / ``Config.retry`` (env hook ``REPRO_FAULTS``);
zero overhead when disabled.  See the "Fault tolerance" section of
``docs/architecture.md`` for the site map and the degradation ladder.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    maybe_inject,
    parse_fault_plan,
)
from repro.faults.retry import (
    CRASH_EXCEPTIONS,
    DEFAULT_RETRYABLE,
    FaultContext,
    RecoveryEvent,
    RetryPolicy,
    describe_exception,
    run_unit_with_retry,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "maybe_inject",
    "parse_fault_plan",
    "CRASH_EXCEPTIONS",
    "DEFAULT_RETRYABLE",
    "FaultContext",
    "RecoveryEvent",
    "RetryPolicy",
    "describe_exception",
    "run_unit_with_retry",
]
