"""Seed-exact retry: policies, recovery events, and the unit driver.

The retry layer exists because PR 4's seed threading made it *correct*:
every trajectory draws from the Philox stream derived from
``(seed, trajectory_id)``, so re-running a failed work unit re-emits
bitwise-identical shots — retry is exactly-once-equivalent, no
deduplication or fencing needed.  What this module adds on top:

* :class:`RetryPolicy` — how many attempts a unit gets, which exception
  classes are worth retrying, and an exponential backoff whose jitter is
  drawn from the seed-derived fault stream (:func:`repro.rng.fault_rng`)
  instead of wall-clock entropy, so even the *pauses* of a recovered run
  replay deterministically.
* :class:`RecoveryEvent` — the structured record of one recovery action
  (``retry`` / ``rebin`` / ``batch-halved``), surfaced on
  ``StreamedResult.recovery`` and ``PTSBEResult.recovery``.
* :class:`FaultContext` — the (plan, policy, seed) triple the executors
  thread through their delivery generators.
* :func:`run_unit_with_retry` — the in-process retry driver shared by
  the vectorized/tensornet chunk loops and the single-worker fast paths;
  the process-pool equivalent lives in
  :func:`repro.execution.streaming.stream_pool`.

``CapacityError`` is deliberately *not* retryable even though it
subclasses ``BackendError``: repeating the identical allocation would
fail identically.  It escalates to the caller's degradation ladder
(batch halving) instead.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids a
    # cycle: config.py imports this module for its default retry policy)
    from repro.config import Config

from repro.errors import (
    BackendError,
    CapacityError,
    ExecutionError,
    FaultError,
    WorkerCrashError,
)
from repro.faults.plan import FaultPlan, maybe_inject
from repro.rng import FAULT_NS_JITTER, fault_rng

__all__ = [
    "RetryPolicy",
    "RecoveryEvent",
    "FaultContext",
    "describe_exception",
    "run_unit_with_retry",
]

#: Exception classes a failed work unit is retried on by default: backend
#: hiccups, emulated or real worker deaths.  ``CancelledError`` is absent
#: on purpose — cancellation means the *consumer* abandoned the run.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    BackendError,
    WorkerCrashError,
    BrokenProcessPool,
)

#: Crash-class exceptions: the worker (not the work) died.  These trigger
#: the sharded rebin ladder before falling back to plain retry.
CRASH_EXCEPTIONS: Tuple[Type[BaseException], ...] = (
    WorkerCrashError,
    BrokenProcessPool,
)


def describe_exception(exc: BaseException) -> str:
    """Compact one-line description for :class:`RecoveryEvent` records."""
    return f"{type(exc).__name__}: {exc}"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-work-unit retry budget and backoff schedule.

    Attributes
    ----------
    max_attempts:
        Total tries a unit gets (first run included); ``1`` disables
        retry.  Exhaustion raises :class:`~repro.errors.FaultError`
        naming the unit, the attempt count, and chaining the last cause.
    backoff_base / backoff_max:
        Exponential backoff: attempt ``k`` (1-based) sleeps
        ``min(backoff_max, backoff_base * 2**(k-1))`` seconds before
        re-running.  The defaults are deliberately tiny — test suites and
        emulated devices recover in microseconds; a real pooled-device
        deployment raises them via ``Config.retry``.
    jitter:
        When ``True`` (default) the delay is scaled by a factor in
        ``[0.5, 1.5)`` drawn from the seed-derived fault stream — the
        thundering-herd cure without sacrificing replay determinism.
    retryable:
        Exception classes worth re-running the unit for.
        ``CapacityError`` is excluded structurally (see module docs) even
        if a listed class covers it.
    """

    max_attempts: int = 3
    backoff_base: float = 0.002
    backoff_max: float = 0.1
    jitter: bool = True
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self):
        object.__setattr__(self, "retryable", tuple(self.retryable))
        if self.max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ExecutionError("backoff durations must be >= 0")

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` warrants re-running the unit (never capacity)."""
        return isinstance(exc, self.retryable) and not isinstance(exc, CapacityError)

    def backoff_seconds(self, seed: int, unit: str, attempt: int) -> float:
        """Deterministic delay before retry ``attempt`` (1-based) of ``unit``."""
        delay = min(self.backoff_max, self.backoff_base * (2 ** (attempt - 1)))
        if self.jitter and delay > 0.0:
            rng = fault_rng(seed, FAULT_NS_JITTER, unit, attempt)
            delay *= 0.5 + rng.random()
        return delay


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action taken by the fault-tolerance layer.

    Attributes
    ----------
    kind:
        ``"retry"`` (unit re-run after a retryable failure), ``"rebin"``
        (a dead device's groups redistributed across survivors), or
        ``"batch-halved"`` (a stacked-prep chunk split after a
        ``CapacityError``).
    strategy:
        Executor that recovered (``"parallel"``, ``"sharded"``, ...).
    unit:
        The instrumented unit name (``parallel/slice:0``,
        ``sharded/shard:1``, ``vectorized/stack:0:64``, ...).
    attempt:
        The retry attempt this event initiated (1-based); ``0`` for
        non-retry ladders (rebin, batch-halved).
    error:
        Compact description of the triggering exception.
    detail:
        Ladder-specific extras (surviving devices, new chunk bounds).
    """

    kind: str
    strategy: str
    unit: str
    attempt: int
    error: str
    detail: str = ""


@dataclass(frozen=True)
class FaultContext:
    """The (plan, policy, seed) triple threaded through one run."""

    plan: Optional[FaultPlan]
    policy: RetryPolicy
    seed: int
    strategy: str = ""

    @classmethod
    def from_config(
        cls, config: Optional[Config], seed: int, strategy: str = ""
    ) -> "FaultContext":
        """Resolve the context an executor runs under.

        Tolerates config objects predating the fault fields (callable
        backend factories can carry anything).
        """
        plan = getattr(config, "fault_plan", None)
        policy = getattr(config, "retry", None) or RetryPolicy()
        return cls(plan=plan, policy=policy, seed=int(seed), strategy=strategy)

    def sleep_backoff(self, unit: str, attempt: int) -> None:
        delay = self.policy.backoff_seconds(self.seed, unit, attempt)
        if delay > 0.0:
            time.sleep(delay)


def run_unit_with_retry(
    fn: Callable[[int], Any],
    *,
    unit: str,
    ctx: FaultContext,
    recovery: List[RecoveryEvent],
    inject: bool = True,
) -> Any:
    """Run one work unit under the retry policy; return its result.

    ``fn(attempt)`` performs the unit's work.  With ``inject=True`` the
    fault hook fires here before each attempt; executors whose workers
    inject internally (payloads carry the plan into the subprocess) pass
    ``inject=False`` so a fault fires exactly once per attempt.

    ``CapacityError`` always propagates (the caller's batch-halving
    ladder owns it); other retryable failures re-run ``fn`` after a
    deterministic backoff, appending a ``"retry"`` event per re-run,
    until the policy's budget is exhausted — then a
    :class:`~repro.errors.FaultError` chains the last cause.
    """
    attempt = 0
    while True:
        try:
            if inject:
                maybe_inject(ctx.plan, unit, attempt, ctx.seed)
            return fn(attempt)
        except CapacityError:
            raise
        except ctx.policy.retryable as exc:
            if not ctx.policy.is_retryable(exc):
                raise
            attempt += 1
            if attempt >= ctx.policy.max_attempts:
                raise FaultError(
                    f"work unit {unit!r} failed after {attempt} attempt(s): "
                    f"{describe_exception(exc)}",
                    unit=unit,
                    attempts=attempt,
                ) from exc
            recovery.append(
                RecoveryEvent(
                    kind="retry",
                    strategy=ctx.strategy,
                    unit=unit,
                    attempt=attempt,
                    error=describe_exception(exc),
                )
            )
            ctx.sleep_backoff(unit, attempt)
