"""Deterministic, seed-driven fault injection plans.

A :class:`FaultPlan` describes *which* named faults fire at *which*
instrumented sites of the execution layer.  The executors consult it
through :func:`maybe_inject` at the top of every work unit (a parallel
worker slice, a sharded device, a vectorized/tensornet stack chunk); with
no plan configured the hook is a single ``is None`` check, so the
production path pays nothing.

Two ways to target faults:

* **Rules** — explicit :class:`FaultSpec` entries matching unit names by
  ``fnmatch`` glob (``worker-crash`` at ``parallel/slice:0``,
  ``transient-backend`` at ``vectorized/stack:*``).  A rule fires on
  attempts ``0 .. times-1`` of a matching unit, so ``times=1`` (default)
  injects once and lets the retry succeed, while a large ``times``
  exhausts the retry budget deterministically.
* **Rate** — probabilistic chaos: each unit's *first* attempt draws from
  the dedicated fault stream (:func:`repro.rng.fault_rng`, keyed off the
  run's root seed) and fails with probability ``rate``.  Restricting the
  draw to attempt 0 means a random-mode run always recovers under the
  default retry policy — and the same seed reproduces the exact same
  fault pattern, which is what makes the chaos suite assertable.

Plans are frozen and picklable: they travel to subprocess workers inside
the payloads, so in-worker sites (the shard workers' stacked chunks)
inject under the same plan as in-process sites.

Unit-name scheme (see ``docs/architecture.md`` for the full map)::

    parallel/slice:{k}           one scheduled worker slice
    sharded/shard:{device_id}    one device shard (suffix /rebin:{g} after rebinning)
    vectorized/stack:{a}:{b}     one stacked-prep chunk over groups [a, b)
    tensornet/stack:{a}:{b}      one batched-MPS chunk over groups [a, b)
"""

from __future__ import annotations

import fnmatch
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import BackendError, CapacityError, ExecutionError, WorkerCrashError
from repro.rng import FAULT_NS_INJECTION, fault_rng

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "maybe_inject",
    "parse_fault_plan",
]

#: The injectable fault kinds, mirroring the failure modes a pooled-device
#: PTSBE service actually sees.
FAULT_KINDS = (
    "worker-crash",  # hard worker death -> WorkerCrashError (rebin/retry)
    "transient-backend",  # recoverable backend hiccup -> BackendError (retry)
    "capacity",  # mid-run OOM -> CapacityError (batch-halving ladder)
    "slow-worker",  # straggler: the unit sleeps, then succeeds
)


def _fault_exception(kind: str, site: str, attempt: int) -> Exception:
    message = f"injected {kind} fault at {site!r} (attempt {attempt})"
    if kind == "worker-crash":
        return WorkerCrashError(message)
    if kind == "capacity":
        return CapacityError(message)
    return BackendError(message)


@dataclass(frozen=True)
class FaultSpec:
    """One targeted fault: ``kind`` at units matching the ``site`` glob.

    ``times`` is how many *consecutive attempts* of a matching unit the
    fault hits (attempts ``0 .. times-1``); the default of 1 lets the
    first retry succeed.
    """

    kind: str
    site: str
    times: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ExecutionError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if self.times < 1:
            raise ExecutionError(f"fault times must be >= 1, got {self.times}")

    def matches(self, site: str, attempt: int) -> bool:
        return attempt < self.times and fnmatch.fnmatchcase(site, self.site)


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable description of the faults a run injects.

    Attributes
    ----------
    rules:
        Targeted :class:`FaultSpec` entries, checked in order (first
        match wins).
    rate:
        Probability in ``[0, 1]`` that a unit's first attempt fails with
        a random kind from ``kinds``, drawn from the seed-derived fault
        stream.  ``0.0`` (default) disables random mode.
    kinds:
        The kind pool random mode draws from.
    slow_seconds:
        Sleep duration of a ``slow-worker`` fault.
    """

    rules: Tuple[FaultSpec, ...] = ()
    rate: float = 0.0
    kinds: Tuple[str, ...] = ("transient-backend",)
    slow_seconds: float = 0.01

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "kinds", tuple(self.kinds))
        if not 0.0 <= self.rate <= 1.0:
            raise ExecutionError(f"fault rate must be in [0, 1], got {self.rate}")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ExecutionError(
                    f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}"
                )
        if self.rate > 0.0 and not self.kinds:
            raise ExecutionError("random-mode fault plan needs at least one kind")
        if self.slow_seconds < 0.0:
            raise ExecutionError("slow_seconds must be >= 0")

    def fault_at(self, site: str, attempt: int, seed: int) -> Optional[str]:
        """The fault kind firing at ``(site, attempt)``, or ``None``.

        Pure: the same ``(plan, site, attempt, seed)`` always decides the
        same way, in any process.
        """
        for rule in self.rules:
            if rule.matches(site, attempt):
                return rule.kind
        if self.rate > 0.0 and attempt == 0:
            rng = fault_rng(seed, FAULT_NS_INJECTION, site, attempt)
            if rng.random() < self.rate:
                return self.kinds[int(rng.integers(len(self.kinds)))]
        return None


def maybe_inject(
    plan: Optional[FaultPlan], site: str, attempt: int, seed: int
) -> None:
    """Fault-injection hook: raise (or stall) if the plan says so.

    The zero-overhead contract: with ``plan is None`` this is one branch.
    """
    if plan is None:
        return
    kind = plan.fault_at(site, attempt, seed)
    if kind is None:
        return
    if kind == "slow-worker":
        time.sleep(plan.slow_seconds)
        return
    raise _fault_exception(kind, site, attempt)


def parse_fault_plan(text: str) -> Optional[FaultPlan]:
    """Parse the ``REPRO_FAULTS`` environment syntax into a plan.

    Directives are separated by ``;``:

    * ``KIND@GLOB`` — a targeted rule, e.g.
      ``transient-backend@vectorized/stack:*``;
    * ``KIND@GLOB#N`` — the same rule hitting the first ``N`` attempts,
      e.g. ``worker-crash@parallel/slice:0#2``;
    * ``random:RATE`` or ``random:RATE:KIND,KIND`` — random mode, e.g.
      ``random:0.2:transient-backend,slow-worker``.

    Empty input returns ``None`` (faults disabled).  Malformed input
    raises :class:`~repro.errors.ExecutionError` naming the directive.
    """
    text = text.strip()
    if not text:
        return None
    rules = []
    rate = 0.0
    kinds: Tuple[str, ...] = ("transient-backend",)
    for directive in text.split(";"):
        directive = directive.strip()
        if not directive:
            continue
        if directive.startswith("random:"):
            parts = directive.split(":")
            if len(parts) not in (2, 3):
                raise ExecutionError(
                    f"malformed REPRO_FAULTS directive {directive!r}; expected "
                    "random:RATE or random:RATE:KIND,KIND"
                )
            try:
                rate = float(parts[1])
            except ValueError:
                raise ExecutionError(
                    f"malformed REPRO_FAULTS rate in {directive!r}"
                ) from None
            if len(parts) == 3:
                kinds = tuple(k.strip() for k in parts[2].split(",") if k.strip())
            continue
        if "@" not in directive:
            raise ExecutionError(
                f"malformed REPRO_FAULTS directive {directive!r}; expected "
                "KIND@SITE-GLOB[#TIMES] or random:RATE[:KINDS]"
            )
        kind, _, site = directive.partition("@")
        times = 1
        if "#" in site:
            site, _, raw_times = site.rpartition("#")
            try:
                times = int(raw_times)
            except ValueError:
                raise ExecutionError(
                    f"malformed REPRO_FAULTS times in {directive!r}"
                ) from None
        rules.append(FaultSpec(kind=kind.strip(), site=site.strip(), times=times))
    return FaultPlan(rules=tuple(rules), rate=rate, kinds=kinds)
