"""Dataset persistence: one .npz for arrays + embedded JSON for provenance.

The paper's datasets are massive (10**12 shots); ours are laptop-scale
but keep the same separation: dense bit arrays stored in binary, and the
lightweight provenance metadata — the whole point of PTS — serialized
losslessly alongside.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.data.dataset import LabeledShotDataset
from repro.errors import DataError
from repro.trajectory.events import KrausEvent, TrajectoryRecord

__all__ = ["save_dataset", "load_dataset"]


def _record_to_dict(record: TrajectoryRecord) -> Dict:
    return {
        "trajectory_id": record.trajectory_id,
        "nominal_probability": record.nominal_probability,
        "weight": record.weight,
        "events": [
            {
                "site_id": e.site_id,
                "kraus_index": e.kraus_index,
                "qubits": list(e.qubits),
                "channel_name": e.channel_name,
                "probability": e.probability,
            }
            for e in record.events
        ],
    }


def _record_from_dict(data: Dict) -> TrajectoryRecord:
    return TrajectoryRecord(
        trajectory_id=int(data["trajectory_id"]),
        events=tuple(
            KrausEvent(
                site_id=int(e["site_id"]),
                kraus_index=int(e["kraus_index"]),
                qubits=tuple(e["qubits"]),
                channel_name=e["channel_name"],
                probability=float(e["probability"]),
            )
            for e in data["events"]
        ),
        nominal_probability=float(data["nominal_probability"]),
        weight=float(data.get("weight", 1.0)),
    )


def save_dataset(dataset: LabeledShotDataset, path: Union[str, Path]) -> Path:
    """Write a labeled dataset to ``path`` (.npz)."""
    path = Path(path)
    provenance = json.dumps(
        {
            "records": {str(k): _record_to_dict(v) for k, v in dataset.records.items()},
            "metadata": dataset.metadata,
        }
    )
    np.savez_compressed(
        path,
        features=dataset.features,
        labels=dataset.labels,
        trajectory_ids=dataset.trajectory_ids,
        provenance=np.frombuffer(provenance.encode("utf-8"), dtype=np.uint8),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: Union[str, Path]) -> LabeledShotDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        npz = path.with_suffix(path.suffix + ".npz")
        if npz.exists():
            path = npz
        else:
            raise DataError(f"no dataset at {path}")
    with np.load(path) as data:
        blob = bytes(data["provenance"].tobytes()).decode("utf-8")
        prov = json.loads(blob)
        return LabeledShotDataset(
            features=data["features"],
            labels=data["labels"],
            trajectory_ids=data["trajectory_ids"],
            records={int(k): _record_from_dict(v) for k, v in prov["records"].items()},
            metadata=dict(prov["metadata"]),
        )
