"""Distribution statistics used across tests and benchmarks."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import DataError

__all__ = [
    "empirical_distribution",
    "total_variation_distance",
    "fidelity_distributions",
    "chi_square_statistic",
    "unique_fraction",
]


def empirical_distribution(bits: np.ndarray, num_outcomes: Optional[int] = None) -> np.ndarray:
    """Normalized histogram of an (m, k) bit matrix over all 2**k outcomes."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise DataError(f"bits must be 2-D, got shape {bits.shape}")
    m, k = bits.shape
    if m == 0:
        raise DataError("empty shot set has no distribution")
    if k > 24:
        raise DataError("dense distribution limited to <= 24 bits")
    keys = bits.astype(np.int64) @ (1 << np.arange(k - 1, -1, -1)).astype(np.int64)
    dim = num_outcomes if num_outcomes is not None else (1 << k)
    hist = np.bincount(keys, minlength=dim).astype(np.float64)
    return hist / hist.sum()


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """TVD(p, q) = 0.5 * sum |p - q|; 0 iff identical distributions."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise DataError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())


def fidelity_distributions(p: np.ndarray, q: np.ndarray) -> float:
    """Classical (Bhattacharyya) fidelity ``(sum sqrt(p q))**2``."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise DataError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    return float(np.sum(np.sqrt(np.clip(p, 0, None) * np.clip(q, 0, None))) ** 2)


def chi_square_statistic(
    observed_counts: np.ndarray, expected_probs: np.ndarray
) -> Tuple[float, int]:
    """Pearson chi-square against expected probabilities.

    Returns ``(statistic, dof)`` pooling cells with expected count < 5
    into a single tail cell (the standard validity fix).
    """
    obs = np.asarray(observed_counts, dtype=np.float64)
    exp_p = np.asarray(expected_probs, dtype=np.float64)
    if obs.shape != exp_p.shape:
        raise DataError("observed and expected shapes differ")
    total = obs.sum()
    if total <= 0:
        raise DataError("no observations")
    expected = exp_p * total
    big = expected >= 5.0
    stat = float(np.sum((obs[big] - expected[big]) ** 2 / expected[big]))
    tail_exp = float(expected[~big].sum())
    tail_obs = float(obs[~big].sum())
    cells = int(np.count_nonzero(big))
    if tail_exp > 0:
        stat += (tail_obs - tail_exp) ** 2 / tail_exp
        cells += 1
    return stat, max(1, cells - 1)


def unique_fraction(bits: np.ndarray) -> float:
    """Fraction of distinct rows (Fig. 4, right axis)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2 or bits.shape[0] == 0:
        raise DataError("need a non-empty 2-D bit matrix")
    return float(len(np.unique(bits, axis=0)) / bits.shape[0])
