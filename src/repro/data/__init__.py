"""Data layer: provenance-labeled datasets, serialization, statistics.

The end product of the paper's pipeline is "massive corpuses of noisy
quantum data ... suitable for downstream tasks such as training an
ML-based QEC decoder", with error provenance as supervised labels.
:mod:`repro.data.dataset` builds those labeled datasets from PTSBE
results; :mod:`repro.data.io` persists them; :mod:`repro.data.stats`
provides the distribution statistics the evaluation figures use
(total-variation distance, unique-shot fraction, chi-square tests).
"""

from repro.data.dataset import (
    LabeledShotDataset,
    build_decoder_dataset,
    iter_decoder_batches,
)
from repro.data.io import load_dataset, save_dataset
from repro.data.stats import (
    chi_square_statistic,
    empirical_distribution,
    fidelity_distributions,
    total_variation_distance,
    unique_fraction,
)

__all__ = [
    "LabeledShotDataset",
    "build_decoder_dataset",
    "iter_decoder_batches",
    "save_dataset",
    "load_dataset",
    "total_variation_distance",
    "fidelity_distributions",
    "chi_square_statistic",
    "unique_fraction",
    "empirical_distribution",
]
