"""Provenance-labeled shot datasets for decoder training.

:class:`LabeledShotDataset` is the "programmable data collection engine"
output the paper closes on: feature rows (syndrome bits) aligned with
supervision labels derived from Kraus-level error provenance — "not a
feature that was previously available for trajectory simulators" and
impossible for hardware data (§2.3).

:func:`build_decoder_dataset` specializes a PTSBE run on a
syndrome-extraction circuit into the standard decoder-training format:
``X = syndrome bits``, ``y = logical-frame flip`` computed from each
trajectory's injected Pauli errors.  It accepts either a materialized
:class:`~repro.execution.results.PTSBEResult` or a live
:class:`~repro.execution.streaming.StreamedResult`, and
:func:`iter_decoder_batches` exposes the streaming form directly:
``(features, labels, trajectory_ids)`` mini-batches emitted as each
execution chunk completes, so an incremental learner
(``partial_fit``-style) trains while the tail of the run is still
preparing states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, NoiseOp
from repro.errors import DataError
from repro.execution.results import PTSBEResult
from repro.execution.streaming import StreamedResult
from repro.qec.codes import CSSCode
from repro.qec.syndrome import SyndromeLayout
from repro.trajectory.events import TrajectoryRecord

__all__ = ["LabeledShotDataset", "build_decoder_dataset", "iter_decoder_batches"]


@dataclass
class LabeledShotDataset:
    """Features + labels + per-shot provenance.

    Attributes
    ----------
    features:
        (m, f) uint8 — e.g. syndrome bits per shot.
    labels:
        (m,) integer labels — e.g. logical-flip class.
    trajectory_ids:
        (m,) alignment back to trajectory records.
    records:
        ``records[tid]`` is the provenance of trajectory ``tid``.
    metadata:
        Free-form experiment description.
    """

    features: np.ndarray
    labels: np.ndarray
    trajectory_ids: np.ndarray
    records: Dict[int, TrajectoryRecord] = field(default_factory=dict)
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        self.features = np.asarray(self.features, dtype=np.uint8)
        self.labels = np.asarray(self.labels)
        self.trajectory_ids = np.asarray(self.trajectory_ids, dtype=np.int64)
        m = self.features.shape[0]
        if self.labels.shape[0] != m or self.trajectory_ids.shape[0] != m:
            raise DataError("features, labels and trajectory_ids must align")

    @property
    def num_samples(self) -> int:
        return int(self.features.shape[0])

    def class_balance(self) -> Dict[int, float]:
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): float(c / self.num_samples) for v, c in zip(values, counts)}

    def split(self, train_fraction: float, rng: np.random.Generator) -> Tuple["LabeledShotDataset", "LabeledShotDataset"]:
        """Shuffled train/test split preserving provenance alignment."""
        if not (0.0 < train_fraction < 1.0):
            raise DataError("train_fraction must be in (0, 1)")
        m = self.num_samples
        order = rng.permutation(m)
        cut = int(round(train_fraction * m))
        if cut == 0 or cut == m:
            raise DataError("split produced an empty side")

        def take(idx: np.ndarray) -> "LabeledShotDataset":
            return LabeledShotDataset(
                self.features[idx],
                self.labels[idx],
                self.trajectory_ids[idx],
                self.records,
                dict(self.metadata),
            )

        return take(order[:cut]), take(order[cut:])

    def __repr__(self) -> str:
        return (
            f"LabeledShotDataset(samples={self.num_samples}, "
            f"features={self.features.shape[1]}, classes={len(set(self.labels.tolist()))})"
        )


def _logical_flip_label(
    record: TrajectoryRecord, circuit: Circuit, code: CSSCode
) -> int:
    """Did this trajectory's injected Paulis flip the logical Z frame?

    Propagation-free label: for our syndrome workloads the injected
    channels are Pauli mixtures applied directly on data qubits, so the
    accumulated X-support on data qubits decides the logical-Z flip:
    label 1 iff it anticommutes with logical Z and is not a stabilizer
    action.  (The exact label for general circuits would conjugate each
    Pauli through the downstream Cliffords; the syndrome workloads used
    here attach noise after the encoder, where that propagation is
    trivial for final-frame purposes.)
    """
    from repro.qec import gf2

    x_support = np.zeros(code.n, dtype=np.uint8)
    site_channels: Dict[int, NoiseOp] = {
        op.site_id: op for op in circuit.noise_sites
    }
    for event in record.events:
        op = site_channels[event.site_id]
        kraus = op.channel.kraus_ops[event.kraus_index]
        from repro.backends.stabilizer import pauli_from_unitary

        local = pauli_from_unitary(kraus / np.linalg.norm(kraus) * np.sqrt(kraus.shape[0]), len(op.qubits))
        if local is None:
            raise DataError(
                f"channel {op.channel.name!r} branch {event.kraus_index} is not Pauli; "
                "logical-flip labels need Pauli noise"
            )
        for pos, q in enumerate(op.qubits):
            if q < code.n:  # data qubits only
                x_support[q] ^= local.x[pos]
    lz = code.logical_z_support(0)
    return int(np.dot(x_support, lz) % 2)


def iter_decoder_batches(
    stream: StreamedResult,
    circuit: Circuit,
    code: CSSCode,
    layout: SyndromeLayout,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(features, labels, trajectory_ids)`` per streamed chunk.

    The incremental companion of :func:`build_decoder_dataset`: each
    :class:`~repro.execution.streaming.ShotChunk` the executor delivers
    becomes one training mini-batch the moment it completes, so decoder
    training starts while the run's remaining stacks/shards are still
    executing.  Per-trajectory labels are memoized across chunks (a
    trajectory's label never changes), and concatenating every batch in
    order reproduces exactly what :func:`build_decoder_dataset` builds
    from the materialized result.

    Chunks with zero shots (all-dead trajectories) are skipped — they
    contribute no training rows.
    """
    syndrome_bits = layout.syndrome_bit_count()
    label_of: Dict[int, int] = {}
    for chunk in stream:
        for record in chunk.records:
            if record.trajectory_id not in label_of:
                label_of[record.trajectory_id] = _logical_flip_label(
                    record, circuit, code
                )
        if chunk.num_shots == 0:
            continue
        table = chunk.shot_table()
        labels = np.empty(table.num_shots, dtype=np.int64)
        for i, tid in enumerate(table.trajectory_ids):
            labels[i] = label_of[int(tid)]
        yield table.bits[:, :syndrome_bits], labels, table.trajectory_ids


def build_decoder_dataset(
    result: Union[PTSBEResult, StreamedResult],
    circuit: Circuit,
    code: CSSCode,
    layout: SyndromeLayout,
) -> LabeledShotDataset:
    """Decoder-training dataset from a PTSBE run on a syndrome circuit.

    Features: the shot's syndrome bits (all rounds).  Labels: the logical
    Z-frame flip implied by the trajectory's provenance record.

    ``result`` may be a materialized
    :class:`~repro.execution.results.PTSBEResult` or a live
    :class:`~repro.execution.streaming.StreamedResult` (from
    :func:`~repro.execution.batched.run_ptsbe_stream`); the streamed form
    is consumed incrementally via :func:`iter_decoder_batches` — labels
    are computed chunk by chunk as the run progresses — and assembles the
    identical dataset.
    """
    if isinstance(result, StreamedResult):
        if result.delivered_trajectories:
            # Chunks consumed before this call would be silently missing
            # from the dataset while records/metadata claim the full run.
            raise DataError(
                "stream was already partially consumed "
                f"({result.delivered_trajectories} trajectories); pass a fresh "
                "StreamedResult, or finalize() it and pass the PTSBEResult"
            )
        feature_batches: List[np.ndarray] = []
        label_batches: List[np.ndarray] = []
        id_batches: List[np.ndarray] = []
        records: Dict[int, TrajectoryRecord] = {}
        num_trajectories = 0
        for features, labels, tids in iter_decoder_batches(
            result, circuit, code, layout
        ):
            feature_batches.append(features)
            label_batches.append(labels)
            id_batches.append(tids)
        for trajectory in result.finalize().trajectories:
            records[trajectory.record.trajectory_id] = trajectory.record
            num_trajectories += 1
        width = layout.syndrome_bit_count()
        return LabeledShotDataset(
            features=(
                np.concatenate(feature_batches)
                if feature_batches
                else np.empty((0, width), dtype=np.uint8)
            ),
            labels=(
                np.concatenate(label_batches)
                if label_batches
                else np.empty(0, dtype=np.int64)
            ),
            trajectory_ids=(
                np.concatenate(id_batches)
                if id_batches
                else np.empty(0, dtype=np.int64)
            ),
            records=records,
            metadata={
                "code": code.name,
                "rounds": str(layout.rounds),
                "num_trajectories": str(num_trajectories),
            },
        )
    syndrome_bits = layout.syndrome_bit_count()
    table = result.shot_table()
    features = table.bits[:, :syndrome_bits]
    records = {r.trajectory_id: r for r in result.records}
    labels = np.empty(table.num_shots, dtype=np.int64)
    label_of: Dict[int, int] = {}
    for tid, record in records.items():
        label_of[tid] = _logical_flip_label(record, circuit, code)
    for i, tid in enumerate(table.trajectory_ids):
        labels[i] = label_of[int(tid)]
    return LabeledShotDataset(
        features=features,
        labels=labels,
        trajectory_ids=table.trajectory_ids,
        records=records,
        metadata={
            "code": code.name,
            "rounds": str(layout.rounds),
            "num_trajectories": str(result.num_trajectories),
        },
    )
