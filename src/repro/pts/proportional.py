"""Proportional PTS: shot redistribution by joint probability.

Paper §3.1: "if the user desires a more proportionally sampled dataset,
e.g., for expectation value estimation, they can achieve this by using the
error probabilities p for each K to calculate joint probability p_alpha of
each KrausSample and then redistributing or resampling the number of shots
allocated to each Kraus operator set according to the relative populations
p'_alpha = p_alpha / sum_i p_i."

With proportional shots, the *pooled* shot histogram converges to the true
noisy distribution restricted to (and renormalized over) the sampled
trajectory subsets — verified against the density-matrix backend in
``tests/test_integration_convergence.py``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import SamplingError
from repro.pts.base import PTSAlgorithm, PTSResult, TrajectorySpec
from repro.pts.probabilistic import ProbabilisticPTS

__all__ = ["ProportionalPTS", "apportion_shots"]


def apportion_shots(probabilities: np.ndarray, total_shots: int) -> np.ndarray:
    """Largest-remainder apportionment of ``total_shots`` by probability.

    Deterministic, sums exactly to ``total_shots``, never negative.  Zero-
    probability rows receive zero shots.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if np.any(p < 0):
        raise SamplingError("probabilities must be non-negative")
    total = p.sum()
    if total <= 0:
        raise SamplingError("probabilities sum to zero")
    quota = p / total * total_shots
    floors = np.floor(quota).astype(np.int64)
    remainder = int(total_shots - floors.sum())
    if remainder > 0:
        order = np.argsort(-(quota - floors), kind="stable")
        floors[order[:remainder]] += 1
    return floors


class ProportionalPTS(PTSAlgorithm):
    """Wraps a base PTS sampler and redistributes its shot budget.

    Parameters
    ----------
    base:
        Any PTS algorithm producing the trajectory *set* (defaults to
        Algorithm 2 with the given ``nsamples``).
    total_shots:
        Overall shot budget to apportion across trajectories by relative
        joint probability.
    resample:
        ``False`` (default): deterministic largest-remainder
        redistribution; ``True``: multinomial resampling (the paper's
        "redistributing or resampling" alternative).
    """

    name = "proportional"

    def __init__(
        self,
        total_shots: int,
        base: Optional[PTSAlgorithm] = None,
        nsamples: int = 1000,
        resample: bool = False,
    ):
        if total_shots <= 0:
            raise SamplingError("total_shots must be positive")
        self.total_shots = int(total_shots)
        self.base = base if base is not None else ProbabilisticPTS(nsamples, nshots=1)
        self.resample = resample

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        base_result = self.base.sample(circuit, rng)
        if not base_result.specs:
            raise SamplingError("base sampler produced no trajectories")
        probs = np.array([s.probability for s in base_result.specs])
        if self.resample:
            rel = probs / probs.sum()
            shots = rng.multinomial(self.total_shots, rel)
        else:
            shots = apportion_shots(probs, self.total_shots)
        specs: List[TrajectorySpec] = [
            spec.with_shots(int(m))
            for spec, m in zip(base_result.specs, shots)
            if int(m) > 0
        ]
        return PTSResult(
            specs=specs,
            algorithm=f"{self.name}({self.base.name})",
            attempted_samples=base_result.attempted_samples,
            duplicates_rejected=base_result.duplicates_rejected,
            incompatible_rejected=base_result.incompatible_rejected,
        )
