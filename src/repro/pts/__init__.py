"""Pre-Trajectory Sampling (PTS) — the paper's core contribution.

PTS decouples stochastic noise sampling from state evolution: a sampling
algorithm runs over the circuit's *noise-site candidates* (site, Kraus
index, nominal probability) and emits
:class:`~repro.pts.base.TrajectorySpec` objects — fixed Kraus-operator
sets with a prescribed shot count and full provenance metadata — which the
batched execution engine then realizes without redundant state
preparation.

Algorithms (paper §3.1):

* :class:`~repro.pts.probabilistic.ProbabilisticPTS` — paper Algorithm 2
  verbatim (independent Bernoulli draws, ``compatible`` and ``uniqueKraus``
  filtering, uniform ``nshots``);
* :class:`~repro.pts.proportional.ProportionalPTS` — shot redistribution
  by relative joint probability ``p'_alpha = p_alpha / sum p`` for
  expectation-value estimation;
* :class:`~repro.pts.bands.ProbabilityBandPTS` — keep only trajectories
  with ``p_alpha`` in ``[p_min, p_max]``;
* :class:`~repro.pts.exhaustive.ExhaustivePTS` / ``TopKPTS`` — analytic
  enumeration of the most likely error combinations above a cutoff
  (branch-and-bound);
* :mod:`repro.pts.tailored` — Pauli-twirled and spatially-correlated
  error injection;
* :mod:`repro.pts.filters` — gate-type / location / parity selection
  criteria composable into any sampler (paper: "add selection criteria to
  Line 5 of Algorithm 2").
"""

from repro.pts.base import (
    ErrorCandidate,
    NoiseSiteView,
    PTSAlgorithm,
    PTSResult,
    SpecGroup,
    TrajectorySpec,
    deduplicate_specs,
)
from repro.pts.compatibility import compatible, unique_kraus
from repro.pts.probabilistic import ProbabilisticPTS
from repro.pts.proportional import ProportionalPTS, apportion_shots
from repro.pts.bands import ProbabilityBandPTS
from repro.pts.exhaustive import ExhaustivePTS, TopKPTS
from repro.pts.adaptive import AdaptiveNeymanPTS
from repro.pts.tailored import CorrelatedNoisePTS, PauliTwirlPTS
from repro.pts.filters import (
    by_channel_name,
    by_gate_context,
    by_max_probability,
    by_min_probability,
    by_qubit_parity,
    by_qubits,
)

__all__ = [
    "ErrorCandidate",
    "NoiseSiteView",
    "PTSAlgorithm",
    "PTSResult",
    "TrajectorySpec",
    "SpecGroup",
    "deduplicate_specs",
    "compatible",
    "unique_kraus",
    "ProbabilisticPTS",
    "ProportionalPTS",
    "apportion_shots",
    "ProbabilityBandPTS",
    "ExhaustivePTS",
    "TopKPTS",
    "AdaptiveNeymanPTS",
    "PauliTwirlPTS",
    "CorrelatedNoisePTS",
    "by_channel_name",
    "by_gate_context",
    "by_qubits",
    "by_qubit_parity",
    "by_min_probability",
    "by_max_probability",
]
