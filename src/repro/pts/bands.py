"""Probability-band PTS.

Paper §3.1: "Such variations also support preferred sampling from
probability bands, wherein a Kraus operator set {K_a0 ... K_ai} is only
chosen if p_alpha is in [p_min, p_max]."

Use cases: isolating the rare-error tail (train a decoder on hard cases),
or excluding the overwhelming no-error trajectory to spend all simulation
budget on informative states.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import SamplingError
from repro.pts.base import PTSAlgorithm, PTSResult, TrajectorySpec
from repro.pts.probabilistic import ProbabilisticPTS

__all__ = ["ProbabilityBandPTS"]


class ProbabilityBandPTS(PTSAlgorithm):
    """Keep only trajectories whose joint probability lies in a band.

    Parameters
    ----------
    p_min, p_max:
        Inclusive bounds on the joint nominal probability ``p_alpha``.
    base:
        Trajectory-set generator (defaults to Algorithm 2).
    renormalize_shots:
        When set, the surviving trajectories' shot budgets are rescaled so
        the result keeps the base sampler's total shot count.
    """

    name = "probability_band"

    def __init__(
        self,
        p_min: float,
        p_max: float,
        base: Optional[PTSAlgorithm] = None,
        nsamples: int = 1000,
        nshots: int = 1000,
        renormalize_shots: bool = False,
    ):
        if not (0.0 <= p_min <= p_max):
            raise SamplingError(f"invalid probability band [{p_min}, {p_max}]")
        self.p_min = float(p_min)
        self.p_max = float(p_max)
        self.base = base if base is not None else ProbabilisticPTS(nsamples, nshots)
        self.renormalize_shots = renormalize_shots

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        base_result = self.base.sample(circuit, rng)
        kept: List[TrajectorySpec] = [
            s for s in base_result.specs if self.p_min <= s.probability <= self.p_max
        ]
        if self.renormalize_shots and kept:
            original_total = base_result.total_shots
            per = max(1, original_total // len(kept))
            kept = [s.with_shots(per) for s in kept]
        return PTSResult(
            specs=kept,
            algorithm=f"{self.name}[{self.p_min:g},{self.p_max:g}]({self.base.name})",
            attempted_samples=base_result.attempted_samples,
            duplicates_rejected=base_result.duplicates_rejected,
            incompatible_rejected=base_result.incompatible_rejected,
        )
