"""Algorithm 2's ``compatible`` and ``uniqueKraus`` functions.

``compatible`` rejects "physically incompatible Kraus error combinations,
such as two operators that would act on the same qubit at the same time"
(paper §3.1): a candidate conflicts with an already-selected one when they
share a noise site (a site fires exactly one Kraus operator per
trajectory) or when they would act on overlapping qubits in the same
moment.

``unique_kraus`` rejects "duplicate KrausSample trajectories": the whole
point of PTS is to *never prepare the same noisy state twice*, so repeated
error combinations are folded into a single spec.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from repro.pts.base import ErrorCandidate

__all__ = ["compatible", "unique_kraus", "selection_signature"]


def compatible(candidate: ErrorCandidate, selection: Sequence[ErrorCandidate]) -> bool:
    """True when ``candidate`` can join ``selection``."""
    for chosen in selection:
        if chosen.site_id == candidate.site_id:
            return False
        if chosen.moment == candidate.moment and set(chosen.qubits) & set(candidate.qubits):
            return False
    return True


def selection_signature(selection: Sequence[ErrorCandidate]) -> Tuple[Tuple[int, int], ...]:
    """Canonical hashable identity of an error combination."""
    return tuple(sorted((c.site_id, c.kraus_index) for c in selection))


def unique_kraus(
    selection: Sequence[ErrorCandidate],
    seen: Set[Tuple[Tuple[int, int], ...]],
) -> bool:
    """True (and registers the signature) when ``selection`` is new."""
    sig = selection_signature(selection)
    if sig in seen:
        return False
    seen.add(sig)
    return True
