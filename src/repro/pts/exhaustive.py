"""Analytic enumeration of the most likely error combinations.

Paper §3.1: "the most common errors can be calculated analytically by
considering only error combinations whose joint probability falls above a
given cutoff, a combinatorial problem of generally tractable order when
considering experimentally relevant noise probabilities and sizeable error
cutoffs."

:class:`ExhaustivePTS` performs a depth-first search over per-site branch
choices with branch-and-bound pruning: the search carries the accumulated
probability and prunes as soon as it falls below ``cutoff`` divided by the
best-possible future factor (a precomputed suffix product of per-site
maximum branch probabilities).  :class:`TopKPTS` runs the same search with
an adaptive cutoff maintained by a size-``k`` min-heap.

Unlike the probabilistic sampler, enumeration is *deterministic* and
*complete*: every trajectory above the cutoff is produced exactly once, so
``PTSResult.coverage()`` is a certified lower bound on captured
probability mass.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import SamplingError
from repro.pts.base import (
    ErrorCandidate,
    NoiseSiteView,
    PTSAlgorithm,
    PTSResult,
    TrajectorySpec,
)
from repro.pts.compatibility import compatible

__all__ = ["ExhaustivePTS", "TopKPTS"]


class _SiteTable:
    """Per-site branch options in a DFS-friendly layout."""

    def __init__(self, view: NoiseSiteView, max_errors: Optional[int]):
        self.view = view
        self.site_ids: List[int] = sorted(view.dominant_prob.keys())
        by_site: Dict[int, List[ErrorCandidate]] = {sid: [] for sid in self.site_ids}
        for cand in view.candidates:
            by_site[cand.site_id].append(cand)
        self.error_branches = [by_site[sid] for sid in self.site_ids]
        self.dominant = [view.dominant_prob[sid] for sid in self.site_ids]
        self.max_errors = max_errors
        # Suffix product of the best branch probability from site i onward.
        best = [
            max([self.dominant[i]] + [c.probability for c in self.error_branches[i]])
            for i in range(len(self.site_ids))
        ]
        self.suffix_best = [1.0] * (len(best) + 1)
        for i in range(len(best) - 1, -1, -1):
            self.suffix_best[i] = self.suffix_best[i + 1] * best[i]


def _enumerate(table: _SiteTable, cutoff_fn, emit_fn) -> int:
    """Shared DFS engine.  ``cutoff_fn()`` returns the current cutoff;
    ``emit_fn(selection, prob)`` consumes a complete trajectory.  Returns
    the number of nodes visited (for the cost benchmarks)."""
    num_sites = len(table.site_ids)
    visited = 0
    selection: List[ErrorCandidate] = []

    def dfs(site_pos: int, acc: float) -> None:
        nonlocal visited
        visited += 1
        if acc * table.suffix_best[site_pos] < cutoff_fn():
            return
        if site_pos == num_sites:
            emit_fn(list(selection), acc)
            return
        # Dominant ("no error") branch first: largest probability, so the
        # heap in top-k mode fills with good cutoffs early.
        dfs(site_pos + 1, acc * table.dominant[site_pos])
        if table.max_errors is not None and len(selection) >= table.max_errors:
            return
        for cand in table.error_branches[site_pos]:
            if not compatible(cand, selection):
                continue
            selection.append(cand)
            dfs(site_pos + 1, acc * cand.probability)
            selection.pop()

    dfs(0, 1.0)
    return visited


class ExhaustivePTS(PTSAlgorithm):
    """All error combinations with joint probability >= ``cutoff``.

    Parameters
    ----------
    cutoff:
        Minimum joint nominal probability (must be > 0 for tractability).
    nshots:
        Uniform shot budget per trajectory, or ``None`` to apportion
        ``total_shots`` proportionally.
    total_shots:
        Used when ``nshots`` is ``None``.
    max_errors:
        Optional cap on the number of simultaneous error branches.
    """

    name = "exhaustive"

    def __init__(
        self,
        cutoff: float,
        nshots: Optional[int] = 1000,
        total_shots: Optional[int] = None,
        max_errors: Optional[int] = None,
    ):
        if cutoff <= 0.0:
            raise SamplingError("cutoff must be > 0 (the search space is exponential)")
        if nshots is None and total_shots is None:
            raise SamplingError("provide nshots or total_shots")
        self.cutoff = float(cutoff)
        self.nshots = nshots
        self.total_shots = total_shots
        self.max_errors = max_errors
        self.nodes_visited = 0

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        view = NoiseSiteView(circuit)
        table = _SiteTable(view, self.max_errors)
        found: List[Tuple[List[ErrorCandidate], float]] = []

        self.nodes_visited = _enumerate(
            table,
            cutoff_fn=lambda: self.cutoff,
            emit_fn=lambda sel, p: found.append((sel, p)),
        )
        found.sort(key=lambda item: -item[1])
        if self.nshots is not None:
            shot_list = [self.nshots] * len(found)
        else:
            from repro.pts.proportional import apportion_shots

            probs = np.array([p for _, p in found])
            shot_list = apportion_shots(probs, self.total_shots)
        specs = [
            self.make_spec(view, sel, int(shots), trajectory_id=i)
            for i, ((sel, _), shots) in enumerate(zip(found, shot_list))
            if int(shots) > 0
        ]
        return PTSResult(specs=specs, algorithm=f"{self.name}(cutoff={self.cutoff:g})")


class TopKPTS(PTSAlgorithm):
    """The ``k`` most likely error combinations (adaptive-cutoff search)."""

    name = "top_k"

    def __init__(self, k: int, nshots: int = 1000, max_errors: Optional[int] = None):
        if k <= 0:
            raise SamplingError("k must be positive")
        self.k = int(k)
        self.nshots = int(nshots)
        self.max_errors = max_errors
        self.nodes_visited = 0

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        view = NoiseSiteView(circuit)
        table = _SiteTable(view, self.max_errors)
        heap: List[Tuple[float, int, List[ErrorCandidate]]] = []
        counter = [0]

        def cutoff() -> float:
            return heap[0][0] if len(heap) >= self.k else 0.0

        def emit(sel: List[ErrorCandidate], p: float) -> None:
            counter[0] += 1
            item = (p, counter[0], sel)
            if len(heap) < self.k:
                heapq.heappush(heap, item)
            elif p > heap[0][0]:
                heapq.heapreplace(heap, item)

        self.nodes_visited = _enumerate(table, cutoff, emit)
        ranked = sorted(heap, key=lambda item: -item[0])
        specs = [
            self.make_spec(view, sel, self.nshots, trajectory_id=i)
            for i, (_, _, sel) in enumerate(ranked)
        ]
        return PTSResult(specs=specs, algorithm=f"{self.name}(k={self.k})")
