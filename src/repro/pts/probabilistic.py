"""Paper Algorithm 2: the basic probabilistic PTS algorithm.

For each of ``nsamples`` attempts, walk every error candidate of the noisy
circuit, draw ``r ~ U(0,1)``, select the candidate when ``r <= p`` and it
is :func:`~repro.pts.compatibility.compatible` with the selections so far;
keep the resulting Kraus set only if
:func:`~repro.pts.compatibility.unique_kraus` hasn't seen it, and assign
it a large uniform shot budget ``nshots`` "to maximize data collection,
such as would be useful for training ML models" (paper §3.1).

Cost is ``O(nsamples * |candidates|)`` — the paper's
"~O(|{K}|^2 (p)^2)" scaling with the expected number of fired sites —
entirely independent of the exponential state dimension, which is the
whole point: stochastic decisions are made *before* any state exists.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import SamplingError
from repro.pts.base import (
    ErrorCandidate,
    NoiseSiteView,
    PTSAlgorithm,
    PTSResult,
    TrajectorySpec,
)
from repro.pts.compatibility import compatible, unique_kraus

__all__ = ["ProbabilisticPTS"]


class ProbabilisticPTS(PTSAlgorithm):
    """Algorithm 2 with optional candidate filtering.

    Parameters
    ----------
    nsamples:
        Number of sampling attempts (outer loop of Algorithm 2).
    nshots:
        Uniform shot budget assigned to each unique Kraus set.
    include_ideal:
        Also emit the no-error trajectory when the sampler produces it
        (``True``, default, matches Algorithm 2 — an empty KrausSample is
        a perfectly valid unique trajectory).
    candidate_filter:
        Optional predicate restricting which error branches are eligible —
        the "selection criteria [added] to Line 5 of Algorithm 2"
        (see :mod:`repro.pts.filters`).
    """

    name = "probabilistic"

    def __init__(
        self,
        nsamples: int,
        nshots: int,
        include_ideal: bool = True,
        candidate_filter: Optional[Callable[[ErrorCandidate], bool]] = None,
    ):
        if nsamples < 0:
            raise SamplingError("nsamples must be >= 0")
        if nshots <= 0:
            raise SamplingError("nshots must be positive")
        self.nsamples = int(nsamples)
        self.nshots = int(nshots)
        self.include_ideal = include_ideal
        self.candidate_filter = candidate_filter

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        view = NoiseSiteView(circuit)
        candidates = view.candidates
        if self.candidate_filter is not None:
            candidates = [c for c in candidates if self.candidate_filter(c)]
        probs = np.array([c.probability for c in candidates], dtype=np.float64)

        specs: List[TrajectorySpec] = []
        seen: Set[Tuple[Tuple[int, int], ...]] = set()
        duplicates = 0
        incompatible = 0
        for _ in range(self.nsamples):
            selection: List[ErrorCandidate] = []
            if len(candidates):
                # Vectorized Bernoulli pass over all candidates (the inner
                # loop of Algorithm 2, lines 5-12).
                fired = np.nonzero(rng.random(len(candidates)) <= probs)[0]
                for idx in fired:
                    cand = candidates[int(idx)]
                    if compatible(cand, selection):
                        selection.append(cand)
                    else:
                        incompatible += 1
            if not selection and not self.include_ideal:
                continue
            if unique_kraus(selection, seen):
                specs.append(
                    self.make_spec(view, selection, self.nshots, trajectory_id=len(specs))
                )
            else:
                duplicates += 1
        return PTSResult(
            specs=specs,
            algorithm=self.name,
            attempted_samples=self.nsamples,
            duplicates_rejected=duplicates,
            incompatible_rejected=incompatible,
        )
