"""Adaptive two-phase PTS: Neyman shot allocation (extension).

Paper §3.1 closes with "numerous straightforward expansions on Algorithm 2
can be constructed".  This module implements one with real statistical
teeth: when the goal is estimating an observable (rather than maximizing
raw data), the optimal stratified allocation is *Neyman's*

    m_a  ~  w_a * s_a

— shots proportional to stratum weight *times within-stratum standard
deviation* — not to ``w_a`` alone (proportional sampling) and not uniform
(Algorithm 2's dataset mode).  Trajectories whose outcome is deterministic
(s_a = 0) get only the pilot shots; budget concentrates where the noise
actually produces outcome variance.

Two phases:

1. **Pilot**: run a base PTS pass and execute every unique trajectory for
   ``pilot_shots`` to estimate each stratum's standard deviation;
2. **Allocate**: distribute the remaining budget by Neyman weights and
   emit the final :class:`~repro.pts.base.TrajectorySpec` list.

The pilot needs a backend, so unlike pure pre-samplers this class takes
one; it remains "pre-trajectory" in the sense that matters — the final,
expensive data-collection pass still prepares each state exactly once.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.circuits.circuit import Circuit
from repro.errors import SamplingError
from repro.execution.batched import BackendSpec, BatchedExecutor
from repro.pts.base import PTSAlgorithm, PTSResult, TrajectorySpec
from repro.pts.probabilistic import ProbabilisticPTS
from repro.pts.proportional import apportion_shots

__all__ = ["AdaptiveNeymanPTS"]


class AdaptiveNeymanPTS(PTSAlgorithm):
    """Two-phase variance-adaptive shot allocation.

    Parameters
    ----------
    total_shots:
        Final shot budget (pilot shots are additional).
    observable:
        Maps an ``(m, k)`` bit block to ``m`` values; its within-stratum
        standard deviation drives the allocation.
    base:
        Trajectory-set generator (default: Algorithm 2).
    pilot_shots:
        Shots per trajectory in the pilot phase.
    backend:
        Backend recipe for the pilot executions.
    min_shots:
        Floor per surviving stratum in the final allocation.
    """

    name = "adaptive_neyman"

    def __init__(
        self,
        total_shots: int,
        observable: Callable[[np.ndarray], np.ndarray],
        base: Optional[PTSAlgorithm] = None,
        nsamples: int = 1000,
        pilot_shots: int = 64,
        backend: Optional[BackendSpec] = None,
        min_shots: int = 1,
        seed: int = 0,
    ):
        if total_shots <= 0:
            raise SamplingError("total_shots must be positive")
        if pilot_shots < 2:
            raise SamplingError("pilot_shots must be >= 2 to estimate variance")
        self.total_shots = int(total_shots)
        self.observable = observable
        self.base = base if base is not None else ProbabilisticPTS(nsamples, nshots=1)
        self.pilot_shots = int(pilot_shots)
        self.backend = backend or BackendSpec()
        self.min_shots = int(min_shots)
        self.seed = seed
        self.pilot_result = None  # exposed for inspection/tests

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        base_result = self.base.sample(circuit, rng)
        if not base_result.specs:
            raise SamplingError("base sampler produced no trajectories")

        # Phase 1: pilot run to estimate within-stratum deviations.
        pilot_specs = [s.with_shots(self.pilot_shots) for s in base_result.specs]
        executor = BatchedExecutor(self.backend)
        self.pilot_result = executor.execute(circuit, pilot_specs, seed=self.seed)

        weights = []
        sigmas = []
        for t in self.pilot_result.trajectories:
            weights.append(t.record.nominal_probability)
            if t.num_shots >= 2:
                values = np.asarray(self.observable(t.bits), dtype=np.float64)
                sigmas.append(float(values.std(ddof=1)))
            else:
                sigmas.append(0.0)
        weights = np.asarray(weights)
        sigmas = np.asarray(sigmas)

        # Phase 2: Neyman allocation m_a ~ w_a * s_a (fall back to
        # proportional when every stratum looks deterministic).
        scores = weights * sigmas
        if scores.sum() <= 0:
            scores = weights
        shots = apportion_shots(scores, self.total_shots)
        if self.min_shots > 0:
            shots = np.maximum(shots, self.min_shots)
        specs = [
            spec.with_shots(int(m))
            for spec, m in zip(base_result.specs, shots)
            if int(m) > 0
        ]
        return PTSResult(
            specs=specs,
            algorithm=f"{self.name}({self.base.name})",
            attempted_samples=base_result.attempted_samples,
            duplicates_rejected=base_result.duplicates_rejected,
            incompatible_rejected=base_result.incompatible_rejected,
        )
