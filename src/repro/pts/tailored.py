"""Tailored error injection: Pauli twirling and spatially correlated noise.

The paper's contribution list opens with "tailored error injection for
specific QEC analysis scenarios (e.g., Pauli twirling or spatially
correlated noise)".  Two samplers:

* :class:`PauliTwirlPTS` — replaces every noise channel with its Pauli
  twirl (a Pauli channel with matched error rates) before delegating to a
  base sampler.  Twirled circuits are what most QEC decoders assume, and
  twirled channels are always unitary mixtures, so joint probabilities
  become exact.
* :class:`CorrelatedNoisePTS` — injects spatially correlated error
  *bursts*: a burst picks a center qubit and a moment window, then selects
  an error branch at every noise site within ``radius`` qubits (linear
  topology) and ``moment_window`` moments of the center.  This models
  correlated events (cosmic rays, leakage cascades, crosstalk) that
  independent-error sampling essentially never produces — exactly the
  "targeted error analysis" rigid samplers cannot do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import SamplingError
from repro.pts.base import (
    ErrorCandidate,
    NoiseSiteView,
    PTSAlgorithm,
    PTSResult,
    TrajectorySpec,
)
from repro.pts.compatibility import compatible, unique_kraus
from repro.pts.probabilistic import ProbabilisticPTS

__all__ = ["PauliTwirlPTS", "CorrelatedNoisePTS", "twirl_circuit"]


def twirl_circuit(circuit: Circuit) -> Circuit:
    """Replace every single-qubit channel with its Pauli twirl."""
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_twirled")
    for op in circuit:
        if isinstance(op, NoiseOp):
            channel = op.channel
            if channel.num_qubits == 1:
                channel = channel.pauli_twirl()
            out.attach(channel, *op.qubits)
        elif isinstance(op, GateOp):
            out.gate(op.gate, *op.qubits)
        else:
            out.append(MeasureOp(op.qubits, key=op.key))
    return out.freeze()


class PauliTwirlPTS(PTSAlgorithm):
    """Twirl the circuit's channels, then run a base PTS algorithm.

    The emitted specs reference the *twirled* circuit, which is also
    exposed as :attr:`twirled_circuit` after :meth:`sample` — batched
    execution must run against it (the executor helper
    ``repro.execution.batched.run_ptsbe`` handles this automatically when
    given this sampler).
    """

    name = "pauli_twirl"

    def __init__(self, base: Optional[PTSAlgorithm] = None, nsamples: int = 1000, nshots: int = 1000):
        self.base = base if base is not None else ProbabilisticPTS(nsamples, nshots)
        self.twirled_circuit: Optional[Circuit] = None

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        self.twirled_circuit = twirl_circuit(circuit)
        result = self.base.sample(self.twirled_circuit, rng)
        return PTSResult(
            specs=result.specs,
            algorithm=f"{self.name}({self.base.name})",
            attempted_samples=result.attempted_samples,
            duplicates_rejected=result.duplicates_rejected,
            incompatible_rejected=result.incompatible_rejected,
        )


class CorrelatedNoisePTS(PTSAlgorithm):
    """Spatially correlated burst-error injection.

    Parameters
    ----------
    num_bursts:
        Number of burst trajectories to attempt.
    radius:
        Spatial burst radius in qubit-index distance (linear topology).
    moment_window:
        Temporal burst half-width in moments.
    nshots:
        Shot budget per burst trajectory.
    burst_fire_probability:
        Probability that each in-burst site fires an error branch
        (conditional on the burst); branches are chosen proportionally to
        their nominal probabilities.
    """

    name = "correlated_burst"

    def __init__(
        self,
        num_bursts: int,
        radius: int = 1,
        moment_window: int = 1,
        nshots: int = 1000,
        burst_fire_probability: float = 1.0,
    ):
        if num_bursts < 0:
            raise SamplingError("num_bursts must be >= 0")
        if not (0.0 < burst_fire_probability <= 1.0):
            raise SamplingError("burst_fire_probability must be in (0, 1]")
        self.num_bursts = int(num_bursts)
        self.radius = int(radius)
        self.moment_window = int(moment_window)
        self.nshots = int(nshots)
        self.burst_fire_probability = float(burst_fire_probability)

    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        view = NoiseSiteView(circuit)
        if view.num_candidates == 0:
            raise SamplingError("circuit has no error candidates to correlate")
        # Index candidates by site for proportional in-site branch choice.
        by_site: Dict[int, List[ErrorCandidate]] = {}
        for cand in view.candidates:
            by_site.setdefault(cand.site_id, []).append(cand)
        moments = [view.site_moment[sid] for sid in sorted(view.site_moment)]
        max_moment = max(moments) if moments else 0

        specs: List[TrajectorySpec] = []
        seen: Set[Tuple[Tuple[int, int], ...]] = set()
        duplicates = 0
        for _ in range(self.num_bursts):
            center_qubit = int(rng.integers(0, circuit.num_qubits))
            center_moment = int(rng.integers(0, max_moment + 1))
            selection: List[ErrorCandidate] = []
            for sid, cands in by_site.items():
                site_moment = view.site_moment[sid]
                if abs(site_moment - center_moment) > self.moment_window:
                    continue
                qubits = cands[0].qubits
                if min(abs(q - center_qubit) for q in qubits) > self.radius:
                    continue
                if rng.random() > self.burst_fire_probability:
                    continue
                probs = np.array([c.probability for c in cands])
                pick = cands[int(rng.choice(len(cands), p=probs / probs.sum()))]
                if compatible(pick, selection):
                    selection.append(pick)
            if not selection:
                continue
            if unique_kraus(selection, seen):
                specs.append(
                    self.make_spec(view, selection, self.nshots, trajectory_id=len(specs))
                )
            else:
                duplicates += 1
        return PTSResult(
            specs=specs,
            algorithm=f"{self.name}(r={self.radius},w={self.moment_window})",
            attempted_samples=self.num_bursts,
            duplicates_rejected=duplicates,
        )
