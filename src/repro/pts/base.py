"""PTS core abstractions: candidates, trajectory specs, algorithm base.

:class:`NoiseSiteView` flattens a frozen noisy circuit into the
``NoisyCircuit({K}, {p})`` iterable of paper Algorithm 2: one
:class:`ErrorCandidate` per non-dominant Kraus branch per noise site, each
carrying its nominal probability, target qubits, moment index (for the
``compatible`` check) and the name of the gate it decorates (for the
selection-criteria filters).

:class:`TrajectorySpec` is PTS's output unit — "the prescribed sampled set
of Kraus operators {K_a0, ..., K_ai} along with their prescribed number of
shots m_a" (paper Fig. 1) plus the provenance record.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.moments import moment_index_of_ops
from repro.circuits.operations import GateOp, NoiseOp
from repro.errors import SamplingError
from repro.trajectory.events import KrausEvent, TrajectoryRecord

__all__ = [
    "ErrorCandidate",
    "NoiseSiteView",
    "TrajectorySpec",
    "SpecGroup",
    "deduplicate_specs",
    "PTSResult",
    "PTSAlgorithm",
]


@dataclass(frozen=True)
class ErrorCandidate:
    """One selectable error branch: Kraus op ``kraus_index`` at ``site_id``."""

    site_id: int
    kraus_index: int
    probability: float
    qubits: Tuple[int, ...]
    channel_name: str
    moment: int
    gate_context: str  # name of the gate this channel decorates ("" if none)

    def event(self) -> KrausEvent:
        return KrausEvent(
            site_id=self.site_id,
            kraus_index=self.kraus_index,
            qubits=self.qubits,
            channel_name=self.channel_name,
            probability=self.probability,
        )


class NoiseSiteView:
    """Flattened view of a frozen circuit's stochastic structure."""

    def __init__(self, circuit: Circuit):
        if not circuit.frozen:
            raise SamplingError("NoiseSiteView requires a frozen circuit")
        self.circuit = circuit
        moments = moment_index_of_ops(circuit)
        self.sites: List[NoiseOp] = []
        self.candidates: List[ErrorCandidate] = []
        self.dominant_prob: Dict[int, float] = {}
        self.site_moment: Dict[int, int] = {}
        last_gate_on_qubit: Dict[int, str] = {}
        for op_index, op in enumerate(circuit):
            if isinstance(op, GateOp):
                for q in op.qubits:
                    last_gate_on_qubit[q] = op.gate.name
                continue
            if not isinstance(op, NoiseOp):
                continue
            self.sites.append(op)
            channel = op.channel
            dom = channel.dominant_index()
            probs = channel.nominal_probs
            self.dominant_prob[op.site_id] = float(probs[dom])
            self.site_moment[op.site_id] = moments[op_index]
            context = last_gate_on_qubit.get(op.qubits[0], "")
            for k, p in enumerate(probs):
                if k == dom or p <= 0.0:
                    continue
                self.candidates.append(
                    ErrorCandidate(
                        site_id=op.site_id,
                        kraus_index=k,
                        probability=float(p),
                        qubits=op.qubits,
                        channel_name=channel.name,
                        moment=moments[op_index],
                        gate_context=context,
                    )
                )

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    def site_by_id(self, site_id: int) -> NoiseOp:
        for op in self.sites:
            if op.site_id == site_id:
                return op
        raise SamplingError(f"unknown noise site {site_id}")

    # ------------------------------------------------------------------ #
    # joint probabilities
    # ------------------------------------------------------------------ #
    def log_dominant_total(self) -> float:
        """log of the all-dominant ("ideal") trajectory probability."""
        total = 0.0
        for p in self.dominant_prob.values():
            if p <= 0.0:
                return -math.inf
            total += math.log(p)
        return total

    def joint_probability(self, selection: Sequence[ErrorCandidate]) -> float:
        """Nominal joint probability of a Kraus-operator selection.

        Selected sites contribute their branch probability; all other sites
        contribute their dominant-branch probability.  Exact for unitary-
        mixture noise (state-independent probabilities, paper §2.2).
        """
        log_p = self.log_dominant_total()
        for cand in selection:
            dom = self.dominant_prob[cand.site_id]
            if dom <= 0.0 or cand.probability <= 0.0:
                return 0.0
            log_p += math.log(cand.probability) - math.log(dom)
        return math.exp(log_p)


@dataclass
class TrajectorySpec:
    """One prescribed trajectory: fixed Kraus choices + shot budget."""

    record: TrajectoryRecord
    num_shots: int

    @property
    def choices(self) -> Dict[int, int]:
        return self.record.choices

    @property
    def probability(self) -> float:
        return self.record.nominal_probability

    def with_shots(self, num_shots: int) -> "TrajectorySpec":
        return TrajectorySpec(record=self.record, num_shots=int(num_shots))

    def dedup_key(self) -> Tuple[Tuple[int, int], ...]:
        """Hashable identity of the *prepared state* this spec prescribes.

        Two specs with equal keys realize the same Kraus choices on the
        same circuit and therefore the same noisy state — the vectorized
        executor prepares such specs once and only merges shot budgets.
        Delegates to :meth:`TrajectoryRecord.signature` (sorted
        ``(site_id, kraus_index)`` pairs).
        """
        return self.record.signature()

    def __repr__(self) -> str:
        return f"TrajectorySpec(errors={self.record.num_errors()}, shots={self.num_shots}, p={self.probability:.3e})"


@dataclass(frozen=True)
class SpecGroup:
    """Specs sharing one prepared state (identical Kraus choices).

    ``indices`` point into the original spec sequence, in first-occurrence
    order; ``total_shots`` is the merged shot budget of the group — one
    state preparation serves all of it.
    """

    key: Tuple[Tuple[int, int], ...]
    indices: Tuple[int, ...]
    total_shots: int


def deduplicate_specs(specs: Sequence[TrajectorySpec]) -> List[SpecGroup]:
    """Group trajectory specs by :meth:`TrajectorySpec.dedup_key`.

    PTS algorithms already reject duplicate error combinations within one
    run (``uniqueKraus``), but specs merged across runs, algorithms, or
    hand-built workloads can repeat.  Groups preserve the first-occurrence
    order of their keys, so batched preparation stays deterministic.
    """
    grouped: Dict[Tuple[Tuple[int, int], ...], List[int]] = {}
    for i, spec in enumerate(specs):
        grouped.setdefault(spec.dedup_key(), []).append(i)
    return [
        SpecGroup(
            key=key,
            indices=tuple(indices),
            total_shots=sum(specs[i].num_shots for i in indices),
        )
        for key, indices in grouped.items()
    ]


@dataclass
class PTSResult:
    """Everything a PTS algorithm hands to batched execution."""

    specs: List[TrajectorySpec]
    algorithm: str
    attempted_samples: int = 0
    duplicates_rejected: int = 0
    incompatible_rejected: int = 0

    @property
    def num_trajectories(self) -> int:
        return len(self.specs)

    @property
    def total_shots(self) -> int:
        return sum(s.num_shots for s in self.specs)

    def coverage(self) -> float:
        """Sum of nominal probabilities of the distinct sampled sets.

        The fraction of the full trajectory distribution {p_alpha} (which
        has unit total probability, paper Fig. 2) that the sampled subsets
        account for.
        """
        return float(sum(s.probability for s in self.specs))

    def sorted_by_probability(self) -> List[TrajectorySpec]:
        return sorted(self.specs, key=lambda s: -s.probability)

    def __repr__(self) -> str:
        return (
            f"PTSResult({self.algorithm}, trajectories={self.num_trajectories}, "
            f"shots={self.total_shots}, coverage={self.coverage():.4f})"
        )


class PTSAlgorithm(abc.ABC):
    """Base class: turn a frozen noisy circuit into trajectory specs."""

    name = "pts"

    @abc.abstractmethod
    def sample(self, circuit: Circuit, rng: np.random.Generator) -> PTSResult:
        """Run the pre-sampling pass."""

    # Shared helper ----------------------------------------------------- #
    @staticmethod
    def make_spec(
        view: NoiseSiteView,
        selection: Sequence[ErrorCandidate],
        num_shots: int,
        trajectory_id: int,
    ) -> TrajectorySpec:
        record = TrajectoryRecord(
            trajectory_id=trajectory_id,
            events=tuple(c.event() for c in selection),
            nominal_probability=view.joint_probability(selection),
        )
        return TrajectorySpec(record=record, num_shots=int(num_shots))
