"""Candidate selection criteria — paper §3.1's "Line 5" extensions.

"Separately, we could also add selection criteria to Line 5 of Algorithm 2
to specify gate type, parity, location, and so on."

Each factory returns a predicate ``ErrorCandidate -> bool``; predicates
compose with ``&``, ``|`` and ``~`` via the :class:`Filter` wrapper, and
plug into any sampler accepting ``candidate_filter``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.pts.base import ErrorCandidate

__all__ = [
    "Filter",
    "by_gate_context",
    "by_channel_name",
    "by_qubits",
    "by_qubit_parity",
    "by_min_probability",
    "by_max_probability",
    "by_site_range",
]


class Filter:
    """Composable predicate over error candidates."""

    def __init__(self, fn: Callable[[ErrorCandidate], bool], label: str = "filter"):
        self.fn = fn
        self.label = label

    def __call__(self, candidate: ErrorCandidate) -> bool:
        return self.fn(candidate)

    def __and__(self, other: "Filter") -> "Filter":
        return Filter(lambda c: self(c) and other(c), f"({self.label} & {other.label})")

    def __or__(self, other: "Filter") -> "Filter":
        return Filter(lambda c: self(c) or other(c), f"({self.label} | {other.label})")

    def __invert__(self) -> "Filter":
        return Filter(lambda c: not self(c), f"~{self.label}")

    def __repr__(self) -> str:
        return f"Filter({self.label})"


def by_gate_context(*gate_names: str) -> Filter:
    """Keep errors decorating one of the named gates (e.g. only CX noise)."""
    names = {g.lower() for g in gate_names}
    return Filter(lambda c: c.gate_context.lower() in names, f"gate in {sorted(names)}")


def by_channel_name(*channel_names: str) -> Filter:
    """Keep errors from channels whose name starts with any given prefix."""
    prefixes = tuple(channel_names)
    return Filter(
        lambda c: c.channel_name.startswith(prefixes), f"channel in {list(prefixes)}"
    )


def by_qubits(qubits: Iterable[int]) -> Filter:
    """Keep errors touching only the given qubit set (spatial targeting)."""
    allowed = frozenset(qubits)
    return Filter(
        lambda c: set(c.qubits) <= allowed, f"qubits <= {sorted(allowed)}"
    )


def by_qubit_parity(parity: int) -> Filter:
    """Keep errors whose first target qubit has the given parity (0 or 1)."""
    parity = int(parity) % 2
    return Filter(lambda c: c.qubits[0] % 2 == parity, f"parity == {parity}")


def by_min_probability(p_min: float) -> Filter:
    """Keep error branches at least this likely."""
    return Filter(lambda c: c.probability >= p_min, f"p >= {p_min:g}")


def by_max_probability(p_max: float) -> Filter:
    """Keep error branches at most this likely (rare-error targeting)."""
    return Filter(lambda c: c.probability <= p_max, f"p <= {p_max:g}")


def by_site_range(start: int, stop: int) -> Filter:
    """Keep errors at noise sites in ``[start, stop)`` (temporal targeting)."""
    return Filter(lambda c: start <= c.site_id < stop, f"site in [{start},{stop})")
