"""Batched Pauli-frame execution: the Clifford fast path as a strategy.

The fifth execution strategy (``run_ptsbe(strategy="clifford")``): for
circuits that are pure Clifford with Pauli-mixture noise, trajectory
realization does not need a dense state at all.  The
:class:`~repro.backends.pauli_frame.FrameSampler` compiles the circuit
once — one tableau analysis of the ideal circuit plus one conjugation
walk that propagates every noise branch's Pauli pattern to the end — and
then each PTS :class:`~repro.pts.base.TrajectorySpec` costs:

* **O(sites)** to assemble its terminal frame: with the spec's Kraus
  choices *fixed*, the frame is deterministic — the XOR of the chosen
  branches' end-propagated X patterns (this is where PTS and Stim-style
  frame sampling compose: pre-sampling removes the per-shot branch draw
  the conventional frame sampler does);
* **two vectorized XORs** for its whole shot budget: reference outcome
  ⊕ random affine-generator combination ⊕ frame flips.

That is millions of shots per second at *any* width — the dense
strategies stop at ``Config.max_dense_qubits`` (26), this one happily
runs 40-qubit syndrome-extraction workloads.  Specs are deduplicated
into :class:`~repro.pts.base.SpecGroup`\\ s so each distinct Kraus
prescription pays its frame assembly once, and delivery goes through the
same :class:`~repro.execution.streaming.OrderedDelivery` discipline as
every other strategy, so ``run_ptsbe_stream``, ``retain=False``, and
mid-stream ``close()`` behave identically.

Faithfulness contract: per-trajectory *conditional distributions* and
weights are exactly those of the dense strategies (Pauli conjugation is
exact, and Pauli mixtures make weights state-independent products of
branch probabilities), but the per-shot random draws use a different
stochastic mechanism than dense amplitude sampling — so cross-strategy
conformance is distributional (TVD / chi-square, the sweep oracle's
statistical tier), not bitwise.  Seeded replay of *this* strategy is
still bitwise: shots derive from the same per-trajectory Philox streams
``(seed, trajectory_id)`` as everywhere else.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Union

from repro.backends.pauli_frame import FrameSampler
from repro.circuits.circuit import Circuit
from repro.errors import BackendError, ExecutionError
from repro.execution.batched import BackendSpec
from repro.execution.results import PTSBEResult, TrajectoryResult
from repro.execution.streaming import OrderedDelivery, StreamedResult
from repro.pts.base import TrajectorySpec, deduplicate_specs
from repro.rng import StreamFactory

__all__ = ["CliffordFrameExecutor"]


class CliffordFrameExecutor:
    """Execute trajectory specs by batched Pauli-frame propagation.

    Parameters
    ----------
    backend:
        Accepted for dispatch-signature symmetry.  Frame sampling needs
        no dense backend, so only the default dense kinds (which carry no
        state the frame path would miss) are tolerated; an ``"mps"`` spec
        or a backend factory is a real request for a specific simulator
        and is rejected rather than silently ignored.
    sample_kwargs:
        Accepted for signature symmetry; the frame sampler takes no
        sampling options, so a non-empty value is rejected up front.
    """

    def __init__(
        self,
        backend: Union[BackendSpec, Callable, None] = None,
        sample_kwargs: Optional[Dict] = None,
    ):
        if backend is not None and not isinstance(backend, BackendSpec):
            raise ExecutionError(
                "CliffordFrameExecutor simulates with Pauli frames, not a "
                "backend factory; drop the factory or pick a dense strategy"
            )
        if isinstance(backend, BackendSpec) and backend.kind not in (
            "statevector",
            "batched_statevector",
        ):
            raise ExecutionError(
                f"CliffordFrameExecutor cannot honor backend kind "
                f"{backend.kind!r}; it replaces dense simulation entirely"
            )
        if sample_kwargs:
            raise ExecutionError(
                "CliffordFrameExecutor's frame sampler takes no sample "
                f"options, got sample_kwargs={dict(sample_kwargs)!r}"
            )

    def execute(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
    ) -> PTSBEResult:
        """Run every spec: one frame assembly per dedup group, bulk XOR shots."""
        return self.execute_stream(circuit, specs, seed=seed).finalize()

    def execute_stream(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
        retain: bool = True,
    ) -> StreamedResult:
        """Stream each dedup group's trajectories as its frame completes.

        Chunks are released in spec order through an
        :class:`~repro.execution.streaming.OrderedDelivery` buffer (a
        dedup group can interleave spec positions), matching the delivery
        contract of every dense strategy.
        """
        circuit.freeze()
        measured = tuple(circuit.measured_qubits)
        if not measured:
            raise ExecutionError("circuit has no measurements to sample")
        if not specs:
            raise ExecutionError("no trajectory specs to execute")
        streams = StreamFactory(seed)
        t0 = time.perf_counter()
        try:
            sampler = FrameSampler(circuit)
        except BackendError as exc:
            raise ExecutionError(
                f"strategy 'clifford' requires a pure-Clifford circuit with "
                f"Pauli-mixture noise: {exc}"
            ) from exc
        compile_seconds = time.perf_counter() - t0
        groups = deduplicate_specs(specs)

        def deliver():
            delivery = OrderedDelivery(len(specs))
            # The one-time tableau/conjugation compile is real preparation
            # work; attribute it to the first group so shots-per-second
            # accounting stays honest.
            carry_prep = compile_seconds
            for group in groups:
                t1 = time.perf_counter()
                flips, weight = sampler.frame_for_choices(
                    specs[group.indices[0]].choices
                )
                prep_seconds = carry_prep + (time.perf_counter() - t1)
                carry_prep = 0.0
                completed = []
                for j, spec_index in enumerate(group.indices):
                    spec = specs[spec_index]
                    rng = streams.rng_for(spec.record.trajectory_id)
                    t2 = time.perf_counter()
                    bits = sampler.sample_fixed(flips, spec.num_shots, rng)
                    t3 = time.perf_counter()
                    completed.append(
                        (
                            spec_index,
                            TrajectoryResult(
                                record=spec.record,
                                bits=bits,
                                actual_weight=weight,
                                prep_seconds=prep_seconds if j == 0 else 0.0,
                                sample_seconds=t3 - t2,
                            ),
                        )
                    )
                ready = delivery.add(completed)
                if ready:
                    yield ready

        return StreamedResult(
            deliver(),
            measured_qubits=measured,
            seed=streams.seed,
            total_trajectories=len(specs),
            unique_preparations=len(groups),
            engine="clifford",
            retain=retain,
        )
