"""Vectorized trajectory-stacked execution.

The third execution strategy, alongside the serial
:class:`~repro.execution.batched.BatchedExecutor` and the process-pool
:class:`~repro.execution.parallel.ParallelExecutor`:

1. **Deduplicate** — specs are grouped by
   :meth:`~repro.pts.base.TrajectorySpec.dedup_key` so identical Kraus
   prescriptions are prepared exactly once (their shot budgets are served
   from the same stacked row);
2. **Compile** — the circuit's :class:`~repro.execution.plan.FusedPlan`
   is resolved once up front (fused gate/noise windows under
   ``Config.fusion="auto"``, one step per op under ``"off"``) and shared
   by every chunk, so B trajectories with the same Kraus prescription pay
   window compilation once;
3. **Stack** — each chunk of unique trajectories becomes one
   ``(B, 2**n)`` stack on a
   :class:`~repro.backends.batched_statevector.BatchedStatevectorBackend`,
   prepared with one plan walk (shared windows hit all rows in a single
   broadcast kernel, divergent Kraus variants hit row sub-slices);
4. **Bulk-sample** — every spec draws its full shot budget from the
   stack-wide cached cumulative tensor with the stream derived from
   ``(seed, trajectory_id)``.

Because the per-row arithmetic deliberately mirrors the serial backend
operation-for-operation, and sampling uses the exact same per-trajectory
Philox streams, a vectorized run is *shot-for-shot identical* to a serial
``BatchedExecutor`` run with the same seed — the same determinism
contract :mod:`repro.execution.parallel` upholds, verified in
``tests/test_vectorized.py``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backends.batched_statevector import BatchedStatevectorBackend
from repro.circuits.circuit import Circuit
from repro.errors import CapacityError, ExecutionError, FaultError
from repro.execution.batched import BackendSpec
from repro.execution.plan import get_fused_plan
from repro.execution.results import PTSBEResult, TrajectoryResult
from repro.execution.streaming import OrderedDelivery, StreamedResult
from repro.faults.retry import (
    FaultContext,
    RecoveryEvent,
    describe_exception,
    run_unit_with_retry,
)
from repro.pts.base import TrajectorySpec, deduplicate_specs
from repro.rng import StreamFactory

__all__ = ["VectorizedExecutor"]


class VectorizedExecutor:
    """Execute trajectory specs as stacked tensors on one process.

    Parameters
    ----------
    backend:
        A :class:`BackendSpec` of kind ``"batched_statevector"`` or
        ``"statevector"`` (the latter is upgraded to the stacked backend
        with the same options), or a callable ``num_qubits -> backend``
        returning a :class:`BatchedStatevectorBackend`-compatible object.
    max_batch:
        Upper bound on stacked rows per preparation chunk; the effective
        bound also respects the backend's dense amplitude budget.
    sample_kwargs:
        Accepted for signature symmetry with the other executors, but the
        stacked dense backend takes no sampling options — a non-empty
        value is rejected up front rather than crashing mid-run.
    """

    def __init__(
        self,
        backend: Union[BackendSpec, Callable[[int], BatchedStatevectorBackend], None] = None,
        max_batch: int = 64,
        sample_kwargs: Optional[Dict] = None,
    ):
        if backend is None:
            backend = BackendSpec.batched_statevector()
        if isinstance(backend, BackendSpec) and backend.kind not in (
            "statevector",
            "batched_statevector",
        ):
            raise ExecutionError(
                f"VectorizedExecutor supports dense statevector stacks only, "
                f"not backend kind {backend.kind!r}"
            )
        if max_batch <= 0:
            raise ExecutionError(f"max_batch must be positive, got {max_batch}")
        if sample_kwargs:
            raise ExecutionError(
                "VectorizedExecutor's stacked statevector backend takes no "
                f"sample options, got sample_kwargs={dict(sample_kwargs)!r}"
            )
        self.backend = backend
        self.max_batch = int(max_batch)

    def _make_backend(self, num_qubits: int) -> BatchedStatevectorBackend:
        if isinstance(self.backend, BackendSpec):
            opts = dict(self.backend.options)
            return BatchedStatevectorBackend(num_qubits, **opts)
        backend = self.backend(num_qubits)
        if not hasattr(backend, "run_fixed_stack"):
            raise ExecutionError(
                f"backend factory returned {type(backend).__name__}, which lacks "
                "run_fixed_stack; VectorizedExecutor needs a stacked backend"
            )
        return backend

    def execute(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
    ) -> PTSBEResult:
        """Run every spec: deduplicated stacked preparation, bulk sampling."""
        return self.execute_stream(circuit, specs, seed=seed).finalize()

    def execute_stream(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
        retain: bool = True,
    ) -> StreamedResult:
        """Stream each ``(B, 2**n)`` stack's trajectories as it completes.

        Chunks are released in spec order (an
        :class:`~repro.execution.streaming.OrderedDelivery` buffer holds
        back specs whose dedup group lands in a later stack), so
        concatenated streamed tables match :meth:`execute` bitwise.
        Abandoning the stream releases the backend's stack and sampling
        caches (device buffers under CuPy).  ``retain=False`` drops
        chunks after delivery (``finalize`` unavailable) to bound memory
        for pure-ingest consumers.
        """
        circuit.freeze()
        measured = tuple(circuit.measured_qubits)
        if not measured:
            raise ExecutionError("circuit has no measurements to sample")
        if not specs:
            raise ExecutionError("no trajectory specs to execute")
        streams = StreamFactory(seed)
        backend = self._make_backend(circuit.num_qubits)
        # Resolve (and memoize) the fused plan before the timed loop so
        # compilation is not attributed to the first chunk's prep time;
        # every chunk's run_fixed_stack call hits the plan cache.
        config = getattr(backend, "config", None)
        if config is not None:
            get_fused_plan(circuit, config)
        chunk_rows = min(self.max_batch, backend.max_batch_rows)
        groups = deduplicate_specs(specs)
        ctx = FaultContext.from_config(config, streams.seed, strategy="vectorized")
        events: List[RecoveryEvent] = []

        def run_chunk(start: int, end: int):
            """Prepare and sample one stack of groups ``[start, end)``.

            The whole chunk is one retryable unit: re-running it replays
            the identical ``run_fixed_stack`` call and re-derives every
            row's Philox stream from ``(seed, trajectory_id)``, so a
            retried chunk's shots are bitwise identical.
            """
            chunk = groups[start:end]
            choices_list = [specs[g.indices[0]].choices for g in chunk]
            t0 = time.perf_counter()
            weights, alive = backend.run_fixed_stack(circuit, choices_list)
            t1 = time.perf_counter()
            # One stacked preparation served the whole chunk; attribute
            # its wall-time evenly across the unique rows (duplicates
            # ride free).
            prep_each = (t1 - t0) / len(chunk)
            completed = []
            for row, group in enumerate(chunk):
                for j, spec_index in enumerate(group.indices):
                    spec = specs[spec_index]
                    rng = streams.rng_for(spec.record.trajectory_id)
                    if not alive[row]:
                        # Same contract as the serial engine on a
                        # ZeroProbabilityTrajectory: zero weight,
                        # no shots.
                        bits = np.empty((0, len(measured)), dtype=np.uint8)
                        weight, sample_s = 0.0, 0.0
                    else:
                        t2 = time.perf_counter()
                        bits = backend.sample(row, spec.num_shots, measured, rng)
                        t3 = time.perf_counter()
                        weight, sample_s = float(weights[row]), t3 - t2
                    completed.append(
                        (
                            spec_index,
                            TrajectoryResult(
                                record=spec.record,
                                bits=bits,
                                actual_weight=weight,
                                prep_seconds=prep_each if j == 0 else 0.0,
                                sample_seconds=sample_s,
                            ),
                        )
                    )
            return completed

        def deliver():
            delivery = OrderedDelivery(len(specs))
            # The degradation ladder works a queue of group ranges so a
            # CapacityError can split a chunk in place; dense stacking is
            # chunking-invariant (bitwise, by the row-wise contract), so
            # halving never changes a single shot.
            pending = deque(
                (start, min(start + chunk_rows, len(groups)))
                for start in range(0, len(groups), chunk_rows)
            )
            try:
                while pending:
                    start, end = pending.popleft()
                    unit = f"vectorized/stack:{start}:{end}"
                    try:
                        completed = run_unit_with_retry(
                            lambda attempt: run_chunk(start, end),
                            unit=unit,
                            ctx=ctx,
                            recovery=events,
                        )
                    except CapacityError as exc:
                        if end - start > 1:
                            mid = (start + end) // 2
                            events.append(
                                RecoveryEvent(
                                    kind="batch-halved",
                                    strategy=ctx.strategy,
                                    unit=unit,
                                    attempt=0,
                                    error=describe_exception(exc),
                                    detail=(
                                        f"split into stack:{start}:{mid} "
                                        f"and stack:{mid}:{end}"
                                    ),
                                )
                            )
                            pending.appendleft((mid, end))
                            pending.appendleft((start, mid))
                            continue
                        raise FaultError(
                            f"stacked preparation of {unit!r} failed at the "
                            f"single-row floor: {describe_exception(exc)}",
                            unit=unit,
                            attempts=1,
                        ) from exc
                    ready = delivery.add(completed)
                    if ready:
                        yield ready
            finally:
                release = getattr(backend, "release", None)
                if release is not None:
                    release()

        return StreamedResult(
            deliver(),
            measured_qubits=measured,
            seed=streams.seed,
            total_trajectories=len(specs),
            unique_preparations=len(groups),
            # The backend is allocated eagerly (validation happens at call
            # time); a close() before the first chunk never enters the
            # generator, so its finally can't release — close() must.
            on_close=getattr(backend, "release", None),
            engine="vectorized",
            retain=retain,
            recovery=events,
        )
