"""Per-circuit engine routing behind ``strategy="auto"``.

Production noisy-simulation stacks route each circuit to the cheapest
*faithful* engine (the qsim/Cirq noise paper does exactly this); here the
choice is between the dense trajectory strategies and the batched
Pauli-frame fast path (:mod:`repro.execution.clifford`):

* **frames** are faithful iff every gate is Clifford (the 14 names the
  tableau backend and the frame conjugation rules both support) and every
  noise channel is a Pauli mixture — then per-trajectory conditionals and
  weights match the dense engines exactly, at millions of shots/s and
  independent of width;
* **tensornet** serves circuits the dense strategies *cannot*: widths
  past ``Config.max_dense_qubits`` (up to ``Config.max_tensornet_qubits``)
  that are not frame-eligible route to the trajectory-stacked truncated
  MPS (:mod:`repro.execution.tensornet`) — conformance there is
  distributional (truncation perturbs amplitudes), which is the right
  contract for a workload no exact dense engine can run at all;
* **everything else** falls back to the pre-router dense resolution
  (``"vectorized"`` for a ``batched_statevector`` backend spec, else
  ``"serial"``) — bit-for-bit the same dispatch as before this module
  existed, which is what keeps ``strategy="auto"`` on non-Clifford
  circuits bitwise stable across the router's introduction.

The gate/noise analysis is cached per frozen circuit (weak-keyed, like
the fused-plan cache) so repeated dispatches — a sweep running one
circuit through several strategies, a service handling repeat requests —
pay the channel decompositions once.  ``Config.routing="dense"`` forces
the fallback unconditionally for bitwise back-compat of Clifford
workloads that were previously served dense.

Every decision is recorded on the result (``PTSBEResult.routing`` /
``StreamedResult.routing``) so a run can always answer "which engine ran,
and why".
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.backends.stabilizer import StabilizerBackend, pauli_from_unitary
from repro.channels.unitary_mixture import as_unitary_mixture
from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, NoiseOp
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import ExecutionError

__all__ = [
    "CLIFFORD_GATES",
    "CircuitProfile",
    "analyze_circuit",
    "resolve_strategy",
    "clear_router_cache",
    "router_cache_stats",
]

#: Gate names both the tableau backend and the frame conjugation rules
#: support — the exact applicability condition of the frame engine.
CLIFFORD_GATES = frozenset(StabilizerBackend._GATE_DISPATCH)


@dataclass(frozen=True)
class CircuitProfile:
    """Cached routing-relevant facts about one frozen circuit.

    ``frame_eligible`` is the faithfulness verdict; ``reason`` names the
    first disqualifier (or summarizes the Clifford/Pauli structure when
    eligible) so routing decisions stay explainable.
    """

    frame_eligible: bool
    reason: str
    num_gates: int = 0
    num_noise_sites: int = 0


_ROUTER_CACHE: "weakref.WeakKeyDictionary[Circuit, CircuitProfile]" = (
    weakref.WeakKeyDictionary()
)
_CACHE_STATS = {"hits": 0, "misses": 0}


def _profile(circuit: Circuit) -> CircuitProfile:
    num_gates = 0
    num_sites = 0
    # Channels repeat object-identically across sites (noise models attach
    # one channel instance per gate name), so memoize the branch analysis
    # per channel object within the walk.
    channel_verdicts: Dict[int, Optional[str]] = {}
    for op in circuit:
        if isinstance(op, GateOp):
            num_gates += 1
            name = op.gate.name.lower()
            if name not in CLIFFORD_GATES:
                return CircuitProfile(
                    frame_eligible=False,
                    reason=f"gate {op.gate.name!r} is non-Clifford",
                    num_gates=num_gates,
                    num_noise_sites=num_sites,
                )
        elif isinstance(op, NoiseOp):
            num_sites += 1
            verdict = channel_verdicts.get(id(op.channel), "unseen")
            if verdict == "unseen":
                verdict = _non_pauli_reason(op.channel, len(op.qubits))
                channel_verdicts[id(op.channel)] = verdict
            if verdict is not None:
                return CircuitProfile(
                    frame_eligible=False,
                    reason=verdict,
                    num_gates=num_gates,
                    num_noise_sites=num_sites,
                )
    if not circuit.measured_qubits:
        return CircuitProfile(
            frame_eligible=False,
            reason="circuit has no measurements",
            num_gates=num_gates,
            num_noise_sites=num_sites,
        )
    return CircuitProfile(
        frame_eligible=True,
        reason=(
            f"{num_gates} Clifford gates, {num_sites} Pauli-mixture "
            "noise sites"
        ),
        num_gates=num_gates,
        num_noise_sites=num_sites,
    )


def _non_pauli_reason(channel, num_qubits: int) -> Optional[str]:
    """Why a channel disqualifies frame routing, or ``None`` if it doesn't."""
    mixture = as_unitary_mixture(channel)
    if mixture is None:
        return f"channel {channel.name!r} is not a unitary mixture"
    for b, unitary in enumerate(mixture.unitaries):
        if pauli_from_unitary(unitary, num_qubits) is None:
            return (
                f"channel {channel.name!r} branch {b} is unitary but not a "
                "Pauli string"
            )
    return None


def analyze_circuit(circuit: Circuit) -> CircuitProfile:
    """Memoized routing analysis of a frozen circuit."""
    if not circuit.frozen:
        raise ExecutionError("engine routing requires a frozen circuit")
    profile = _ROUTER_CACHE.get(circuit)
    if profile is None:
        _CACHE_STATS["misses"] += 1
        profile = _profile(circuit)
        _ROUTER_CACHE[circuit] = profile
    else:
        _CACHE_STATS["hits"] += 1
    return profile


def _dense_auto(backend) -> str:
    """The pre-router ``"auto"`` resolution, bit-for-bit."""
    from repro.execution.batched import BackendSpec

    kind = backend.kind if isinstance(backend, BackendSpec) else None
    return "vectorized" if kind == "batched_statevector" else "serial"


def resolve_strategy(
    circuit: Circuit,
    backend,
    strategy: str,
    config: Optional[Config] = None,
) -> Tuple[str, str]:
    """Resolve ``strategy`` to a concrete engine name + decision trail.

    Explicit strategies pass through untouched (the trail records that
    they were requested).  ``"auto"`` consults the cached circuit profile:

    =====================================  ==========================
    condition                              resolved engine
    =====================================  ==========================
    ``Config.routing == "dense"``          dense auto (vectorized/serial)
    backend is a factory or ``"mps"``      dense auto (explicit backend)
    pure Clifford + Pauli-mixture noise    ``"clifford"`` (frames)
    width > ``Config.max_dense_qubits``    ``"tensornet"`` (stacked MPS)
    any non-Clifford gate / other channel  dense auto (vectorized/serial)
    =====================================  ==========================

    The tensornet tier sits *after* the frame check (frames are exact and
    cheaper when applicable) and only fires up to
    ``Config.max_tensornet_qubits``; past that, the dense resolution is
    returned and dispatch raises its capacity error.
    """
    from repro.execution.batched import BackendSpec

    if strategy != "auto":
        return strategy, f"explicit strategy {strategy!r}"
    config = config or DEFAULT_CONFIG
    routing = getattr(config, "routing", "auto")
    if routing not in ("auto", "dense"):
        raise ExecutionError(
            f"Config.routing must be 'auto' or 'dense', got {routing!r}"
        )
    dense = _dense_auto(backend)
    if routing == "dense":
        return dense, f"auto->{dense}: routing disabled (Config.routing='dense')"
    if not isinstance(backend, BackendSpec):
        return dense, f"auto->{dense}: explicit backend factory requested"
    if backend.kind not in ("statevector", "batched_statevector"):
        return dense, f"auto->{dense}: explicit {backend.kind!r} backend requested"
    profile = analyze_circuit(circuit)
    if profile.frame_eligible:
        return "clifford", f"auto->clifford: {profile.reason}"
    width = circuit.num_qubits
    if config.max_dense_qubits < width <= config.max_tensornet_qubits:
        return (
            "tensornet",
            f"auto->tensornet: width {width} exceeds the dense cap "
            f"(max_dense_qubits={config.max_dense_qubits}) and "
            f"{profile.reason}",
        )
    return dense, f"auto->{dense}: {profile.reason}"


def clear_router_cache() -> None:
    """Drop every cached circuit profile (tests)."""
    _ROUTER_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def router_cache_stats() -> Dict[str, int]:
    """Router-cache hit/miss counters (copies, not live references)."""
    return dict(_CACHE_STATS)
