"""Batched execution (BE): realizing PTS trajectory specs efficiently.

The engine prepares each prescribed noisy state exactly once and draws its
full shot batch in bulk (:mod:`repro.execution.batched`), schedules
trajectories across emulated devices (:mod:`repro.execution.scheduler`),
optionally fans them out over worker processes — the paper's
"embarrassingly parallel" inter-trajectory axis
(:mod:`repro.execution.parallel`) — stacks them into a single
``(B, 2**n)`` tensor evolved in lockstep
(:mod:`repro.execution.vectorized`), or composes both axes by sharding
dedup groups across a device pool with stacked chunks per shard
(:mod:`repro.execution.sharded`), or — for pure-Clifford circuits with
Pauli-mixture noise — skips dense states entirely with batched
Pauli-frame propagation (:mod:`repro.execution.clifford`), or — past the
dense width cap — replays one compiled gate schedule over a
trajectory-stacked truncated MPS (:mod:`repro.execution.tensornet`);
the last two are what ``strategy="auto"`` selects automatically via the
per-circuit engine router (:mod:`repro.execution.router`).  Results carry per-shot provenance
(:mod:`repro.execution.results`) and can be delivered incrementally —
every strategy exposes ``execute_stream`` yielding per-trajectory
:class:`~repro.execution.streaming.ShotChunk`\\ s as specs / stacks /
shards complete (:mod:`repro.execution.streaming`,
:func:`~repro.execution.batched.run_ptsbe_stream`).  Every strategy draws
identical per-trajectory shots for a fixed seed; for specs in ascending
trajectory-id order (what every PTS algorithm emits) the shot tables
match row for row as well — and an unseeded run resolves one recorded
root seed up front, so it replays exactly too.  See
``docs/architecture.md`` for when to pick which.
"""

from repro.execution.results import ShotTable, TrajectoryResult, PTSBEResult
from repro.execution.streaming import ShotChunk, StreamedResult
from repro.execution.batched import (
    BackendSpec,
    BatchedExecutor,
    run_ptsbe,
    run_ptsbe_stream,
    VALID_STRATEGIES,
)
from repro.execution.plan import (
    FusedPlan,
    build_fused_plan,
    clear_plan_cache,
    get_fused_plan,
)
from repro.execution.scheduler import Scheduler, round_robin, greedy_by_cost
from repro.execution.parallel import ParallelExecutor
from repro.execution.vectorized import VectorizedExecutor
from repro.execution.sharded import ShardedExecutor
from repro.execution.clifford import CliffordFrameExecutor
from repro.execution.tensornet import TensorNetExecutor, compile_schedule
from repro.execution.router import (
    CircuitProfile,
    analyze_circuit,
    clear_router_cache,
    resolve_strategy,
)

__all__ = [
    "ShotTable",
    "TrajectoryResult",
    "PTSBEResult",
    "ShotChunk",
    "StreamedResult",
    "BackendSpec",
    "BatchedExecutor",
    "run_ptsbe",
    "run_ptsbe_stream",
    "VALID_STRATEGIES",
    "FusedPlan",
    "build_fused_plan",
    "clear_plan_cache",
    "get_fused_plan",
    "Scheduler",
    "round_robin",
    "greedy_by_cost",
    "ParallelExecutor",
    "VectorizedExecutor",
    "ShardedExecutor",
    "CliffordFrameExecutor",
    "TensorNetExecutor",
    "compile_schedule",
    "CircuitProfile",
    "analyze_circuit",
    "clear_router_cache",
    "resolve_strategy",
]
