"""Batched execution (BE): realizing PTS trajectory specs efficiently.

The engine prepares each prescribed noisy state exactly once and draws its
full shot batch in bulk (:mod:`repro.execution.batched`), schedules
trajectories across emulated devices (:mod:`repro.execution.scheduler`),
optionally fans them out over worker processes — the paper's
"embarrassingly parallel" inter-trajectory axis
(:mod:`repro.execution.parallel`) — or stacks them into a single
``(B, 2**n)`` tensor evolved in lockstep
(:mod:`repro.execution.vectorized`).  Results carry per-shot provenance
(:mod:`repro.execution.results`).  Every strategy draws identical
per-trajectory shots for a fixed seed; for specs in ascending
trajectory-id order (what every PTS algorithm emits) the shot tables
match row for row as well.  See ``docs/architecture.md`` for when to
pick which.
"""

from repro.execution.results import ShotTable, TrajectoryResult, PTSBEResult
from repro.execution.batched import BackendSpec, BatchedExecutor, run_ptsbe
from repro.execution.scheduler import Scheduler, round_robin, greedy_by_cost
from repro.execution.parallel import ParallelExecutor
from repro.execution.vectorized import VectorizedExecutor

__all__ = [
    "ShotTable",
    "TrajectoryResult",
    "PTSBEResult",
    "BackendSpec",
    "BatchedExecutor",
    "run_ptsbe",
    "Scheduler",
    "round_robin",
    "greedy_by_cost",
    "ParallelExecutor",
    "VectorizedExecutor",
]
