"""Batched execution (BE): realizing PTS trajectory specs efficiently.

The engine prepares each prescribed noisy state exactly once and draws its
full shot batch in bulk (:mod:`repro.execution.batched`), schedules
trajectories across emulated devices (:mod:`repro.execution.scheduler`),
and optionally fans them out over worker processes — the paper's
"embarrassingly parallel" inter-trajectory axis
(:mod:`repro.execution.parallel`).  Results carry per-shot provenance
(:mod:`repro.execution.results`).
"""

from repro.execution.results import ShotTable, TrajectoryResult, PTSBEResult
from repro.execution.batched import BackendSpec, BatchedExecutor, run_ptsbe
from repro.execution.scheduler import Scheduler, round_robin, greedy_by_cost
from repro.execution.parallel import ParallelExecutor

__all__ = [
    "ShotTable",
    "TrajectoryResult",
    "PTSBEResult",
    "BackendSpec",
    "BatchedExecutor",
    "run_ptsbe",
    "Scheduler",
    "round_robin",
    "greedy_by_cost",
    "ParallelExecutor",
]
