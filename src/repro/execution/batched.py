"""The batched-execution (BE) engine.

For every :class:`~repro.pts.base.TrajectorySpec` the engine:

1. prepares the prescribed noisy state **once** (``backend.run_fixed`` with
   the spec's fixed Kraus choices) — the O(2**n) part;
2. draws the spec's entire shot budget in one bulk ``sample`` call — the
   polynomial part ("sampling all m_alpha desired quantum bitstrings at
   once", paper §3);
3. attaches the provenance record to the shots.

Contrast with :class:`~repro.trajectory.baseline.TrajectorySimulator`,
which re-runs step 1 for every single shot, and with
:class:`~repro.execution.vectorized.VectorizedExecutor`, which prepares
whole *stacks* of trajectories per pass instead of looping specs in
Python.  Dense preparations walk the circuit's compiled
:class:`~repro.execution.plan.FusedPlan` (shared with the stacked
backends, so the strategies stay bitwise interchangeable under any
``Config.fusion`` setting).  The executor records prep and sample
wall-times separately so the benchmarks can report the paper's
shots-per-second curves directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backends.base import PureStateBackend
from repro.backends.mps import MPSBackend
from repro.backends.statevector import StatevectorBackend
from repro.circuits.circuit import Circuit
from repro.config import DEFAULT_CONFIG
from repro.errors import CapacityError, ExecutionError, ZeroProbabilityTrajectory
from repro.execution.results import PTSBEResult, TrajectoryResult
from repro.execution.streaming import StreamedResult
from repro.pts.base import PTSAlgorithm, PTSResult, TrajectorySpec
from repro.rng import StreamFactory

__all__ = [
    "BackendSpec",
    "BatchedExecutor",
    "run_ptsbe",
    "run_ptsbe_stream",
    "DENSE_STRATEGIES",
    "VALID_STRATEGIES",
]


@dataclass(frozen=True)
class BackendSpec:
    """Picklable recipe for constructing a backend in any process.

    ``kind`` is ``"statevector"``, ``"mps"``, or ``"batched_statevector"``
    (the trajectory-stacked backend used by
    :class:`~repro.execution.vectorized.VectorizedExecutor`); ``options``
    are forwarded to the constructor (e.g. ``{"max_bond": 32}``).

    ``options`` is stored as a sorted tuple of ``(key, value)`` pairs so
    the spec stays picklable and deterministic; the spec is hashable only
    when every option value is (a ``config=Config(...)`` option, being a
    mutable dataclass, is not — keep such specs out of hash-keyed
    containers).
    """

    kind: str = "statevector"
    options: tuple = ()  # sorted (key, value) pairs; see class docstring

    @classmethod
    def statevector(cls, **options) -> "BackendSpec":
        return cls("statevector", tuple(sorted(options.items())))

    @classmethod
    def mps(cls, **options) -> "BackendSpec":
        return cls("mps", tuple(sorted(options.items())))

    @classmethod
    def batched_statevector(cls, **options) -> "BackendSpec":
        return cls("batched_statevector", tuple(sorted(options.items())))

    def create(self, num_qubits: int):
        opts = dict(self.options)
        if self.kind == "statevector":
            return StatevectorBackend(num_qubits, **opts)
        if self.kind == "mps":
            return MPSBackend(num_qubits, **opts)
        if self.kind == "batched_statevector":
            from repro.backends.batched_statevector import BatchedStatevectorBackend

            return BatchedStatevectorBackend(num_qubits, **opts)
        raise ExecutionError(f"unknown backend kind {self.kind!r}")


class BatchedExecutor:
    """Serial batched execution of trajectory specs on one backend."""

    def __init__(
        self,
        backend: Union[BackendSpec, Callable[[int], PureStateBackend]] = BackendSpec(),
        sample_kwargs: Optional[Dict] = None,
    ):
        self.backend = backend
        self.sample_kwargs = dict(sample_kwargs or {})

    def _make_backend(self, num_qubits: int) -> PureStateBackend:
        backend = (
            self.backend.create(num_qubits)
            if isinstance(self.backend, BackendSpec)
            else self.backend(num_qubits)
        )
        if not hasattr(backend, "run_fixed"):
            raise ExecutionError(
                f"{type(backend).__name__} is not a per-trajectory backend; use "
                "VectorizedExecutor (or run_ptsbe(strategy='vectorized')) for "
                "the 'batched_statevector' kind"
            )
        return backend

    def execute(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
    ) -> PTSBEResult:
        """Run every spec: one preparation, one bulk sample each."""
        return self.execute_stream(circuit, specs, seed=seed).finalize()

    def execute_stream(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
        retain: bool = True,
    ) -> StreamedResult:
        """Stream one :class:`ShotChunk` per spec, in spec order.

        The finest-grained delivery of any strategy: each trajectory is
        handed over the moment its bulk sample completes, so a consumer
        sees the first shots after a single state preparation.
        :meth:`StreamedResult.finalize` reproduces :meth:`execute`
        bitwise.  ``retain=False`` drops chunks after delivery
        (``finalize`` unavailable) to bound memory for pure-ingest
        consumers.
        """
        circuit.freeze()
        measured = tuple(circuit.measured_qubits)
        if not measured:
            raise ExecutionError("circuit has no measurements to sample")
        if not specs:
            raise ExecutionError("no trajectory specs to execute")
        streams = StreamFactory(seed)
        backend = self._make_backend(circuit.num_qubits)

        def deliver():
            for spec in specs:
                rng = streams.rng_for(spec.record.trajectory_id)
                t0 = time.perf_counter()
                try:
                    weight = backend.run_fixed(circuit, spec.choices)
                except ZeroProbabilityTrajectory:
                    # The prescribed combination is impossible for the
                    # actual state (nominal probabilities are only priors
                    # for general channels): record it with zero weight
                    # and zero shots.
                    t1 = time.perf_counter()
                    yield [
                        TrajectoryResult(
                            record=spec.record,
                            bits=np.empty((0, len(measured)), dtype=np.uint8),
                            actual_weight=0.0,
                            prep_seconds=t1 - t0,
                            sample_seconds=0.0,
                        )
                    ]
                    continue
                t1 = time.perf_counter()
                bits = backend.sample(
                    spec.num_shots, measured, rng, **self.sample_kwargs
                )
                t2 = time.perf_counter()
                yield [
                    TrajectoryResult(
                        record=spec.record,
                        bits=bits,
                        actual_weight=weight,
                        prep_seconds=t1 - t0,
                        sample_seconds=t2 - t1,
                    )
                ]

        return StreamedResult(
            deliver(),
            measured_qubits=measured,
            seed=streams.seed,
            total_trajectories=len(specs),
            engine="serial",
            retain=retain,
        )


def _build_serial(backend, sample_kwargs, kwargs):
    return BatchedExecutor(backend, sample_kwargs=sample_kwargs, **kwargs)


def _build_parallel(backend, sample_kwargs, kwargs):
    from repro.execution.parallel import ParallelExecutor

    return ParallelExecutor(backend, sample_kwargs=sample_kwargs, **kwargs)


def _build_vectorized(backend, sample_kwargs, kwargs):
    from repro.execution.vectorized import VectorizedExecutor

    return VectorizedExecutor(backend, sample_kwargs=sample_kwargs, **kwargs)


def _build_sharded(backend, sample_kwargs, kwargs):
    from repro.execution.sharded import ShardedExecutor

    return ShardedExecutor(backend, sample_kwargs=sample_kwargs, **kwargs)


def _build_clifford(backend, sample_kwargs, kwargs):
    from repro.execution.clifford import CliffordFrameExecutor

    return CliffordFrameExecutor(backend, sample_kwargs=sample_kwargs, **kwargs)


def _build_tensornet(backend, sample_kwargs, kwargs):
    from repro.execution.tensornet import TensorNetExecutor

    return TensorNetExecutor(backend, sample_kwargs=sample_kwargs, **kwargs)


#: The strategy dispatch table: every BE engine behind one name.  ``"auto"``
#: resolves to one of these before lookup (via the engine router — see
#: :mod:`repro.execution.router`).
STRATEGY_BUILDERS = {
    "serial": _build_serial,
    "parallel": _build_parallel,
    "vectorized": _build_vectorized,
    "sharded": _build_sharded,
    "clifford": _build_clifford,
    "tensornet": _build_tensornet,
}

#: The strategies that materialize dense ``2**n`` statevectors and are
#: therefore bounded by ``Config.max_dense_qubits``.  ``"clifford"`` and
#: ``"tensornet"`` live outside the cap.
DENSE_STRATEGIES = ("serial", "parallel", "vectorized", "sharded")

VALID_STRATEGIES = ("auto",) + tuple(STRATEGY_BUILDERS)


def _make_executor(
    backend,
    strategy: str,
    sample_kwargs: Optional[Dict],
    executor_kwargs: Optional[Dict],
):
    """Resolve a strategy name to a constructed executor.

    Unknown names fail up front with the full list of valid strategies —
    the misuse guard for ``run_ptsbe(strategy=...)``.  A bare ``"auto"``
    here (no circuit in scope to route on) falls back to the dense
    resolution; :func:`run_ptsbe_stream` routes before calling in.
    """
    kwargs = dict(executor_kwargs or {})
    if strategy == "auto":
        kind = backend.kind if isinstance(backend, BackendSpec) else None
        strategy = "vectorized" if kind == "batched_statevector" else "serial"
    builder = STRATEGY_BUILDERS.get(strategy)
    if builder is None:
        valid = ", ".join(repr(name) for name in VALID_STRATEGIES)
        raise ExecutionError(
            f"unknown strategy {strategy!r}; valid strategies are: {valid}"
        )
    return builder(backend, sample_kwargs, kwargs)


def _check_dense_capacity(circuit, backend, resolved: str, config) -> None:
    """Refuse over-cap dense dispatches with an actionable error.

    Without this, an oversized run surfaces as a raw ``MemoryError`` from
    the ``(B, 2**n)`` allocation (or an opaque backend failure) deep in
    the executor.  The check fires only for the dense strategies on the
    built-in dense backend kinds — a custom backend factory is the
    caller's own capacity contract.
    """
    if resolved not in DENSE_STRATEGIES:
        return
    if not isinstance(backend, BackendSpec):
        return
    if backend.kind not in ("statevector", "batched_statevector"):
        return
    cfg = config or DEFAULT_CONFIG
    width = circuit.num_qubits
    if width <= cfg.max_dense_qubits:
        return
    raise CapacityError(
        f"circuit width {width} exceeds the dense width cap "
        f"(Config.max_dense_qubits={cfg.max_dense_qubits}), so dense "
        f"strategy {resolved!r} cannot serve it; strategies that can: "
        f"'tensornet' (trajectory-stacked truncated MPS, any circuit) and "
        f"'clifford' (pure-Clifford circuits with Pauli-mixture noise)"
    )


def run_ptsbe(
    circuit: Circuit,
    sampler: PTSAlgorithm,
    backend: Union[BackendSpec, Callable[[int], PureStateBackend]] = BackendSpec(),
    seed: Optional[int] = None,
    sample_kwargs: Optional[Dict] = None,
    strategy: str = "auto",
    executor_kwargs: Optional[Dict] = None,
) -> PTSBEResult:
    """The full PTSBE pipeline in one call (paper Fig. 1).

    1. PTS: ``sampler`` pre-samples trajectory specs from the circuit;
    2. BE: the chosen executor realizes each spec with batched sampling.

    Handles circuit-rewriting samplers (e.g. Pauli twirling) by executing
    against the sampler's rewritten circuit when it exposes one.

    Parameters
    ----------
    strategy:
        Which batched-execution engine realizes the specs:

        * ``"auto"`` (default) — routed per circuit by
          :mod:`repro.execution.router`: pure-Clifford circuits with
          Pauli-mixture noise go to ``"clifford"``, circuits wider than
          ``Config.max_dense_qubits`` that the clifford engine cannot
          serve go to ``"tensornet"`` (both unless
          ``Config.routing="dense"``); everything else resolves exactly
          as before — ``"vectorized"`` when ``backend`` is of kind
          ``"batched_statevector"``, else ``"serial"``.  The decision is
          recorded as ``result.routing`` and the engine that ran as
          ``result.engine``;
        * ``"serial"`` — one :class:`BatchedExecutor` preparation per spec;
        * ``"parallel"`` — fan specs over a process pool
          (:class:`~repro.execution.parallel.ParallelExecutor`);
        * ``"vectorized"`` — deduplicated ``(B, 2**n)`` trajectory stacks
          (:class:`~repro.execution.vectorized.VectorizedExecutor`);
        * ``"sharded"`` — dedup groups binned across a device pool, each
          shard running chunked stacks sized to its device's memory
          (:class:`~repro.execution.sharded.ShardedExecutor`);
        * ``"clifford"`` — batched Pauli-frame propagation for
          pure-Clifford circuits with Pauli-mixture noise, at any width
          (:class:`~repro.execution.clifford.CliffordFrameExecutor`);
        * ``"tensornet"`` — trajectory-stacked truncated-MPS contraction
          past the dense width cap: one swap-routed gate schedule
          compiled per circuit, replayed over a ``(B, D_l, 2, D_r)``
          batched stack with only the per-trajectory Kraus operators
          varying (:class:`~repro.execution.tensornet.TensorNetExecutor`).
          ``strategy="auto"`` routes here for circuits wider than
          ``Config.max_dense_qubits`` that the clifford engine cannot
          serve.

        Unknown names are rejected up front with the list of valid
        strategies.  Dense strategies refuse circuits wider than
        ``Config.max_dense_qubits`` at dispatch with a
        :class:`~repro.errors.CapacityError` naming the strategies that
        can serve the width.

        Every *dense* strategy draws identical per-trajectory shots for a fixed
        ``seed``; shot tables also match row for row for specs in
        ascending trajectory-id order (what every PTS algorithm emits —
        ``"parallel"`` orders results by trajectory id, the others by
        spec position).  All dense strategies execute through the same
        compiled :class:`~repro.execution.plan.FusedPlan`, so the
        cross-strategy guarantee holds with gate/noise fusion on
        (``Config.fusion="auto"``, the default) or off.  ``"clifford"``
        samples by a different stochastic mechanism (frame XORs instead
        of dense amplitude sampling), so it matches the dense strategies
        *distributionally* — exact per-trajectory conditionals and
        weights — while its own seeded runs replay bitwise.

        The guarantee covers unseeded runs too: ``seed=None`` is resolved
        to **one** concrete root seed before anything draws from it — the
        PTS sampler and the executor share that same seed — and the
        resolved value is recorded as ``result.seed``, so any run can be
        replayed bitwise with ``run_ptsbe(..., seed=result.seed)``.
    executor_kwargs:
        Extra constructor arguments for the chosen executor, e.g.
        ``{"num_workers": 4}`` for ``"parallel"``, ``{"max_batch": 32}``
        for ``"vectorized"``, or ``{"devices": 4}`` for ``"sharded"``.

    Examples
    --------
    >>> run_ptsbe(noisy, ProbabilisticPTS(nsamples=200, nshots=10_000),
    ...           seed=7)                                  # doctest: +SKIP
    >>> run_ptsbe(noisy, sampler, strategy="vectorized",
    ...           executor_kwargs={"max_batch": 32}, seed=7)  # doctest: +SKIP
    >>> run_ptsbe(noisy, sampler, BackendSpec.batched_statevector(),
    ...           seed=7)  # auto -> vectorized             # doctest: +SKIP
    >>> replay = run_ptsbe(noisy, sampler, seed=result.seed)  # doctest: +SKIP
    """
    return run_ptsbe_stream(
        circuit,
        sampler,
        backend=backend,
        seed=seed,
        sample_kwargs=sample_kwargs,
        strategy=strategy,
        executor_kwargs=executor_kwargs,
    ).finalize()


def run_ptsbe_stream(
    circuit: Circuit,
    sampler: PTSAlgorithm,
    backend: Union[BackendSpec, Callable[[int], PureStateBackend]] = BackendSpec(),
    seed: Optional[int] = None,
    sample_kwargs: Optional[Dict] = None,
    strategy: str = "auto",
    executor_kwargs: Optional[Dict] = None,
    retain: bool = True,
) -> StreamedResult:
    """The PTSBE pipeline with streaming shot delivery.

    Same parameters and determinism contract as :func:`run_ptsbe`, but
    instead of materializing the full :class:`PTSBEResult` it returns a
    :class:`~repro.execution.streaming.StreamedResult` immediately:
    iterate it to receive :class:`~repro.execution.streaming.ShotChunk`\\ s
    as each spec / stack / shard completes (in the exact order of the
    materialized shot table, so concatenating the chunks reproduces it
    bitwise), call ``finalize()`` to drain into the identical
    :class:`PTSBEResult`, or ``close()`` to abandon the run cleanly.
    ``retain=False`` puts the stream in pure-ingest mode: each chunk is
    dropped once handed over, bounding memory to one in-flight chunk for
    arbitrarily long runs, with ``finalize()`` unavailable.

    ``seed=None`` is resolved to one concrete root seed *here*, before
    the PTS sampler draws anything; the sampler and the chosen executor
    both derive their streams from it and the stream records it as
    ``stream.seed``, so unseeded streamed runs replay exactly like seeded
    ones.

    Example — decoder training that starts before the run finishes::

        stream = run_ptsbe_stream(noisy, sampler, strategy="vectorized")
        for chunk in stream:
            model.partial_fit(chunk.shot_table().bits, ...)
    """
    circuit.freeze()
    # Resolve the root seed exactly once: the PTS sampler's stream and
    # every executor trajectory stream derive from the same value, and an
    # unseeded run resolves one entropy seed here instead of drawing two
    # independent ones (the pre-fix reproducibility bug).
    streams = StreamFactory(seed)
    rng = streams.rng_for(0)
    pts_result = sampler.sample(circuit, rng)
    target = getattr(sampler, "twirled_circuit", None) or circuit
    # Route "auto" on the circuit the executor will actually run (the
    # twirled one, for circuit-rewriting samplers); explicit strategies
    # pass through.  The decision trail rides on the stream/result.
    from repro.execution.router import resolve_strategy

    config = dict(backend.options).get("config") if isinstance(backend, BackendSpec) else None
    target.freeze()
    resolved, routing = resolve_strategy(target, backend, strategy, config)
    _check_dense_capacity(target, backend, resolved, config)
    executor = _make_executor(backend, resolved, sample_kwargs, executor_kwargs)
    stream = executor.execute_stream(
        target, pts_result.specs, seed=streams.seed, retain=retain
    )
    stream.routing = routing
    return stream
