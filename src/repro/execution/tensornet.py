"""Batched tensor-network execution: trajectory-stacked MPS as a strategy.

The sixth execution strategy (``run_ptsbe(strategy="tensornet")``): for
circuits past the dense width cap, trajectory realization runs on a
truncated MPS — but instead of replaying the circuit ``B`` times through
:class:`~repro.backends.mps.MPSBackend`, the circuit is compiled **once**
into a swap-routed, bond-ordered gate schedule and replayed over a
:class:`~repro.backends.mps.BatchedMPSStack` whose site tensors carry a
leading batch axis ``(B, D_l, 2, D_r)``.  Every 1q / adjacent-2q
contraction and every truncated SVD is then a single batched einsum /
GEMM call over the whole dedup chunk; only the noise steps differ per
trajectory, realized by gathering each row's chosen Kraus operator into a
``(B, d, d)`` stack (with a shared fast path when the chunk agrees on a
branch).

Two structural tricks keep the replay lean:

* **Compile-time routing and fusion.**  Non-adjacent 2q gates are
  swap-routed *in the schedule* (the SWAP chains are themselves shared
  batched steps), 3q gates become a contiguous 3-site window split by two
  batched SVDs, and — unless ``Config.fusion == "off"`` — single-qubit
  gates are absorbed into the next step touching their site (pre-
  multiplied into gate matrices and into every Kraus branch of noise
  steps), so the schedule the stack replays is as short as the fusion
  planner's dense plans.
* **The telescoping-weight identity.**  The stack is never renormalized
  mid-run: each Kraus application scales a row's norm by its realized
  branch probability, so the final unnormalized squared norm *is* the
  trajectory weight.  One batched right-environment pass at the end
  yields both the per-row weights and the cached-sampling environments
  (:func:`~repro.backends.mps_sampler.compute_right_environments_batched`),
  after which each trajectory's shot budget is drawn with the same
  vectorized conditional sweep the serial MPS path uses
  (:func:`~repro.backends.mps_sampler.sample_cached`).

Faithfulness contract: like the clifford strategy, conformance against
the dense strategies is **distributional** (TVD / chi-square through the
sweep oracle), not bitwise — SVD truncation perturbs amplitudes, and even
at exact bond the per-shot draws consume randomness differently than
dense index sampling.  Seeded replay of *this* strategy is bitwise: shots
derive from the same per-trajectory Philox streams ``(seed,
trajectory_id)`` as every other strategy.
"""

from __future__ import annotations

import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.base import validate_deferred_measurement
from repro.backends.mps import _SWAP, BatchedMPSStack
from repro.backends.mps_sampler import (
    compute_right_environments_batched,
    sample_cached,
)
from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import BackendError, CapacityError, ExecutionError, FaultError
from repro.execution.batched import BackendSpec
from repro.execution.results import PTSBEResult, TrajectoryResult
from repro.execution.streaming import OrderedDelivery, StreamedResult
from repro.faults.retry import (
    FaultContext,
    RecoveryEvent,
    describe_exception,
    run_unit_with_retry,
)
from repro.linalg.kron import permute_operator_qubits
from repro.pts.base import TrajectorySpec, deduplicate_specs
from repro.rng import StreamFactory

__all__ = ["TensorNetExecutor", "compile_schedule", "GateSchedule"]

#: Rows whose unnormalized squared norm falls to this are numerically dead
#: (same threshold the dense batched backend uses for its stacked rows).
_DEAD_NORM = 1e-300

_I2 = np.eye(2, dtype=np.complex128)


@dataclass(frozen=True)
class UnitaryStep:
    """A shared unitary applied to ``span`` contiguous sites at ``site``."""

    site: int
    span: int  # 1, 2, or 3
    matrix: np.ndarray


@dataclass(frozen=True)
class NoiseStep:
    """A per-trajectory Kraus choice at ``site`` (``span`` in {1, 2}).

    ``ops[j]`` is branch ``j``'s prepared matrix — wire-permuted to
    ascending site order and with any fused pending 1q gates already
    pre-multiplied (valid because ``|K (U psi)|^2 = |(K U) psi|^2``:
    weights and post-states are unchanged by the composition).
    """

    site: int
    span: int
    site_id: int
    ops: np.ndarray  # (num_branches, d, d)
    dominant: int


Step = Union[UnitaryStep, NoiseStep]


@dataclass(frozen=True)
class GateSchedule:
    """A compiled, swap-routed, fusion-absorbed replay program."""

    num_qubits: int
    steps: Tuple[Step, ...]
    fused: bool

    @property
    def num_noise_sites(self) -> int:
        return sum(1 for s in self.steps if isinstance(s, NoiseStep))


# circuit -> {fused: GateSchedule}; weak-keyed so retired circuits drop out.
_SCHEDULE_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[bool, GateSchedule]]" = (
    weakref.WeakKeyDictionary()
)


def clear_schedule_cache() -> None:
    """Drop all cached tensornet schedules (tests / config changes)."""
    _SCHEDULE_CACHE.clear()


class _Compiler:
    """One walk over the frozen circuit producing the shared schedule.

    Maintains per-site *pending* 2x2 matrices (the 1q-fusion accumulator):
    a pending is flushed as its own step only when forced — a SWAP chain
    is about to relocate its site, or the walk ends.  Otherwise it rides
    into the next gate/noise step touching its site.
    """

    def __init__(self, num_qubits: int, fused: bool):
        self.num_qubits = num_qubits
        self.fused = fused
        self.steps: List[Step] = []
        self.pending: Dict[int, np.ndarray] = {}

    # -------------------------------------------------------------- #
    # pending management
    # -------------------------------------------------------------- #
    def _take(self, q: int) -> np.ndarray:
        return self.pending.pop(q, _I2)

    def _flush(self, q: int) -> None:
        mat = self.pending.pop(q, None)
        if mat is not None:
            self.steps.append(UnitaryStep(site=q, span=1, matrix=mat))

    def flush_all(self) -> None:
        for q in sorted(self.pending):
            self.steps.append(UnitaryStep(site=q, span=1, matrix=self.pending[q]))
        self.pending.clear()

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #
    def _route_down(self, src: int, dst: int) -> List[int]:
        """Emit SWAPs moving the qubit at ``src`` down to ``dst``.

        Transit sites' pendings are flushed first: a SWAP relocates site
        contents, so a deferred 1q matrix must land before its site moves.
        Returns the swap positions for the mirror-image unroute.
        """
        moved: List[int] = []
        pos = src
        while pos > dst:
            self._flush(pos - 1)
            self.steps.append(UnitaryStep(site=pos - 1, span=2, matrix=_SWAP))
            moved.append(pos - 1)
            pos -= 1
        return moved

    def _unroute(self, moved: List[int]) -> None:
        for pos in reversed(moved):
            self.steps.append(UnitaryStep(site=pos, span=2, matrix=_SWAP))

    # -------------------------------------------------------------- #
    # ops
    # -------------------------------------------------------------- #
    def add_gate(self, op: GateOp) -> None:
        targets = list(op.qubits)
        matrix = np.asarray(op.gate.matrix, dtype=np.complex128)
        k = len(targets)
        if k == 1:
            if self.fused:
                q = targets[0]
                self.pending[q] = matrix @ self.pending.get(q, _I2)
            else:
                self.steps.append(UnitaryStep(site=targets[0], span=1, matrix=matrix))
            return
        if k > 3:
            raise ExecutionError(
                f"strategy 'tensornet' applies up to 3-qubit gates natively; "
                f"got {op.gate.name!r} on {k} qubits (transpile with "
                f"decompose_to_2q first)"
            )
        # Reorder operator wires to ascending physical qubits, then
        # swap-route the upper qubit(s) adjacent to the lowest.
        order = sorted(range(k), key=lambda i: targets[i])
        if order != list(range(k)):
            perm = [0] * k  # input wire i -> its rank in ascending order
            for rank, i in enumerate(order):
                perm[i] = rank
            matrix = permute_operator_qubits(matrix, perm)
        sites = sorted(targets)
        if self.fused:
            pre = self._take(sites[0])
            for q in sites[1:]:
                pre = np.kron(pre, self._take(q))  # replint: disable=XP001 -- compile-time host gate matrices
            matrix = matrix @ pre
        if k == 2:
            qa, qb = sites
            moved = self._route_down(qb, qa + 1)
            self.steps.append(UnitaryStep(site=qa, span=2, matrix=matrix))
            self._unroute(moved)
        else:
            q0, q1, q2 = sites
            moved1 = self._route_down(q1, q0 + 1)
            moved2 = self._route_down(q2, q0 + 2)
            self.steps.append(UnitaryStep(site=q0, span=3, matrix=matrix))
            self._unroute(moved2)
            self._unroute(moved1)

    def add_noise(self, op: NoiseOp) -> None:
        targets = list(op.qubits)
        k = len(targets)
        if k > 2:
            raise ExecutionError(
                f"strategy 'tensornet' supports 1- and 2-qubit noise channels; "
                f"got {op.name!r} on {k} qubits"
            )
        kraus = [np.asarray(m, dtype=np.complex128) for m in op.channel.kraus_ops]
        if k == 2 and targets[1] < targets[0]:
            kraus = [permute_operator_qubits(m, [1, 0]) for m in kraus]
        sites = sorted(targets)
        if self.fused:
            pre = self._take(sites[0])
            for q in sites[1:]:
                pre = np.kron(pre, self._take(q))  # replint: disable=XP001 -- compile-time host gate matrices
            # |K U psi|^2 == |(K U) psi|^2: folding the pending unitary
            # into every branch preserves weights and post-states.
            kraus = [m @ pre for m in kraus]
        ops = np.stack(kraus)  # replint: disable=XP001 -- compile-time host Kraus stack
        dominant = op.channel.dominant_index()
        if k == 1:
            self.steps.append(
                NoiseStep(
                    site=sites[0], span=1, site_id=op.site_id, ops=ops, dominant=dominant
                )
            )
        else:
            qa, qb = sites
            moved = self._route_down(qb, qa + 1)
            self.steps.append(
                NoiseStep(site=qa, span=2, site_id=op.site_id, ops=ops, dominant=dominant)
            )
            self._unroute(moved)


def compile_schedule(circuit: Circuit, config: Optional[Config] = None) -> GateSchedule:
    """Compile (and cache) the shared replay schedule for ``circuit``.

    The schedule is a pure function of the frozen circuit structure and
    the fusion mode — trajectory-dependent data (Kraus *choices*) is left
    symbolic as :class:`NoiseStep` branch stacks, which is what lets every
    trajectory in a batch replay the identical program.
    """
    config = config or DEFAULT_CONFIG
    if not circuit.frozen:
        raise ExecutionError("compile_schedule requires a frozen circuit")
    fused = config.fusion != "off"
    per_circuit = _SCHEDULE_CACHE.setdefault(circuit, {})
    cached = per_circuit.get(fused)
    if cached is not None:
        return cached
    validate_deferred_measurement(circuit)
    comp = _Compiler(circuit.num_qubits, fused)
    for op in circuit.operations:
        if isinstance(op, GateOp):
            comp.add_gate(op)
        elif isinstance(op, NoiseOp):
            comp.add_noise(op)
        elif isinstance(op, MeasureOp):
            continue
        else:
            raise ExecutionError(f"unsupported operation {op!r} for tensornet")
    comp.flush_all()
    schedule = GateSchedule(
        num_qubits=circuit.num_qubits, steps=tuple(comp.steps), fused=fused
    )
    per_circuit[fused] = schedule
    return schedule


def replay_schedule(
    stack: BatchedMPSStack,
    schedule: GateSchedule,
    choices_list: Sequence[Dict[int, int]],
) -> None:
    """Replay the shared schedule over a trajectory stack.

    ``choices_list[m]`` is row ``m``'s Kraus-choice mapping (``site_id ->
    branch``); unlisted sites take the channel's dominant branch, matching
    :meth:`repro.backends.base.PureStateBackend.run_fixed`.
    """
    if len(choices_list) != stack.batch_size:
        raise ExecutionError(
            f"choices_list has {len(choices_list)} rows for a stack of "
            f"batch_size {stack.batch_size}"
        )
    for step in schedule.steps:
        if isinstance(step, UnitaryStep):
            if step.span == 1:
                stack.apply_1q(step.matrix, step.site)
            elif step.span == 2:
                stack.apply_adjacent(step.matrix, step.site)
            else:
                stack.apply_3site(step.matrix, step.site)
            continue
        idx = np.fromiter(
            (c.get(step.site_id, step.dominant) for c in choices_list),
            dtype=np.intp,
            count=len(choices_list),
        )
        if np.all(idx == idx[0]):
            # Whole chunk realizes the same branch: shared-matrix fast path.
            mat = step.ops[idx[0]]
            if step.span == 1:
                stack.apply_1q(mat, step.site)
            else:
                stack.apply_adjacent(mat, step.site)
        else:
            mats = step.ops[idx]  # (B, d, d) gather
            if step.span == 1:
                stack.apply_1q_rows(mats, step.site)
            else:
                stack.apply_adjacent_rows(mats, step.site)


class TensorNetExecutor:
    """Execute trajectory specs on a trajectory-stacked truncated MPS.

    Parameters
    ----------
    backend:
        ``BackendSpec("mps", ...)`` supplies ``max_bond`` / ``cutoff`` /
        ``config`` options; the default dense kinds are tolerated for
        router-dispatch symmetry (their width cap is exactly why this
        strategy exists), in which case the config's tensornet knobs
        apply.  A backend *factory* is a request for a specific simulator
        object this strategy replaces, and is rejected.
    sample_kwargs:
        Rejected when non-empty: sampling is always the cached
        right-environment sweep (the naive mode exists only as the
        benchmark baseline).
    max_batch:
        Dedup groups stacked per :class:`BatchedMPSStack` replay.
    max_bond / cutoff:
        Explicit truncation overrides; default resolves through the
        backend spec options, then ``Config.tensornet_max_bond`` /
        ``Config.tensornet_cutoff`` (env hooks
        ``REPRO_TENSORNET_MAX_BOND`` / ``REPRO_TENSORNET_CUTOFF``), then
        ``Config.default_bond_dim`` / ``Config.svd_cutoff``.
    """

    def __init__(
        self,
        backend: Union[BackendSpec, Callable, None] = None,
        sample_kwargs: Optional[Dict] = None,
        max_batch: int = 64,
        max_bond: Optional[int] = None,
        cutoff: Optional[float] = None,
        config: Optional[Config] = None,
    ):
        if backend is not None and not isinstance(backend, BackendSpec):
            raise ExecutionError(
                "TensorNetExecutor simulates with a trajectory-stacked MPS, "
                "not a backend factory; drop the factory or pick a dense "
                "strategy"
            )
        options: Dict = {}
        if isinstance(backend, BackendSpec):
            if backend.kind not in ("mps", "statevector", "batched_statevector"):
                raise ExecutionError(
                    f"TensorNetExecutor cannot honor backend kind "
                    f"{backend.kind!r}"
                )
            options = dict(backend.options)
        if sample_kwargs:
            raise ExecutionError(
                "TensorNetExecutor always samples via cached right "
                f"environments, got sample_kwargs={dict(sample_kwargs)!r}"
            )
        if max_batch < 1:
            raise ExecutionError("max_batch must be >= 1")
        self.max_batch = int(max_batch)
        self._config: Config = config or options.get("config") or DEFAULT_CONFIG
        resolved_bond = max_bond if max_bond is not None else options.get("max_bond")
        resolved_cutoff = cutoff if cutoff is not None else options.get("cutoff")
        self.max_bond = int(
            resolved_bond
            if resolved_bond is not None
            else self._config.resolved_tensornet_max_bond()
        )
        self.cutoff = float(
            resolved_cutoff
            if resolved_cutoff is not None
            else self._config.resolved_tensornet_cutoff()
        )
        if self.max_bond < 1:
            raise ExecutionError("max_bond must be >= 1")

    def execute(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
    ) -> PTSBEResult:
        """Run every spec: one schedule compile, batched replay per chunk."""
        return self.execute_stream(circuit, specs, seed=seed).finalize()

    def execute_stream(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
        retain: bool = True,
    ) -> StreamedResult:
        """Stream each stacked chunk's trajectories as its replay completes.

        Chunks are released in spec order through an
        :class:`~repro.execution.streaming.OrderedDelivery` buffer,
        matching the delivery contract of every other strategy.
        """
        circuit.freeze()
        measured = tuple(circuit.measured_qubits)
        if not measured:
            raise ExecutionError("circuit has no measurements to sample")
        if not specs:
            raise ExecutionError("no trajectory specs to execute")
        n = circuit.num_qubits
        if n > self._config.max_tensornet_qubits:
            raise ExecutionError(
                f"circuit width {n} exceeds max_tensornet_qubits "
                f"({self._config.max_tensornet_qubits})"
            )
        streams = StreamFactory(seed)
        t0 = time.perf_counter()
        try:
            schedule = compile_schedule(circuit, self._config)
        except BackendError as exc:
            raise ExecutionError(f"strategy 'tensornet' cannot run: {exc}") from exc
        compile_seconds = time.perf_counter() - t0
        groups = deduplicate_specs(specs)
        cols = list(measured)
        ctx = FaultContext.from_config(self._config, streams.seed, strategy="tensornet")
        events: List[RecoveryEvent] = []

        def run_chunk(start: int, end: int, carry_prep: float):
            """Replay and sample one stacked chunk of groups ``[start, end)``.

            One retryable unit: the replay is a pure function of the
            schedule and the chunk's Kraus choices, and sampling
            re-derives each row's Philox stream from
            ``(seed, trajectory_id)``, so a retried chunk re-emits
            bitwise-identical shots.  (Unlike the dense strategies the
            chunk *composition* matters — the batched truncated SVD keeps
            a common rank across the chunk — which is why plain retry
            preserves bits but the capacity ladder's halving is only
            guaranteed to preserve the sampled distribution.)
            """
            chunk = groups[start:end]
            batch = len(chunk)
            t1 = time.perf_counter()
            stack = BatchedMPSStack(
                n,
                batch,
                max_bond=self.max_bond,
                cutoff=self.cutoff,
                config=self._config,
            )
            choices_list = [specs[g.indices[0]].choices for g in chunk]
            replay_schedule(stack, schedule, choices_list)
            # One batched environment pass = sampling cache AND, via
            # the telescoping-weight identity, per-row weights.
            envs = compute_right_environments_batched(stack.tensors)
            weights = envs[0][:, 0, 0].real
            prep_seconds = carry_prep + (time.perf_counter() - t1)
            prep_each = prep_seconds / batch
            completed = []
            for row, group in enumerate(chunk):
                weight = float(max(weights[row], 0.0))
                dead = weight <= _DEAD_NORM
                row_tensors = stack.row_tensors(row)
                row_envs = [e[row] for e in envs]
                for j, spec_index in enumerate(group.indices):
                    spec = specs[spec_index]
                    rng = streams.rng_for(spec.record.trajectory_id)
                    t2 = time.perf_counter()
                    if dead or spec.num_shots == 0:
                        bits = np.empty((0, len(measured)), dtype=np.uint8)
                        actual_weight, sample_seconds = 0.0, 0.0
                    else:
                        full = sample_cached(
                            row_tensors, row_envs, spec.num_shots, rng
                        )
                        bits = full[:, cols]
                        actual_weight = weight
                        sample_seconds = time.perf_counter() - t2
                    completed.append(
                        (
                            spec_index,
                            TrajectoryResult(
                                record=spec.record,
                                bits=bits,
                                actual_weight=actual_weight,
                                prep_seconds=prep_each if j == 0 else 0.0,
                                sample_seconds=sample_seconds,
                            ),
                        )
                    )
            return completed

        def deliver():
            delivery = OrderedDelivery(len(specs))
            pending = deque(
                (start, min(start + self.max_batch, len(groups)))
                for start in range(0, len(groups), self.max_batch)
            )
            # The one-time schedule compile is real preparation work;
            # attribute it to the first chunk, same as the clifford path.
            carry_prep = compile_seconds
            while pending:
                start, end = pending.popleft()
                unit = f"tensornet/stack:{start}:{end}"
                try:
                    completed = run_unit_with_retry(
                        lambda attempt: run_chunk(start, end, carry_prep),
                        unit=unit,
                        ctx=ctx,
                        recovery=events,
                    )
                except CapacityError as exc:
                    if end - start > 1:
                        mid = (start + end) // 2
                        events.append(
                            RecoveryEvent(
                                kind="batch-halved",
                                strategy=ctx.strategy,
                                unit=unit,
                                attempt=0,
                                error=describe_exception(exc),
                                detail=(
                                    f"split into stack:{start}:{mid} "
                                    f"and stack:{mid}:{end}"
                                ),
                            )
                        )
                        pending.appendleft((mid, end))
                        pending.appendleft((start, mid))
                        continue
                    raise FaultError(
                        f"stacked replay of {unit!r} failed at the "
                        f"single-row floor: {describe_exception(exc)}",
                        unit=unit,
                        attempts=1,
                    ) from exc
                carry_prep = 0.0
                ready = delivery.add(completed)
                if ready:
                    yield ready

        return StreamedResult(
            deliver(),
            measured_qubits=measured,
            seed=streams.seed,
            total_trajectories=len(specs),
            unique_preparations=len(groups),
            engine="tensornet",
            retain=retain,
            recovery=events,
        )
