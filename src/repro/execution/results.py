"""Shot tables and provenance-aligned execution results.

A :class:`ShotTable` is the library's uniform shot container: an
``(m, k)`` uint8 bit matrix plus an ``(m,)`` trajectory-index column
aligning every shot with the :class:`~repro.trajectory.events
.TrajectoryRecord` that produced it.  That alignment *is* the paper's
error-provenance feature: downstream consumers (e.g. decoder training in
:mod:`repro.data.dataset`) join shots to error labels by this index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.trajectory.events import TrajectoryRecord

__all__ = ["ShotTable", "TrajectoryResult", "PTSBEResult", "pack_bits"]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an (m, k<=63) bit matrix into int64 keys (column 0 = MSB)."""
    bits = np.asarray(bits)
    m, k = bits.shape
    if k > 63:
        raise DataError("pack_bits supports at most 63 columns")
    weights = (1 << np.arange(k - 1, -1, -1)).astype(np.int64)
    return bits.astype(np.int64) @ weights


@dataclass
class ShotTable:
    """Measured bits with per-shot trajectory provenance."""

    bits: np.ndarray  # (m, k) uint8
    trajectory_ids: np.ndarray  # (m,) int64
    measured_qubits: Tuple[int, ...] = ()

    def __post_init__(self):
        self.bits = np.asarray(self.bits, dtype=np.uint8)
        self.trajectory_ids = np.asarray(self.trajectory_ids, dtype=np.int64)
        if self.bits.ndim != 2:
            raise DataError(f"bits must be 2-D, got shape {self.bits.shape}")
        if self.trajectory_ids.shape != (self.bits.shape[0],):
            raise DataError("trajectory_ids length must match the number of shots")

    @property
    def num_shots(self) -> int:
        return int(self.bits.shape[0])

    @property
    def num_bits(self) -> int:
        return int(self.bits.shape[1])

    def keys(self) -> np.ndarray:
        """Packed int64 bitstring keys (for counting / uniqueness)."""
        return pack_bits(self.bits)

    def counts(self) -> Dict[str, int]:
        """Histogram keyed by bitstring text (column 0 leftmost)."""
        keys, counts = np.unique(self.keys(), return_counts=True)
        width = self.num_bits
        return {format(int(k), f"0{width}b"): int(c) for k, c in zip(keys, counts)}

    def empirical_distribution(self, dim: Optional[int] = None) -> np.ndarray:
        """Normalized histogram over all 2**k outcomes (dense, small k)."""
        k = self.num_bits
        if k > 24:
            raise DataError("dense distribution limited to <= 24 bits")
        dim = dim if dim is not None else (1 << k)
        hist = np.bincount(self.keys(), minlength=dim).astype(np.float64)
        total = hist.sum()
        if total == 0:
            raise DataError("empty shot table has no distribution")
        return hist / total

    def unique_fraction(self) -> float:
        """Fraction of shots that are distinct bitstrings (Fig. 4, right axis)."""
        if self.num_shots == 0:
            raise DataError("empty shot table")
        return float(len(np.unique(self.keys())) / self.num_shots)

    def select(self, mask: np.ndarray) -> "ShotTable":
        """Row subset (boolean mask or index array)."""
        return ShotTable(self.bits[mask], self.trajectory_ids[mask], self.measured_qubits)

    def for_trajectory(self, trajectory_id: int) -> "ShotTable":
        return self.select(self.trajectory_ids == trajectory_id)

    @classmethod
    def concatenate(cls, tables: Sequence["ShotTable"]) -> "ShotTable":
        tables = [t for t in tables if t.num_shots > 0]
        if not tables:
            raise DataError("nothing to concatenate")
        widths = {t.num_bits for t in tables}
        if len(widths) != 1:
            raise DataError(f"mismatched bit widths {widths}")
        return cls(
            # Shot tables are host uint8 by the boundary contract: states
            # may live on device, bits never do.
            np.concatenate([t.bits for t in tables], axis=0),  # replint: disable=XP001 -- host bit tables
            np.concatenate([t.trajectory_ids for t in tables]),  # replint: disable=XP001 -- host bit tables
            tables[0].measured_qubits,
        )

    def __repr__(self) -> str:
        return f"ShotTable(shots={self.num_shots}, bits={self.num_bits})"


@dataclass
class TrajectoryResult:
    """One realized trajectory: its record, shots, and timing."""

    record: TrajectoryRecord
    bits: np.ndarray  # (m_alpha, k) uint8
    actual_weight: float = 1.0  # product of realized branch probabilities
    prep_seconds: float = 0.0
    sample_seconds: float = 0.0

    @property
    def num_shots(self) -> int:
        return int(self.bits.shape[0])


@dataclass
class PTSBEResult:
    """Aggregated output of a batched-execution run."""

    trajectories: List[TrajectoryResult]
    measured_qubits: Tuple[int, ...]
    prep_seconds: float = 0.0
    sample_seconds: float = 0.0
    #: Number of distinct state preparations actually performed.  Set by
    #: the vectorized executor (which deduplicates identical specs); None
    #: for executors that prepare one state per spec unconditionally.
    unique_preparations: Optional[int] = None
    #: The resolved root seed of the run.  Executors resolve ``seed=None``
    #: to one concrete entropy seed up front and record it here, so *any*
    #: run — seeded or not — can be replayed bitwise by passing this value
    #: back as ``seed=``.  ``None`` only for results assembled outside the
    #: execution layer.
    seed: Optional[int] = None
    #: Which execution engine realized the trajectories ("serial",
    #: "parallel", "vectorized", "sharded", or "clifford").  ``None`` only
    #: for results assembled outside the execution layer.
    engine: Optional[str] = None
    #: The router's decision trail for this run (set by
    #: :func:`~repro.execution.batched.run_ptsbe_stream`): why
    #: ``strategy="auto"`` picked the engine it did, or that the strategy
    #: was explicitly requested.  ``None`` when execution was invoked
    #: below the dispatch layer.
    routing: Optional[str] = None
    #: Structured :class:`~repro.faults.retry.RecoveryEvent` records of
    #: every recovery action the run performed (retries, device rebins,
    #: batch halvings).  Empty for fault-free runs; populated by
    #: ``StreamedResult.finalize`` from the live stream's event list.
    recovery: List = field(default_factory=list)

    @property
    def num_trajectories(self) -> int:
        return len(self.trajectories)

    @property
    def total_shots(self) -> int:
        return sum(t.num_shots for t in self.trajectories)

    @property
    def records(self) -> List[TrajectoryRecord]:
        return [t.record for t in self.trajectories]

    def shot_table(self) -> ShotTable:
        """All shots, provenance-aligned by trajectory index."""
        if not self.trajectories:
            raise DataError("no trajectories were executed")
        bits = np.concatenate([t.bits for t in self.trajectories], axis=0)  # replint: disable=XP001 -- host bit tables
        ids = np.concatenate(  # replint: disable=XP001 -- host provenance ids
            [
                np.full(t.num_shots, t.record.trajectory_id, dtype=np.int64)
                for t in self.trajectories
            ]
        )
        return ShotTable(bits, ids, self.measured_qubits)

    def pooled_distribution(self, weighted: bool = True) -> np.ndarray:
        """Pooled outcome distribution over the sampled trajectory subsets.

        With ``weighted=True`` each trajectory's empirical conditional
        distribution is weighted by its nominal probability (renormalized
        over the sampled subsets) — the estimator that converges to the
        exact noisy distribution as coverage -> 1.  With ``weighted=False``
        shots are pooled raw (appropriate when shot counts were already
        apportioned proportionally).
        """
        if not self.trajectories:
            raise DataError("no trajectories were executed")
        k = self.trajectories[0].bits.shape[1]
        if k > 24:
            raise DataError("dense distribution limited to <= 24 bits")
        dim = 1 << k
        if not weighted:
            return self.shot_table().empirical_distribution(dim)
        out = np.zeros(dim, dtype=np.float64)
        total_weight = 0.0
        for t in self.trajectories:
            if t.num_shots == 0:
                continue
            w = t.record.nominal_probability
            hist = np.bincount(pack_bits(t.bits), minlength=dim).astype(np.float64)
            out += w * hist / hist.sum()
            total_weight += w
        if total_weight <= 0:
            raise DataError("zero total trajectory weight")
        return out / total_weight

    def __repr__(self) -> str:
        return (
            f"PTSBEResult(trajectories={self.num_trajectories}, shots={self.total_shots}, "
            f"prep={self.prep_seconds:.3f}s, sample={self.sample_seconds:.3f}s)"
        )
