"""Inter-trajectory parallelism over worker processes.

The paper's inter-trajectory axis: "the preparation and sampling of
different trajectories is embarrassingly parallel, the calculation process
trivially scales to arbitrarily many GPUs."  Here workers are OS processes
standing in for GPUs; each receives a (picklable) circuit, backend recipe
and its scheduled slice of trajectory specs, executes them with the serial
:class:`~repro.execution.batched.BatchedExecutor`, and ships the shots
back.

Determinism: every trajectory derives its RNG stream from
``(seed, trajectory_id)`` (see :mod:`repro.rng`), so a parallel run is
shot-for-shot identical to the serial run regardless of the worker count
or the schedule — verified in ``tests/test_parallel.py``.  An unseeded run
resolves one root seed *before* fan-out, so every worker derives from the
same stream tree (and the resolved value is recorded on the result for
exact replay).

Streaming: :meth:`ParallelExecutor.execute_stream` hands worker slices
over as they complete.  Completions arrive in pool order, so they pass
through an :class:`~repro.execution.streaming.OrderedDelivery` buffer that
re-establishes ascending-trajectory-id order — the same order
:meth:`ParallelExecutor.execute` materializes — before chunks reach the
consumer.

Fault tolerance: each worker slice is one retryable unit
(``parallel/slice:{k}``).  The fault-injection hook fires *inside* the
worker (the payload carries the plan and attempt number), so injected
crashes emulate real subprocess deaths; the pool loop in
:func:`~repro.execution.streaming.stream_pool` retries failed slices
under ``Config.retry`` — bitwise-identical re-emission, by the same seed
threading — and translates raw pool exceptions into repro errors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.config import DEFAULT_CONFIG, Config
from repro.errors import ExecutionError
from repro.execution.batched import BackendSpec, BatchedExecutor
from repro.execution.results import PTSBEResult, TrajectoryResult
from repro.execution.scheduler import Scheduler
from repro.execution.streaming import (
    OrderedDelivery,
    PoolJob,
    StreamedResult,
    stream_pool,
)
from repro.faults.retry import FaultContext, RecoveryEvent, run_unit_with_retry
from repro.faults.plan import maybe_inject
from repro.pts.base import TrajectorySpec
from repro.rng import StreamFactory

__all__ = ["ParallelExecutor"]


def _worker(args) -> List[TrajectoryResult]:
    """Top-level worker (must be module-level for pickling).

    The trailing ``(unit, attempt, plan)`` triple is the fault-injection
    context: the hook fires here, inside the subprocess, so an injected
    worker-crash surfaces to the pool exactly like a real one.
    """
    circuit, backend_spec, specs, seed, sample_kwargs, fault = args
    unit, attempt, plan = fault
    maybe_inject(plan, unit, attempt, seed)
    executor = BatchedExecutor(backend_spec, sample_kwargs=sample_kwargs)
    result = executor.execute(circuit, specs, seed=seed)
    return result.trajectories


class ParallelExecutor:
    """Fan trajectory specs out over a process pool."""

    def __init__(
        self,
        backend: BackendSpec = BackendSpec(),
        num_workers: int = 2,
        scheduler: Optional[Scheduler] = None,
        sample_kwargs: Optional[Dict] = None,
    ):
        if num_workers <= 0:
            raise ExecutionError("num_workers must be positive")
        if not isinstance(backend, BackendSpec):
            raise ExecutionError(
                "ParallelExecutor requires a picklable BackendSpec, not a callable"
            )
        if backend.kind == "batched_statevector":
            raise ExecutionError(
                "ParallelExecutor workers run the serial per-trajectory engine; "
                "use VectorizedExecutor for the 'batched_statevector' kind"
            )
        self.backend = backend
        self.num_workers = int(num_workers)
        self.scheduler = scheduler or Scheduler("greedy")
        self.sample_kwargs = dict(sample_kwargs or {})

    def _backend_config(self) -> Config:
        """The :class:`Config` governing this executor's fault behavior.

        Read from the :class:`BackendSpec`'s ``config`` option when
        present (the same object the workers will construct their
        backends with), else the library default.
        """
        config = dict(self.backend.options).get("config")
        return config if config is not None else DEFAULT_CONFIG

    def execute(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
    ) -> PTSBEResult:
        return self.execute_stream(circuit, specs, seed=seed).finalize()

    def execute_stream(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
        retain: bool = True,
    ) -> StreamedResult:
        """Stream worker slices as they complete, in trajectory-id order.

        Each completed worker feeds the reorder buffer; a chunk is
        released as soon as it extends the contiguous ascending-id prefix
        (so the first chunk arrives when the worker holding the lowest
        ids finishes, not when the whole pool drains).  Abandoning the
        stream cancels unstarted worker slices and shuts the pool down.
        ``retain=False`` drops chunks after delivery (``finalize``
        unavailable) to bound memory for pure-ingest consumers.
        """
        circuit.freeze()
        measured = tuple(circuit.measured_qubits)
        if not measured:
            raise ExecutionError("circuit has no measurements to sample")
        if not specs:
            raise ExecutionError("no trajectory specs to execute")
        streams = StreamFactory(seed)
        ctx = FaultContext.from_config(
            self._backend_config(), streams.seed, strategy="parallel"
        )
        events: List[RecoveryEvent] = []
        assignment = self.scheduler.assign(specs, self.num_workers)
        chunks = [chunk for chunk in assignment.per_device if chunk]
        # Materialized order is a stable sort of (worker, slot) flattening
        # by trajectory id; precompute each slot's global position so the
        # reorder buffer can release contiguous prefixes as workers finish.
        flat = [
            (spec.record.trajectory_id, w, j)
            for w, chunk in enumerate(chunks)
            for j, spec in enumerate(chunk)
        ]
        rank_of = {
            (w, j): rank
            for rank, (_, w, j) in enumerate(sorted(flat, key=lambda item: item[0]))
        }

        def make_job(w: int, chunk) -> PoolJob:
            unit = f"parallel/slice:{w}"
            return PoolJob(
                unit=unit,
                payload_for=lambda attempt: (
                    circuit,
                    self.backend,
                    chunk,
                    streams.seed,
                    self.sample_kwargs,
                    (unit, attempt, ctx.plan),
                ),
                tag=lambda trajectories: [
                    (rank_of[(w, j)], t) for j, t in enumerate(trajectories)
                ],
            )

        jobs = [make_job(w, chunk) for w, chunk in enumerate(chunks)]

        def deliver():
            delivery = OrderedDelivery(len(specs))
            if len(jobs) == 1:
                job = jobs[0]
                trajectories = run_unit_with_retry(
                    lambda attempt: _worker(job.payload_for(attempt)),
                    unit=job.unit,
                    ctx=ctx,
                    recovery=events,
                    inject=False,  # the worker injects from its payload
                )
                ready = delivery.add(job.tag(trajectories))
                if ready:
                    yield ready
                return
            yield from stream_pool(
                jobs,
                _worker,
                delivery,
                self.num_workers,
                ctx=ctx,
                recovery=events,
            )

        return StreamedResult(
            deliver(),
            measured_qubits=measured,
            seed=streams.seed,
            total_trajectories=len(specs),
            engine="parallel",
            retain=retain,
            recovery=events,
        )
