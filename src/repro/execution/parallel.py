"""Inter-trajectory parallelism over worker processes.

The paper's inter-trajectory axis: "the preparation and sampling of
different trajectories is embarrassingly parallel, the calculation process
trivially scales to arbitrarily many GPUs."  Here workers are OS processes
standing in for GPUs; each receives a (picklable) circuit, backend recipe
and its scheduled slice of trajectory specs, executes them with the serial
:class:`~repro.execution.batched.BatchedExecutor`, and ships the shots
back.

Determinism: every trajectory derives its RNG stream from
``(seed, trajectory_id)`` (see :mod:`repro.rng`), so a parallel run is
shot-for-shot identical to the serial run regardless of the worker count
or the schedule — verified in ``tests/test_parallel.py``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.errors import ExecutionError
from repro.execution.batched import BackendSpec, BatchedExecutor
from repro.execution.results import PTSBEResult, TrajectoryResult
from repro.execution.scheduler import Scheduler
from repro.pts.base import TrajectorySpec

__all__ = ["ParallelExecutor"]


def _worker(args) -> List[TrajectoryResult]:
    """Top-level worker (must be module-level for pickling)."""
    circuit, backend_spec, specs, seed, sample_kwargs = args
    executor = BatchedExecutor(backend_spec, sample_kwargs=sample_kwargs)
    result = executor.execute(circuit, specs, seed=seed)
    return result.trajectories


class ParallelExecutor:
    """Fan trajectory specs out over a process pool."""

    def __init__(
        self,
        backend: BackendSpec = BackendSpec(),
        num_workers: int = 2,
        scheduler: Optional[Scheduler] = None,
        sample_kwargs: Optional[Dict] = None,
    ):
        if num_workers <= 0:
            raise ExecutionError("num_workers must be positive")
        if not isinstance(backend, BackendSpec):
            raise ExecutionError(
                "ParallelExecutor requires a picklable BackendSpec, not a callable"
            )
        if backend.kind == "batched_statevector":
            raise ExecutionError(
                "ParallelExecutor workers run the serial per-trajectory engine; "
                "use VectorizedExecutor for the 'batched_statevector' kind"
            )
        self.backend = backend
        self.num_workers = int(num_workers)
        self.scheduler = scheduler or Scheduler("greedy")
        self.sample_kwargs = dict(sample_kwargs or {})

    def execute(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
    ) -> PTSBEResult:
        circuit.freeze()
        if not specs:
            raise ExecutionError("no trajectory specs to execute")
        assignment = self.scheduler.assign(specs, self.num_workers)
        payloads = [
            (circuit, self.backend, chunk, seed, self.sample_kwargs)
            for chunk in assignment.per_device
            if chunk
        ]
        if len(payloads) == 1:
            chunks = [_worker(payloads[0])]
        else:
            with ProcessPoolExecutor(max_workers=self.num_workers) as pool:
                chunks = list(pool.map(_worker, payloads))
        trajectories: List[TrajectoryResult] = []
        for chunk in chunks:
            trajectories.extend(chunk)
        # Restore deterministic global order (scheduling permutes specs).
        trajectories.sort(key=lambda t: t.record.trajectory_id)
        return PTSBEResult(
            trajectories=trajectories,
            measured_qubits=tuple(circuit.measured_qubits),
            prep_seconds=sum(t.prep_seconds for t in trajectories),
            sample_seconds=sum(t.sample_seconds for t in trajectories),
        )
