"""Fused execution plans: compile a circuit once, run it on every strategy.

The paper's batched-execution speedups come from amortizing circuit work
across trajectories; this module amortizes it across *operations* as well.
A :class:`FusedPlan` pre-compiles a frozen noisy circuit into a short
sequence of steps — adjacent gates and noise sites whose qubit supports
overlap are merged into single window matrices (qsim-style gate fusion,
bounded by ``Config.fusion_max_qubits``) with the diagonal/identity fast
paths re-detected on the fused result (:func:`repro.linalg.apply
.compile_operator`), so a brickwork layer of H + depolarizing + CX +
two-qubit depolarizing collapses from six kernel passes and three
renormalizations into one of each.

Two step kinds:

* :class:`GateStep` — a fused window of purely coherent operations: one
  :class:`~repro.linalg.apply.CompiledOperator`, applied to every
  trajectory (or every stack row) identically, no renormalization;
* :class:`NoiseStep` — a window containing one or more noise sites.  The
  fused matrix depends on which Kraus branches a trajectory prescribes,
  so the step exposes *variants*: one compiled operator per realized
  Kraus-index combination, built lazily and memoized in a
  :class:`~repro.trajectory.unitary_cache.KernelVariantCache` (B
  trajectories sharing a prescription pay each fusion product once).
  After a noise window the state is renormalized and the pre-normalization
  squared norm multiplies the trajectory weight — the product over a
  trajectory's noise windows telescopes to exactly the same total weight
  the per-site serial loop accumulates.

Every dense strategy (serial ``StatevectorBackend``, vectorized
``BatchedStatevectorBackend``, and the sharded executor built on it) walks
the *same* plan — obtained from the per-circuit cache
:func:`get_fused_plan` — with the same matrices, application order, and
renormalization points, which is what keeps serial/vectorized/sharded
execution bitwise identical with fusion on or off.  Fused and unfused runs
of the *same* trajectory agree on probabilities and weights to
floating-point accuracy, not bit for bit (matrix products round
differently than sequential application), which is why the fusion knob
lives on :class:`~repro.config.Config` rather than per call: one process,
one numerics story.

``Config.fusion="off"`` compiles a degenerate plan — one step per circuit
operation — that reproduces the historical unfused arithmetic exactly.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.moments import schedule_fusion_windows
from repro.circuits.operations import MeasureOp, NoiseOp, Operation
from repro.config import Config, DEFAULT_CONFIG
from repro.errors import BackendError, ExecutionError
from repro.linalg.apply import CompiledOperator, compile_operator
from repro.linalg.fusion import fuse_window_matrix, window_support
from repro.trajectory.unitary_cache import KernelVariantCache

__all__ = [
    "GateStep",
    "NoiseStep",
    "FusedPlan",
    "build_fused_plan",
    "get_fused_plan",
    "clear_plan_cache",
    "plan_cache_stats",
]

VALID_FUSION_MODES = ("auto", "off")


class GateStep:
    """A purely coherent fused window: one compiled operator, no renorm."""

    __slots__ = ("op", "num_ops")

    def __init__(self, op: CompiledOperator, num_ops: int):
        self.op = op
        self.num_ops = num_ops  # source operations fused into this step

    def __repr__(self) -> str:
        return f"GateStep(targets={self.op.targets}, ops={self.num_ops}, tier={self.op.tier!r})"


class NoiseStep:
    """A fused window containing noise sites: one compiled operator per
    realized Kraus-index combination, plus a renormalization point.

    ``site_ids`` lists the window's noise sites in application order; a
    *variant key* is the tuple of Kraus indices chosen at those sites (in
    the same order).  :meth:`key_for` maps a trajectory's sparse
    ``{site_id: kraus_index}`` choices to its key (absent sites take the
    channel's dominant branch), and :meth:`variant` compiles/memoizes the
    fused operator for a key.
    """

    __slots__ = (
        "site_ids",
        "channels",
        "dominant_key",
        "targets",
        "num_ops",
        "_items",
        "_step_index",
        "_dtype",
        "_cache",
    )

    def __init__(
        self,
        ops: Sequence[Operation],
        targets: Tuple[int, ...],
        step_index: int,
        dtype: np.dtype,
        cache: KernelVariantCache,
    ):
        site_ids: List[int] = []
        channels: List[object] = []
        items: List[Tuple[str, object, Tuple[int, ...]]] = []
        for op in ops:
            if isinstance(op, NoiseOp):
                items.append(("noise", len(site_ids), op.qubits))
                site_ids.append(op.site_id)
                channels.append(op.channel)
            else:
                items.append(("gate", op.gate.matrix, op.qubits))
        self.site_ids = tuple(site_ids)
        self.channels = tuple(channels)
        self.dominant_key = tuple(ch.dominant_index() for ch in channels)
        self.targets = targets
        self.num_ops = len(items)
        self._items = tuple(items)
        self._step_index = step_index
        self._dtype = dtype
        self._cache = cache

    def key_for(self, choices: Optional[Mapping[int, int]]) -> Tuple[int, ...]:
        """Variant key for one trajectory's Kraus choices (validated)."""
        if not choices:
            return self.dominant_key
        key = list(self.dominant_key)
        for pos, site_id in enumerate(self.site_ids):
            idx = choices.get(site_id)
            if idx is None:
                continue
            channel = self.channels[pos]
            if not (0 <= idx < len(channel)):
                raise BackendError(
                    f"kraus_index {idx} out of range for {channel.name!r} "
                    f"({len(channel)} operators)"
                )
            key[pos] = idx
        return tuple(key)

    def variant(self, key: Tuple[int, ...]) -> CompiledOperator:
        """Compiled fused operator realizing Kraus choices ``key``."""
        return self._cache.get_or_build(
            (self._step_index, key), lambda: self._build_variant(key)
        )

    def _build_variant(self, key: Tuple[int, ...]) -> CompiledOperator:
        if len(self._items) == 1:
            # Singleton window: compile the Kraus operator directly on the
            # site's own qubit order — identical arithmetic to the unfused
            # per-op path.
            _, pos, qubits = self._items[0]
            return compile_operator(
                self.channels[pos].kraus_ops[key[pos]], qubits, self._dtype
            )
        factors = []
        for kind, payload, qubits in self._items:
            if kind == "noise":
                factors.append((self.channels[payload].kraus_ops[key[payload]], qubits))
            else:
                factors.append((payload, qubits))
        fused = fuse_window_matrix(factors, self.targets)
        return compile_operator(fused, self.targets, self._dtype)

    def __repr__(self) -> str:
        return (
            f"NoiseStep(sites={self.site_ids}, targets={self.targets}, "
            f"ops={self.num_ops})"
        )


PlanStep = Union[GateStep, NoiseStep]


class FusedPlan:
    """The compiled form of one frozen circuit under one fusion config."""

    def __init__(
        self,
        steps: List[PlanStep],
        num_qubits: int,
        num_source_ops: int,
        fusion: str,
        fusion_max_qubits: int,
        variant_cache: KernelVariantCache,
    ):
        self.steps = steps
        self.num_qubits = num_qubits
        self.num_source_ops = num_source_ops
        self.fusion = fusion
        self.fusion_max_qubits = fusion_max_qubits
        self.variant_cache = variant_cache

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_noise_steps(self) -> int:
        return sum(1 for s in self.steps if isinstance(s, NoiseStep))

    def __repr__(self) -> str:
        return (
            f"FusedPlan(steps={self.num_steps} [{self.num_noise_steps} noise] "
            f"from {self.num_source_ops} ops, fusion={self.fusion!r}, "
            f"max_qubits={self.fusion_max_qubits})"
        )


def build_fused_plan(circuit: Circuit, config: Optional[Config] = None) -> FusedPlan:
    """Compile a frozen circuit into a :class:`FusedPlan`.

    Most callers want the memoized :func:`get_fused_plan` instead; this
    builder always compiles fresh.
    """
    config = config or DEFAULT_CONFIG
    if not circuit.frozen:
        raise ExecutionError("fused plans require a frozen circuit")
    if config.fusion not in VALID_FUSION_MODES:
        valid = ", ".join(repr(m) for m in VALID_FUSION_MODES)
        raise ExecutionError(
            f"unknown fusion mode {config.fusion!r}; valid modes are: {valid}"
        )
    if config.fusion_max_qubits is not None and config.fusion_max_qubits < 1:
        raise ExecutionError(
            f"fusion_max_qubits must be >= 1, got {config.fusion_max_qubits}"
        )
    # An explicit fusion_max_qubits overrides; the None default resolves
    # width-aware (3 narrow / 4 at >= 12 qubits, see repro.config).
    max_qubits = config.resolved_fusion_max_qubits(circuit.num_qubits)
    if config.fusion == "off":
        windows = [
            [op] for op in circuit if not isinstance(op, MeasureOp)
        ]
    else:
        windows = schedule_fusion_windows(circuit, max_qubits)
    cache = KernelVariantCache()
    dtype = config.dtype
    steps: List[PlanStep] = []
    num_source_ops = 0
    for window in windows:
        num_source_ops += len(window)
        has_noise = any(isinstance(op, NoiseOp) for op in window)
        if has_noise:
            if len(window) == 1:
                targets = window[0].qubits
            else:
                targets = window_support([op.qubits for op in window])
            steps.append(NoiseStep(window, targets, len(steps), dtype, cache))
        elif len(window) == 1:
            op = window[0]
            steps.append(
                GateStep(compile_operator(op.gate.matrix, op.qubits, dtype), 1)
            )
        else:
            targets = window_support([op.qubits for op in window])
            fused = fuse_window_matrix(
                [(op.gate.matrix, op.qubits) for op in window], targets
            )
            steps.append(
                GateStep(compile_operator(fused, targets, dtype), len(window))
            )
    return FusedPlan(
        steps,
        circuit.num_qubits,
        num_source_ops,
        config.fusion,
        max_qubits,
        cache,
    )


#: Per-circuit plan cache: weakly keyed on the circuit object, then on the
#: fusion-relevant config fields.  A circuit is compiled once per process
#: per (fusion, resolved window cap, dtype) — every executor chunk, stack,
#: and strategy after that reuses the same plan object (and its variant
#: cache), the "compile once per dedup group" amortization.  Keying on the
#: *resolved* cap means ``Config()`` and an explicit
#: ``Config(fusion_max_qubits=3)`` share one plan on a narrow circuit.
_PLAN_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[tuple, FusedPlan]]" = (
    weakref.WeakKeyDictionary()
)
_CACHE_STATS = {"hits": 0, "misses": 0}


def _config_key(config: Config, num_qubits: int) -> tuple:
    return (
        config.fusion,
        config.resolved_fusion_max_qubits(num_qubits),
        str(np.dtype(config.dtype)),
    )


def get_fused_plan(circuit: Circuit, config: Optional[Config] = None) -> FusedPlan:
    """Memoized :func:`build_fused_plan` (per circuit, per fusion config)."""
    config = config or DEFAULT_CONFIG
    per_circuit = _PLAN_CACHE.get(circuit)
    if per_circuit is None:
        per_circuit = {}
        _PLAN_CACHE[circuit] = per_circuit
    key = _config_key(config, circuit.num_qubits)
    plan = per_circuit.get(key)
    if plan is None:
        _CACHE_STATS["misses"] += 1
        plan = build_fused_plan(circuit, config)
        per_circuit[key] = plan
    else:
        _CACHE_STATS["hits"] += 1
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan (tests and benchmarks)."""
    _PLAN_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def plan_cache_stats() -> Dict[str, int]:
    """Plan-cache hit/miss counters (copies, not live references)."""
    return dict(_CACHE_STATS)
