"""Streaming shot delivery: consume a PTSBE run chunk by chunk.

The materialized path (:func:`~repro.execution.batched.run_ptsbe`) holds
every realized trajectory until the whole run finishes.  For the paper's
closing workload — "a programmable data collection engine" feeding decoder
training (§2.3) — that wastes the run's own latency: a consumer could
already be training on the first stack's shots while the last shard is
still preparing states.  This module is the delivery layer for
:func:`~repro.execution.batched.run_ptsbe_stream`:

* every executor exposes ``execute_stream(circuit, specs, seed)``
  returning a :class:`StreamedResult` — a lazy handle over
  :class:`ShotChunk`\\ s that are yielded *as each spec / stack / shard
  completes* instead of after the full run;
* chunk order is the **materialized trajectory order** of the same
  executor (spec order; ascending trajectory id for ``"parallel"``), so
  concatenating the streamed chunks reproduces
  ``PTSBEResult.shot_table()`` bitwise — executors whose work completes
  out of order (process-pool strategies, deduplicated stacks) pass their
  results through an :class:`OrderedDelivery` reorder buffer;
* :meth:`StreamedResult.finalize` drains whatever has not been consumed
  and assembles the exact :class:`~repro.execution.results.PTSBEResult`
  the materialized path would have returned — same shots, same records,
  same weights — so streaming is strictly additive;
* :meth:`StreamedResult.close` abandons the run mid-stream: the
  underlying generator's cleanup runs (process pools shut down with
  pending shards cancelled, stacked device buffers released), so a
  consumer that got what it needed leaks nothing;
* ``retain=False`` (every ``execute_stream`` and
  :func:`~repro.execution.batched.run_ptsbe_stream` accept it) drops
  each chunk after delivery so pure-ingest consumers hold at most one
  chunk of shots at a time — ``finalize()`` is unavailable in that mode.

Determinism is untouched: streaming changes *when* results are handed
over, never how they are computed — every trajectory still samples from
the stream derived from ``(seed, trajectory_id)``.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CapacityError, ExecutionError, FaultError
from repro.execution.results import PTSBEResult, ShotTable, TrajectoryResult
from repro.faults.retry import (
    CRASH_EXCEPTIONS,
    FaultContext,
    RecoveryEvent,
    describe_exception,
)
from repro.trajectory.events import TrajectoryRecord

__all__ = [
    "ShotChunk",
    "StreamedResult",
    "OrderedDelivery",
    "PoolJob",
    "stream_pool",
]


@dataclass(frozen=True)
class ShotChunk:
    """One streamed delivery: the trajectories of a completed unit of work.

    A chunk covers whatever the executor finished together — one spec
    (serial), one ``(B, 2**n)`` stack (vectorized), one worker slice
    (parallel), one device shard (sharded) — already in final trajectory
    order relative to neighbouring chunks.
    """

    trajectories: Tuple[TrajectoryResult, ...]
    measured_qubits: Tuple[int, ...]

    @property
    def num_trajectories(self) -> int:
        return len(self.trajectories)

    @property
    def num_shots(self) -> int:
        return sum(t.num_shots for t in self.trajectories)

    @property
    def records(self) -> List[TrajectoryRecord]:
        return [t.record for t in self.trajectories]

    def shot_table(self) -> ShotTable:
        """This chunk's shots, provenance-aligned by trajectory index."""
        if not self.trajectories:
            raise ExecutionError("empty shot chunk has no table")
        bits = np.concatenate([t.bits for t in self.trajectories], axis=0)  # replint: disable=XP001 -- host bit tables
        ids = np.concatenate(  # replint: disable=XP001 -- host provenance ids
            [
                np.full(t.num_shots, t.record.trajectory_id, dtype=np.int64)
                for t in self.trajectories
            ]
        )
        return ShotTable(bits, ids, self.measured_qubits)

    def __repr__(self) -> str:
        return (
            f"ShotChunk(trajectories={self.num_trajectories}, "
            f"shots={self.num_shots})"
        )


class StreamedResult:
    """Lazy handle over an in-flight PTSBE run.

    Iterate it (``for chunk in stream``) to receive :class:`ShotChunk`\\ s
    as the executor completes them; call :meth:`finalize` at any point to
    drain the remainder and obtain the bitwise-identical
    :class:`~repro.execution.results.PTSBEResult` of the materialized
    path; or :meth:`close` to abandon the run (also triggered by using
    the stream as a context manager).

    Attributes
    ----------
    measured_qubits:
        Measured qubit tuple every chunk's table carries.
    seed:
        The resolved root seed of the run (never ``None`` — unseeded runs
        resolve one entropy seed up front), sufficient to replay the run
        exactly via ``run_ptsbe(..., seed=stream.seed)``.
    unique_preparations:
        Distinct state preparations the run will perform (``None`` for
        executors that prepare one state per spec unconditionally).
    retain:
        ``True`` (default) keeps every delivered trajectory so
        :meth:`finalize` stays free.  ``False`` drops chunks the moment
        they are handed over — memory stays bounded by one in-flight
        chunk regardless of run length, the mode pure-ingest consumers
        (e.g. a streaming decoder-training loop that never materializes
        the run) want — at the price of :meth:`finalize` becoming
        unavailable: a retained full result would defeat the point, so it
        raises instead.
    recovery:
        Live list of :class:`~repro.faults.retry.RecoveryEvent` records —
        every retry, rebin, and batch-halving the run performed so far.
        Shared with the executor's delivery generator, so it grows as the
        stream is consumed; :meth:`finalize` snapshots it onto
        ``PTSBEResult.recovery``.  Empty for fault-free runs.
    """

    def __init__(
        self,
        chunks: Iterator[List[TrajectoryResult]],
        measured_qubits: Tuple[int, ...],
        seed: int,
        total_trajectories: int,
        unique_preparations: Optional[int] = None,
        on_close: Optional[Callable[[], None]] = None,
        retain: bool = True,
        engine: Optional[str] = None,
        routing: Optional[str] = None,
        recovery: Optional[List["RecoveryEvent"]] = None,
    ):
        self._chunks = chunks
        self.measured_qubits = tuple(measured_qubits)
        self.seed = int(seed)
        self.unique_preparations = unique_preparations
        #: Engine name of the executor that produced this stream; the
        #: routing trail is attached by run_ptsbe_stream after dispatch.
        self.engine = engine
        self.routing = routing
        self.retain = bool(retain)
        self.recovery: List[RecoveryEvent] = recovery if recovery is not None else []
        self._total = int(total_trajectories)
        self._collected: List[TrajectoryResult] = []
        self._delivered = 0
        self._closed = False
        self._exhausted = False
        # Extra cleanup close() must run even when the generator body never
        # started (generator.close() on an unstarted generator skips its
        # finally blocks): executors that allocate resources eagerly —
        # e.g. the vectorized backend's stack — pass their (idempotent)
        # release here.
        self._on_close = on_close

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def __iter__(self) -> "StreamedResult":
        return self

    def __next__(self) -> ShotChunk:
        if self._closed:
            raise StopIteration
        try:
            delivered = next(self._chunks)
        except StopIteration:
            self._exhausted = True
            raise
        self._delivered += len(delivered)
        if self.retain:
            self._collected.extend(delivered)
        return ShotChunk(tuple(delivered), self.measured_qubits)

    def chunks(self) -> Iterator[ShotChunk]:
        """Alias for iteration (reads better at call sites)."""
        return self

    def tables(self) -> Iterator[ShotTable]:
        """Yield each chunk's :class:`ShotTable` directly."""
        for chunk in self:
            yield chunk.shot_table()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def delivered_trajectories(self) -> int:
        """Trajectories handed over so far."""
        return self._delivered

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Abandon the run: cancel pending work, release buffers.

        Safe to call at any point (idempotent): a second close is a
        no-op, and close after exhaustion (``finalize()`` or a completed
        iteration) skips cleanup entirely — the generator's own
        ``finally`` already released every buffer, so re-touching them
        here would operate on freed resources.
        """
        if self._closed:
            return
        self._closed = True
        if self._exhausted:
            return
        self._chunks.close()
        if self._on_close is not None:
            self._on_close()

    def __enter__(self) -> "StreamedResult":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def finalize(self) -> PTSBEResult:
        """Drain the stream and assemble the materialized result.

        Returns the exact :class:`PTSBEResult` the executor's ``execute``
        would have produced for the same ``(circuit, specs, seed)`` —
        identical shot tables, records, and weights.  Raises
        :class:`~repro.errors.ExecutionError` if the stream was closed
        before every trajectory was delivered, or if it was opened with
        ``retain=False`` (delivered chunks were dropped, so there is
        nothing to assemble).
        """
        if not self.retain:
            raise ExecutionError(
                "stream was opened with retain=False: delivered chunks are "
                "dropped after hand-over, so no materialized result can be "
                "assembled; iterate the stream instead"
            )
        for _ in self:
            pass
        if len(self._collected) != self._total:
            raise ExecutionError(
                f"stream was closed after {len(self._collected)} of "
                f"{self._total} trajectories; a finalized result requires "
                "the full run"
            )
        return PTSBEResult(
            trajectories=list(self._collected),
            measured_qubits=self.measured_qubits,
            prep_seconds=sum(t.prep_seconds for t in self._collected),
            sample_seconds=sum(t.sample_seconds for t in self._collected),
            unique_preparations=self.unique_preparations,
            seed=self.seed,
            engine=self.engine,
            routing=self.routing,
            recovery=list(self.recovery),
        )

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("done" if self._exhausted else "open")
        return (
            f"StreamedResult({state}, delivered={self.delivered_trajectories}"
            f"/{self._total}, seed={self.seed})"
        )


class OrderedDelivery:
    """Reorder buffer turning out-of-order completions into ordered chunks.

    Executors whose units of work finish out of trajectory order (process
    pools, deduplicated stacks whose groups interleave spec positions)
    feed completed ``(position, TrajectoryResult)`` pairs in; :meth:`add`
    returns the contiguous prefix that became ready — possibly empty,
    possibly spanning several buffered completions — so the stream always
    delivers trajectories in exact materialized order.
    """

    def __init__(self, total: int):
        self._pending: Dict[int, TrajectoryResult] = {}
        self._next = 0
        self._total = int(total)

    def add(
        self,
        completions: Sequence[Tuple[int, TrajectoryResult]],
        reissue: bool = False,
    ) -> List[TrajectoryResult]:
        """Buffer completions; return the newly-contiguous ordered prefix.

        ``reissue=True`` is the retry layer's accounting mode: positions
        already delivered or buffered are silently dropped instead of
        raising.  Seed threading guarantees a reissued trajectory is
        bitwise identical to the first delivery, so keeping the original
        is correct — the recovered stream concatenates exactly like a
        fault-free one.  Duplicate positions in a *non*-reissued unit
        still raise, preserving the executor-bug tripwire.
        """
        for position, trajectory in completions:
            if not (0 <= position < self._total):
                raise ExecutionError(
                    f"delivery position {position} out of range for "
                    f"{self._total} trajectories"
                )
            if position < self._next or position in self._pending:
                if reissue:
                    continue
                raise ExecutionError(
                    f"duplicate delivery for trajectory position {position}"
                )
            self._pending[position] = trajectory
        ready: List[TrajectoryResult] = []
        while self._next in self._pending:
            ready.append(self._pending.pop(self._next))
            self._next += 1
        return ready

    @property
    def outstanding(self) -> int:
        """Trajectories not yet delivered (buffered or still in flight)."""
        return self._total - self._next


@dataclass
class PoolJob:
    """One retryable unit of pool work.

    ``payload_for(attempt)`` builds the picklable payload for a given
    attempt number — payloads carry ``(unit, attempt, plan)`` into the
    worker so in-worker fault injection keys off the exact attempt being
    run.  ``tag`` turns the worker's return value into
    ``(position, TrajectoryResult)`` pairs (running in the parent, so it
    may close over parent-side state).  ``meta`` is executor-private
    context — the sharded strategy stashes ``(device, groups)`` here for
    the rebin ladder.
    """

    unit: str
    payload_for: Callable[[int], Any]
    tag: Callable[[Any], Sequence[Tuple[int, TrajectoryResult]]]
    meta: Any = None


def stream_pool(
    jobs: Sequence[PoolJob],
    worker: Callable[[Any], Any],
    delivery: OrderedDelivery,
    max_workers: int,
    *,
    ctx: FaultContext,
    recovery: List[RecoveryEvent],
    on_crash: Optional[Callable[[PoolJob, BaseException], Optional[List[PoolJob]]]] = None,
) -> Iterator[List[TrajectoryResult]]:
    """Fan ``jobs`` over a process pool; yield ordered ready chunks.

    The shared pool-streaming loop of the ``"parallel"`` and ``"sharded"``
    strategies, now the pool half of the fault-tolerance layer:

    * a retryable failure (``ctx.policy``) resubmits the job with
      ``attempt + 1`` after the deterministic backoff — seed threading
      makes the re-run bitwise identical, and reissue-aware delivery
      accounting absorbs any duplicate positions;
    * a crash-class failure (injected ``WorkerCrashError`` or a real
      ``BrokenProcessPool``) first consults ``on_crash`` — the sharded
      strategy's rebin hook, returning replacement jobs for the dead
      device's groups — before falling back to plain retry.  A broken
      pool is torn down and recreated; jobs that were merely in flight
      on it are resubmitted at their *current* attempt (they did not
      fail, their substrate did);
    * ``CancelledError`` escaping a future is translated into
      :class:`~repro.errors.ExecutionError` naming the unit (the raw
      stdlib exception carries no repro context);
    * an exhausted retry budget raises
      :class:`~repro.errors.FaultError` naming the unit and attempts,
      with the last cause chained.

    Abandoning the enclosing generator (``GeneratorExit`` propagating
    through ``yield``) cancels unstarted jobs and shuts the pool down;
    running ones finish and are discarded.
    """
    pool = ProcessPoolExecutor(max_workers=max_workers)
    futures: Dict[Any, Tuple[PoolJob, int]] = {}
    retry_classes = (BrokenProcessPool, CancelledError) + ctx.policy.retryable

    def handle_failure(
        job: PoolJob, attempt: int, exc: BaseException
    ) -> List[Tuple[PoolJob, int]]:
        """Decide a failed job's fate: rebin, retry, or escalate."""
        if isinstance(exc, CapacityError):
            # The worker's own halving ladder already bottomed out;
            # repeating the identical allocation cannot help.
            raise
        if isinstance(exc, CancelledError):
            raise ExecutionError(
                f"work unit {job.unit!r} was cancelled before completing; "
                "the run cannot be finalized"
            ) from exc
        if isinstance(exc, CRASH_EXCEPTIONS) and on_crash is not None:
            replacements = on_crash(job, exc)
            if replacements is not None:
                return [(replacement, 0) for replacement in replacements]
        if not ctx.policy.is_retryable(exc):
            raise
        next_attempt = attempt + 1
        if next_attempt >= ctx.policy.max_attempts:
            raise FaultError(
                f"work unit {job.unit!r} failed after {next_attempt} "
                f"attempt(s): {describe_exception(exc)}",
                unit=job.unit,
                attempts=next_attempt,
            ) from exc
        recovery.append(
            RecoveryEvent(
                kind="retry",
                strategy=ctx.strategy,
                unit=job.unit,
                attempt=next_attempt,
                error=describe_exception(exc),
            )
        )
        ctx.sleep_backoff(job.unit, next_attempt)
        return [(job, next_attempt)]

    try:
        to_submit: List[Tuple[PoolJob, int]] = [(job, 0) for job in jobs]
        while to_submit or futures:
            for job, attempt in to_submit:
                futures[pool.submit(worker, job.payload_for(attempt))] = (
                    job,
                    attempt,
                )
            to_submit = []
            done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                job, attempt = futures.pop(future)
                try:
                    result = future.result()
                except retry_classes as exc:
                    if isinstance(exc, BrokenProcessPool):
                        broken = True
                    to_submit.extend(handle_failure(job, attempt, exc))
                    continue
                ready = delivery.add(job.tag(result), reissue=attempt > 0)
                if ready:
                    yield ready
            if broken:
                # The pool substrate died: every in-flight future is (or
                # will be) poisoned with BrokenProcessPool.  Recreate the
                # pool and resubmit survivors at their current attempt —
                # their work never failed, only its substrate.
                survivors = list(futures.values())
                futures.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=max_workers)
                to_submit.extend(survivors)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
