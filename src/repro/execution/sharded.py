"""Device-sharded trajectory-stacked execution (the fourth BE strategy).

The paper's two parallel axes composed in one engine ("the calculation
process trivially scales to arbitrarily many GPUs", §3):

1. **Deduplicate once** — specs are grouped by
   :meth:`~repro.pts.base.TrajectorySpec.dedup_key` *before* scheduling,
   so a unique Kraus prescription is prepared exactly once globally, never
   once per device;
2. **Shard groups across devices** —
   :func:`~repro.execution.scheduler.greedy_by_cost` bins whole dedup
   groups over a device pool, with per-group costs from the
   :mod:`repro.devices.perf_model` timing constants (prep once + merged
   shot budget), so skewed shot budgets still balance;
3. **Stack within each device** — every shard runs as chunked
   ``(B, 2**n)`` stacks via the
   :class:`~repro.execution.vectorized.VectorizedExecutor` machinery —
   including its compiled :class:`~repro.execution.plan.FusedPlan`
   (resolved once per process; every chunk of every shard reuses it) —
   with the chunk row count sized *per device* from its memory capacity
   (:func:`~repro.devices.memory.statevector_bytes`) on top of the global
   dense budget and any user ``max_batch``.

Determinism: every trajectory samples from the stream derived from
``(seed, trajectory_id)`` and stacked preparation is bitwise identical to
serial preparation row by row, so the resulting ``ShotTable`` is bitwise
identical to the ``"serial"`` and ``"vectorized"`` strategies for *any*
device count, shard assignment, or per-device ``max_batch`` — verified in
``tests/test_sharded.py``.

Devices are emulated by default (shards run sequentially in-process,
standing in for GPUs); ``num_workers > 1`` fans shards over OS processes
like :class:`~repro.execution.parallel.ParallelExecutor` does, with the
same result ordering guarantees.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.circuit import Circuit
from repro.config import Config, DEFAULT_CONFIG
from repro.devices.device import Device, DeviceMesh
from repro.devices.memory import statevector_bytes
from repro.devices.perf_model import BackendTimings, PAPER_STATEVECTOR_TIMINGS
from repro.errors import CapacityError, ExecutionError, FaultError
from repro.execution.batched import BackendSpec
from repro.linalg.apply import MAX_VIEW_QUBITS
from repro.execution.results import PTSBEResult, TrajectoryResult
from repro.execution.scheduler import Scheduler
from repro.execution.streaming import (
    OrderedDelivery,
    PoolJob,
    StreamedResult,
    stream_pool,
)
from repro.execution.vectorized import VectorizedExecutor
from repro.faults.plan import maybe_inject
from repro.faults.retry import (
    CRASH_EXCEPTIONS,
    FaultContext,
    RecoveryEvent,
    describe_exception,
)
from repro.pts.base import SpecGroup, TrajectorySpec, deduplicate_specs
from repro.rng import StreamFactory

__all__ = ["ShardedExecutor"]

#: Memory headroom per stacked row with only the reshape-view kernels in
#: play (every operator <= 3 qubits, the tiers of ``repro.linalg.apply``):
#: dense operators write into a fresh output buffer
#: (``out = xp.empty_like(view)``), so peak usage is ~2x the resident
#: ``(B, 2**n)`` stack.  The dedicated k=3 view tier is what moved fused
#: 3-qubit windows and the native ``ccx`` under this cheaper bound —
#: directly enlarging per-device shard capacity.
_WORKSPACE_FACTOR_DENSE = 2

#: Headroom once any operator can span >= 4 qubits — a fused window under
#: a resolved window cap of 4 (the width-aware auto-cap on >= 12 qubit
#: circuits) or a native >= 4-qubit gate: such operators take the
#: moveaxis + batched-GEMM path (``repro.linalg.apply.apply_gemm_stack``),
#: whose peak holds the resident stack, the contiguous gathered input,
#: *and* the GEMM output simultaneously — ~3x the stack, not 2x.
_WORKSPACE_FACTOR_GEMM = 3


class _MeasuredCosts:
    """Running totals of observed per-group prep/sample wall times.

    The trajectory results already carry measured ``prep_seconds`` (only
    the first spec of a dedup group is charged) and ``sample_seconds``;
    accumulating them across runs yields empirical per-preparation and
    per-shot constants that replace the analytic perf-model ratio in the
    scheduler's cost function once :attr:`Config.measured_cost_feedback`
    is on.  Scheduling never changes results — only how well the bins
    balance — so the feedback is purely a makespan refinement.
    """

    __slots__ = ("prep_seconds", "num_preps", "sample_seconds", "num_shots")

    def __init__(self):
        self.prep_seconds = 0.0
        self.num_preps = 0
        self.sample_seconds = 0.0
        self.num_shots = 0

    def observe(self, trajectories) -> None:
        for t in trajectories:
            if t.prep_seconds > 0.0:
                self.prep_seconds += t.prep_seconds
                self.num_preps += 1
            self.sample_seconds += t.sample_seconds
            self.num_shots += t.num_shots

    def timings(self, like: BackendTimings) -> Optional[BackendTimings]:
        """Empirical :class:`BackendTimings`, or ``None`` before any data.

        Requires at least one observed preparation *and* one observed
        shot so both constants are grounded; device-count metadata is
        inherited from the analytic timings being refined.
        """
        if self.num_preps == 0 or self.num_shots == 0:
            return None
        return BackendTimings(
            prep_seconds=self.prep_seconds / self.num_preps,
            shot_seconds=self.sample_seconds / self.num_shots,
            ref_devices=like.ref_devices,
            scaling_efficiency=like.scaling_efficiency,
        )


def _shard_worker(args):
    """Top-level worker (must be module-level for pickling).

    Receives one device shard as ``(global_index, spec)`` pairs and runs
    it as chunked trajectory stacks; returns ``(tagged, recovery)`` —
    results tagged with their global spec positions so the caller can
    restore exact spec order, plus any recovery events the inner
    vectorized run performed (its capacity ladder and chunk retries run
    *inside* the worker, under the plan carried by the backend config).

    The trailing ``(unit, attempt, plan)`` payload element is the
    shard-level fault hook: it fires here, inside the worker, so an
    injected shard crash reaches the parent like a real device death.
    """
    circuit, backend_spec, indexed_specs, chunk_rows, seed, fault = args
    unit, attempt, plan = fault
    maybe_inject(plan, unit, attempt, seed)
    indices = [i for i, _ in indexed_specs]
    specs = [s for _, s in indexed_specs]
    executor = VectorizedExecutor(backend_spec, max_batch=chunk_rows)
    result = executor.execute(circuit, specs, seed=seed)
    return list(zip(indices, result.trajectories)), result.recovery


class ShardedExecutor:
    """Shard dedup groups across a device pool; stack within each shard.

    Parameters
    ----------
    backend:
        A :class:`BackendSpec` of kind ``"batched_statevector"`` or
        ``"statevector"`` (upgraded to the stacked backend), or a callable
        ``num_qubits -> backend`` — the same contract as
        :class:`VectorizedExecutor`.  A picklable :class:`BackendSpec` is
        required when ``num_workers > 1``.
    devices:
        The device pool: a :class:`~repro.devices.device.DeviceMesh`, an
        explicit sequence of :class:`~repro.devices.device.Device`, or an
        integer count of identical 80 GB emulated GPUs.  Unlike the
        distributed-statevector mesh, trajectory sharding has no
        power-of-two constraint.
    max_batch:
        Optional global upper bound on stacked rows per chunk; the
        effective per-device bound is ``min(max_batch, rows that fit the
        device's memory, the backend's dense amplitude budget)``.
    scheduler:
        A :class:`~repro.execution.scheduler.Scheduler` binning
        :class:`~repro.pts.base.SpecGroup` items.  Defaults to greedy
        longest-processing-time-first with costs from ``timings``.
    timings:
        :class:`~repro.devices.perf_model.BackendTimings` supplying the
        prep/shot cost constants for group scheduling (defaults to the
        paper-calibrated statevector timings — only the *ratio* matters
        for binning).
    num_workers:
        ``1`` (default) runs shards sequentially in-process (emulated
        devices); larger values fan shards over a process pool.
    sample_kwargs:
        Accepted for signature symmetry; must be empty (the stacked dense
        backend takes no sampling options).
    """

    def __init__(
        self,
        backend: Union[BackendSpec, Callable, None] = None,
        devices: Union[DeviceMesh, Sequence[Device], int] = 2,
        max_batch: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        timings: Optional[BackendTimings] = None,
        num_workers: int = 1,
        sample_kwargs: Optional[Dict] = None,
    ):
        if backend is None:
            backend = BackendSpec.batched_statevector()
        # Reuse the vectorized executor's backend validation up front so
        # misconfiguration fails at construction, not mid-run.
        VectorizedExecutor(backend, max_batch=max_batch or 64, sample_kwargs=sample_kwargs)
        self.backend = backend
        self.devices = self._normalize_devices(devices)
        if max_batch is not None and max_batch <= 0:
            raise ExecutionError(f"max_batch must be positive, got {max_batch}")
        self.max_batch = max_batch
        self.timings = timings or PAPER_STATEVECTOR_TIMINGS
        self._observed = _MeasuredCosts()
        self.scheduler = scheduler or Scheduler("greedy", cost_fn=self._group_cost)
        if num_workers <= 0:
            raise ExecutionError(f"num_workers must be positive, got {num_workers}")
        if num_workers > 1 and not isinstance(backend, BackendSpec):
            raise ExecutionError(
                "ShardedExecutor with num_workers > 1 requires a picklable "
                "BackendSpec, not a callable backend factory"
            )
        self.num_workers = int(num_workers)

    @staticmethod
    def _normalize_devices(
        devices: Union[DeviceMesh, Sequence[Device], int]
    ) -> List[Device]:
        if isinstance(devices, DeviceMesh):
            return list(devices)
        if isinstance(devices, int):
            if devices <= 0:
                raise ExecutionError(f"devices must be positive, got {devices}")
            return [
                Device(device_id=i, memory_bytes=80 * 10**9, name=f"emulated[{i}]")
                for i in range(devices)
            ]
        pool = list(devices)
        if not pool:
            raise ExecutionError("device pool must not be empty")
        return pool

    def observed_timings(self) -> Optional[BackendTimings]:
        """Empirical prep/shot constants from completed runs (or ``None``).

        Populated as runs stream through this executor; consulted by the
        group cost function only when ``Config.measured_cost_feedback``
        is enabled on the backend config.
        """
        return self._observed.timings(self.timings)

    def _cost_timings(self) -> BackendTimings:
        """The timing constants scheduling uses for this executor.

        Analytic perf-model constants by default; once the backend config
        enables ``measured_cost_feedback`` *and* at least one run has
        completed, the measured per-group prep/sample averages take over —
        tightening makespan on pools whose real prep/shot ratio diverges
        from the paper-calibrated one.
        """
        if self._backend_config().measured_cost_feedback:
            measured = self.observed_timings()
            if measured is not None:
                return measured
        return self.timings

    def _group_cost(self, group: SpecGroup) -> float:
        """Cost of one dedup group: prepare once, sample the merged budget."""
        timings = self._cost_timings()
        return timings.prep_seconds + group.total_shots * timings.shot_seconds

    def _backend_config(self) -> Config:
        """The :class:`Config` the shard backends will run under.

        A callable backend factory is opaque, so for it (and for a
        :class:`BackendSpec` without an explicit ``config`` option) this
        falls back to :data:`~repro.config.DEFAULT_CONFIG` — the same
        resolution the per-device chunk sizing uses for the state dtype.
        Config-gated behavior (``measured_cost_feedback``) therefore
        follows the library default config under a callable factory:
        enable it globally with ``configure(measured_cost_feedback=True)``
        or pass a ``BackendSpec`` carrying the config.
        """
        if isinstance(self.backend, BackendSpec):
            config = dict(self.backend.options).get("config")
            if config is not None:
                return config
        return DEFAULT_CONFIG

    def _workspace_factor(self, circuit: Circuit) -> int:
        """Per-row memory multiplier for chunk sizing.

        Any operator on >= 4 qubits takes the moveaxis+GEMM kernel in
        :mod:`repro.linalg.apply`, whose transient peaks at ~3x the
        resident stack (stack + contiguous gathered input + GEMM output);
        everything up to 3 qubits runs the reshape-view kernels — the
        dedicated k=3 tier included — whose only transient is a fresh
        output buffer (~2x).  Wide operators come from two sources: fused
        windows (possible whenever fusion is on and the resolved window
        cap exceeds 3 — e.g. the width-aware auto-cap of 4 on >= 12 qubit
        circuits) and the circuit's own native gates/channels (a 4-qubit
        gate hits the GEMM path with fusion off too), so both are
        inspected.
        """
        from repro.circuits.operations import GateOp, NoiseOp

        config = self._backend_config()
        # Only operators applied as matrices count — a MeasureOp may span
        # every qubit but sampling never touches the GEMM kernel.
        widest = max(
            (
                len(op.qubits)
                for op in circuit
                if isinstance(op, (GateOp, NoiseOp))
            ),
            default=1,
        )
        if config.fusion != "off":
            # A fused window can never span more qubits than the circuit
            # has — don't charge a narrow circuit the GEMM headroom.
            widest = max(
                widest,
                min(
                    config.resolved_fusion_max_qubits(circuit.num_qubits),
                    circuit.num_qubits,
                ),
            )
        if widest > MAX_VIEW_QUBITS:
            return _WORKSPACE_FACTOR_GEMM
        return _WORKSPACE_FACTOR_DENSE

    def _device_chunk_rows(self, device: Device, circuit: Circuit) -> int:
        """Largest stack chunk this device's memory can hold (with the
        kernel's workspace transient accounted for — see
        :meth:`_workspace_factor`)."""
        num_qubits = circuit.num_qubits
        factor = self._workspace_factor(circuit)
        bytes_per_row = statevector_bytes(num_qubits, dtype=self._backend_config().dtype)
        rows = device.memory_bytes // (factor * bytes_per_row)
        if rows < 1:
            raise CapacityError(
                f"device {device.name!r} ({device.memory_bytes} bytes) cannot hold "
                f"one 2**{num_qubits} statevector row plus kernel workspace "
                f"({factor} x {bytes_per_row} bytes)"
            )
        if self.max_batch is not None:
            rows = min(rows, self.max_batch)
        return int(rows)

    def execute(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
    ) -> PTSBEResult:
        """Dedup once, shard groups over devices, stack within each shard."""
        return self.execute_stream(circuit, specs, seed=seed).finalize()

    def execute_stream(
        self,
        circuit: Circuit,
        specs: Sequence[TrajectorySpec],
        seed: Optional[int] = None,
        retain: bool = True,
    ) -> StreamedResult:
        """Stream each device shard's trajectories as the shard completes.

        With ``num_workers > 1`` shards finish in pool order; either way
        an :class:`~repro.execution.streaming.OrderedDelivery` buffer
        releases chunks in spec order, so concatenated streamed tables
        match :meth:`execute` bitwise.  Abandoning the stream cancels
        unstarted shards and shuts the pool down.  ``retain=False`` drops
        chunks after delivery (``finalize`` unavailable) to bound memory
        for pure-ingest consumers.

        Fault tolerance: each shard is one retryable unit
        (``sharded/shard:{device_id}``).  A crash-class failure marks the
        device dead and *rebins* its groups across the surviving devices
        (same greedy perf-model scheduling as the initial assignment;
        shard assignment never changes bits, so the degraded run stays
        bitwise identical).  When the last device dies, a
        :class:`~repro.errors.FaultError` escalates with the full chain.
        """
        circuit.freeze()
        measured = tuple(circuit.measured_qubits)
        if not measured:
            raise ExecutionError("circuit has no measurements to sample")
        if not specs:
            raise ExecutionError("no trajectory specs to execute")
        streams = StreamFactory(seed)
        ctx = FaultContext.from_config(
            self._backend_config(), streams.seed, strategy="sharded"
        )
        events: List[RecoveryEvent] = []
        groups = deduplicate_specs(specs)
        assignment = self.scheduler.assign(groups, len(self.devices))

        def make_job(
            device: Device, shard_groups: List[SpecGroup], unit: str
        ) -> PoolJob:
            # Keep first-occurrence order within the shard so its local
            # dedup reproduces exactly these groups.
            indices = sorted(i for g in shard_groups for i in g.indices)
            indexed = [(i, specs[i]) for i in indices]
            chunk_rows = self._device_chunk_rows(device, circuit)

            def tag(result):
                tagged, inner_events = result
                # Inner events carry the worker-local unit names
                # (vectorized/stack:a:b); prefix the shard so the run's
                # recovery log says *where* each inner recovery happened.
                events.extend(
                    dataclasses.replace(e, unit=f"{unit}/{e.unit}")
                    for e in inner_events
                )
                return tagged

            return PoolJob(
                unit=unit,
                payload_for=lambda attempt: (
                    circuit,
                    self.backend,
                    indexed,
                    chunk_rows,
                    streams.seed,
                    (unit, attempt, ctx.plan),
                ),
                tag=tag,
                meta=(device, shard_groups),
            )

        jobs = [
            make_job(device, shard_groups, f"sharded/shard:{device.device_id}")
            for device, shard_groups in zip(self.devices, assignment.per_device)
            if shard_groups
        ]

        dead: set = set()
        generation = [0]

        def rebin(job: PoolJob, exc: BaseException) -> List[PoolJob]:
            """Degradation ladder: redistribute a dead device's groups.

            The rebin reuses the executor's own scheduler (greedy by
            perf-model cost) over the surviving devices; because the
            bitwise cross-strategy contract holds for *any* shard
            assignment, the degraded run's shots are unchanged.
            """
            device, shard_groups = job.meta
            dead.add(device.device_id)
            survivors = [d for d in self.devices if d.device_id not in dead]
            if not survivors:
                raise FaultError(
                    f"device {device.name!r} died ({describe_exception(exc)}) "
                    f"and no devices survive to absorb its "
                    f"{len(shard_groups)} group(s)",
                    unit=job.unit,
                    attempts=1,
                ) from exc
            generation[0] += 1
            events.append(
                RecoveryEvent(
                    kind="rebin",
                    strategy="sharded",
                    unit=job.unit,
                    attempt=0,
                    error=describe_exception(exc),
                    detail=(
                        f"{len(shard_groups)} group(s) rebinned across "
                        f"{len(survivors)} surviving device(s)"
                    ),
                )
            )
            sub_assignment = self.scheduler.assign(shard_groups, len(survivors))
            return [
                make_job(
                    survivor,
                    sub_groups,
                    f"sharded/shard:{survivor.device_id}/rebin:{generation[0]}",
                )
                for survivor, sub_groups in zip(survivors, sub_assignment.per_device)
                if sub_groups
            ]

        def deliver():
            delivery = OrderedDelivery(len(specs))
            if self.num_workers > 1 and len(jobs) > 1:
                # Shard workers already tag results with global spec
                # positions; the pool helper handles completion order,
                # retry/rebin, and abandonment cleanup.
                for ready in stream_pool(
                    jobs,
                    _shard_worker,
                    delivery,
                    self.num_workers,
                    ctx=ctx,
                    recovery=events,
                    on_crash=rebin,
                ):
                    self._observed.observe(ready)
                    yield ready
                return
            # In-process path (emulated devices): the same retry/rebin
            # ladder as the pool, minus the pool-substrate concerns.
            queue = deque((job, 0) for job in jobs)
            while queue:
                job, attempt = queue.popleft()
                try:
                    result = _shard_worker(job.payload_for(attempt))
                except CapacityError:
                    raise
                except ctx.policy.retryable as exc:
                    if isinstance(exc, CRASH_EXCEPTIONS):
                        queue.extend((j, 0) for j in rebin(job, exc))
                        continue
                    if not ctx.policy.is_retryable(exc):
                        raise
                    attempt += 1
                    if attempt >= ctx.policy.max_attempts:
                        raise FaultError(
                            f"work unit {job.unit!r} failed after {attempt} "
                            f"attempt(s): {describe_exception(exc)}",
                            unit=job.unit,
                            attempts=attempt,
                        ) from exc
                    events.append(
                        RecoveryEvent(
                            kind="retry",
                            strategy="sharded",
                            unit=job.unit,
                            attempt=attempt,
                            error=describe_exception(exc),
                        )
                    )
                    ctx.sleep_backoff(job.unit, attempt)
                    queue.appendleft((job, attempt))
                    continue
                ready = delivery.add(job.tag(result), reissue=attempt > 0)
                if ready:
                    self._observed.observe(ready)
                    yield ready

        return StreamedResult(
            deliver(),
            measured_qubits=measured,
            seed=streams.seed,
            total_trajectories=len(specs),
            unique_preparations=len(groups),
            engine="sharded",
            retain=retain,
            recovery=events,
        )
