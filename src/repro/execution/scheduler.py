"""Trajectory-to-device scheduling.

PTSBE's inter-trajectory axis is embarrassingly parallel (paper §3:
"the calculation process trivially scales to arbitrarily many GPUs"), but
a good schedule still matters when trajectory costs are skewed — one
trajectory with 10**7 shots should not share a device with nothing else
while ten smaller ones queue elsewhere.  Two policies:

* :func:`round_robin` — the trivial baseline;
* :func:`greedy_by_cost` — longest-processing-time-first bin packing on an
  analytic per-item cost (prep cost + shots * per-shot cost), the classic
  4/3-approximation for makespan.

Both policies are generic over the *items* they bin: the parallel
executor schedules raw :class:`~repro.pts.base.TrajectorySpec`s, while
the sharded executor schedules deduplicated
:class:`~repro.pts.base.SpecGroup`s (so that a group is never split
across devices and each unique state is still prepared exactly once).
Any item type works as long as the cost function accepts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.pts.base import TrajectorySpec

__all__ = ["Assignment", "Scheduler", "round_robin", "greedy_by_cost"]


@dataclass
class Assignment:
    """Result of scheduling: items per device plus predicted makespan."""

    per_device: List[List[Any]]
    predicted_loads: List[float]

    @property
    def num_devices(self) -> int:
        return len(self.per_device)

    @property
    def makespan(self) -> float:
        return max(self.predicted_loads) if self.predicted_loads else 0.0

    def imbalance(self) -> float:
        """max/mean predicted load — 1.0 is perfect balance."""
        loads = [l for l in self.predicted_loads]
        mean = sum(loads) / len(loads) if loads else 0.0
        return self.makespan / mean if mean > 0 else 1.0


def default_cost(spec: TrajectorySpec, prep_cost: float = 1.0, shot_cost: float = 1e-4) -> float:
    """Analytic item cost: one preparation plus per-shot sampling.

    Works for any item exposing ``num_shots`` (a spec) or ``total_shots``
    (a dedup group).
    """
    shots = getattr(spec, "num_shots", None)
    if shots is None:
        shots = spec.total_shots
    return prep_cost + shot_cost * shots


def round_robin(specs: Sequence[Any], num_devices: int,
                cost_fn: Optional[Callable[[Any], float]] = None) -> Assignment:
    """Deal items to devices in order."""
    if num_devices <= 0:
        raise ExecutionError("num_devices must be positive")
    cost_fn = cost_fn or default_cost
    per_device: List[List[Any]] = [[] for _ in range(num_devices)]
    loads = [0.0] * num_devices
    for i, spec in enumerate(specs):
        d = i % num_devices
        per_device[d].append(spec)
        loads[d] += cost_fn(spec)
    return Assignment(per_device, loads)


def greedy_by_cost(specs: Sequence[Any], num_devices: int,
                   cost_fn: Optional[Callable[[Any], float]] = None) -> Assignment:
    """Longest-processing-time-first: sort by cost, assign to least-loaded."""
    if num_devices <= 0:
        raise ExecutionError("num_devices must be positive")
    cost_fn = cost_fn or default_cost
    per_device: List[List[Any]] = [[] for _ in range(num_devices)]
    loads = [0.0] * num_devices
    for spec in sorted(specs, key=cost_fn, reverse=True):
        d = int(np.argmin(loads))  # replint: disable=XP001 -- host cost model, (devices,) floats
        per_device[d].append(spec)
        loads[d] += cost_fn(spec)
    return Assignment(per_device, loads)


class Scheduler:
    """Policy holder used by the parallel and sharded executors."""

    POLICIES = {"round_robin": round_robin, "greedy": greedy_by_cost}

    def __init__(self, policy: str = "greedy",
                 cost_fn: Optional[Callable[[Any], float]] = None):
        if policy not in self.POLICIES:
            raise ExecutionError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self.cost_fn = cost_fn

    def assign(self, specs: Sequence[Any], num_devices: int) -> Assignment:
        return self.POLICIES[self.policy](specs, num_devices, self.cost_fn)
