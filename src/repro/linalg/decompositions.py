"""Truncated SVD and Schmidt decomposition used by the MPS backend.

The tensor-network backend's accuracy/cost trade-off is governed entirely by
these routines: every two-qubit gate application splits a merged tensor with
:func:`truncated_svd`, discarding singular values below a cutoff and beyond a
maximum bond dimension, exactly as cuTensorNet's MPS path does.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

import numpy as np

__all__ = [
    "TruncationInfo",
    "truncated_svd",
    "truncated_svd_batched",
    "schmidt_decomposition",
]


class TruncationInfo(NamedTuple):
    """Bookkeeping about one SVD truncation.

    Attributes
    ----------
    kept:
        Number of singular values retained.
    discarded_weight:
        Sum of squared discarded singular values divided by the total —
        i.e. the probability weight thrown away by this truncation.
    """

    kept: int
    discarded_weight: float


def truncated_svd(
    matrix: np.ndarray,
    max_rank: Optional[int] = None,
    cutoff: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, TruncationInfo]:
    """SVD with rank and relative-magnitude truncation.

    Parameters
    ----------
    matrix:
        Matrix to factor.
    max_rank:
        Keep at most this many singular values (``None`` = no limit).
    cutoff:
        Drop singular values ``s_i`` with ``s_i < cutoff * s_0``.

    Returns
    -------
    (u, s, vh, info):
        Truncated factors and a :class:`TruncationInfo` record.  At least
        one singular value is always kept.
    """
    u, s, vh = np.linalg.svd(np.asarray(matrix), full_matrices=False)
    total = float(np.sum(s**2))
    rank = len(s)
    if cutoff > 0.0 and rank > 0:
        keep_mask = s >= cutoff * s[0]
        rank = max(1, int(np.count_nonzero(keep_mask)))
    if max_rank is not None:
        rank = max(1, min(rank, int(max_rank)))
    kept_weight = float(np.sum(s[:rank] ** 2))
    discarded = 0.0 if total == 0.0 else max(0.0, 1.0 - kept_weight / total)
    info = TruncationInfo(kept=rank, discarded_weight=discarded)
    return u[:, :rank], s[:rank], vh[:rank, :], info


def truncated_svd_batched(
    mats: np.ndarray,
    max_rank: Optional[int] = None,
    cutoff: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, np.ndarray]:
    """Batched :func:`truncated_svd` over the leading axis.

    All rows are truncated to one *common* kept rank so the batch stays a
    rectangular array: the rank is the maximum of the per-row ranks that
    serial truncation would have chosen (then clamped to ``max_rank``).
    Keeping extra genuine singular values for a row only improves its
    accuracy, so per-row results remain at least as accurate as the serial
    path would have been at the same ``max_rank``/``cutoff``.

    Parameters
    ----------
    mats:
        ``(B, m, n)`` stack of matrices to factor.
    max_rank:
        Keep at most this many singular values per row (``None`` = no limit).
    cutoff:
        Drop singular values ``s_i`` with ``s_i < cutoff * s_0``, judged
        per row against that row's largest singular value.

    Returns
    -------
    (u, s, vh, kept, discarded):
        ``u`` is ``(B, m, kept)``, ``s`` is ``(B, kept)``, ``vh`` is
        ``(B, kept, n)``; ``kept`` is the common retained rank and
        ``discarded`` the ``(B,)`` per-row relative discarded weight
        (same semantics as :class:`TruncationInfo.discarded_weight`).
    """
    mats = np.asarray(mats)
    u, s, vh = np.linalg.svd(mats, full_matrices=False)
    batch, full_rank = s.shape
    totals = np.sum(s**2, axis=1)
    rank = full_rank
    if cutoff > 0.0 and full_rank > 0:
        # Per-row relative cutoff; the batch keeps the widest row's rank.
        keep = s >= cutoff * s[:, :1]
        per_row = np.maximum(1, keep.sum(axis=1))
        rank = int(per_row.max()) if batch else 1
    if max_rank is not None:
        rank = max(1, min(rank, int(max_rank)))
    kept_weight = np.sum(s[:, :rank] ** 2, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        discarded = np.where(
            totals == 0.0, 0.0, np.maximum(0.0, 1.0 - kept_weight / np.where(totals == 0.0, 1.0, totals))
        )
    return u[:, :, :rank], s[:, :rank], vh[:, :rank, :], rank, discarded


def schmidt_decomposition(
    state: np.ndarray, left_qubits: int, total_qubits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Schmidt decomposition of a pure state across a left/right bipartition.

    Returns ``(coeffs, left_vectors, right_vectors)`` with
    ``state = sum_k coeffs[k] * kron(left[:, k], right[:, k])``.
    """
    state = np.asarray(state).reshape(2**left_qubits, 2 ** (total_qubits - left_qubits))
    u, s, vh = np.linalg.svd(state, full_matrices=False)
    return s, u, vh.T  # vh row k is the k-th right vector; return as columns
