"""Window algebra for gate/noise kernel fusion (qsim-style gate fusion).

Dense simulators spend their time streaming the state through many small
kernels; fusing adjacent operators whose qubit supports overlap into one
larger matrix trades tiny passes for fewer, denser ones — the dominant
dense-simulator optimization of Isakov et al. ("Simulations of Quantum
Circuits with Approximate Noise using qsim and Cirq").  This module is the
*matrix* half of that story: given a window — a list of operators in
application order plus the window's combined qubit support — build the
single ``(2**w, 2**w)`` matrix equal to applying them in sequence.

The *scheduling* half (which circuit operations form a window) lives in
:func:`repro.circuits.moments.schedule_fusion_windows`, and the compiled
execution plan that ties both to the backends lives in
:mod:`repro.execution.plan`.  Everything here is host-side NumPy on small
matrices — fusion products never touch the ``(B, 2**n)`` stack.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import GateError
from repro.linalg.kron import embed_operator

__all__ = ["expand_to_support", "fuse_window_matrix", "window_support"]


def window_support(qubit_groups: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """Sorted union of the qubit tuples of a window's operators.

    Sorted is load-bearing: fused window matrices are always built on
    ascending support, so compiled window operators land on the
    reshape-view kernel tiers of :mod:`repro.linalg.apply` (which serve
    ascending targets up to 3 qubits) without a canonicalization step.
    """
    support = set()
    for qubits in qubit_groups:
        support.update(qubits)
    return tuple(sorted(support))


def expand_to_support(
    matrix: np.ndarray, qubits: Sequence[int], support: Sequence[int]
) -> np.ndarray:
    """Embed an operator on ``qubits`` into a window's ``support``.

    ``qubits`` are circuit qubit indices in the operator's own axis order
    (so non-ascending 2-qubit targets keep their meaning); ``support`` is
    the window's qubit tuple.  Returns the dense
    ``(2**len(support), 2**len(support))`` host matrix acting as the
    operator on its qubits and as identity on the rest of the window.
    """
    support = tuple(support)
    try:
        local = [support.index(q) for q in qubits]
    except ValueError:
        raise GateError(
            f"operator qubits {tuple(qubits)} not contained in window support {support}"
        )
    return embed_operator(np.asarray(matrix), local, len(support))


def fuse_window_matrix(
    operators: Sequence[Tuple[np.ndarray, Sequence[int]]],
    support: Sequence[int],
) -> np.ndarray:
    """Product matrix of a window: apply ``operators`` left-to-right.

    ``operators`` is a sequence of ``(matrix, qubits)`` pairs in
    *application order* (index 0 acts first); the result is
    ``M_last @ ... @ M_0`` with every factor expanded onto ``support``.
    The product is accumulated in complex128 on host; callers cast to the
    state dtype when compiling the fused operator
    (:func:`repro.linalg.apply.compile_operator`), exactly as they would
    for an unfused gate matrix.
    """
    support = tuple(support)
    if not operators:
        raise GateError("cannot fuse an empty operator window")
    acc = None
    for matrix, qubits in operators:
        expanded = expand_to_support(matrix, qubits, support)
        acc = expanded if acc is None else expanded @ acc
    return np.ascontiguousarray(acc.astype(np.complex128, copy=False))
