"""Unitarity / hermiticity checks and Haar-random object generation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ATOL
from repro.rng import library_rng

__all__ = [
    "is_unitary",
    "is_hermitian",
    "closest_unitary",
    "random_unitary",
    "random_statevector",
]


def is_unitary(matrix: np.ndarray, atol: float = ATOL) -> bool:
    """True when ``matrix`` is square and satisfies ``U @ U^dag == I``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    ident = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, ident, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = ATOL) -> bool:
    """True when ``matrix`` equals its conjugate transpose."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project a matrix onto the unitary group (polar decomposition).

    Useful for re-unitarizing gates after accumulated float drift.
    """
    u, _, vh = np.linalg.svd(np.asarray(matrix))
    return u @ vh


def random_unitary(dim: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Haar-random unitary via QR of a complex Ginibre matrix."""
    rng = rng if rng is not None else library_rng()
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    # Fix the phase ambiguity so the distribution is exactly Haar.
    phases = np.diagonal(r) / np.abs(np.diagonal(r))
    return q * phases


def random_statevector(num_qubits: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Haar-random pure state on ``num_qubits`` qubits."""
    rng = rng if rng is not None else library_rng()
    dim = 2**num_qubits
    z = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return z / np.linalg.norm(z)
