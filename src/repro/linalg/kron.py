"""Kronecker-product utilities and operator embedding.

These helpers construct full ``2**n x 2**n`` matrices from small gate
matrices.  They are used by the density-matrix reference backend and by
tests; the statevector backend never materializes full operators (it applies
gates in-place on the state tensor, per the HPC guidance of avoiding
needless big allocations).

Like the gate kernels in :mod:`repro.linalg.apply`, the constructors are
array-module agnostic: pass an ``xp`` namespace (see
:mod:`repro.linalg.backend`) to build the product on device; the default
is host NumPy.

Qubit-ordering convention (library-wide): qubit 0 is the *most significant*
bit of a computational-basis index, i.e. basis state ``|q0 q1 ... q(n-1)>``
has integer index ``q0*2**(n-1) + ... + q(n-1)``.  Equivalently, reshaping a
statevector to shape ``(2,)*n`` puts qubit ``i`` on tensor axis ``i``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import GateError

__all__ = ["kron_all", "embed_operator", "permute_operator_qubits"]


def kron_all(matrices: Sequence[np.ndarray], xp: Optional[Any] = None) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right.

    ``kron_all([A, B, C]) == A (x) B (x) C`` — with our convention the
    leftmost factor acts on qubit 0.
    """
    if xp is None:
        xp = np
    if len(matrices) == 0:
        return xp.eye(1)
    out = xp.asarray(matrices[0])
    for mat in matrices[1:]:
        out = xp.kron(out, xp.asarray(mat))
    return out


def _validate_gate_matrix(matrix: np.ndarray, num_targets: int) -> np.ndarray:
    if not hasattr(matrix, "shape"):  # lists/tuples; device arrays pass through
        matrix = np.asarray(matrix)
    dim = 2**num_targets
    if matrix.shape != (dim, dim):
        raise GateError(
            f"matrix shape {matrix.shape} incompatible with {num_targets} target qubit(s); expected {(dim, dim)}"
        )
    return matrix


def permute_operator_qubits(matrix: np.ndarray, perm: Sequence[int]) -> np.ndarray:
    """Reorder the qubits an operator acts on.

    ``perm[i] = j`` means qubit ``i`` of the *input* operator becomes qubit
    ``j`` of the output operator.  Used to canonicalize multi-qubit gates
    whose target list is not ascending.
    """
    perm = list(perm)
    k = len(perm)
    matrix = _validate_gate_matrix(matrix, k)
    if sorted(perm) != list(range(k)):
        raise GateError(f"perm {perm} is not a permutation of 0..{k-1}")
    tensor = matrix.reshape((2,) * (2 * k))
    # Row axes 0..k-1, column axes k..2k-1; move input axis i to position perm[i].
    inv = [0] * k
    for i, j in enumerate(perm):
        inv[j] = i
    axes = [inv[a] for a in range(k)] + [k + inv[a] for a in range(k)]
    return tensor.transpose(axes).reshape(2**k, 2**k)


def embed_operator(
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
    xp: Optional[Any] = None,
) -> np.ndarray:
    """Embed a ``k``-qubit operator acting on ``targets`` into ``n`` qubits.

    Returns the dense ``2**n x 2**n`` matrix ``I (x) ... matrix ... (x) I``
    with the operator's qubit *i* wired to circuit qubit ``targets[i]``.
    Only intended for small ``n`` (reference computations / tests).
    """
    if xp is None:
        xp = np
    targets = list(targets)
    k = len(targets)
    matrix = _validate_gate_matrix(matrix, k)
    if len(set(targets)) != k:
        raise GateError(f"duplicate target qubits: {targets}")
    if any(t < 0 or t >= num_qubits for t in targets):
        raise GateError(f"targets {targets} out of range for {num_qubits} qubits")

    # Tensor with row/column axes per qubit, contract the gate in.
    op = xp.asarray(matrix).reshape((2,) * (2 * k))
    full = xp.eye(2**num_qubits, dtype=np.result_type(matrix.dtype, np.complex128))
    full = full.reshape((2,) * (2 * num_qubits))
    # Row axes of the full operator are 0..n-1.  Contract gate input axes
    # (k..2k-1 of `op`) against the target row axes of the identity.
    res = xp.tensordot(op, full, axes=(list(range(k, 2 * k)), targets))
    # tensordot layout: gate output axes first (one per target, in target
    # order), then the surviving identity axes (non-target rows ascending,
    # then all column axes).  Build the permutation back to row-major
    # (rows 0..n-1, columns n..2n-1).
    non_targets = [q for q in range(num_qubits) if q not in targets]
    current_pos = {t: j for j, t in enumerate(targets)}
    for r, q in enumerate(non_targets):
        current_pos[q] = k + r
    order = [current_pos[q] for q in range(num_qubits)]
    order += list(range(num_qubits, 2 * num_qubits))
    return res.transpose(order).reshape(2**num_qubits, 2**num_qubits)
