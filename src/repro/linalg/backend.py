"""Pluggable array-module layer: NumPy always, CuPy when importable.

Every dense-math call site in the library (the gate kernels in
:mod:`repro.linalg.apply`, the statevector backends, the distributed
partitioner) takes its array operations from an ``xp`` namespace object
resolved here instead of importing :mod:`numpy` directly.  This is the
CuPy drop-in pattern the paper's GPU throughput curves rely on: the same
kernel source runs the ``(B, 2**n)`` trajectory stack on host (NumPy) or
device (CuPy) depending on one configuration knob,
``Config.array_module``:

* ``"numpy"`` — always the host module;
* ``"cupy"`` — the GPU module, a :class:`~repro.errors.BackendError` if
  CuPy is not importable;
* ``"auto"`` (default) — CuPy when importable, NumPy otherwise, so the
  library degrades cleanly on CPU-only machines (asserted in CI).

The boundary discipline: *states* live on whatever module the backend
resolved, but everything that crosses into the rest of the library —
probability vectors feeding the sampling boundary, ``ShotTable`` bits,
provenance records, weights — is converted back to host NumPy via
:meth:`ArrayBackend.to_host`.  Shot sampling itself always runs on host
(NumPy ``Generator`` streams keyed by ``(seed, trajectory_id)``), which
is what keeps the bitwise determinism contract independent of where the
state was prepared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

import numpy as np

from repro.errors import BackendError

__all__ = [
    "ArrayBackend",
    "NUMPY_BACKEND",
    "cupy_available",
    "get_array_backend",
    "as_host",
]

#: Cached result of the one-time CuPy import probe: ``None`` until the
#: first probe, then the module or ``False``.
_cupy_module: Any = None


def _probe_cupy() -> Any:
    """Import CuPy once; remember failure so later calls are cheap."""
    global _cupy_module
    if _cupy_module is None:
        try:
            import cupy  # noqa: F401 — optional dependency, never baked in

            _cupy_module = cupy
        except ImportError:
            _cupy_module = False
    return _cupy_module


def cupy_available() -> bool:
    """True when ``import cupy`` succeeds on this machine."""
    return bool(_probe_cupy())


@dataclass(frozen=True)
class ArrayBackend:
    """One resolved array module plus its host-transfer helpers.

    Attributes
    ----------
    name:
        ``"numpy"`` or ``"cupy"``.
    xp:
        The array-API namespace (the module itself).  Kernels call
        ``xp.empty_like`` / ``xp.matmul`` / ... on it and never import
        :mod:`numpy` for state math directly.
    """

    name: str
    xp: Any = field(repr=False)

    @property
    def is_device(self) -> bool:
        """True when arrays live off-host (device memory)."""
        return self.name != "numpy"

    def asarray(self, array: Any, dtype: Optional[Any] = None) -> Any:
        """Move ``array`` onto this module (host -> device when CuPy)."""
        if dtype is None:
            return self.xp.asarray(array)
        return self.xp.asarray(array, dtype=dtype)

    def to_host(self, array: Any) -> np.ndarray:
        """Bring an array back to host NumPy (identity for NumPy).

        This is the mandatory crossing point back into the rest of the
        library: probability vectors, sampled indices and anything feeding
        a :class:`~repro.execution.results.ShotTable` pass through here.
        """
        if self.is_device:
            return self.xp.asnumpy(array)
        return np.asarray(array)

    def to_host_pinned(self, array: Any) -> np.ndarray:
        """Device->host transfer staged through pinned (page-locked) memory.

        Identical in value to :meth:`to_host`, and a literal no-op under
        NumPy.  Under CuPy the destination buffer is allocated from
        page-locked host memory, which lets the copy run as a DMA transfer
        instead of a pageable-memory staging copy — the transfer pattern
        the shot-index boundary of the sampling hot path wants (the
        ``(m,)`` index vector of every bulk sample crosses here).  Falls
        back to :meth:`to_host` if the device runtime cannot allocate
        pinned memory (e.g. exhausted page-locked quota).
        """
        if not self.is_device:
            return np.asarray(array)
        xp = self.xp
        array = xp.ascontiguousarray(array)
        if array.nbytes == 0:
            return np.empty(array.shape, dtype=array.dtype)
        try:
            mem = xp.cuda.alloc_pinned_memory(array.nbytes)
        except Exception:
            return self.to_host(array)
        out = np.frombuffer(mem, dtype=array.dtype, count=array.size).reshape(
            array.shape
        )
        array.get(out=out)
        return out

    def __repr__(self) -> str:
        return f"ArrayBackend({self.name!r})"


#: The always-available host backend.
NUMPY_BACKEND = ArrayBackend("numpy", np)


def get_array_backend(
    spec: Union[str, ArrayBackend, None] = None,
) -> ArrayBackend:
    """Resolve an array-module request to an :class:`ArrayBackend`.

    ``spec`` may be an :class:`ArrayBackend` (returned unchanged), one of
    the strings ``"auto"`` / ``"numpy"`` / ``"cupy"``, or ``None`` to read
    :attr:`repro.config.Config.array_module` off the library default
    config.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        from repro.config import DEFAULT_CONFIG

        spec = DEFAULT_CONFIG.array_module
    if spec == "numpy":
        return NUMPY_BACKEND
    if spec == "auto":
        cupy = _probe_cupy()
        if cupy:
            return ArrayBackend("cupy", cupy)
        return NUMPY_BACKEND
    if spec == "cupy":
        cupy = _probe_cupy()
        if not cupy:
            raise BackendError(
                "array_module='cupy' requested but CuPy is not importable; "
                "install cupy or use 'auto' (which falls back to NumPy)"
            )
        return ArrayBackend("cupy", cupy)
    raise BackendError(
        f"unknown array_module {spec!r}; expected 'auto', 'numpy' or 'cupy'"
    )


def as_host(array: Any) -> np.ndarray:
    """Host NumPy view/copy of an array from *any* module.

    Convenience for code handed an array of unknown residence (e.g. a
    gate matrix that may already live on device): CuPy arrays expose
    ``.get()``; everything else goes through ``np.asarray``.
    """
    get = getattr(array, "get", None)
    if get is not None and not isinstance(array, np.ndarray):
        return np.asarray(get())
    return np.asarray(array)
