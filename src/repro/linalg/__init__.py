"""Dense linear-algebra helpers shared by the simulation backends."""

from repro.linalg.backend import (
    ArrayBackend,
    NUMPY_BACKEND,
    as_host,
    cupy_available,
    get_array_backend,
)
from repro.linalg.apply import (
    CompiledOperator,
    apply_compiled_stack,
    apply_gemm_stack,
    apply_matrix_stack,
    compile_operator,
)
from repro.linalg.reductions import row_norms_squared
from repro.linalg.fusion import (
    expand_to_support,
    fuse_window_matrix,
    window_support,
)
from repro.linalg.kron import (
    embed_operator,
    kron_all,
    permute_operator_qubits,
)
from repro.linalg.unitary import (
    closest_unitary,
    is_hermitian,
    is_unitary,
    random_statevector,
    random_unitary,
)
from repro.linalg.decompositions import (
    truncated_svd,
    truncated_svd_batched,
    schmidt_decomposition,
)

__all__ = [
    "ArrayBackend",
    "NUMPY_BACKEND",
    "as_host",
    "cupy_available",
    "get_array_backend",
    "CompiledOperator",
    "apply_compiled_stack",
    "apply_gemm_stack",
    "apply_matrix_stack",
    "compile_operator",
    "row_norms_squared",
    "expand_to_support",
    "fuse_window_matrix",
    "window_support",
    "embed_operator",
    "kron_all",
    "permute_operator_qubits",
    "closest_unitary",
    "is_hermitian",
    "is_unitary",
    "random_statevector",
    "random_unitary",
    "truncated_svd",
    "truncated_svd_batched",
    "schmidt_decomposition",
]
