"""Stack-wide reductions shared by the serial and batched dense backends.

The per-row renormalization sweep after each noise window used to be the
dominant stacked-path cost at large batch sizes: the batched backend
called ``vdot(row, row)`` once per row, and on a device module every call
forced its own host synchronization.  Batching the reduction is only
sound if it cannot diverge from the serial backend's ``norm_squared`` —
the bitwise serial/stacked equivalence contract hangs on the two engines
renormalizing by the *exact same* float.

:func:`row_norms_squared` resolves that by construction instead of by
promise: it is the **single** squared-norm reduction in the library.  The
serial :class:`~repro.backends.statevector.StatevectorBackend` calls it
on its state viewed as a 1-row stack, and the batched
:class:`~repro.backends.batched_statevector.BatchedStatevectorBackend`
calls it once on the whole ``(B, 2**n)`` stack.  The reduction is
row-independent — each output element is a sum over its own row only, in
an order that does not depend on how many rows sit above or below it —
so the B-row result is bit-for-bit the concatenation of B 1-row results.
One device-resident call replaces B host-synced ``vdot``\\ s, and only the
final ``(B,)`` norm vector crosses to host.

Note the one-time numerics change this introduced: the shared reduction
sums ``re**2 + im**2`` over the interleaved real view of a row (a
batched GEMV), whereas the historical per-row ``vdot`` accumulated in
complex arithmetic.  The two can differ in the last ulp, so seeded
expectations recorded before the switch (benchmark baselines, golden shot
tables) were regenerated once when it landed.  Cross-strategy bitwise
equivalence is unaffected — every dense strategy moved to the shared
reduction in the same commit.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

__all__ = ["row_norms_squared", "scale_rows_inverse_sqrt"]


def row_norms_squared(stack: Any, xp: Optional[Any] = None) -> Any:
    """Per-row ``<psi|psi>`` of a C-contiguous ``(rows, dim)`` complex stack.

    Returns a real ``(rows,)`` array **on the same array module** as
    ``stack`` (no host transfer — callers decide when to synchronize).
    The sum runs over the interleaved real view of each row
    (``re_0**2 + im_0**2 + re_1**2 + ...``) as one batched
    ``(1, 2*dim) @ (2*dim, 1)`` GEMV per row, so no ``(rows, dim)``
    temporary is materialized and each row's dot product is an
    independent batch element whose summation order does not depend on
    the row count — the property that makes a 1-row call on the serial
    backend bitwise identical to the matching row of a whole-stack call
    on the batched backend.  (The gate kernels' ``matmul`` fallback
    already relies on exactly this batch independence for the bitwise
    serial/stacked contract, so the reduction adds no new assumption.)

    ``stack`` must be C-contiguous (both dense backends only ever hold
    contiguous states); non-contiguous input raises rather than silently
    copying, since a copy here would hide a performance bug upstream.
    """
    if xp is None:
        xp = np
    if stack.ndim != 2:
        raise ValueError(f"expected a (rows, dim) stack, got shape {stack.shape}")
    # Reinterpret each complex row as 2*dim interleaved floats; a pure
    # view, valid only for contiguous rows (hence the flags guard).
    if not stack.flags["C_CONTIGUOUS"]:
        raise ValueError("row_norms_squared requires a C-contiguous stack")
    real_view = stack.view(stack.real.dtype)
    return xp.matmul(real_view[:, None, :], real_view[:, :, None])[:, 0, 0]


def scale_rows_inverse_sqrt(
    stack: Any, norms: Any, xp: Optional[Any] = None, dead_norm: float = 0.0
) -> Any:
    """In place: ``stack[i] /= sqrt(norms[i])`` (unit divisor for dead rows).

    The renormalization *scale* companion to :func:`row_norms_squared`,
    and shared for the same reason: the divisor arithmetic must be
    identical between the serial backend (a 1-row stack) and the batched
    backend (the whole stack) for the bitwise equivalence contract.  The
    square root is always taken in float64 (norms may arrive as float32
    under complex64 states; the cast up is exact) and the divisor is then
    cast to the stack's real dtype, so the division itself runs at the
    state dtype on both paths — no dependence on scalar-vs-array
    promotion rules.  Rows with ``norms <= dead_norm`` divide by 1.0,
    which is bitwise the identity; callers zero or reject such rows
    themselves.
    """
    if xp is None:
        xp = np
    norms64 = xp.asarray(norms).astype(np.float64, copy=False)
    divisor = xp.sqrt(
        xp.where(norms64 > dead_norm, norms64, xp.asarray(1.0, dtype=np.float64))
    ).astype(stack.real.dtype, copy=False)
    stack /= divisor[:, None]
    return stack
