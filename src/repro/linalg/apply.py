"""Dense gate-application kernels shared by the statevector backends.

The hot path of both :class:`~repro.backends.statevector.StatevectorBackend`
(one state per call) and
:class:`~repro.backends.batched_statevector.BatchedStatevectorBackend`
(a ``(B, 2**n)`` trajectory stack per call).  Sharing one kernel keeps the
two backends *bitwise identical* per trajectory — the equivalence contract
of the vectorized execution path — while giving both the same speed.

For 1- and 2-qubit operators (every gate and channel in the library) the
target axes are exposed by pure ``reshape`` views of the C-contiguous
stack — qubit ``q`` is axis ``q+1`` of ``(rows, 2, ..., 2)`` under the
library's qubit-0-is-MSB convention, so splitting at the target qubits
never copies.  Three tiers, cheapest first:

* **scalar multiples of identity** (e.g. the dominant Kraus operator of
  any Pauli or depolarizing channel) mutate the stack in one in-place
  pass — or none at all for an exact identity;
* **diagonal operators** (T, S, RZ, CZ, phase-type Kraus terms) scale
  each basis slice in place;
* **dense operators** run one slice accumulation
  ``out_i = sum_j m[i, j] * psi_j`` into a fresh buffer, skipping zero
  entries — permutation-like operators (X, CX) reduce to slice copies.

The per-element arithmetic never depends on the number of stacked rows,
which is what makes stacked and row-by-row application bit-for-bit
interchangeable.  Operators on three or more qubits fall back to a
moveaxis + batched-GEMM kernel.

The kernel is array-module agnostic (the CuPy drop-in pattern of
:mod:`repro.linalg.backend`): the stack may live on any ``xp`` namespace
passed by the caller, while the small ``(2**k, 2**k)`` operator matrix is
always inspected on host — its entries drive control flow (zero skipping,
diagonal detection) and scalar coefficients, which would otherwise force
one device synchronization per element.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.linalg.backend import as_host

__all__ = ["apply_matrix_stack"]


def _accumulate_slices(
    out_slices: List[Any], in_slices: List[Any], matrix: np.ndarray, xp: Any
) -> None:
    """out_i = sum_j matrix[i, j] * in_j with fixed j order, skipping zeros.

    ``out_slices`` must not alias ``in_slices`` (callers pass a fresh
    output buffer); accumulation happens directly in the output to avoid
    an extra full-stack copy per slice.  ``matrix`` is a host array; the
    slices live on ``xp``.
    """
    for i, dst in enumerate(out_slices):
        started = False
        for j, src in enumerate(in_slices):
            c = matrix[i, j]
            if c == 0:
                continue
            if not started:
                if c == 1:
                    xp.copyto(dst, src)
                else:
                    xp.multiply(src, c, out=dst)
                started = True
            elif c == 1:
                dst += src
            else:
                dst += src * c
        if not started:
            dst[...] = 0


def _scale_slices_inplace(slices: List[Any], diag: np.ndarray) -> None:
    """slice_i *= diag[i] in place (identity entries skipped)."""
    for d, s in zip(diag, slices):
        if d != 1:
            s *= d


def apply_matrix_stack(
    stack: Any,
    matrix: Any,
    targets: Sequence[int],
    num_qubits: int,
    dtype: np.dtype,
    xp: Optional[Any] = None,
) -> Any:
    """Apply a ``(2**k, 2**k)`` matrix to ``targets`` of every stack row.

    ``stack`` must be a C-contiguous ``(rows, 2**num_qubits)`` array on
    the ``xp`` array module (host NumPy when ``xp`` is omitted) and is
    treated as owned by the caller: diagonal operators mutate it in place
    and return it, dense operators return a fresh array on the same
    module.  ``matrix`` may live on host or device; it is inspected on
    host either way.  No renormalization is performed.
    """
    if xp is None:
        xp = np
    rows, dim = stack.shape
    k = len(targets)
    m = as_host(matrix).astype(dtype, copy=False)
    dim_k = 2**k
    if k <= 2:
        diag = np.diagonal(m)
        if np.count_nonzero(m) == np.count_nonzero(diag):
            if np.all(diag == diag[0]):
                # Scalar multiple of identity: one pass (or none).
                if diag[0] != 1:
                    stack *= diag[0]
                return stack
        else:
            diag = None
    if k == 1:
        t = targets[0]
        view = stack.reshape(rows * (1 << t), 2, -1)
        in_slices = [view[:, 0], view[:, 1]]
        if diag is not None:
            _scale_slices_inplace(in_slices, diag)
            return stack
        out = xp.empty_like(view)
        _accumulate_slices([out[:, 0], out[:, 1]], in_slices, m, xp)
        return out.reshape(rows, dim)
    if k == 2:
        (t1, p1), (t2, _) = sorted(zip(targets, range(2)))
        m4 = m.reshape(2, 2, 2, 2)
        if p1 == 1:
            # targets were given high-to-low: swap the matrix bit order.
            m4 = m4.transpose(1, 0, 3, 2)
        m = np.ascontiguousarray(m4.reshape(4, 4))
        view = stack.reshape(rows * (1 << t1), 2, 1 << (t2 - t1 - 1), 2, -1)
        in_slices = [view[:, j, :, l] for j in range(2) for l in range(2)]
        if diag is not None:
            _scale_slices_inplace(in_slices, np.diagonal(m))
            return stack
        out = xp.empty_like(view)
        out_slices = [out[:, j, :, l] for j in range(2) for l in range(2)]
        _accumulate_slices(out_slices, in_slices, m, xp)
        return out.reshape(rows, dim)
    # Generic k-qubit fallback: move target axes up front, one batched GEMM.
    psi = stack.reshape((rows,) + (2,) * num_qubits)
    psi = xp.moveaxis(psi, [t + 1 for t in targets], range(1, k + 1))
    shape_after = psi.shape
    psi = xp.ascontiguousarray(psi).reshape(rows, 2**k, -1)
    out = xp.matmul(xp.asarray(m), psi).reshape(shape_after)
    out = xp.moveaxis(out, range(1, k + 1), [t + 1 for t in targets])
    return xp.ascontiguousarray(out).reshape(rows, dim)
