"""Dense gate-application kernels shared by the statevector backends.

The hot path of both :class:`~repro.backends.statevector.StatevectorBackend`
(one state per call) and
:class:`~repro.backends.batched_statevector.BatchedStatevectorBackend`
(a ``(B, 2**n)`` trajectory stack per call).  Sharing one kernel keeps the
two backends *bitwise identical* per trajectory — the equivalence contract
of the vectorized execution path — while giving both the same speed.

The kernel is split in two phases so the fusion compilation pipeline
(:mod:`repro.execution.plan`) can amortize the host-side analysis:

* :func:`compile_operator` inspects a ``(2**k, 2**k)`` matrix **once** on
  host — canonicalizing 2-qubit target order, casting to the state dtype,
  and detecting the fast-path tier — and returns a reusable
  :class:`CompiledOperator`;
* :func:`apply_compiled_stack` applies a compiled operator to a stack with
  zero per-call analysis.

:func:`apply_matrix_stack` (the historical one-shot entry point) is simply
``apply_compiled_stack(stack, compile_operator(...), ...)``.

For 1- and 2-qubit operators (every gate and channel in the library, and
every fused window under the default ``Config.fusion_max_qubits = 2``) the
target axes are exposed by pure ``reshape`` views of the C-contiguous
stack — qubit ``q`` is axis ``q+1`` of ``(rows, 2, ..., 2)`` under the
library's qubit-0-is-MSB convention, so splitting at the target qubits
never copies.  Three tiers, cheapest first:

* **scalar multiples of identity** (e.g. the dominant Kraus operator of
  any Pauli or depolarizing channel) mutate the stack in one in-place
  pass — or none at all for an exact identity;
* **diagonal operators** (T, S, RZ, CZ, phase-type Kraus terms — and any
  fused product of such operators, which stays diagonal) scale each basis
  slice in place;
* **dense operators** run one slice accumulation
  ``out_i = sum_j m[i, j] * psi_j`` into a fresh buffer, skipping zero
  entries — permutation-like operators (X, CX) reduce to slice copies.

The per-element arithmetic never depends on the number of stacked rows,
which is what makes stacked and row-by-row application bit-for-bit
interchangeable.  Operators on three or more qubits fall back to a
moveaxis + batched-GEMM kernel.

The kernel is array-module agnostic (the CuPy drop-in pattern of
:mod:`repro.linalg.backend`): the stack may live on any ``xp`` namespace
passed by the caller, while the small ``(2**k, 2**k)`` operator matrix is
always inspected on host — its entries drive control flow (zero skipping,
diagonal detection) and scalar coefficients, which would otherwise force
one device synchronization per element.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.backend import as_host

__all__ = [
    "CompiledOperator",
    "compile_operator",
    "apply_compiled_stack",
    "apply_matrix_stack",
]


class CompiledOperator:
    """One host-analyzed ``(2**k, 2**k)`` operator, ready for stacks.

    Attributes
    ----------
    matrix:
        Host matrix, cast to the state dtype.  For 2-qubit operators with
        descending targets the bit order is pre-canonicalized so
        ``targets`` is always ascending on the fast paths.
    targets:
        The (canonicalized) target qubits the matrix acts on.
    diag:
        The matrix diagonal when the operator is diagonal (the fast-path
        tier), else ``None``.
    scalar:
        The single scale factor when the operator is a scalar multiple of
        the identity (the cheapest tier), else ``None``.
    """

    __slots__ = ("matrix", "targets", "diag", "scalar", "num_targets", "_on_module")

    def __init__(
        self,
        matrix: np.ndarray,
        targets: Tuple[int, ...],
        diag: Optional[np.ndarray],
        scalar: Optional[complex],
    ):
        self.matrix = matrix
        self.targets = targets
        self.diag = diag
        self.scalar = scalar
        self.num_targets = len(targets)
        self._on_module = None  # (xp, device array) memo for the GEMM path

    def matrix_on(self, xp: Any) -> Any:
        """The matrix on array module ``xp`` (transferred once, memoized).

        Only the generic k>=3 GEMM path consumes the matrix as a device
        array; the reshape-view tiers read host entries element-wise.
        Compiled operators are long-lived plan members, so paying the
        host-to-device copy per application would undo the amortization
        compiling exists for.
        """
        memo = self._on_module
        if memo is None or memo[0] is not xp:
            memo = (xp, xp.asarray(self.matrix))
            self._on_module = memo
        return memo[1]

    @property
    def tier(self) -> str:
        """Fast-path tier: ``"identity"``/``"scalar"``/``"diagonal"``/``"dense"``."""
        if self.scalar is not None:
            return "identity" if self.scalar == 1 else "scalar"
        return "diagonal" if self.diag is not None else "dense"

    def __repr__(self) -> str:
        return (
            f"CompiledOperator(targets={self.targets}, tier={self.tier!r}, "
            f"dtype={self.matrix.dtype})"
        )


def compile_operator(
    matrix: Any, targets: Sequence[int], dtype: np.dtype
) -> CompiledOperator:
    """Analyze a matrix once: cast, canonicalize targets, detect the tier.

    ``matrix`` may live on host or device; it is inspected on host either
    way.  The tier analysis mirrors what :func:`apply_matrix_stack` has
    always done per call — compiling simply hoists it so plan-driven
    callers (:mod:`repro.execution.plan`) pay it once per distinct
    operator instead of once per application.
    """
    targets = tuple(targets)
    k = len(targets)
    m = as_host(matrix).astype(dtype, copy=False)
    if k == 2 and targets[0] > targets[1]:
        # Targets were given high-to-low: swap the matrix bit order so the
        # reshape-view kernel always sees ascending targets.
        m = np.ascontiguousarray(
            m.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
        )
        targets = (targets[1], targets[0])
    diag: Optional[np.ndarray] = None
    scalar: Optional[complex] = None
    if k <= 2:
        d = np.diagonal(m)
        if np.count_nonzero(m) == np.count_nonzero(d):
            diag = d
            if np.all(d == d[0]):
                scalar = d[0]
    return CompiledOperator(m, targets, diag, scalar)


def _accumulate_slices(
    out_slices: List[Any], in_slices: List[Any], matrix: np.ndarray, xp: Any
) -> None:
    """out_i = sum_j matrix[i, j] * in_j with fixed j order, skipping zeros.

    ``out_slices`` must not alias ``in_slices`` (callers pass a fresh
    output buffer); accumulation happens directly in the output to avoid
    an extra full-stack copy per slice.  ``matrix`` is a host array; the
    slices live on ``xp``.
    """
    for i, dst in enumerate(out_slices):
        started = False
        for j, src in enumerate(in_slices):
            c = matrix[i, j]
            if c == 0:
                continue
            if not started:
                if c == 1:
                    xp.copyto(dst, src)
                else:
                    xp.multiply(src, c, out=dst)
                started = True
            elif c == 1:
                dst += src
            else:
                dst += src * c
        if not started:
            dst[...] = 0


def _scale_slices_inplace(slices: List[Any], diag: np.ndarray) -> None:
    """slice_i *= diag[i] in place (identity entries skipped)."""
    for d, s in zip(diag, slices):
        if d != 1:
            s *= d


def apply_compiled_stack(
    stack: Any, op: CompiledOperator, num_qubits: int, xp: Optional[Any] = None
) -> Any:
    """Apply a :class:`CompiledOperator` to every row of a stack.

    Same contract as :func:`apply_matrix_stack` minus the per-call
    analysis: ``stack`` is a C-contiguous ``(rows, 2**num_qubits)`` array
    owned by the caller; scalar/diagonal operators mutate it in place and
    return it, dense operators return a fresh array on the same module.
    No renormalization is performed.
    """
    if xp is None:
        xp = np
    rows, dim = stack.shape
    k = op.num_targets
    if op.scalar is not None:
        # Scalar multiple of identity: one pass (or none).  Only compiled
        # for k <= 2 operators (wider windows always take the GEMM path).
        if op.scalar != 1:
            stack *= op.scalar
        return stack
    if k == 1:
        t = op.targets[0]
        view = stack.reshape(rows * (1 << t), 2, -1)
        in_slices = [view[:, 0], view[:, 1]]
        if op.diag is not None:
            _scale_slices_inplace(in_slices, op.diag)
            return stack
        out = xp.empty_like(view)
        _accumulate_slices([out[:, 0], out[:, 1]], in_slices, op.matrix, xp)
        return out.reshape(rows, dim)
    if k == 2:
        t1, t2 = op.targets  # ascending after compilation
        view = stack.reshape(rows * (1 << t1), 2, 1 << (t2 - t1 - 1), 2, -1)
        in_slices = [view[:, j, :, l] for j in range(2) for l in range(2)]
        if op.diag is not None:
            _scale_slices_inplace(in_slices, op.diag)
            return stack
        out = xp.empty_like(view)
        out_slices = [out[:, j, :, l] for j in range(2) for l in range(2)]
        _accumulate_slices(out_slices, in_slices, op.matrix, xp)
        return out.reshape(rows, dim)
    # Generic k-qubit fallback: move target axes up front, one batched GEMM.
    psi = stack.reshape((rows,) + (2,) * num_qubits)
    psi = xp.moveaxis(psi, [t + 1 for t in op.targets], range(1, k + 1))
    shape_after = psi.shape
    psi = xp.ascontiguousarray(psi).reshape(rows, 2**k, -1)
    out = xp.matmul(op.matrix_on(xp), psi).reshape(shape_after)
    out = xp.moveaxis(out, range(1, k + 1), [t + 1 for t in op.targets])
    return xp.ascontiguousarray(out).reshape(rows, dim)


def apply_matrix_stack(
    stack: Any,
    matrix: Any,
    targets: Sequence[int],
    num_qubits: int,
    dtype: np.dtype,
    xp: Optional[Any] = None,
) -> Any:
    """Apply a ``(2**k, 2**k)`` matrix to ``targets`` of every stack row.

    One-shot convenience over :func:`compile_operator` +
    :func:`apply_compiled_stack`.  ``stack`` must be a C-contiguous
    ``(rows, 2**num_qubits)`` array on the ``xp`` array module (host NumPy
    when ``xp`` is omitted) and is treated as owned by the caller:
    diagonal operators mutate it in place and return it, dense operators
    return a fresh array on the same module.  ``matrix`` may live on host
    or device; it is inspected on host either way.  No renormalization is
    performed.
    """
    return apply_compiled_stack(
        stack, compile_operator(matrix, targets, dtype), num_qubits, xp
    )
