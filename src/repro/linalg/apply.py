"""Dense gate-application kernels shared by the statevector backends.

The hot path of both :class:`~repro.backends.statevector.StatevectorBackend`
(one state per call) and
:class:`~repro.backends.batched_statevector.BatchedStatevectorBackend`
(a ``(B, 2**n)`` trajectory stack per call).  Sharing one kernel keeps the
two backends *bitwise identical* per trajectory — the equivalence contract
of the vectorized execution path — while giving both the same speed.

The kernel is split in two phases so the fusion compilation pipeline
(:mod:`repro.execution.plan`) can amortize the host-side analysis:

* :func:`compile_operator` inspects a ``(2**k, 2**k)`` matrix **once** on
  host — canonicalizing 2-qubit target order, casting to the state dtype,
  and detecting the fast-path tier — and returns a reusable
  :class:`CompiledOperator`;
* :func:`apply_compiled_stack` applies a compiled operator to a stack with
  zero per-call analysis.

:func:`apply_matrix_stack` (the historical one-shot entry point) is simply
``apply_compiled_stack(stack, compile_operator(...), ...)``.

For operators on up to three qubits (every gate and channel in the
library — including the native ``ccx`` — and every fused window whose
support fits three qubits) the target axes are exposed by pure
``reshape`` views of the C-contiguous stack — qubit ``q`` is axis ``q+1``
of ``(rows, 2, ..., 2)`` under the library's qubit-0-is-MSB convention,
so splitting at the target qubits never copies, for contiguous and
gapped target layouts alike.  Three tiers, cheapest first:

* **scalar multiples of identity** (e.g. the dominant Kraus operator of
  any Pauli or depolarizing channel) mutate the stack in one in-place
  pass — or none at all for an exact identity;
* **diagonal operators** (T, S, RZ, CZ, ``ccz``-like phases — and any
  fused product of such operators, which stays diagonal) scale each basis
  slice in place;
* **dense operators** run one slice accumulation
  ``out_i = sum_j m[i, j] * psi_j`` into a fresh buffer, skipping zero
  entries — permutation-like operators (X, CX, CCX) reduce to slice
  copies.

For *fully dense* 3-qubit operators (fused window products, typically
all 64 entries nonzero) slice accumulation would stream the stack once
per matrix entry, so the k=3 dense tier switches to BLAS while keeping
the view discipline: contiguous target triples are contracted by one
``matmul`` directly on the reshaped view (no gather at all — the only
allocation is the fresh output), and gapped triples run the gather +
GEMM + scatter in bounded row blocks — the gather staged inside the
output rows it will overwrite, the GEMM into one reusable block scratch
— so the transient never exceeds a sixteenth of the stack.

The per-element arithmetic never depends on the number of stacked rows,
which is what makes stacked and row-by-row application bit-for-bit
interchangeable.  Operators on four or more qubits fall back to the
moveaxis + batched-GEMM kernel (:func:`apply_gemm_stack`), whose
transient peaks at ~3x the resident stack; keeping every k=3 path at
~2x (fresh output, plus at most a sixteenth-stack scratch block) is
what lets the sharded executor provision 2x workspace instead of 3x
whenever no operator spans four qubits
(:meth:`repro.execution.sharded.ShardedExecutor`).

The kernel is array-module agnostic (the CuPy drop-in pattern of
:mod:`repro.linalg.backend`): the stack may live on any ``xp`` namespace
passed by the caller, while the small ``(2**k, 2**k)`` operator matrix is
always inspected on host — its entries drive control flow (zero skipping,
diagonal detection) and scalar coefficients, which would otherwise force
one device synchronization per element.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.backend import as_host

__all__ = [
    "CompiledOperator",
    "compile_operator",
    "apply_compiled_stack",
    "apply_gemm_stack",
    "apply_matrix_stack",
]

#: Largest operator arity served by the reshape-view tiers; wider
#: operators take the generic moveaxis+GEMM fallback.
MAX_VIEW_QUBITS = 3

#: Nonzero-entry threshold below which a dense 3-qubit operator runs the
#: slice-accumulation kernel (<= 2 full-stack passes of traffic — the
#: permutation-like regime, e.g. ccx with 8 nonzeros); denser matrices
#: switch to the BLAS-backed k=3 paths, which beat 64 strided passes.
_K3_SLICE_MAX_NNZ = 16


class CompiledOperator:
    """One host-analyzed ``(2**k, 2**k)`` operator, ready for stacks.

    Attributes
    ----------
    matrix:
        Host matrix, cast to the state dtype.  For 2- and 3-qubit
        operators with non-ascending targets the bit order is
        pre-canonicalized so ``targets`` is always ascending on the fast
        paths.
    targets:
        The (canonicalized) target qubits the matrix acts on.
    diag:
        The matrix diagonal when the operator is diagonal (the fast-path
        tier), else ``None``.
    scalar:
        The single scale factor when the operator is a scalar multiple of
        the identity (the cheapest tier), else ``None``.
    nnz:
        Nonzero entry count of the host matrix, precomputed so the k=3
        dense tier can choose between slice accumulation
        (permutation-like operators) and the BLAS paths without
        re-inspecting the matrix per application.
    """

    __slots__ = (
        "matrix",
        "targets",
        "diag",
        "scalar",
        "num_targets",
        "nnz",
        "_on_module",
    )

    def __init__(
        self,
        matrix: np.ndarray,
        targets: Tuple[int, ...],
        diag: Optional[np.ndarray],
        scalar: Optional[complex],
    ):
        self.matrix = matrix
        self.targets = targets
        self.diag = diag
        self.scalar = scalar
        self.num_targets = len(targets)
        self.nnz = int(np.count_nonzero(matrix))
        self._on_module = None  # (xp, device array) memo for the GEMM path

    def matrix_on(self, xp: Any) -> Any:
        """The matrix on array module ``xp`` (transferred once, memoized).

        Only the generic k>=4 GEMM path consumes the matrix as a device
        array; the reshape-view tiers read host entries element-wise.
        Compiled operators are long-lived plan members, so paying the
        host-to-device copy per application would undo the amortization
        compiling exists for.
        """
        memo = self._on_module
        if memo is None or memo[0] is not xp:
            memo = (xp, xp.asarray(self.matrix))
            self._on_module = memo
        return memo[1]

    @property
    def tier(self) -> str:
        """Fast-path tier: ``"identity"``/``"scalar"``/``"diagonal"``/``"dense"``."""
        if self.scalar is not None:
            return "identity" if self.scalar == 1 else "scalar"
        return "diagonal" if self.diag is not None else "dense"

    def __repr__(self) -> str:
        return (
            f"CompiledOperator(targets={self.targets}, tier={self.tier!r}, "
            f"dtype={self.matrix.dtype})"
        )


def compile_operator(
    matrix: Any, targets: Sequence[int], dtype: np.dtype
) -> CompiledOperator:
    """Analyze a matrix once: cast, canonicalize targets, detect the tier.

    ``matrix`` may live on host or device; it is inspected on host either
    way.  The tier analysis mirrors what :func:`apply_matrix_stack` has
    always done per call — compiling simply hoists it so plan-driven
    callers (:mod:`repro.execution.plan`) pay it once per distinct
    operator instead of once per application.
    """
    targets = tuple(targets)
    k = len(targets)
    m = as_host(matrix).astype(dtype, copy=False)
    if 2 <= k <= MAX_VIEW_QUBITS and any(
        targets[i] > targets[i + 1] for i in range(k - 1)
    ):
        # Targets were given out of ascending order: permute the matrix
        # bit order so the reshape-view kernels always see ascending
        # targets.  New operator bit j takes old bit order[j], applied to
        # row and column axes alike.
        order = tuple(int(i) for i in np.argsort(targets, kind="stable"))  # replint: disable=XP001 -- compile-time host analysis
        axes = order + tuple(k + i for i in order)
        m = np.ascontiguousarray(
            m.reshape((2,) * (2 * k)).transpose(axes).reshape(2**k, 2**k)
        )
        targets = tuple(sorted(targets))
    diag: Optional[np.ndarray] = None
    scalar: Optional[complex] = None
    if k <= MAX_VIEW_QUBITS:
        d = np.diagonal(m)
        if np.count_nonzero(m) == np.count_nonzero(d):
            diag = d
            if np.all(d == d[0]):
                scalar = d[0]
    return CompiledOperator(m, targets, diag, scalar)


def _accumulate_slices(
    out_slices: List[Any], in_slices: List[Any], matrix: np.ndarray, xp: Any
) -> None:
    """out_i = sum_j matrix[i, j] * in_j with fixed j order, skipping zeros.

    ``out_slices`` must not alias ``in_slices`` (callers pass a fresh
    output buffer); accumulation happens directly in the output to avoid
    an extra full-stack copy per slice.  ``matrix`` is a host array; the
    slices live on ``xp``.
    """
    for i, dst in enumerate(out_slices):
        started = False
        for j, src in enumerate(in_slices):
            c = matrix[i, j]
            if c == 0:
                continue
            if not started:
                if c == 1:
                    xp.copyto(dst, src)
                else:
                    xp.multiply(src, c, out=dst)
                started = True
            elif c == 1:
                dst += src
            else:
                dst += src * c
        if not started:
            dst[...] = 0


def _scale_slices_inplace(slices: List[Any], diag: np.ndarray) -> None:
    """slice_i *= diag[i] in place (identity entries skipped)."""
    for d, s in zip(diag, slices):
        if d != 1:
            s *= d


def apply_compiled_stack(
    stack: Any, op: CompiledOperator, num_qubits: int, xp: Optional[Any] = None
) -> Any:
    """Apply a :class:`CompiledOperator` to every row of a stack.

    Same contract as :func:`apply_matrix_stack` minus the per-call
    analysis: ``stack`` is a C-contiguous ``(rows, 2**num_qubits)`` array
    owned by the caller; scalar/diagonal operators mutate it in place and
    return it, dense operators return a fresh array on the same module.
    No renormalization is performed.
    """
    if xp is None:
        xp = np
    rows, dim = stack.shape
    k = op.num_targets
    if op.scalar is not None:
        # Scalar multiple of identity: one pass (or none).  Only compiled
        # for k <= 3 operators (wider windows always take the GEMM path).
        if op.scalar != 1:
            stack *= op.scalar
        return stack
    if k == 1:
        t = op.targets[0]
        view = stack.reshape(rows * (1 << t), 2, -1)
        in_slices = [view[:, 0], view[:, 1]]
        if op.diag is not None:
            _scale_slices_inplace(in_slices, op.diag)
            return stack
        out = xp.empty_like(view)
        _accumulate_slices([out[:, 0], out[:, 1]], in_slices, op.matrix, xp)
        return out.reshape(rows, dim)
    if k == 2:
        t1, t2 = op.targets  # ascending after compilation
        view = stack.reshape(rows * (1 << t1), 2, 1 << (t2 - t1 - 1), 2, -1)
        in_slices = [view[:, j, :, l] for j in range(2) for l in range(2)]
        if op.diag is not None:
            _scale_slices_inplace(in_slices, op.diag)
            return stack
        out = xp.empty_like(view)
        out_slices = [out[:, j, :, l] for j in range(2) for l in range(2)]
        _accumulate_slices(out_slices, in_slices, op.matrix, xp)
        return out.reshape(rows, dim)
    if k == 3:
        # The k=3 view tier: fused 3-qubit windows and the native ccx
        # never pay the whole-stack moveaxis+GEMM fallback, so peak
        # memory stays ~2x the resident stack (a fresh output buffer,
        # plus at most a sixteenth-stack scratch block for gapped dense
        # operators) instead of the fallback's ~3x transient.
        t1, t2, t3 = op.targets  # ascending after compilation
        if op.diag is not None or op.nnz <= _K3_SLICE_MAX_NNZ:
            # Split the stack at all three target qubits (any gap layout)
            # with one pure reshape; diagonal operators scale in place,
            # permutation-like ones reduce to a few slice copies.
            view = stack.reshape(
                rows * (1 << t1),
                2,
                1 << (t2 - t1 - 1),
                2,
                1 << (t3 - t2 - 1),
                2,
                -1,
            )
            in_slices = [
                view[:, a, :, b, :, c]
                for a in range(2)
                for b in range(2)
                for c in range(2)
            ]
            if op.diag is not None:
                _scale_slices_inplace(in_slices, op.diag)
                return stack
            out = xp.empty_like(view)
            out_slices = [
                out[:, a, :, b, :, c]
                for a in range(2)
                for b in range(2)
                for c in range(2)
            ]
            _accumulate_slices(out_slices, in_slices, op.matrix, xp)
            return out.reshape(rows, dim)
        if t2 == t1 + 1 and t3 == t2 + 1:
            # Contiguous target triple: the three qubits already form one
            # axis of size 8 under a pure reshape — a single matmul with
            # no gather; the only allocation is the output.
            if t3 == num_qubits - 1:
                # The triple sits at the least-significant end: the 8-axis
                # is innermost, so one flat (R, 8) @ (8, 8)^T GEMM covers
                # the whole stack (out[r, i] = sum_j U[i, j] v[r, j]).
                view = stack.reshape(-1, 8)
                out = xp.matmul(view, op.matrix_on(xp).T)
                return out.reshape(rows, dim)
            view = stack.reshape(rows * (1 << t1), 8, -1)
            out = xp.matmul(op.matrix_on(xp), view)
            return out.reshape(rows, dim)
        return _apply_k3_blocked_gemm(stack, op, num_qubits, xp)
    return apply_gemm_stack(stack, op, num_qubits, xp)


def _apply_k3_blocked_gemm(
    stack: Any, op: CompiledOperator, num_qubits: int, xp: Any
) -> Any:
    """Gapped dense 3-qubit operators: gather + GEMM + scatter in blocks.

    Same arithmetic as :func:`apply_gemm_stack` (each row is one
    independent ``(8, 8) @ (8, 2**n / 8)`` product, so per-row results are
    bitwise identical to the whole-stack call — asserted in
    ``tests/test_kernel_tiers.py``), but the transient is bounded: the
    gather for each row block is staged *inside the corresponding rows of
    the preallocated output* (free real estate until the scatter
    overwrites them), and the GEMM result goes to one reusable
    block-sized scratch buffer.  Peak memory is the output (~1x the
    stack) plus a single ``rows // 16`` scratch block — ~2x + 1/16,
    versus the whole-stack fallback's ~3x.
    """
    rows, dim = stack.shape
    targets = [t + 1 for t in op.targets]
    matrix = op.matrix_on(xp)
    out = xp.empty_like(stack)
    src = stack.reshape((rows,) + (2,) * num_qubits)
    dst = out.reshape((rows,) + (2,) * num_qubits)
    block = max(1, rows // 16)
    scratch = xp.empty((block, 8, dim // 8), dtype=stack.dtype)
    for start in range(0, rows, block):
        blk = src[start : start + block]
        b = blk.shape[0]
        psi = xp.moveaxis(blk, targets, (1, 2, 3))
        # Gather (the ascontiguousarray of the whole-stack path) lands in
        # the output rows this block will overwrite anyway.
        gathered = out[start : start + b].reshape(psi.shape)
        gathered[...] = psi
        res = xp.matmul(matrix, gathered.reshape(b, 8, -1), out=scratch[:b])
        dst[start : start + b] = xp.moveaxis(res.reshape(psi.shape), (1, 2, 3), targets)
    return out


def apply_gemm_stack(
    stack: Any, op: CompiledOperator, num_qubits: int, xp: Optional[Any] = None
) -> Any:
    """Generic k-qubit fallback: move target axes up front, one batched GEMM.

    The tier behind every operator wider than :data:`MAX_VIEW_QUBITS`.
    Exposed separately so the kernel benchmarks and tier tests can pit the
    reshape-view paths against it directly.  Peak memory is ~3x the stack
    (resident stack + contiguous gathered input + GEMM output), which is
    why the sharded executor provisions extra workspace whenever a plan
    can reach this tier.
    """
    if xp is None:
        xp = np
    rows, dim = stack.shape
    k = op.num_targets
    psi = stack.reshape((rows,) + (2,) * num_qubits)
    psi = xp.moveaxis(psi, [t + 1 for t in op.targets], range(1, k + 1))
    shape_after = psi.shape
    psi = xp.ascontiguousarray(psi).reshape(rows, 2**k, -1)
    out = xp.matmul(op.matrix_on(xp), psi).reshape(shape_after)
    out = xp.moveaxis(out, range(1, k + 1), [t + 1 for t in op.targets])
    return xp.ascontiguousarray(out).reshape(rows, dim)


def apply_matrix_stack(
    stack: Any,
    matrix: Any,
    targets: Sequence[int],
    num_qubits: int,
    dtype: np.dtype,
    xp: Optional[Any] = None,
) -> Any:
    """Apply a ``(2**k, 2**k)`` matrix to ``targets`` of every stack row.

    One-shot convenience over :func:`compile_operator` +
    :func:`apply_compiled_stack`.  ``stack`` must be a C-contiguous
    ``(rows, 2**num_qubits)`` array on the ``xp`` array module (host NumPy
    when ``xp`` is omitted) and is treated as owned by the caller:
    diagonal operators mutate it in place and return it, dense operators
    return a fresh array on the same module.  ``matrix`` may live on host
    or device; it is inspected on host either way.  No renormalization is
    performed.
    """
    return apply_compiled_stack(
        stack, compile_operator(matrix, targets, dtype), num_qubits, xp
    )
