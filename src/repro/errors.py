"""Exception hierarchy for the PTSBE reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses are grouped per subsystem: circuit
construction, channel/CPTP validation, backend simulation, PTS sampling,
execution/scheduling and device emulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class CircuitError(ReproError):
    """Invalid circuit construction (bad qubit index, arity mismatch, ...)."""


class GateError(CircuitError):
    """Invalid gate definition (non-unitary matrix, wrong shape, ...)."""


class ChannelError(ReproError):
    """Invalid quantum channel (not CPTP, wrong Kraus shapes, ...)."""


class NoiseModelError(ReproError):
    """Invalid noise-model binding (unknown gate, arity mismatch, ...)."""


class BackendError(ReproError):
    """Simulation backend failure (capacity exceeded, bad state, ...)."""


class CapacityError(BackendError):
    """The requested simulation does not fit in the configured memory."""


class ZeroProbabilityTrajectory(BackendError):
    """A prescribed Kraus combination annihilates the state.

    Pre-trajectory sampling works from *nominal* probabilities; for general
    (state-dependent) channels a sampled combination can turn out to have
    zero actual probability (e.g. two successive amplitude-damping decays
    on the same qubit).  Batched execution treats such trajectories as
    zero-weight, zero-shot results rather than failures.
    """


class SamplingError(ReproError):
    """Pre-trajectory sampling failure (empty support, bad band, ...)."""


class ExecutionError(ReproError):
    """Batched-execution failure (no trajectories, scheduler mismatch, ...)."""


class WorkerCrashError(ExecutionError):
    """A worker process (or emulated device) died mid-unit.

    Raised by the fault-injection layer to emulate a hard crash, and used
    by the retry machinery as the classification for real pool deaths
    (``BrokenProcessPool``): crash-class failures are what the sharded
    degradation ladder responds to by rebinning the dead device's groups
    across survivors instead of plain retry.
    """


class FaultError(ExecutionError):
    """A work unit exhausted its recovery options.

    Carries the failing unit's name and the attempt count; the triggering
    exception rides on ``__cause__`` so callers see the full chain
    (e.g. ``FaultError <- BrokenProcessPool``).
    """

    def __init__(self, message: str, unit: str = "", attempts: int = 0):
        super().__init__(message)
        self.unit = unit
        self.attempts = attempts


class DeviceError(ReproError):
    """Emulated-device failure (bad mesh shape, partition mismatch, ...)."""


class QECError(ReproError):
    """Quantum error-correction failure (bad code, undecodable syndrome)."""


class DataError(ReproError):
    """Dataset construction / serialization failure."""


class SweepError(ReproError):
    """Scenario sweep failure (bad spec, oracle machinery misuse)."""
