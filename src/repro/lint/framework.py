"""Rule registry, project model, and the lint driver.

Rules come in two shapes:

* :class:`FileRule` — runs once per source file against a
  :class:`~repro.lint.context.FileContext`; ``applies_to`` scopes it to
  the module set whose invariant it guards (device-path modules for the
  ``xp`` rules, replay paths for determinism, everything for RNG
  discipline).
* :class:`ProjectRule` — runs once against the whole
  :class:`Project`, for cross-module contracts (the strategy-table rule
  reads ``execution/batched.py`` and every executor module it points at).

``@register`` adds a rule class to the global :data:`REGISTRY`;
:func:`run_lint` drives every registered rule over a root directory and
filters findings through inline suppressions.  Registration is
idempotent by rule id so test reloads do not duplicate rules.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding

__all__ = [
    "LintError",
    "Rule",
    "FileRule",
    "ProjectRule",
    "Project",
    "REGISTRY",
    "register",
    "all_rules",
    "run_lint",
]


class LintError(Exception):
    """Raised for unusable lint inputs (bad root, unparseable source)."""


class Rule:
    """Base class: every rule has an id, a one-line title, a rationale."""

    id: str = ""
    title: str = ""
    rationale: str = ""


class FileRule(Rule):
    """A rule evaluated independently on each source file."""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (POSIX, root-relative)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over the whole project tree."""

    def check_project(self, project: "Project") -> Iterable[Finding]:
        raise NotImplementedError


#: Global rule registry: id -> rule *class*.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY` (idempotent)."""
    if not rule_cls.id:
        raise LintError(f"rule class {rule_cls.__name__} has no id")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _ensure_rules_loaded()
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


def _ensure_rules_loaded() -> None:
    """Import the bundled rule modules exactly once."""
    import repro.lint.rules  # noqa: F401  — import populates REGISTRY


class Project:
    """A lint run's view of one source tree.

    Parses files lazily and caches the :class:`FileContext` per path, so
    a file visited by four file rules and one cross-module rule is parsed
    once.  ``__pycache__`` and non-``.py`` files are skipped.
    """

    def __init__(self, root: Path):
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise LintError(f"lint root {self.root} is not a directory")
        self._contexts: Dict[str, FileContext] = {}
        self._errors: List[Finding] = []

    def files(self) -> List[str]:
        """Sorted root-relative POSIX paths of every lintable file."""
        out: List[str] = []
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root).as_posix()
            if "__pycache__" in rel:
                continue
            out.append(rel)
        return out

    def context_for(self, relpath: str) -> Optional[FileContext]:
        """The (cached) context for one file, ``None`` when absent."""
        if relpath in self._contexts:
            return self._contexts[relpath]
        full = self.root / relpath
        if not full.is_file():
            return None
        try:
            ctx = FileContext(self.root, relpath)
        except SyntaxError as exc:
            self._errors.append(
                Finding(
                    rule="PARSE",
                    path=relpath,
                    line=exc.lineno or 1,
                    column=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    scope="<module>",
                    text="",
                )
            )
            return None
        self._contexts[relpath] = ctx
        return ctx

    def parse_errors(self) -> List[Finding]:
        return list(self._errors)

    def find_class(self, relpath: str, name: str) -> Optional[ast.ClassDef]:
        """Locate a top-level class definition in one module."""
        ctx = self.context_for(relpath)
        if ctx is None:
            return None
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == name:
                return node
        return None


def run_lint(
    root: Path,
    rule_ids: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the registered rules over ``root`` and return live findings.

    Findings silenced by inline/file suppressions are dropped here;
    baseline matching is the caller's concern
    (:func:`repro.lint.baseline.partition`).  ``rule_ids`` restricts the
    run to a subset of rules (unknown ids raise).
    """
    _ensure_rules_loaded()
    rules = all_rules()
    if rule_ids is not None:
        unknown = sorted(set(rule_ids) - set(REGISTRY))
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(REGISTRY))}"
            )
        wanted = set(rule_ids)
        rules = [rule for rule in rules if rule.id in wanted]

    project = Project(Path(root))
    findings: List[Finding] = []
    for relpath in project.files():
        file_rules = [
            rule
            for rule in rules
            if isinstance(rule, FileRule) and rule.applies_to(relpath)
        ]
        if not file_rules:
            continue
        ctx = project.context_for(relpath)
        if ctx is None:
            continue
        for rule in file_rules:
            for finding in rule.check(ctx):
                if not ctx.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(project):
                ctx = project.context_for(finding.path)
                if ctx is not None and ctx.is_suppressed(finding.rule, finding.line):
                    continue
                findings.append(finding)
    findings.extend(project.parse_errors())
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings
