"""RNG discipline: every random draw flows through ``repro.rng``.

The replay contract — any run reproduces bitwise from one resolved root
seed — only survives if no module draws entropy on the side.  A stray
``np.random.default_rng()`` (fresh OS entropy), module-level
``np.random.*`` calls (hidden global state), or stdlib ``random.*``
(process-global Mersenne state) all break it silently: results look fine
until a replay diverges.

**RNG001** flags any *call* into ``numpy.random`` or the stdlib
``random`` module anywhere in ``src/repro`` outside ``rng.py`` — the one
module allowed to construct generators, because it is the spawn
machinery (``root_sequence`` / ``trajectory_rng`` / ``StreamFactory``)
that keys every stream by ``(seed, trajectory_id)``.  Annotations like
``np.random.Generator`` are attribute references, not calls, and are
never flagged; neither are method calls on generator *objects*
(``rng.random(n)``), which are exactly the sanctioned pattern.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.framework import FileRule, register

__all__ = ["RNG001UnmanagedRandomness"]

#: The one module allowed to touch numpy.random / construct generators:
#: the spawn machinery itself.
RNG_MACHINERY = ("rng.py",)


@register
class RNG001UnmanagedRandomness(FileRule):
    id = "RNG001"
    title = "random draw outside the repro.rng spawn machinery"
    rationale = (
        "Bitwise replay from one root seed requires every stream to be "
        "derived via repro.rng (Philox keyed by (seed, trajectory_id)); "
        "direct numpy.random / stdlib random calls draw unmanaged "
        "entropy or global state that no seed threads through."
    )

    def applies_to(self, path: str) -> bool:
        return path not in RNG_MACHINERY

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved is None:
                continue
            message = None
            if resolved.startswith("numpy.random."):
                short = resolved[len("numpy."):]
                message = (
                    f"'{short}' call bypasses the repro.rng spawn "
                    f"machinery; derive streams via repro.rng "
                    f"(make_rng / trajectory_rng / library_rng)"
                )
            elif resolved == "random" or resolved.startswith("random."):
                message = (
                    f"stdlib '{resolved}' call uses process-global RNG "
                    f"state; derive a generator via repro.rng instead"
                )
            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=message,
                    scope=ctx.scope_of(node),
                    text=ctx.line_text(node.lineno),
                )
