"""Strategy-contract rule: every registered engine honors the executor API.

The six strategies stay interchangeable because each executor behind
``STRATEGY_BUILDERS`` implements the same surface: an ``execute_stream``
generator that accepts the threaded root ``seed`` and the ``retain``
knob, and stamps its engine name onto the streamed results so routing
decisions are auditable (``result.engine`` / ``result.routing``).  That
contract spans four modules and has no single enforcement point at
runtime — a new strategy can pass its own tests while silently breaking
``run_ptsbe_stream``'s dispatch assumptions.

**STRAT001** walks the contract statically:

1. parse ``execution/batched.py`` for the ``STRATEGY_BUILDERS`` dict;
2. resolve each builder function to the executor class it constructs
   (following the builder-local ``from repro.execution.<m> import <Cls>``);
3. in the class's module, require ``execute_stream`` to exist, to accept
   ``seed`` and ``retain`` parameters, and require the module to record
   the registered engine name on its results
   (``engine="<strategy>"`` keyword somewhere in the module);
4. require the dispatch site to attach the routing trail
   (an ``<stream>.routing = ...`` assignment in ``execution/batched.py``).

On trees without ``execution/batched.py`` (not a repro-shaped source
root) the rule is silent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.framework import Project, ProjectRule, register

__all__ = ["STRAT001ExecutorContract"]

DISPATCH_MODULE = "execution/batched.py"
TABLE_NAME = "STRATEGY_BUILDERS"
REQUIRED_PARAMS = ("seed", "retain")


def _builders_table(tree: ast.Module) -> Optional[Tuple[ast.Dict, Dict[str, str]]]:
    """The ``STRATEGY_BUILDERS`` dict node and its name->builder map."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == TABLE_NAME for t in node.targets
        ):
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        table: Dict[str, str] = {}
        for key, value in zip(node.value.keys, node.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Name)
            ):
                table[key.value] = value.id
        return node.value, table
    return None


def _resolve_builder(
    tree: ast.Module, builder_name: str
) -> Optional[Tuple[Optional[str], str]]:
    """(module relpath or None for dispatch-local, class name) for a builder.

    Follows the idiom ``def _build_x(...): from repro.execution.x import
    XExecutor; return XExecutor(...)``.  A builder returning a class with
    no builder-local import constructs a class defined in the dispatch
    module itself (the serial engine).
    """
    func = next(
        (
            node
            for node in tree.body
            if isinstance(node, ast.FunctionDef) and node.name == builder_name
        ),
        None,
    )
    if func is None:
        return None
    local_imports: Dict[str, str] = {}
    returned: Optional[str] = None
    for node in ast.walk(func):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local_imports[alias.asname or alias.name] = node.module
        elif isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            callee = node.value.func
            if isinstance(callee, ast.Name):
                returned = callee.id
    if returned is None:
        return None
    module = local_imports.get(returned)
    if module is None:
        return None, returned
    if not module.startswith("repro."):
        return None
    relpath = "/".join(module.split(".")[1:]) + ".py"
    return relpath, returned


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _param_names(func: ast.FunctionDef) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _module_records_engine(tree: ast.Module, engine: str) -> bool:
    """Does any call in the module pass ``engine="<name>"``?"""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if (
                kw.arg == "engine"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value == engine
            ):
                return True
    return False


def _dispatch_attaches_routing(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Attribute) and t.attr == "routing"
                for t in node.targets
            ):
                return True
    return False


@register
class STRAT001ExecutorContract(ProjectRule):
    id = "STRAT001"
    title = "registered strategy violates the executor contract"
    rationale = (
        "Every engine behind STRATEGY_BUILDERS must expose "
        "execute_stream(seed=..., retain=...) and record its engine name "
        "on streamed results; the strategies are only interchangeable "
        "(and routing decisions only auditable) while that holds."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        ctx = project.context_for(DISPATCH_MODULE)
        if ctx is None:
            return  # not a repro-shaped tree: nothing to check
        found = _builders_table(ctx.tree)
        if found is None:
            yield Finding(
                rule=self.id,
                path=DISPATCH_MODULE,
                line=1,
                column=0,
                message=(
                    f"{TABLE_NAME} dict literal not found; the strategy "
                    f"contract has no anchor to check against"
                ),
                scope="<module>",
                text=ctx.line_text(1),
            )
            return
        table_node, table = found
        if not _dispatch_attaches_routing(ctx.tree):
            yield Finding(
                rule=self.id,
                path=DISPATCH_MODULE,
                line=table_node.lineno,
                column=table_node.col_offset,
                message=(
                    "dispatch never attaches the routing decision "
                    "(no '<stream>.routing = ...' assignment); "
                    "run_ptsbe_stream must record why each engine ran"
                ),
                scope=ctx.scope_of(table_node),
                text=ctx.line_text(table_node.lineno),
            )
        for strategy, builder_name in sorted(table.items()):
            yield from self._check_strategy(project, table_node, strategy, builder_name)

    def _check_strategy(
        self,
        project: Project,
        table_node: ast.Dict,
        strategy: str,
        builder_name: str,
    ) -> Iterable[Finding]:
        ctx = project.context_for(DISPATCH_MODULE)
        assert ctx is not None  # caller established it
        resolved = _resolve_builder(ctx.tree, builder_name)
        if resolved is None:
            yield Finding(
                rule=self.id,
                path=DISPATCH_MODULE,
                line=table_node.lineno,
                column=table_node.col_offset,
                message=(
                    f"builder '{builder_name}' for strategy "
                    f"'{strategy}' does not resolve to an executor class "
                    f"(expected 'from repro.execution.<m> import <Cls>' + "
                    f"'return <Cls>(...)')"
                ),
                scope=ctx.scope_of(table_node),
                text=ctx.line_text(table_node.lineno),
            )
            return
        module_rel, class_name = resolved
        module_rel = module_rel or DISPATCH_MODULE
        cls = project.find_class(module_rel, class_name)
        module_ctx = project.context_for(module_rel)
        if cls is None or module_ctx is None:
            yield Finding(
                rule=self.id,
                path=DISPATCH_MODULE,
                line=table_node.lineno,
                column=table_node.col_offset,
                message=(
                    f"executor class '{class_name}' for strategy "
                    f"'{strategy}' not found in {module_rel}"
                ),
                scope=ctx.scope_of(table_node),
                text=ctx.line_text(table_node.lineno),
            )
            return
        method = _method(cls, "execute_stream")
        if method is None:
            yield Finding(
                rule=self.id,
                path=module_rel,
                line=cls.lineno,
                column=cls.col_offset,
                message=(
                    f"executor '{class_name}' (strategy '{strategy}') "
                    f"defines no execute_stream: every registered engine "
                    f"must stream ordered ShotChunks"
                ),
                scope=class_name,
                text=module_ctx.line_text(cls.lineno),
            )
        else:
            params = _param_names(method)
            for required in REQUIRED_PARAMS:
                if required not in params:
                    yield Finding(
                        rule=self.id,
                        path=module_rel,
                        line=method.lineno,
                        column=method.col_offset,
                        message=(
                            f"{class_name}.execute_stream (strategy "
                            f"'{strategy}') does not accept '{required}': "
                            f"the dispatch threads the resolved root seed "
                            f"and the retention knob to every engine"
                        ),
                        scope=f"{class_name}.execute_stream",
                        text=module_ctx.line_text(method.lineno),
                    )
        if not _module_records_engine(module_ctx.tree, strategy):
            yield Finding(
                rule=self.id,
                path=module_rel,
                line=cls.lineno,
                column=cls.col_offset,
                message=(
                    f"module never records engine='{strategy}' on its "
                    f"results: routing decisions must be auditable via "
                    f"result.engine"
                ),
                scope=class_name,
                text=module_ctx.line_text(cls.lineno),
            )
