"""Bundled rule modules: importing this package populates the registry.

Each module registers its rules via the ``@register`` decorator; adding
a rule means adding a module here (and a fixture test demonstrating the
rule catching a seeded violation — see ``tests/test_lint.py``).
"""

from repro.lint.rules import determinism, err_rules, rng_rules, strategy, xp_rules

__all__ = ["determinism", "err_rules", "rng_rules", "strategy", "xp_rules"]
