"""Backend-purity rules: keep device-path math on the ``xp`` namespace.

The CuPy drop-in contract (ROADMAP: "all dense math routes through an
``xp`` namespace") only holds if no device-path module calls NumPy
compute functions directly — ``np.matmul`` on a CuPy array either
crashes or silently round-trips through host memory.  These rules make
the convention mechanical:

* **XP001** — direct ``numpy`` *compute* calls (linear algebra,
  elementwise transcendentals, reductions, axis-movers) in the
  device-path module set.  Constant/dtype construction (``np.empty``,
  ``np.asarray``, ``np.uint8`` ...) is allowed: building host-side index
  vectors and bit tables is the boundary working as designed, and
  ``linalg/backend.py`` — the boundary itself — is exempt wholesale.
* **XP002** — device→host transfer calls (``to_host``,
  ``to_host_pinned``, zero-arg ``.get()``/``.item()``, ``float()`` of a
  device-derived value) lexically inside a loop in an executor hot path.
  One transfer per stack is the design; one per row is the O(B) host-sync
  pattern the batched-renormalization pass removed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.framework import FileRule, register

__all__ = ["XP001DirectNumpyCompute", "XP002HostTransferInLoop"]

#: Modules whose array math must route through ``xp`` (root-relative
#: POSIX prefixes/paths).  ``execution/`` covers every strategy module.
DEVICE_PATH_MODULES = (
    "linalg/apply.py",
    "linalg/reductions.py",
    "linalg/decompositions.py",
    "backends/batched_statevector.py",
    "backends/mps.py",
    "backends/mps_sampler.py",
    "execution/",
)

#: The boundary allowlist: the array-module layer itself may (must)
#: import NumPy directly.
BOUNDARY_ALLOWLIST = ("linalg/backend.py",)

#: ``numpy.<name>`` call targets that are *compute* — work that belongs
#: on the array module so it runs device-side under CuPy.  Construction
#: (``empty``/``zeros``/``asarray``/dtype scalars) is deliberately
#: absent: host-side tables and compile-time constants are legitimate.
NUMPY_COMPUTE_CALLS = frozenset(
    {
        # linear algebra / contractions
        "matmul", "dot", "vdot", "inner", "outer", "einsum", "tensordot",
        "kron", "trace",
        "linalg.svd", "linalg.qr", "linalg.eig", "linalg.eigh",
        "linalg.norm", "linalg.inv", "linalg.solve", "linalg.cholesky",
        # elementwise math
        "exp", "log", "log2", "sqrt", "abs", "absolute", "conj",
        "conjugate", "angle", "sign", "add", "subtract", "multiply",
        "divide", "true_divide", "power", "maximum", "minimum",
        # reductions / scans / selection
        "sum", "prod", "mean", "cumsum", "cumprod", "searchsorted",
        "where", "argmax", "argmin", "sort", "argsort",
        # axis movers that materialize transposed copies on the wrong
        # module when applied to a device stack
        "moveaxis", "swapaxes", "transpose", "concatenate", "stack",
        # FFTs
        "fft.fft", "fft.ifft", "fft.fftn", "fft.ifftn",
    }
)

#: Executor hot paths where a per-iteration host sync is a real
#: throughput bug (the module set XP002 patrols).
EXECUTOR_HOT_PATHS = (
    "execution/batched.py",
    "execution/vectorized.py",
    "execution/sharded.py",
    "execution/parallel.py",
    "execution/clifford.py",
    "execution/tensornet.py",
    "backends/batched_statevector.py",
)

#: Transfer method names that always cross the device boundary.
TRANSFER_METHODS = frozenset({"to_host", "to_host_pinned", "asnumpy"})

#: Expression sources that mark a name as (potentially) device-resident.
_DEVICE_SOURCES = frozenset(
    {"xp", "_xp", "_stack", "apply_compiled_stack", "apply_gemm_stack",
     "row_norms_squared", "cumulative_stack"}
)


def _in_device_paths(path: str) -> bool:
    if path in BOUNDARY_ALLOWLIST:
        return False
    return any(
        path == entry or (entry.endswith("/") and path.startswith(entry))
        for entry in DEVICE_PATH_MODULES
    )


@register
class XP001DirectNumpyCompute(FileRule):
    id = "XP001"
    title = "direct numpy compute call in a device-path module"
    rationale = (
        "Dense math in device-path modules must run on the resolved xp "
        "namespace (ArrayBackend.xp) so the same kernel source serves "
        "NumPy and CuPy; a direct np.* compute call either fails on "
        "device arrays or forces a silent host round-trip."
    )

    def applies_to(self, path: str) -> bool:
        return _in_device_paths(path)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved is None or not resolved.startswith("numpy."):
                continue
            func = resolved[len("numpy."):]
            if func in NUMPY_COMPUTE_CALLS:
                yield Finding(
                    rule=self.id,
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    message=(
                        f"numpy compute call '{func}' in a device-path "
                        f"module; route it through the xp namespace "
                        f"(ArrayBackend.xp) so CuPy stays a drop-in"
                    ),
                    scope=ctx.scope_of(node),
                    text=ctx.line_text(node.lineno),
                )


def _device_tainted_names(
    ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> Set[str]:
    """Names assigned from device-suspect expressions inside ``func``.

    A tiny, deliberately conservative dataflow pass: a name becomes
    *tainted* when its right-hand side mentions the ``xp`` module, a
    stack attribute, or a known device-kernel helper — and *untainted*
    again when reassigned through a ``to_host`` boundary call.  Only
    tainted names make ``float(name[...])`` a finding, which keeps
    ``float(weights[row])`` on host NumPy results quiet.
    """
    tainted: Set[str] = set()
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        crosses_boundary = False
        device_source = False
        for sub in ast.walk(stmt.value):
            if isinstance(sub, ast.Attribute) and sub.attr in TRANSFER_METHODS:
                crosses_boundary = True
            name = sub.id if isinstance(sub, ast.Name) else (
                sub.attr if isinstance(sub, ast.Attribute) else None
            )
            if name in _DEVICE_SOURCES:
                device_source = True
        if crosses_boundary:
            tainted.discard(target.id)
        elif device_source:
            tainted.add(target.id)
    return tainted


@register
class XP002HostTransferInLoop(FileRule):
    id = "XP002"
    title = "device->host transfer inside a loop in an executor hot path"
    rationale = (
        "Executor hot paths budget one host sync per stack (weights, "
        "shot indices); a to_host/.get()/.item()/float() crossing inside "
        "a loop reintroduces the O(B) per-row sync the batched "
        "reductions were built to remove."
    )

    def applies_to(self, path: str) -> bool:
        return path in EXECUTOR_HOT_PATHS

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        taint_cache: Dict[ast.AST, Set[str]] = {}
        for node in ctx.walk():
            if not isinstance(node, ast.Call) or not ctx.in_loop(node):
                continue
            finding = self._classify(ctx, node, taint_cache)
            if finding is not None:
                yield finding

    def _classify(
        self,
        ctx: FileContext,
        node: ast.Call,
        taint_cache: Dict[ast.AST, Set[str]],
    ) -> "Finding | None":
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in TRANSFER_METHODS:
                return self._finding(
                    ctx, node,
                    f"'{func.attr}' inside a loop: hoist the transfer out "
                    f"of the per-row path (one bulk sync per stack)",
                )
            if func.attr in ("get", "item") and not node.args and not node.keywords:
                return self._finding(
                    ctx, node,
                    f"zero-argument '.{func.attr}()' inside a loop is a "
                    f"per-iteration device->host sync under CuPy",
                )
            return None
        if (
            isinstance(func, ast.Name)
            and func.id in ("float", "complex", "int")
            and len(node.args) == 1
        ):
            arg = node.args[0]
            base = arg.value if isinstance(arg, ast.Subscript) else arg
            if not isinstance(base, ast.Name):
                return None
            owner = ctx.enclosing_function(node)
            if owner is None:
                return None
            if owner not in taint_cache:
                taint_cache[owner] = _device_tainted_names(ctx, owner)
            if base.id in taint_cache[owner]:
                return self._finding(
                    ctx, node,
                    f"'{func.id}()' of device-derived '{base.id}' inside a "
                    f"loop forces a per-iteration host sync; reduce on the "
                    f"array module and cross once via to_host",
                )
        return None

    def _finding(self, ctx: FileContext, node: ast.Call, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=node.lineno,
            column=node.col_offset,
            message=message,
            scope=ctx.scope_of(node),
            text=ctx.line_text(node.lineno),
        )
