"""Replay-path determinism: no wall clocks, OS entropy, or set ordering.

Seeded replay paths (the execution engines, the backends they drive, the
PTS samplers, trajectory bookkeeping, and the channel layer) must be
pure functions of ``(circuit, specs, seed)``.  **DET001** flags the
nondeterminism sources that sneak into such code:

* wall-clock reads (``time.time``, ``datetime.now``, ``date.today``) —
  ``time.perf_counter`` / ``process_time`` are *allowed*; they feed
  timing metrics, never shot output;
* OS entropy (``os.urandom``, ``uuid.uuid1/4``, ``secrets.*``);
* direct iteration over a ``set`` literal / ``set()`` call — iteration
  order depends on ``PYTHONHASHSEED`` for str keys, so anything it feeds
  (shot ordering, group scheduling) varies across processes.  Sort
  first: ``for x in sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.framework import FileRule, register

__all__ = ["DET001NondeterminismSource"]

#: Module prefixes that form the seeded replay surface.
REPLAY_PATH_MODULES = (
    "execution/",
    "backends/",
    "pts/",
    "trajectory/",
    "channels/",
    "rng.py",
)

#: Canonical dotted names whose call results differ run to run.
FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic_ns",  # acceptable for durations, but never raw
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def _iter_is_raw_set(node: ast.expr, ctx: FileContext) -> bool:
    """True when a for-loop iterates a set literal / ``set(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # Only the builtin: an imported/shadowed `set` resolves elsewhere.
        return node.func.id == "set" and ctx.resolve(node.func) is None
    return False


@register
class DET001NondeterminismSource(FileRule):
    id = "DET001"
    title = "nondeterminism source in a seeded replay path"
    rationale = (
        "Replay paths must be pure functions of (circuit, specs, seed): "
        "wall clocks, OS entropy, and hash-ordered set iteration all "
        "produce output that cannot be reproduced from the recorded "
        "root seed."
    )

    def applies_to(self, path: str) -> bool:
        return any(
            path == entry or (entry.endswith("/") and path.startswith(entry))
            for entry in REPLAY_PATH_MODULES
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                resolved = ctx.resolve_call(node)
                if resolved in FORBIDDEN_CALLS:
                    yield Finding(
                        rule=self.id,
                        path=ctx.path,
                        line=node.lineno,
                        column=node.col_offset,
                        message=(
                            f"'{resolved}' is a per-run nondeterminism "
                            f"source; replay paths may only consume the "
                            f"threaded seed (timing metrics should use "
                            f"time.perf_counter)"
                        ),
                        scope=ctx.scope_of(node),
                        text=ctx.line_text(node.lineno),
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _iter_is_raw_set(node.iter, ctx):
                    yield Finding(
                        rule=self.id,
                        path=ctx.path,
                        line=node.iter.lineno,
                        column=node.iter.col_offset,
                        message=(
                            "iterating a set directly: order depends on "
                            "PYTHONHASHSEED across processes; iterate "
                            "sorted(...) in replay paths"
                        ),
                        scope=ctx.scope_of(node),
                        text=ctx.line_text(node.iter.lineno),
                    )
