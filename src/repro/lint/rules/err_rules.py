"""Error-handling discipline on the execution paths.

The fault-tolerance layer (:mod:`repro.faults`) only works if failures
*reach* it: a work unit that dies must surface as a typed
:class:`~repro.errors.ReproError` the retry policy can classify, or
escalate.  Two anti-patterns defeat that silently:

* **broad catches** — ``except:`` / ``except Exception`` /
  ``except BaseException`` absorb everything, including the injected
  :class:`~repro.errors.WorkerCrashError` and pool-level
  ``BrokenProcessPool`` signals the recovery ladder keys on.  A broad
  catch is tolerated only when the handler visibly re-raises
  (translation into a typed error with unit context is exactly the
  sanctioned pattern);
* **swallowed domain errors** — a handler for a
  :class:`~repro.errors.ReproError` subclass whose body is nothing but
  ``pass`` / ``...`` / ``continue`` drops a failure on the floor: the
  run "succeeds" with missing shots and no
  :class:`~repro.faults.retry.RecoveryEvent` recording what happened.

**ERR001** flags both shapes in ``execution/`` and ``faults/`` modules.
Handlers over non-literal exception tuples (``except policy.retryable:``)
are deliberately invisible to this rule: the retry machinery's
classification happens through :class:`~repro.faults.retry.RetryPolicy`,
which is the structured path this rule funnels code toward.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.framework import FileRule, register

__all__ = ["ERR001SwallowedFailure"]

#: Module prefixes where the fault-tolerance contract applies: every
#: failure must surface as a typed error or a recorded recovery action.
ERROR_PATH_PREFIXES = ("execution/", "faults/")

#: The typed error taxonomy of :mod:`repro.errors`.  Kept as literal
#: names (not an import of the runtime package) so the linter stays a
#: pure source-level tool; handler types are matched on their trailing
#: identifier, which covers ``BackendError`` and ``errors.BackendError``
#: alike.
REPRO_ERROR_NAMES = frozenset(
    {
        "ReproError",
        "CircuitError",
        "GateError",
        "ChannelError",
        "NoiseModelError",
        "BackendError",
        "CapacityError",
        "SamplingError",
        "ExecutionError",
        "WorkerCrashError",
        "FaultError",
        "DeviceError",
        "QECError",
        "DataError",
    }
)

#: Builtin catch-alls.  These are bare names the import map never
#: resolves, so they are matched literally.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _caught_names(ctx: FileContext, handler: ast.ExceptHandler) -> List[str]:
    """Trailing identifiers of every literal class in the except clause.

    ``except (BackendError, errors.DeviceError):`` yields
    ``["BackendError", "DeviceError"]``.  Non-literal elements (calls,
    subscripts, plain locals holding tuples) yield nothing — the rule
    only judges what it can read.
    """
    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names: List[str] = []
    for element in elements:
        dotted = ctx.dotted_name(element)
        if dotted is not None:
            names.append(dotted.rsplit(".", 1)[-1])
    return names


def _handler_raises(handler: ast.ExceptHandler) -> bool:
    """Whether any path through the handler body re-raises."""
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing with the failure.

    ``pass``, a lone docstring/ellipsis, or a bare ``continue`` all
    discard the exception without recording, translating, or re-raising
    it.
    """
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


@register
class ERR001SwallowedFailure(FileRule):
    id = "ERR001"
    title = "failure swallowed or caught too broadly on an execution path"
    rationale = (
        "Retry, rebin, and batch-halving only trigger when failures "
        "surface as typed ReproError subclasses; a broad or silent "
        "except hides faults from the recovery ladder and from the "
        "run's RecoveryEvent record."
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith(ERROR_PATH_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            finding = self._check_handler(ctx, node)
            if finding is not None:
                yield finding

    def _check_handler(
        self, ctx: FileContext, handler: ast.ExceptHandler
    ) -> Optional[Finding]:
        if handler.type is None:
            return self._finding(
                ctx,
                handler,
                "bare 'except:' absorbs every failure (including "
                "KeyboardInterrupt and injected faults); catch the typed "
                "ReproError subclass the unit can actually recover from",
            )
        names = _caught_names(ctx, handler)
        broad = sorted(set(names) & BROAD_NAMES)
        if broad and not _handler_raises(handler):
            return self._finding(
                ctx,
                handler,
                f"'except {broad[0]}' without a re-raise hides failures "
                f"from the retry/rebin ladder; catch the typed error or "
                f"translate into ExecutionError with unit context",
            )
        swallowed = sorted(set(names) & REPRO_ERROR_NAMES)
        if swallowed and _swallows(handler):
            return self._finding(
                ctx,
                handler,
                f"{swallowed[0]} handler discards the failure without "
                f"recording or re-raising it; append a RecoveryEvent, "
                f"translate, or let the retry policy classify it",
            )
        return None

    def _finding(
        self, ctx: FileContext, handler: ast.ExceptHandler, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=handler.lineno,
            column=handler.col_offset,
            message=message,
            scope=ctx.scope_of(handler),
            text=ctx.line_text(handler.lineno),
        )
