"""Committed-baseline handling: grandfathered findings, tracked not hidden.

A baseline entry records one accepted finding by its stable key —
``(rule, path, scope, text)``, never a line number — plus the
*justification* for accepting it.  The linter then partitions live
findings into **new** (fail the build) and **baselined** (reported in
summaries, tolerated), and reports **stale** entries whose finding no
longer exists so the baseline shrinks monotonically as debt is paid.

Matching is count-aware: a baseline entry absorbs exactly one finding
with its key, so duplicating an offending line immediately produces a
new finding instead of hiding behind its grandfathered twin.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.lint.findings import Finding, FindingKey
from repro.lint.framework import LintError

__all__ = ["BaselineEntry", "load_baseline", "write_baseline", "partition"]

#: Schema version of the baseline document.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding plus why it is accepted."""

    rule: str
    path: str
    scope: str
    text: str
    justification: str = ""

    def key(self) -> FindingKey:
        return (self.rule, self.path, self.scope, self.text)

    def to_json(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "scope": self.scope,
            "text": self.text,
            "justification": self.justification,
        }


def load_baseline(path: Union[str, Path]) -> List[BaselineEntry]:
    """Parse a baseline document; a missing file is an empty baseline."""
    file = Path(path)
    if not file.is_file():
        return []
    try:
        doc = json.loads(file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {file} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "entries" not in doc:
        raise LintError(f"baseline {file} lacks an 'entries' list")
    entries: List[BaselineEntry] = []
    for raw in doc["entries"]:
        try:
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    scope=raw.get("scope", "<module>"),
                    text=raw.get("text", ""),
                    justification=raw.get("justification", ""),
                )
            )
        except (KeyError, TypeError) as exc:
            raise LintError(f"malformed baseline entry in {file}: {raw!r}") from exc
    return entries


def write_baseline(
    findings: Sequence[Finding],
    path: Union[str, Path],
    notes: str = "",
    justifications: Union[Dict[str, str], None] = None,
) -> None:
    """Serialize ``findings`` as a fresh baseline document.

    ``justifications`` maps path prefixes to justification strings so a
    regenerated baseline keeps its documentation (entries under an
    unmapped path get an empty justification to be filled in by hand).
    """
    justifications = justifications or {}
    entries: List[Dict[str, str]] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        reason = ""
        for prefix, text in justifications.items():
            if finding.path == prefix or finding.path.startswith(prefix):
                reason = text
                break
        entries.append(
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                scope=finding.scope,
                text=finding.text,
                justification=reason,
            ).to_json()
        )
    doc: Dict[str, object] = {
        "version": BASELINE_VERSION,
        "notes": notes,
        "entries": entries,
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(new, baselined, stale)``: findings with no matching entry,
    findings absorbed by an entry, and entries that matched nothing (the
    debt was paid — remove them).  Matching is by multiset on the stable
    key, so N entries with one key absorb at most N findings.
    """
    budget: Counter[FindingKey] = Counter(entry.key() for entry in entries)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale: List[BaselineEntry] = []
    consumed: Counter[FindingKey] = Counter(f.key() for f in baselined)
    for entry in entries:
        key = entry.key()
        if consumed.get(key, 0) > 0:
            consumed[key] -= 1
        else:
            stale.append(entry)
    return new, baselined, stale
