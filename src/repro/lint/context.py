"""Per-file analysis context shared by every rule.

One :class:`FileContext` is built per source file and handed to each
file-scoped rule, so the expensive work — parsing, import-alias
resolution, parent links, suppression-comment scanning — happens once
per file, not once per rule.

The context knows three things rules keep asking:

* **what a call resolves to** — ``resolve_call("np.linalg.svd")`` walks
  the attribute chain back through the file's import aliases and returns
  the canonical dotted name (``"numpy.linalg.svd"``), covering
  ``import numpy as np``, ``from numpy import linalg``, and
  ``from numpy.random import default_rng`` alike;
* **where a node sits** — the enclosing function/class scope (for
  baseline keys) and whether it is lexically inside a loop (for the
  hot-path transfer rule);
* **what the author suppressed** — ``# replint: disable=RULE[,RULE...]``
  on the offending line, or ``# replint: disable-file=RULE`` anywhere in
  the file.  ``disable=all`` silences every rule for that line.
"""

from __future__ import annotations

import ast
import re
import tokenize
from io import StringIO
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["FileContext", "SUPPRESS_RE"]

#: Matches one suppression comment.  Group 1 is ``-file`` when the
#: suppression applies to the whole file, group 2 the comma-separated
#: rule list (``all`` silences everything).  Trailing prose after the
#: rule list is the (encouraged) justification and is ignored by the
#: matcher: ``# replint: disable=XP001 -- host bit tables``.
SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*disable(-file)?\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Nodes that start a new scope for baseline keys.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Nodes whose body repeats: a call under one of these runs per iteration.
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


class FileContext:
    """Parsed AST plus derived lookup tables for one source file."""

    def __init__(self, root: Path, relpath: str, source: Optional[str] = None):
        self.root = Path(root)
        #: POSIX-style path relative to the lint root — rules match on it.
        self.path = relpath.replace("\\", "/")
        if source is None:
            source = (self.root / relpath).read_text(encoding="utf-8")
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=self.path)
        #: imported-name -> canonical dotted prefix, e.g. ``{"np": "numpy",
        #: "default_rng": "numpy.random.default_rng"}``.
        self.import_map: Dict[str, str] = {}
        self._collect_imports()
        #: child AST node -> parent (for scope/loop queries).
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        #: line -> set of suppressed rule ids ("all" wildcard included).
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: rule ids suppressed for the whole file.
        self.file_suppressions: Set[str] = set()
        self._collect_suppressions()

    # ------------------------------------------------------------------ #
    # imports and call resolution
    # ------------------------------------------------------------------ #
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_map[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports never reach numpy/stdlib
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.import_map[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """The literal dotted chain of a Name/Attribute node, if pure."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, through import aliases.

        ``np.linalg.svd`` -> ``numpy.linalg.svd`` when the file did
        ``import numpy as np``; ``default_rng`` -> the full
        ``numpy.random.default_rng`` after a from-import.  Returns
        ``None`` for anything that is not a plain dotted chain rooted at
        an imported name (locals stay unresolved on purpose: ``rng.random()``
        on a Generator parameter must not look like the stdlib).
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        mapped = self.import_map.get(head)
        if mapped is None:
            return None
        return f"{mapped}.{rest}" if rest else mapped

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's target (or ``None``)."""
        return self.resolve(call.func)

    # ------------------------------------------------------------------ #
    # position queries
    # ------------------------------------------------------------------ #
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def scope_of(self, node: ast.AST) -> str:
        """Dotted enclosing def/class chain, ``"<module>"`` at top level."""
        names: List[str] = []
        cur = self._parents.get(node)
        while cur is not None:
            if isinstance(cur, _SCOPE_NODES):
                names.append(cur.name)
            cur = self._parents.get(cur)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        cur = self._parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self._parents.get(cur)
        return None

    def in_loop(self, node: ast.AST) -> bool:
        """True when the node executes once per iteration of a loop.

        Walks ancestors up to the enclosing function (or module) boundary;
        comprehension generators count as loops, the loop's own ``iter``
        expression (evaluated once) does not.
        """
        child = node
        cur = self._parents.get(node)
        while cur is not None and not isinstance(cur, _SCOPE_NODES):
            if isinstance(cur, _LOOP_NODES):
                once = getattr(cur, "iter", None)  # While has no iter
                if child is not once:
                    return True
            if isinstance(
                cur, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                return True
            child = cur
            cur = self._parents.get(cur)
        return False

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    # ------------------------------------------------------------------ #
    # suppressions
    # ------------------------------------------------------------------ #
    def _collect_suppressions(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(StringIO(self.source).readline))
        except tokenize.TokenError:  # pragma: no cover - parse already passed
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = {part.strip() for part in match.group(2).split(",") if part.strip()}
            if match.group(1):  # disable-file
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(tok.start[0], set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is silenced at ``line`` (or file-wide)."""
        if {"all", rule} & self.file_suppressions:
            return True
        at_line = self.line_suppressions.get(line, set())
        return bool({"all", rule} & at_line)

    def suppressed_rules(self) -> Set[Tuple[int, str]]:
        """Every (line, rule) pair with an inline suppression (for tooling)."""
        out: Set[Tuple[int, str]] = set()
        for line, rules in self.line_suppressions.items():
            for rule in rules:
                out.add((line, rule))
        return out
