"""``repro.lint`` — AST-based invariant linter for the repro codebase.

Runtime equivalence tests prove the invariants held *on the inputs they
ran*; this package enforces them *mechanically* at review time, over
every line of ``src/repro``:

* **XP001 / XP002** — backend purity: device-path math stays on the
  pluggable ``xp`` namespace; host syncs never sit inside executor
  loops (the CuPy drop-in contract);
* **RNG001** — RNG discipline: every random draw derives from the
  ``repro.rng`` spawn machinery keyed by ``(seed, trajectory_id)``
  (the bitwise-replay contract);
* **DET001** — no wall clocks / OS entropy / hash-ordered set iteration
  in seeded replay paths;
* **STRAT001** — every engine registered in ``STRATEGY_BUILDERS``
  honors the cross-module executor contract (``execute_stream`` with
  threaded ``seed``/``retain``, engine recorded on results).

Run it with ``python -m repro.lint [--strict] [--json]``; grandfathered
findings live in the committed ``baseline.json`` next to this file, each
with a justification.  Suppress a single intentional boundary crossing
inline with ``# replint: disable=RULE -- reason``.  See
``docs/architecture.md`` ("Static analysis") for the catalogue and the
policy on suppressions vs. baseline entries.
"""

from __future__ import annotations

from repro.lint.baseline import BaselineEntry, load_baseline, partition, write_baseline
from repro.lint.cli import default_baseline_path, default_root, main
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.framework import (
    REGISTRY,
    FileRule,
    LintError,
    Project,
    ProjectRule,
    Rule,
    all_rules,
    register,
    run_lint,
)

__all__ = [
    "BaselineEntry",
    "FileContext",
    "FileRule",
    "Finding",
    "LintError",
    "Project",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "all_rules",
    "default_baseline_path",
    "default_root",
    "load_baseline",
    "main",
    "partition",
    "register",
    "run_lint",
    "write_baseline",
]
