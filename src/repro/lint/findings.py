"""Finding records: what a rule reports and how findings are keyed.

A :class:`Finding` pins one rule violation to a source location.  Two
identifiers matter downstream:

* the *location* (``path:line:column``) — what humans and CI annotations
  consume;
* the *key* (``rule``, ``path``, enclosing ``scope``, stripped source
  ``text``) — what the committed baseline matches on.  Line numbers are
  deliberately excluded from the key so unrelated edits above a
  grandfathered finding do not invalidate the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

__all__ = ["Finding", "FindingKey"]

#: The baseline-matching identity of a finding (line numbers excluded).
FindingKey = Tuple[str, str, str, str]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier (``"XP001"``, ...).
    path:
        POSIX-style path relative to the lint root.
    line / column:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable explanation with the expected fix.
    scope:
        Dotted name of the enclosing function/class (``"<module>"`` at
        top level) — part of the baseline key.
    text:
        The stripped source line — part of the baseline key.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    scope: str = "<module>"
    text: str = ""

    def key(self) -> FindingKey:
        """Baseline identity: stable under unrelated line-number churn."""
        return (self.rule, self.path, self.scope, self.text)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: RULE message``)."""
        return f"{self.location()}: {self.rule} {self.message} [{self.scope}]"

    def to_json(self) -> Dict[str, Union[str, int]]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "scope": self.scope,
            "text": self.text,
        }
