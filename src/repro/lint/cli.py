"""The ``python -m repro.lint`` command line.

Default invocation lints the installed ``repro`` package source against
the committed baseline (``src/repro/lint/baseline.json``) and exits

* ``0`` — no findings beyond the baseline;
* ``1`` — new findings (always), or — under ``--strict`` — stale
  baseline entries (debt was paid: shrink the baseline) as well;
* ``2`` — usage or environment errors (bad root, broken baseline).

``--json`` emits the full machine-readable report on stdout (CI uploads
it as an artifact); ``--write-baseline`` regenerates the baseline from
the current findings, preserving justifications by path prefix.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint import baseline as baseline_mod
from repro.lint.findings import Finding
from repro.lint.framework import LintError, all_rules, run_lint

__all__ = ["main", "default_root", "default_baseline_path"]


def default_root() -> Path:
    """The source tree the linter guards: the ``repro`` package itself."""
    return Path(__file__).resolve().parents[1]


def default_baseline_path() -> Path:
    """The committed baseline shipped inside the lint package."""
    return Path(__file__).resolve().parent / "baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant linter for the repro codebase: backend "
            "purity (XP001/XP002), RNG discipline (RNG001), replay "
            "determinism (DET001), and the executor strategy contract "
            "(STRAT001)."
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="source root to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: the committed src/repro/lint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (paid-off debt must be removed)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable report on stdout",
    )
    parser.add_argument(
        "--rules",
        type=str,
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_findings(header: str, findings: Sequence[Finding]) -> None:
    if not findings:
        return
    print(f"{header} ({len(findings)}):")
    for finding in findings:
        print(f"  {finding.render()}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    root = (args.root or default_root()).resolve()
    rule_ids: Optional[List[str]] = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]

    try:
        findings = run_lint(root, rule_ids)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or default_baseline_path()
    if args.write_baseline:
        notes = (
            "Grandfathered repro.lint findings. Every entry needs a "
            "justification; pay the debt down, never grow it."
        )
        baseline_mod.write_baseline(findings, baseline_path, notes=notes)
        print(f"wrote {len(findings)} baseline entries to {baseline_path}")
        return 0

    entries: List[baseline_mod.BaselineEntry] = []
    if not args.no_baseline:
        try:
            entries = baseline_mod.load_baseline(baseline_path)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    new, baselined, stale = baseline_mod.partition(findings, entries)

    failed = bool(new) or (args.strict and bool(stale))
    if args.as_json:
        report = {
            "root": str(root),
            "strict": bool(args.strict),
            "rules": [
                {"id": rule.id, "title": rule.title}
                for rule in all_rules()
                if rule_ids is None or rule.id in rule_ids
            ],
            "new": [finding.to_json() for finding in new],
            "baselined": [finding.to_json() for finding in baselined],
            "stale": [entry.to_json() for entry in stale],
            "summary": {
                "files_scanned": len(list(Path(root).rglob("*.py"))),
                "new": len(new),
                "baselined": len(baselined),
                "stale": len(stale),
                "exit": 1 if failed else 0,
            },
        }
        print(json.dumps(report, indent=2))
    else:
        _print_findings("new findings", new)
        if stale:
            print(f"stale baseline entries ({len(stale)}):")
            for entry in stale:
                print(f"  {entry.rule} {entry.path} [{entry.scope}] {entry.text!r}")
        print(
            f"repro.lint: {len(new)} new, {len(baselined)} baselined, "
            f"{len(stale)} stale (root: {root})"
        )

    return 1 if failed else 0
