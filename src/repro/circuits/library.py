"""Prebuilt circuits used by tests, examples and benchmarks.

Besides generic workloads (GHZ, QFT, random brickwork) this module provides
:func:`noisy` — the convenience wrapper that interleaves a
:class:`~repro.channels.noise_model.NoiseModel` into an ideal circuit,
producing the "arbitrary noisy circuit" that enters the PTSBE pipeline of
paper Fig. 1.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import CX, CZ, H, RX, RY, RZ, Gate, T, X
from repro.errors import CircuitError

__all__ = [
    "ghz",
    "qft",
    "random_brickwork",
    "mirror_benchmark",
    "noisy",
]


def ghz(num_qubits: int, measure: bool = False) -> Circuit:
    """GHZ state preparation: H on qubit 0, CX ladder."""
    circ = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    if measure:
        circ.measure_all()
    return circ


def qft(num_qubits: int, measure: bool = False) -> Circuit:
    """Quantum Fourier transform (with final qubit-reversal swaps)."""
    circ = Circuit(num_qubits, name=f"qft_{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
        for j in range(q + 1, num_qubits):
            angle = math.pi / 2 ** (j - q)
            # Controlled phase, decomposed as rz/cx/rz/cx/rz.
            circ.rz(angle / 2, q)
            circ.cx(j, q)
            circ.rz(-angle / 2, q)
            circ.cx(j, q)
            circ.rz(angle / 2, j)
    for q in range(num_qubits // 2):
        circ.swap(q, num_qubits - 1 - q)
    if measure:
        circ.measure_all()
    return circ


def random_brickwork(
    num_qubits: int,
    depth: int,
    rng: Optional[np.random.Generator] = None,
    two_qubit_gate: Gate = CZ,
    measure: bool = False,
) -> Circuit:
    """Random brickwork circuit: layers of random 1q rotations + 2q gates.

    The standard hard-to-simulate workload; entanglement grows linearly with
    depth, which is what stresses the MPS backend's truncation.
    """
    if depth < 0:
        raise CircuitError("depth must be >= 0")
    rng = rng if rng is not None else np.random.default_rng()
    circ = Circuit(num_qubits, name=f"brickwork_{num_qubits}x{depth}")
    for layer in range(depth):
        for q in range(num_qubits):
            circ.rx(float(rng.uniform(0, 2 * math.pi)), q)
            circ.rz(float(rng.uniform(0, 2 * math.pi)), q)
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            circ.gate(two_qubit_gate, q, q + 1)
    if measure:
        circ.measure_all()
    return circ


def mirror_benchmark(
    num_qubits: int, depth: int, rng: Optional[np.random.Generator] = None
) -> Circuit:
    """Mirror circuit: U followed by U^dagger; ideal output is |0...0>.

    Useful for validating noisy backends — any deviation from the all-zeros
    shot is attributable to injected noise.
    """
    rng = rng if rng is not None else np.random.default_rng()
    half = random_brickwork(num_qubits, depth, rng=rng)
    circ = Circuit(num_qubits, name=f"mirror_{num_qubits}x{depth}")
    ops = list(half.coherent_ops)
    for op in ops:
        circ.append(op)
    for op in reversed(ops):
        circ.gate(op.gate.adjoint(), *op.qubits)
    return circ


def noisy(circuit: Circuit, noise_model) -> Circuit:
    """Interleave a noise model into an ideal circuit.

    Every gate op is followed by the channel(s) the model binds to it;
    model-level state-preparation and measurement noise are inserted at the
    boundaries.  Returns a *frozen* circuit ready for trajectory/PTS use.
    """
    return noise_model.apply(circuit).freeze()
