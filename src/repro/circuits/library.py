"""Prebuilt circuits used by tests, examples and benchmarks.

Besides generic workloads (GHZ, QFT, random brickwork) this module provides
:func:`noisy` — the convenience wrapper that interleaves a
:class:`~repro.channels.noise_model.NoiseModel` into an ideal circuit,
producing the "arbitrary noisy circuit" that enters the PTSBE pipeline of
paper Fig. 1.

It is also the home of the **named workload registry** the scenario sweep
harness (:mod:`repro.sweep`) draws from: each :class:`WorkloadFamily`
wraps one builder with its valid width range, so a declarative sweep spec
can reference circuits by name (``"ghz"``, ``"qft"``, ``"brickwork"``,
...) and the harness can reject or skip widths a family cannot
meaningfully serve — the qsimbench-style "algorithm family × size" axis.
Registered builders always emit *measured* circuits (every sweep cell
samples shots) and derive any internal randomness from an explicit seed,
so a (family, width, seed) triple is fully reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit
from repro.rng import library_rng
from repro.circuits.gates import CX, CZ, H, RX, RY, RZ, Gate, T, X
from repro.errors import CircuitError

__all__ = [
    "ghz",
    "qft",
    "random_brickwork",
    "mirror_benchmark",
    "bernstein_vazirani",
    "qaoa_ring",
    "surface_syndrome",
    "noisy",
    "WorkloadFamily",
    "register_workload",
    "get_workload",
    "workload_names",
    "build_workload",
]


def ghz(num_qubits: int, measure: bool = False) -> Circuit:
    """GHZ state preparation: H on qubit 0, CX ladder."""
    circ = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    if measure:
        circ.measure_all()
    return circ


def qft(num_qubits: int, measure: bool = False) -> Circuit:
    """Quantum Fourier transform (with final qubit-reversal swaps)."""
    circ = Circuit(num_qubits, name=f"qft_{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
        for j in range(q + 1, num_qubits):
            angle = math.pi / 2 ** (j - q)
            # Controlled phase, decomposed as rz/cx/rz/cx/rz.
            circ.rz(angle / 2, q)
            circ.cx(j, q)
            circ.rz(-angle / 2, q)
            circ.cx(j, q)
            circ.rz(angle / 2, j)
    for q in range(num_qubits // 2):
        circ.swap(q, num_qubits - 1 - q)
    if measure:
        circ.measure_all()
    return circ


def random_brickwork(
    num_qubits: int,
    depth: int,
    rng: Optional[np.random.Generator] = None,
    two_qubit_gate: Gate = CZ,
    measure: bool = False,
) -> Circuit:
    """Random brickwork circuit: layers of random 1q rotations + 2q gates.

    The standard hard-to-simulate workload; entanglement grows linearly with
    depth, which is what stresses the MPS backend's truncation.
    """
    if depth < 0:
        raise CircuitError("depth must be >= 0")
    rng = rng if rng is not None else library_rng()
    circ = Circuit(num_qubits, name=f"brickwork_{num_qubits}x{depth}")
    for layer in range(depth):
        for q in range(num_qubits):
            circ.rx(float(rng.uniform(0, 2 * math.pi)), q)
            circ.rz(float(rng.uniform(0, 2 * math.pi)), q)
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            circ.gate(two_qubit_gate, q, q + 1)
    if measure:
        circ.measure_all()
    return circ


def mirror_benchmark(
    num_qubits: int, depth: int, rng: Optional[np.random.Generator] = None
) -> Circuit:
    """Mirror circuit: U followed by U^dagger; ideal output is |0...0>.

    Useful for validating noisy backends — any deviation from the all-zeros
    shot is attributable to injected noise.
    """
    rng = rng if rng is not None else library_rng()
    half = random_brickwork(num_qubits, depth, rng=rng)
    circ = Circuit(num_qubits, name=f"mirror_{num_qubits}x{depth}")
    ops = list(half.coherent_ops)
    for op in ops:
        circ.append(op)
    for op in reversed(ops):
        circ.gate(op.gate.adjoint(), *op.qubits)
    return circ


def bernstein_vazirani(
    num_qubits: int, secret: Optional[int] = None, measure: bool = False
) -> Circuit:
    """Bernstein–Vazirani oracle circuit on ``num_qubits - 1`` data qubits.

    The last qubit is the phase ancilla; ``secret`` is a bitmask over the
    data qubits (default: alternating ``1010...``).  Noise-free output is
    the secret string on the data register, making deviations directly
    attributable to injected noise — a standard named algorithm family in
    device benchmarking suites.
    """
    if num_qubits < 2:
        raise CircuitError("bernstein_vazirani needs >= 2 qubits (data + ancilla)")
    data = num_qubits - 1
    if secret is None:
        secret = int("10" * data, 2) >> (len("10" * data) - data)
    if not (0 <= secret < 2**data):
        raise CircuitError(f"secret {secret} out of range for {data} data qubits")
    circ = Circuit(num_qubits, name=f"bv_{num_qubits}")
    ancilla = num_qubits - 1
    circ.x(ancilla)
    for q in range(num_qubits):
        circ.h(q)
    for q in range(data):
        if (secret >> (data - 1 - q)) & 1:
            circ.cx(q, ancilla)
    for q in range(data):
        circ.h(q)
    if measure:
        circ.measure_all()
    return circ


def qaoa_ring(
    num_qubits: int,
    layers: int = 1,
    gamma: float = 0.7,
    beta: float = 0.4,
    measure: bool = False,
) -> Circuit:
    """QAOA MaxCut ansatz on a ring graph: ZZ cost layers + RX mixers.

    Each layer applies ``exp(-i gamma Z_i Z_j)`` on every ring edge
    (decomposed as CX·RZ·CX) followed by the transverse mixer
    ``RX(2 beta)`` on every qubit.  Fixed angles keep the workload
    deterministic; the ring topology keeps two-qubit depth independent of
    width.
    """
    if num_qubits < 3:
        raise CircuitError("qaoa_ring needs >= 3 qubits to form a ring")
    if layers < 1:
        raise CircuitError("layers must be >= 1")
    circ = Circuit(num_qubits, name=f"qaoa_ring_{num_qubits}x{layers}")
    for q in range(num_qubits):
        circ.h(q)
    for _ in range(layers):
        for i in range(num_qubits):
            j = (i + 1) % num_qubits
            circ.cx(i, j)
            circ.rz(2.0 * gamma, j)
            circ.cx(i, j)
        for q in range(num_qubits):
            circ.rx(2.0 * beta, q)
    if measure:
        circ.measure_all()
    return circ


#: Rotated distance-3 surface code ("surface-17") stabilizer supports over
#: the 3x3 data grid (row-major indices 0..8).
_SURFACE17_Z_STABILIZERS = ((0, 1, 3, 4), (4, 5, 7, 8), (2, 5), (3, 6))
_SURFACE17_X_STABILIZERS = ((1, 2, 4, 5), (3, 4, 6, 7), (0, 1), (7, 8))


def surface_syndrome(num_qubits: int, measure: bool = False) -> Circuit:
    """Rotated d=3 surface-code syndrome extraction, pure Clifford.

    Nine data qubits hold the code patch (prepared in ``|0...0>``, a Z
    eigenstate); each extraction round reads all eight stabilizers into
    eight *fresh* ancillas (the circuit model has terminal measurement
    only, so rounds cannot reuse ancillas) — X stabilizers via
    H·CX-fan·H, Z stabilizers via data-controlled CX.  Rounds are derived
    from the width: ``(num_qubits - 9) // 8``, with any remainder qubits
    idle (they measure deterministically to 0 and simply pad the register
    to the requested width).

    Every gate is H or CX, so the family is the QEC-shaped workload the
    Clifford frame engine serves at widths far past the dense statevector
    cap — a 33-qubit instance is three full rounds.
    """
    if num_qubits < 17:
        raise CircuitError(
            "surface_syndrome needs >= 17 qubits (9 data + 8 ancillas per round)"
        )
    rounds = (num_qubits - 9) // 8
    circ = Circuit(num_qubits, name=f"surface_syndrome_{num_qubits}x{rounds}")
    for r in range(rounds):
        base = 9 + 8 * r
        for i, support in enumerate(_SURFACE17_X_STABILIZERS):
            ancilla = base + i
            circ.h(ancilla)
            for data in support:
                circ.cx(ancilla, data)
            circ.h(ancilla)
        for i, support in enumerate(_SURFACE17_Z_STABILIZERS):
            ancilla = base + len(_SURFACE17_X_STABILIZERS) + i
            for data in support:
                circ.cx(data, ancilla)
    if measure:
        circ.measure_all()
    return circ


def noisy(circuit: Circuit, noise_model) -> Circuit:
    """Interleave a noise model into an ideal circuit.

    Every gate op is followed by the channel(s) the model binds to it;
    model-level state-preparation and measurement noise are inserted at the
    boundaries.  Returns a *frozen* circuit ready for trajectory/PTS use.
    """
    return noise_model.apply(circuit).freeze()


# --------------------------------------------------------------------------- #
# named workload registry (the sweep harness's "algorithm family" axis)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkloadFamily:
    """One named circuit family with its valid width range.

    ``builder(num_qubits, rng)`` returns an *ideal, measured, unfrozen*
    circuit — the sweep harness applies a device noise profile and freezes
    afterwards.  ``min_width``/``max_width`` bound the widths the family
    meaningfully serves (e.g. QFT gate count grows as O(n²), so its cap is
    tighter than GHZ's); out-of-range sweep cells are *skipped*, not
    errors, so one spec can sweep families of different reach.
    """

    name: str
    builder: Callable[[int, np.random.Generator], Circuit]
    min_width: int
    max_width: int
    description: str = ""

    def supports(self, num_qubits: int) -> bool:
        return self.min_width <= num_qubits <= self.max_width

    def build(self, num_qubits: int, seed: int = 0) -> Circuit:
        """Build the measured ideal circuit at ``num_qubits`` wide."""
        if not self.supports(num_qubits):
            raise CircuitError(
                f"workload {self.name!r} supports widths "
                f"[{self.min_width}, {self.max_width}], got {num_qubits}"
            )
        return self.builder(num_qubits, library_rng(seed))


_WORKLOADS: Dict[str, WorkloadFamily] = {}


def register_workload(family: WorkloadFamily) -> WorkloadFamily:
    """Add a family to the registry (rejects duplicate names)."""
    if family.name in _WORKLOADS:
        raise CircuitError(f"workload {family.name!r} already registered")
    if family.min_width < 1 or family.max_width < family.min_width:
        raise CircuitError(
            f"workload {family.name!r}: invalid width range "
            f"[{family.min_width}, {family.max_width}]"
        )
    _WORKLOADS[family.name] = family
    return family


def workload_names() -> List[str]:
    """Registered family names, in registration order."""
    return list(_WORKLOADS)


def get_workload(name: str) -> WorkloadFamily:
    known = ", ".join(repr(n) for n in _WORKLOADS)
    if name not in _WORKLOADS:
        raise CircuitError(f"unknown workload {name!r}; registered: {known}")
    return _WORKLOADS[name]


def build_workload(name: str, num_qubits: int, seed: int = 0) -> Circuit:
    """Convenience: look up ``name`` and build at ``num_qubits``."""
    return get_workload(name).build(num_qubits, seed=seed)


register_workload(
    WorkloadFamily(
        name="ghz",
        builder=lambda n, rng: ghz(n, measure=True),
        min_width=2,
        max_width=24,
        description="GHZ preparation: H + CX ladder (linear depth, Clifford)",
    )
)
register_workload(
    WorkloadFamily(
        name="qft",
        builder=lambda n, rng: qft(n, measure=True),
        min_width=2,
        max_width=12,
        description="Quantum Fourier transform (O(n^2) gates)",
    )
)
register_workload(
    WorkloadFamily(
        name="brickwork",
        builder=lambda n, rng: random_brickwork(n, depth=3, rng=rng, measure=True),
        min_width=2,
        # Wide enough to exercise the past-dense-cap tensornet strategy
        # (depth-3 brickwork stays at modest bond dimension at any width).
        max_width=64,
        description="Random brickwork, depth 3 (seeded 1q rotations + CZ layers)",
    )
)
register_workload(
    WorkloadFamily(
        name="mirror",
        builder=lambda n, rng: mirror_benchmark(n, depth=2, rng=rng).measure_all(),
        min_width=2,
        max_width=12,
        description="Mirror benchmark U·U†: ideal output |0...0>",
    )
)
register_workload(
    WorkloadFamily(
        name="bernstein_vazirani",
        builder=lambda n, rng: bernstein_vazirani(n, measure=True),
        min_width=2,
        max_width=16,
        description="Bernstein-Vazirani oracle (alternating secret string)",
    )
)
register_workload(
    WorkloadFamily(
        name="surface_syndrome",
        builder=lambda n, rng: surface_syndrome(n, measure=True),
        min_width=17,
        max_width=41,
        description=(
            "Rotated d=3 surface-code syndrome extraction "
            "(pure Clifford; widths past the dense cap via the frame engine)"
        ),
    )
)
register_workload(
    WorkloadFamily(
        name="qaoa_ring",
        builder=lambda n, rng: qaoa_ring(n, layers=1, measure=True),
        min_width=3,
        max_width=14,
        description="QAOA MaxCut ansatz on a ring (ZZ cost + RX mixer)",
    )
)
