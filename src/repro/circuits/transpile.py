"""Lightweight transpilation passes.

The MPS backend only applies 1- and 2-qubit gates natively (long-range
2-qubit gates are swap-routed internally), so :func:`decompose_to_2q`
rewrites any wider gate into 1q+2q primitives via cosine-sine-free
recursive blocking.  :func:`merge_single_qubit_runs` is a peephole pass
that fuses adjacent single-qubit gates — the kind of cheap win the paper's
"redundant circuit recompilation" complaint alludes to.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import CircuitError

__all__ = ["merge_single_qubit_runs", "decompose_to_2q", "count_ops"]


def merge_single_qubit_runs(circuit: Circuit) -> Circuit:
    """Fuse consecutive single-qubit gates on the same wire.

    Noise ops and measurements act as barriers on their qubits (a channel
    between two gates must stay between them for trajectory semantics).
    """
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_fused")
    pending: Dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        mat = pending.pop(qubit, None)
        if mat is not None:
            out.gate(Gate("fused", mat, check=False), qubit)

    for op in circuit:
        if isinstance(op, GateOp) and len(op.qubits) == 1:
            q = op.qubits[0]
            acc = pending.get(q)
            pending[q] = op.gate.matrix if acc is None else op.gate.matrix @ acc
        else:
            for q in op.qubits:
                flush(q)
            if isinstance(op, GateOp):
                out.gate(op.gate, *op.qubits)
            elif isinstance(op, NoiseOp):
                out.attach(op.channel, *op.qubits)
            else:
                out.append(MeasureOp(op.qubits, key=op.key))
    for q in list(pending):
        flush(q)
    return out


def decompose_to_2q(circuit: Circuit) -> Circuit:
    """Rewrite k>2 qubit gates into 1q/2q gates.

    Implementation: quantum Shannon-style recursion is overkill here; the
    only wide gate in our libraries is the Toffoli, so we special-case its
    textbook 6-CX decomposition and reject other wide gates explicitly
    (callers should provide 2q-native circuits, as all library workloads
    are).
    """
    from repro.circuits.gates import CX, H, T, TDG

    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_2q")
    for op in circuit:
        if isinstance(op, GateOp) and len(op.qubits) > 2:
            if op.gate.name != "ccx":
                raise CircuitError(
                    f"cannot decompose {len(op.qubits)}-qubit gate {op.gate.name!r};"
                    " only ccx is supported"
                )
            a, b, c = op.qubits
            out.h(c)
            out.cx(b, c)
            out.tdg(c)
            out.cx(a, c)
            out.t(c)
            out.cx(b, c)
            out.tdg(c)
            out.cx(a, c)
            out.t(b)
            out.t(c)
            out.h(c)
            out.cx(a, b)
            out.t(a)
            out.tdg(b)
            out.cx(a, b)
        elif isinstance(op, GateOp):
            out.gate(op.gate, *op.qubits)
        elif isinstance(op, NoiseOp):
            out.attach(op.channel, *op.qubits)
        else:
            out.append(MeasureOp(op.qubits, key=op.key))
    return out


def count_ops(circuit: Circuit) -> Dict[str, int]:
    """Histogram of operation names (gates, channels, measurements)."""
    counts: Dict[str, int] = {}
    for op in circuit:
        counts[op.name] = counts.get(op.name, 0) + 1
    return counts
