"""The :class:`Circuit` container.

A circuit is built with a fluent API::

    circ = Circuit(3)
    circ.h(0).cx(0, 1).cx(1, 2)
    circ.attach(depolarizing(0.01), 1)
    circ.measure_all()

and then *frozen* before simulation.  Freezing assigns each
:class:`~repro.circuits.operations.NoiseOp` a stable ``site_id`` — the
identifier that Pre-Trajectory Sampling uses to address stochastic decisions
and that provenance metadata reports.

The container deliberately separates coherent structure from noise:
``circ.coherent_ops`` / ``circ.noise_sites`` views are what the PTS layer
consumes (paper Fig. 2's partitioning of a noisy circuit).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import (
    CX,
    CZ,
    SWAP,
    Gate,
    H,
    RX,
    RY,
    RZ,
    S,
    SDG,
    SX,
    SXDG,
    SY,
    SYDG,
    T,
    TDG,
    X,
    Y,
    Z,
)
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp, Operation
from repro.errors import CircuitError

__all__ = ["Circuit"]


class Circuit:
    """Ordered sequence of operations on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits <= 0:
            raise CircuitError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._ops: List[Operation] = []
        self._frozen = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _check_mutable(self) -> None:
        if self._frozen:
            raise CircuitError("circuit is frozen; copy() it to modify")

    def _check_range(self, qubits: Sequence[int]) -> None:
        for q in qubits:
            if not (0 <= q < self.num_qubits):
                raise CircuitError(f"qubit {q} out of range for {self.num_qubits}-qubit circuit")

    def append(self, op: Operation) -> "Circuit":
        """Append a pre-built operation."""
        self._check_mutable()
        self._check_range(op.qubits)
        self._ops.append(op)
        return self

    def gate(self, gate: Gate, *qubits: int) -> "Circuit":
        """Append ``gate`` on ``qubits``."""
        return self.append(GateOp(gate, tuple(qubits)))

    def attach(self, channel, *qubits: int) -> "Circuit":
        """Attach a noise channel at this point in the circuit."""
        return self.append(NoiseOp(channel, tuple(qubits)))

    def measure(self, *qubits: int, key: str = "m") -> "Circuit":
        """Measure the listed qubits in the computational basis."""
        return self.append(MeasureOp(tuple(qubits), key=key))

    def measure_all(self, key: str = "m") -> "Circuit":
        """Measure every qubit, in index order."""
        return self.measure(*range(self.num_qubits), key=key)

    # Named gate shorthands -------------------------------------------- #
    def i(self, q: int) -> "Circuit":
        from repro.circuits.gates import I

        return self.gate(I, q)

    def x(self, q: int) -> "Circuit":
        return self.gate(X, q)

    def y(self, q: int) -> "Circuit":
        return self.gate(Y, q)

    def z(self, q: int) -> "Circuit":
        return self.gate(Z, q)

    def h(self, q: int) -> "Circuit":
        return self.gate(H, q)

    def s(self, q: int) -> "Circuit":
        return self.gate(S, q)

    def sdg(self, q: int) -> "Circuit":
        return self.gate(SDG, q)

    def t(self, q: int) -> "Circuit":
        return self.gate(T, q)

    def tdg(self, q: int) -> "Circuit":
        return self.gate(TDG, q)

    def sx(self, q: int) -> "Circuit":
        return self.gate(SX, q)

    def sxdg(self, q: int) -> "Circuit":
        return self.gate(SXDG, q)

    def sy(self, q: int) -> "Circuit":
        return self.gate(SY, q)

    def sydg(self, q: int) -> "Circuit":
        return self.gate(SYDG, q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.gate(RX(theta), q)

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.gate(RY(theta), q)

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.gate(RZ(theta), q)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.gate(CX, control, target)

    def cz(self, a: int, b: int) -> "Circuit":
        return self.gate(CZ, a, b)

    def swap(self, a: int, b: int) -> "Circuit":
        return self.gate(SWAP, a, b)

    # ------------------------------------------------------------------ #
    # freezing / views
    # ------------------------------------------------------------------ #
    def freeze(self) -> "Circuit":
        """Assign noise-site ids and make the circuit immutable.

        Idempotent.  Site ids count noise ops in program order, starting
        at 0.
        """
        if self._frozen:
            return self
        site = 0
        for idx, op in enumerate(self._ops):
            if isinstance(op, NoiseOp):
                self._ops[idx] = op.with_site_id(site)
                site += 1
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    def copy(self) -> "Circuit":
        """Mutable deep-enough copy (operations are immutable, list is new)."""
        out = Circuit(self.num_qubits, name=self.name)
        out._ops = [
            op.with_site_id(None) if isinstance(op, NoiseOp) else op for op in self._ops
        ]
        return out

    @property
    def operations(self) -> Tuple[Operation, ...]:
        return tuple(self._ops)

    @property
    def coherent_ops(self) -> Tuple[GateOp, ...]:
        """All gate operations in program order."""
        return tuple(op for op in self._ops if isinstance(op, GateOp))

    @property
    def noise_sites(self) -> Tuple[NoiseOp, ...]:
        """All noise-channel attachment points in program order.

        Requires the circuit to be frozen so ``site_id`` is populated.
        """
        if not self._frozen:
            raise CircuitError("freeze() the circuit before reading noise_sites")
        return tuple(op for op in self._ops if isinstance(op, NoiseOp))

    @property
    def measurements(self) -> Tuple[MeasureOp, ...]:
        return tuple(op for op in self._ops if isinstance(op, MeasureOp))

    @property
    def measured_qubits(self) -> Tuple[int, ...]:
        """Qubits measured, in measurement order (concatenated over ops)."""
        out: List[int] = []
        for m in self.measurements:
            out.extend(m.qubits)
        return tuple(out)

    def num_noise_sites(self) -> int:
        return sum(1 for op in self._ops if isinstance(op, NoiseOp))

    def num_gates(self) -> int:
        return sum(1 for op in self._ops if isinstance(op, GateOp))

    def depth(self) -> int:
        """Depth counting gate + noise ops scheduled greedily into moments."""
        from repro.circuits.moments import schedule_moments

        return len(schedule_moments(self))

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def extend(self, other: "Circuit", qubit_map: Optional[Sequence[int]] = None) -> "Circuit":
        """Append all of ``other``'s operations, optionally remapping qubits.

        ``qubit_map[i]`` is the qubit of *self* that ``other``'s qubit ``i``
        lands on.  Noise site ids are re-assigned at freeze time.
        """
        self._check_mutable()
        if qubit_map is None:
            qubit_map = list(range(other.num_qubits))
        if len(qubit_map) != other.num_qubits:
            raise CircuitError(
                f"qubit_map has {len(qubit_map)} entries for a {other.num_qubits}-qubit circuit"
            )
        self._check_range(qubit_map)
        for op in other._ops:
            mapped = tuple(qubit_map[q] for q in op.qubits)
            if isinstance(op, GateOp):
                self.append(GateOp(op.gate, mapped))
            elif isinstance(op, NoiseOp):
                self.append(NoiseOp(op.channel, mapped))
            else:
                self.append(MeasureOp(mapped, key=op.key))
        return self

    def without_noise(self) -> "Circuit":
        """Copy with every :class:`NoiseOp` removed (the ideal circuit)."""
        out = Circuit(self.num_qubits, name=f"{self.name}_ideal")
        for op in self._ops:
            if not isinstance(op, NoiseOp):
                out.append(op)
        return out

    def without_measurements(self) -> "Circuit":
        """Copy with every :class:`MeasureOp` removed."""
        out = Circuit(self.num_qubits, name=f"{self.name}_nomeas")
        for op in self._ops:
            if not isinstance(op, MeasureOp):
                out.append(op)
        return out

    def unitary(self) -> np.ndarray:
        """Dense unitary of the coherent part (small circuits only)."""
        from repro.linalg.kron import embed_operator

        dim = 2**self.num_qubits
        if self.num_qubits > 12:
            raise CircuitError("unitary() limited to <= 12 qubits")
        u = np.eye(dim, dtype=np.complex128)
        for op in self.coherent_ops:
            u = embed_operator(op.gate.matrix, op.qubits, self.num_qubits) @ u
        return u

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, idx):
        return self._ops[idx]

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, qubits={self.num_qubits}, ops={len(self._ops)}, "
            f"noise_sites={self.num_noise_sites()}, frozen={self._frozen})"
        )
