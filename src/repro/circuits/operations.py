"""Operations: the elements a circuit is made of.

Three kinds, mirroring paper Fig. 2:

* :class:`GateOp` — a deterministic coherent gate (solid green marker);
* :class:`NoiseOp` — a noise-channel attachment point (hollow blue marker):
  the channel is *declared* here and sampled later by the trajectory layer
  or by a PTS algorithm;
* :class:`MeasureOp` — terminal computational-basis measurement of a subset
  of qubits (the "shot" data of the paper).

Every operation records the qubits it touches; :class:`NoiseOp` instances
additionally get a stable ``site_id`` when the circuit is frozen, which is
the key used by provenance metadata (paper's "error providence" tags).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.circuits.gates import Gate
from repro.errors import CircuitError

__all__ = ["Operation", "GateOp", "NoiseOp", "MeasureOp"]


def _check_qubits(qubits: Tuple[int, ...]) -> None:
    if len(qubits) == 0:
        raise CircuitError("operation must act on at least one qubit")
    if len(set(qubits)) != len(qubits):
        raise CircuitError(f"duplicate qubits in operation: {qubits}")
    if any(q < 0 for q in qubits):
        raise CircuitError(f"negative qubit index in {qubits}")


@dataclass(frozen=True)
class GateOp:
    """A coherent gate applied to specific qubits."""

    gate: Gate
    qubits: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(self.qubits))
        _check_qubits(self.qubits)
        if len(self.qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} acts on {self.gate.num_qubits} qubit(s), got targets {self.qubits}"
            )

    @property
    def name(self) -> str:
        return self.gate.name

    def __repr__(self) -> str:
        return f"GateOp({self.gate.name}, qubits={self.qubits})"


@dataclass(frozen=True)
class NoiseOp:
    """A noise-channel attachment point.

    ``channel`` is a :class:`repro.channels.kraus.KrausChannel`; typed as
    ``object`` here to avoid a circular import (validated in ``__post_init__``
    by duck-typing on ``num_qubits``).

    ``site_id`` is assigned by :meth:`repro.circuits.circuit.Circuit.freeze`
    and uniquely identifies this stochastic site within the circuit —
    PTS provenance metadata and trajectory specs both key on it.
    """

    channel: object
    qubits: Tuple[int, ...]
    site_id: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(self.qubits))
        _check_qubits(self.qubits)
        arity = getattr(self.channel, "num_qubits", None)
        if arity is None:
            raise CircuitError("NoiseOp.channel must expose .num_qubits")
        if arity != len(self.qubits):
            raise CircuitError(
                f"channel acts on {arity} qubit(s), got targets {self.qubits}"
            )

    @property
    def name(self) -> str:
        return getattr(self.channel, "name", "noise")

    def with_site_id(self, site_id: int) -> "NoiseOp":
        return NoiseOp(self.channel, self.qubits, site_id)

    def __repr__(self) -> str:
        return f"NoiseOp({self.name}, qubits={self.qubits}, site={self.site_id})"


@dataclass(frozen=True)
class MeasureOp:
    """Computational-basis measurement of ``qubits`` (in listed order)."""

    qubits: Tuple[int, ...]
    key: str = "m"

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(self.qubits))
        _check_qubits(self.qubits)

    @property
    def name(self) -> str:
        return f"measure[{self.key}]"

    def __repr__(self) -> str:
        return f"MeasureOp(qubits={self.qubits}, key={self.key!r})"


Operation = Union[GateOp, NoiseOp, MeasureOp]
