"""Greedy scheduling of operations into parallel moments.

Used by the compatibility checks of Pre-Trajectory Sampling (two sampled
Kraus operators are *incompatible* when they would act on the same qubit at
the same time — paper Algorithm 2's ``compatible`` function keys on the
moment structure) and by the device performance model (circuit depth drives
the prep-time estimate).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.operations import Operation

__all__ = ["schedule_moments", "moment_index_of_ops"]


def schedule_moments(circuit: Circuit) -> List[List[Operation]]:
    """Pack operations into moments with the as-soon-as-possible heuristic.

    An operation lands in the earliest moment after every earlier operation
    that shares a qubit with it.  Program order is preserved within the
    returned structure.
    """
    frontier: Dict[int, int] = {}  # qubit -> first free moment index
    moments: List[List[Operation]] = []
    for op in circuit:
        at = max((frontier.get(q, 0) for q in op.qubits), default=0)
        while len(moments) <= at:
            moments.append([])
        moments[at].append(op)
        for q in op.qubits:
            frontier[q] = at + 1
    return moments


def moment_index_of_ops(circuit: Circuit) -> Dict[int, int]:
    """Map each operation's program-order index to its moment index."""
    frontier: Dict[int, int] = {}
    out: Dict[int, int] = {}
    for idx, op in enumerate(circuit):
        at = max((frontier.get(q, 0) for q in op.qubits), default=0)
        out[idx] = at
        for q in op.qubits:
            frontier[q] = at + 1
    return out
