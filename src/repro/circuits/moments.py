"""Greedy scheduling of operations into parallel moments and fusion windows.

Moments are used by the compatibility checks of Pre-Trajectory Sampling
(two sampled Kraus operators are *incompatible* when they would act on the
same qubit at the same time — paper Algorithm 2's ``compatible`` function
keys on the moment structure) and by the device performance model (circuit
depth drives the prep-time estimate).

Fusion windows (:func:`schedule_fusion_windows`) are the scheduling half
of the gate/noise fusion pipeline: operations are greedily clustered into
bounded-support groups that the plan compiler
(:mod:`repro.execution.plan`) turns into single fused matrices via
:mod:`repro.linalg.fusion`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.operations import MeasureOp, Operation

__all__ = ["schedule_moments", "moment_index_of_ops", "schedule_fusion_windows"]


def schedule_moments(circuit: Circuit) -> List[List[Operation]]:
    """Pack operations into moments with the as-soon-as-possible heuristic.

    An operation lands in the earliest moment after every earlier operation
    that shares a qubit with it.  Program order is preserved within the
    returned structure.
    """
    frontier: Dict[int, int] = {}  # qubit -> first free moment index
    moments: List[List[Operation]] = []
    for op in circuit:
        at = max((frontier.get(q, 0) for q in op.qubits), default=0)
        while len(moments) <= at:
            moments.append([])
        moments[at].append(op)
        for q in op.qubits:
            frontier[q] = at + 1
    return moments


class _OpenWindow:
    """One growing fusion window: its qubit support and member operations."""

    __slots__ = ("support", "ops", "seq")

    def __init__(self, support: Set[int], ops: List[Operation], seq: int):
        self.support = support
        self.ops = ops
        self.seq = seq


def schedule_fusion_windows(
    circuit: Circuit, max_qubits: int
) -> List[List[Operation]]:
    """Greedily cluster gate/noise ops into windows of bounded support.

    Returns windows in a valid emission order; each window is a list of
    operations in program order whose combined qubit support has at most
    ``max_qubits`` qubits (an operation wider than the cap becomes its own
    window — it runs unfused).  ``max_qubits`` is the *resolved* window
    cap: the plan compiler passes
    :meth:`repro.config.Config.resolved_fusion_max_qubits`, i.e. an
    explicitly configured ``fusion_max_qubits`` or the width-aware
    auto-cap (3 below 12 qubits, 4 at and above — wider windows mean
    fewer windows, hence fewer renormalization sweeps, which wins on wide
    circuits).  :class:`MeasureOp`s are omitted: the
    backends defer measurement to terminal bulk sampling.

    The invariant that makes the reordering sound: *concurrently open
    windows have pairwise disjoint supports*.  An operation lands in the
    open window(s) it shares qubits with — merging them when the combined
    support fits the cap, flushing them when it does not — so any two
    operations whose order is exchanged between program order and emission
    order act on disjoint qubits and therefore commute.  Per qubit,
    program order is preserved exactly.
    """
    if max_qubits < 1:
        raise ValueError(f"max_qubits must be >= 1, got {max_qubits}")
    emitted: List[List[Operation]] = []
    open_windows: List[_OpenWindow] = []
    seq = 0

    def flush(windows: List[_OpenWindow]) -> None:
        for w in sorted(windows, key=lambda w: w.seq):
            emitted.append(w.ops)
            open_windows.remove(w)

    for op in circuit:
        if isinstance(op, MeasureOp):
            continue
        qubits = set(op.qubits)
        overlapping = [w for w in open_windows if w.support & qubits]
        merged_support = set(qubits)
        for w in overlapping:
            merged_support |= w.support
        if len(merged_support) <= max_qubits:
            if overlapping:
                overlapping.sort(key=lambda w: w.seq)
                target = overlapping[0]
                for w in overlapping[1:]:
                    # Disjoint supports: concatenating in creation order is
                    # a valid interleaving of the merged windows' ops.
                    target.ops.extend(w.ops)
                    target.support |= w.support
                    open_windows.remove(w)
                target.ops.append(op)
                target.support = merged_support
            else:
                open_windows.append(_OpenWindow(qubits, [op], seq))
                seq += 1
        else:
            flush(overlapping)
            if len(qubits) <= max_qubits:
                open_windows.append(_OpenWindow(qubits, [op], seq))
                seq += 1
            else:
                emitted.append([op])  # wider than the cap: runs unfused
    flush(list(open_windows))
    return emitted


def moment_index_of_ops(circuit: Circuit) -> Dict[int, int]:
    """Map each operation's program-order index to its moment index."""
    frontier: Dict[int, int] = {}
    out: Dict[int, int] = {}
    for idx, op in enumerate(circuit):
        at = max((frontier.get(q, 0) for q in op.qubits), default=0)
        out[idx] = at
        for q in op.qubits:
            frontier[q] = at + 1
    return out
