"""Gate definitions and the standard gate library.

Includes everything the paper's workloads need: the Pauli family, Clifford
generators (H, S, CX, CZ, SWAP), the T gate for universality, rotation
gates, and the square-root Paulis ``sqrt(X)``/``sqrt(Y)`` (and adjoints)
that appear in the compiled 5->1 magic-state-distillation circuit of paper
Fig. 3.

A :class:`Gate` is immutable: a name, a unitary matrix, and an arity.
Parameterized gates (``RX`` etc.) are factory functions returning fresh
:class:`Gate` instances with the parameter recorded for provenance.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.config import ATOL
from repro.errors import GateError

__all__ = [
    "Gate",
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "SXDG",
    "SY",
    "SYDG",
    "CX",
    "CNOT",
    "CZ",
    "SWAP",
    "CCX",
    "RX",
    "RY",
    "RZ",
    "U3",
    "gate_by_name",
    "controlled",
]


class Gate:
    """An immutable unitary gate.

    Parameters
    ----------
    name:
        Human-readable identifier (used by noise models to bind channels).
    matrix:
        Unitary matrix of shape ``(2**k, 2**k)``.
    params:
        Optional tuple of real parameters (for rotation gates).
    check:
        Verify unitarity on construction (disable only for speed-critical
        trusted callers).
    """

    __slots__ = ("name", "matrix", "num_qubits", "params")

    def __init__(
        self,
        name: str,
        matrix: np.ndarray,
        params: Tuple[float, ...] = (),
        check: bool = True,
    ):
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise GateError(f"gate {name!r}: matrix must be square, got {matrix.shape}")
        dim = matrix.shape[0]
        k = int(round(math.log2(dim)))
        if 2**k != dim:
            raise GateError(f"gate {name!r}: dimension {dim} is not a power of two")
        if check and not np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-8):
            raise GateError(f"gate {name!r}: matrix is not unitary")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "num_qubits", k)
        object.__setattr__(self, "params", tuple(params))

    def __setattr__(self, key, value):  # immutability
        raise AttributeError("Gate is immutable")

    def __reduce__(self):
        # __slots__ plus the blocked __setattr__ defeat default pickling;
        # rebuild through the constructor (skipping the unitarity check).
        return (Gate, (self.name, self.matrix, self.params, False))

    @property
    def dim(self) -> int:
        return self.matrix.shape[0]

    def adjoint(self) -> "Gate":
        """Return the adjoint (inverse) gate."""
        name = self.name[:-2] if self.name.endswith("dg") else self.name + "dg"
        return Gate(name, self.matrix.conj().T, self.params, check=False)

    def power(self, exponent: float) -> "Gate":
        """Matrix power via eigendecomposition (gate is unitary → normal)."""
        vals, vecs = np.linalg.eig(self.matrix)
        powered = (vecs * vals**exponent) @ np.linalg.inv(vecs)
        return Gate(f"{self.name}^{exponent:g}", powered, self.params, check=False)

    def is_clifford(self) -> bool:
        """True when the gate maps Pauli strings to Pauli strings.

        Checked numerically by conjugating each single-qubit Pauli on each
        wire and testing whether the image is ±/±i a Pauli string.
        """
        from repro.channels.pauli import pauli_string_matrix, all_pauli_labels

        k = self.num_qubits
        for label in all_pauli_labels(k):
            if label == "I" * k:
                continue
            p = pauli_string_matrix(label)
            image = self.matrix @ p @ self.matrix.conj().T
            if not _is_scaled_pauli(image, k):
                return False
        return True

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Gate)
            and self.name == other.name
            and self.params == other.params
            and self.matrix.shape == other.matrix.shape
            and bool(np.allclose(self.matrix, other.matrix, atol=ATOL))
        )

    def __hash__(self) -> int:
        return hash((self.name, self.params, self.num_qubits))

    def __repr__(self) -> str:
        if self.params:
            return f"Gate({self.name}, params={self.params})"
        return f"Gate({self.name})"


def _is_scaled_pauli(matrix: np.ndarray, k: int) -> bool:
    from repro.channels.pauli import pauli_string_matrix, all_pauli_labels

    for label in all_pauli_labels(k):
        p = pauli_string_matrix(label)
        # overlap = tr(P^dag M)/2^k; M is a scaled Pauli iff |overlap| == 1
        # and all other overlaps vanish.  Testing closeness of M to c*P.
        overlap = np.trace(p.conj().T @ matrix) / 2**k
        if abs(abs(overlap) - 1.0) < 1e-8 and np.allclose(matrix, overlap * p, atol=1e-8):
            return True
    return False


_SQ2 = 1.0 / math.sqrt(2.0)

I = Gate("i", np.eye(2), check=False)
X = Gate("x", np.array([[0, 1], [1, 0]]), check=False)
Y = Gate("y", np.array([[0, -1j], [1j, 0]]), check=False)
Z = Gate("z", np.array([[1, 0], [0, -1]]), check=False)
H = Gate("h", np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]]), check=False)
S = Gate("s", np.array([[1, 0], [0, 1j]]), check=False)
SDG = Gate("sdg", np.array([[1, 0], [0, -1j]]), check=False)
T = Gate("t", np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]]), check=False)
TDG = Gate("tdg", np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]]), check=False)

#: sqrt(X): squares to X.  Appears throughout the compiled MSD circuit.
SX = Gate("sx", 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]), check=False)
SXDG = Gate("sxdg", 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]]), check=False)
#: sqrt(Y): squares to Y.
SY = Gate("sy", 0.5 * np.array([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]]), check=False)
SYDG = Gate("sydg", 0.5 * np.array([[1 - 1j, 1 - 1j], [-1 + 1j, 1 - 1j]]), check=False)

CX = Gate(
    "cx",
    np.array(
        [
            [1, 0, 0, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
        ]
    ),
    check=False,
)
CNOT = CX
CZ = Gate("cz", np.diag([1, 1, 1, -1]).astype(complex), check=False)
SWAP = Gate(
    "swap",
    np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ]
    ),
    check=False,
)
CCX = Gate("ccx", np.eye(8)[:, [0, 1, 2, 3, 4, 5, 7, 6]].astype(complex), check=False)


def RX(theta: float) -> Gate:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("rx", np.array([[c, -1j * s], [-1j * s, c]]), params=(theta,), check=False)


def RY(theta: float) -> Gate:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return Gate("ry", np.array([[c, -s], [s, c]]), params=(theta,), check=False)


def RZ(theta: float) -> Gate:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    phase = np.exp(-0.5j * theta)
    return Gate("rz", np.diag([phase, phase.conjugate()]), params=(theta,), check=False)


def U3(theta: float, phi: float, lam: float) -> Gate:
    """General single-qubit unitary (OpenQASM u3 convention)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    mat = np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ]
    )
    return Gate("u3", mat, params=(theta, phi, lam), check=False)


def controlled(gate: Gate, num_controls: int = 1) -> Gate:
    """Build a controlled version of ``gate`` (controls are the top wires)."""
    if num_controls < 1:
        raise GateError("num_controls must be >= 1")
    dim = gate.dim
    total = dim * 2**num_controls
    mat = np.eye(total, dtype=np.complex128)
    mat[total - dim :, total - dim :] = gate.matrix
    return Gate("c" * num_controls + gate.name, mat, gate.params, check=False)


_FIXED: Dict[str, Gate] = {
    g.name: g
    for g in (I, X, Y, Z, H, S, SDG, T, TDG, SX, SXDG, SY, SYDG, CX, CZ, SWAP, CCX)
}
_PARAMETRIC: Dict[str, Callable[..., Gate]] = {"rx": RX, "ry": RY, "rz": RZ, "u3": U3}


def gate_by_name(name: str, *params: float) -> Gate:
    """Look up a gate from the standard library by name.

    Fixed gates take no parameters; ``rx/ry/rz/u3`` require them.
    """
    lname = name.lower()
    if lname in _FIXED:
        if params:
            raise GateError(f"gate {name!r} takes no parameters")
        return _FIXED[lname]
    if lname in _PARAMETRIC:
        return _PARAMETRIC[lname](*params)
    raise GateError(f"unknown gate {name!r}")
