"""Quantum circuit intermediate representation.

A :class:`~repro.circuits.circuit.Circuit` is an ordered list of
:class:`~repro.circuits.operations.Operation` objects — coherent gates
(solid green markers of paper Fig. 2) and noise-channel attachment points
(hollow blue markers).  Noise is *not* sampled here; the circuit only
declares where channels act.  Sampling is the job of
:mod:`repro.trajectory` (conventional Algorithm 1) or :mod:`repro.pts`
(Pre-Trajectory Sampling).
"""

from repro.circuits.gates import (
    Gate,
    CNOT,
    CX,
    CZ,
    H,
    I,
    RX,
    RY,
    RZ,
    S,
    SDG,
    SWAP,
    SX,
    SXDG,
    SY,
    SYDG,
    T,
    TDG,
    X,
    Y,
    Z,
    gate_by_name,
)
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp, Operation
from repro.circuits.circuit import Circuit
from repro.circuits.moments import schedule_moments
from repro.circuits import library

__all__ = [
    "Gate",
    "Circuit",
    "Operation",
    "GateOp",
    "NoiseOp",
    "MeasureOp",
    "schedule_moments",
    "library",
    "gate_by_name",
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "SXDG",
    "SY",
    "SYDG",
    "RX",
    "RY",
    "RZ",
    "CX",
    "CNOT",
    "CZ",
    "SWAP",
]
