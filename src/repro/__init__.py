"""repro — Pre-Trajectory Sampling with Batched Execution (PTSBE).

A from-scratch reproduction of "Augmenting Simulated Noisy Quantum Data
Collection by Orders of Magnitude Using Pre-Trajectory Sampling with
Batched Execution" (SC '25): noisy quantum trajectory simulation where the
stochastic Kraus-operator decisions are sampled *before* state evolution
(PTS) and every prepared noisy state is bulk-sampled for its full shot
budget (BE), with error-provenance metadata on every shot.

Quick start::

    from repro import (
        Circuit, NoiseModel, depolarizing,
        ProbabilisticPTS, run_ptsbe,
    )

    ideal = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
    noise = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.01))
    noisy = noise.apply(ideal).freeze()

    result = run_ptsbe(noisy, ProbabilisticPTS(nsamples=200, nshots=10_000), seed=7)
    table = result.shot_table()          # shots + per-shot trajectory ids
    labels = result.records              # Kraus-level error provenance
"""

from repro._version import __version__
from repro.config import Config, DEFAULT_CONFIG, configure
from repro.errors import (
    BackendError,
    CapacityError,
    ChannelError,
    CircuitError,
    DataError,
    DeviceError,
    ExecutionError,
    FaultError,
    GateError,
    NoiseModelError,
    QECError,
    ReproError,
    SamplingError,
    WorkerCrashError,
)
from repro.rng import StreamFactory, make_rng, trajectory_rng
from repro.faults import FaultPlan, FaultSpec, RecoveryEvent, RetryPolicy

from repro.circuits import Circuit, Gate, library
from repro.channels import (
    KrausChannel,
    NoiseModel,
    PauliString,
    amplitude_damping,
    bit_flip,
    depolarizing,
    pauli_channel,
    phase_damping,
    phase_flip,
    two_qubit_depolarizing,
)
from repro.backends import (
    BatchedStatevectorBackend,
    DensityMatrixBackend,
    MPSBackend,
    StabilizerBackend,
    StatevectorBackend,
)
from repro.trajectory import TrajectorySimulator, TrajectoryRecord, KrausEvent
from repro.pts import (
    ExhaustivePTS,
    ProbabilisticPTS,
    ProbabilityBandPTS,
    ProportionalPTS,
    PTSResult,
    TopKPTS,
    TrajectorySpec,
)
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ParallelExecutor,
    PTSBEResult,
    ShardedExecutor,
    ShotChunk,
    ShotTable,
    StreamedResult,
    VectorizedExecutor,
    run_ptsbe,
    run_ptsbe_stream,
)

__all__ = [
    "__version__",
    "Config",
    "DEFAULT_CONFIG",
    "configure",
    "StreamFactory",
    "make_rng",
    "trajectory_rng",
    # errors
    "ReproError",
    "CircuitError",
    "GateError",
    "ChannelError",
    "NoiseModelError",
    "BackendError",
    "CapacityError",
    "SamplingError",
    "ExecutionError",
    "WorkerCrashError",
    "FaultError",
    "DeviceError",
    "QECError",
    "DataError",
    # fault tolerance
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "RecoveryEvent",
    # circuits / channels
    "Circuit",
    "Gate",
    "library",
    "KrausChannel",
    "NoiseModel",
    "PauliString",
    "depolarizing",
    "two_qubit_depolarizing",
    "bit_flip",
    "phase_flip",
    "pauli_channel",
    "amplitude_damping",
    "phase_damping",
    # backends
    "StatevectorBackend",
    "BatchedStatevectorBackend",
    "DensityMatrixBackend",
    "MPSBackend",
    "StabilizerBackend",
    # trajectory + PTS + execution
    "TrajectorySimulator",
    "TrajectoryRecord",
    "KrausEvent",
    "ProbabilisticPTS",
    "ProportionalPTS",
    "ProbabilityBandPTS",
    "ExhaustivePTS",
    "TopKPTS",
    "PTSResult",
    "TrajectorySpec",
    "BackendSpec",
    "BatchedExecutor",
    "ParallelExecutor",
    "VectorizedExecutor",
    "ShardedExecutor",
    "PTSBEResult",
    "ShotTable",
    "ShotChunk",
    "StreamedResult",
    "run_ptsbe",
    "run_ptsbe_stream",
]
