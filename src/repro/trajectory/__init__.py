"""Conventional quantum-trajectory simulation (the paper's baseline).

:mod:`repro.trajectory.baseline` implements paper Algorithm 1 — the
interleaved gate-application / per-site noise-sampling loop of the
traditional CUDA-Q trajectory simulator, including its one pre-existing
optimization (the unitary-mixture fast path, cached by
:mod:`repro.trajectory.unitary_cache`).  Its three limitations (redundant
state preparation per shot, single-shot collection, no error provenance)
are precisely what PTSBE removes.

:mod:`repro.trajectory.events` defines the provenance records shared by
the baseline and PTSBE layers.
"""

from repro.trajectory.events import KrausEvent, TrajectoryRecord
from repro.trajectory.baseline import TrajectorySimulator
from repro.trajectory.unitary_cache import ChannelAnalysisCache

__all__ = [
    "KrausEvent",
    "TrajectoryRecord",
    "TrajectorySimulator",
    "ChannelAnalysisCache",
]
