"""Channel-analysis cache (CUDA-Q's unitary-mixture detection, feature #2).

Detecting ``K_i = sqrt(p_i) U_i`` costs a few small matrix products per
channel; done naively it would be repeated at *every noise site of every
trajectory* (paper Algorithm 1 runs the lookup inside the hot loop).  The
cache keys on channel object identity, so the analysis runs once per
distinct channel per process — the paper's "unitary-channel detection for
probability caching".
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.channels.kraus import KrausChannel
from repro.channels.unitary_mixture import UnitaryMixture, as_unitary_mixture

__all__ = ["ChannelAnalysisCache"]


class ChannelAnalysisCache:
    """Memoized unitary-mixture analysis + cumulative probability tables."""

    def __init__(self):
        self._mixtures: Dict[int, Optional[UnitaryMixture]] = {}
        self._cumprobs: Dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def mixture(self, channel: KrausChannel) -> Optional[UnitaryMixture]:
        """Cached :func:`as_unitary_mixture` result (None if general Kraus)."""
        key = id(channel)
        if key in self._mixtures:
            self.hits += 1
            return self._mixtures[key]
        self.misses += 1
        result = as_unitary_mixture(channel)
        self._mixtures[key] = result
        return result

    def cumulative_probs(self, channel: KrausChannel) -> np.ndarray:
        """Cached cumulative nominal-probability table for branch lookup."""
        key = id(channel)
        table = self._cumprobs.get(key)
        if table is None:
            table = np.cumsum(np.asarray(channel.nominal_probs, dtype=np.float64))
            table[-1] = 1.0
            self._cumprobs[key] = table
        return table

    def branch_index(self, channel: KrausChannel, r: float) -> int:
        """Map a uniform draw to a branch index (Algorithm 1's ``index(r, {p_i})``)."""
        return int(np.searchsorted(self.cumulative_probs(channel), r, side="right"))

    def clear(self) -> None:
        self._mixtures.clear()
        self._cumprobs.clear()
        self.hits = 0
        self.misses = 0
