"""Channel-analysis caches (CUDA-Q's unitary-mixture detection, feature #2).

Detecting ``K_i = sqrt(p_i) U_i`` costs a few small matrix products per
channel; done naively it would be repeated at *every noise site of every
trajectory* (paper Algorithm 1 runs the lookup inside the hot loop).  The
:class:`ChannelAnalysisCache` keys on channel object identity, so the
analysis runs once per distinct channel per process — the paper's
"unitary-channel detection for probability caching".

:class:`KernelVariantCache` applies the same memoization discipline to the
fusion compilation pipeline (:mod:`repro.execution.plan`): a fused noise
window has one compiled kernel per realized Kraus-index combination, and
the cache guarantees that the B trajectories of a stack (and every stack
chunk after the first) pay each combination's small-matrix fusion product
exactly once.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

import numpy as np

from repro.channels.kraus import KrausChannel
from repro.channels.unitary_mixture import UnitaryMixture, as_unitary_mixture

__all__ = ["ChannelAnalysisCache", "KernelVariantCache"]


class KernelVariantCache:
    """Memoized keyed storage with hit/miss counters.

    The fusion plan's per-window compiled variants live here (key:
    ``(step_index, kraus_index_tuple)`` → compiled operator), but the
    cache is value-agnostic — same shape as :class:`ChannelAnalysisCache`,
    generalized to caller-chosen keys.
    """

    def __init__(self):
        self._store: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = builder()
            self._store[key] = value
            return value
        self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


class ChannelAnalysisCache:
    """Memoized unitary-mixture analysis + cumulative probability tables."""

    def __init__(self):
        self._mixtures: Dict[int, Optional[UnitaryMixture]] = {}
        self._cumprobs: Dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def mixture(self, channel: KrausChannel) -> Optional[UnitaryMixture]:
        """Cached :func:`as_unitary_mixture` result (None if general Kraus)."""
        key = id(channel)
        if key in self._mixtures:
            self.hits += 1
            return self._mixtures[key]
        self.misses += 1
        result = as_unitary_mixture(channel)
        self._mixtures[key] = result
        return result

    def cumulative_probs(self, channel: KrausChannel) -> np.ndarray:
        """Cached cumulative nominal-probability table for branch lookup."""
        key = id(channel)
        table = self._cumprobs.get(key)
        if table is None:
            table = np.cumsum(np.asarray(channel.nominal_probs, dtype=np.float64))
            table[-1] = 1.0
            self._cumprobs[key] = table
        return table

    def branch_index(self, channel: KrausChannel, r: float) -> int:
        """Map a uniform draw to a branch index (Algorithm 1's ``index(r, {p_i})``)."""
        return int(np.searchsorted(self.cumulative_probs(channel), r, side="right"))

    def clear(self) -> None:
        self._mixtures.clear()
        self._cumprobs.clear()
        self.hits = 0
        self.misses = 0
