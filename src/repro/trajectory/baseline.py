"""Conventional trajectory simulation — paper Algorithm 1, faithfully.

For every shot requested, the simulator walks the circuit once more:
applies the gate, looks up the noise channel, draws a uniform ``r``, and
either indexes the precomputed probability table (unitary-mixture fast
path) or computes the state-dependent branch probabilities
``<psi|K_i^dag K_i|psi>`` (general path) before applying the renormalized
Kraus operator.  At the end it collects a *single shot* and throws the
state away.

These are exactly the three inefficiencies PTSBE removes: (1) redundant
state preparation per shot, (2) single-shot collection, (3) no error
metadata — although for fairness our implementation *can* record the
events it sampled (``record_events=True``), since the speed comparison
should not be confounded by bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import PureStateBackend, validate_deferred_measurement
from repro.circuits.circuit import Circuit
from repro.circuits.operations import GateOp, MeasureOp, NoiseOp
from repro.errors import ExecutionError
from repro.rng import StreamFactory
from repro.trajectory.events import KrausEvent, TrajectoryRecord
from repro.trajectory.unitary_cache import ChannelAnalysisCache

__all__ = ["TrajectorySimulator", "TrajectoryShotResult"]


@dataclass
class TrajectoryShotResult:
    """Output of a conventional trajectory run."""

    bits: np.ndarray  # (num_shots, num_measured) uint8
    records: List[TrajectoryRecord]
    state_preparations: int

    @property
    def num_shots(self) -> int:
        return int(self.bits.shape[0])


class TrajectorySimulator:
    """Algorithm-1 style noisy trajectory simulation on any pure-state backend."""

    def __init__(
        self,
        backend_factory: Callable[[], PureStateBackend],
        record_events: bool = False,
    ):
        self.backend_factory = backend_factory
        self.record_events = record_events
        self.cache = ChannelAnalysisCache()

    # ------------------------------------------------------------------ #
    def run_single_trajectory(
        self,
        circuit: Circuit,
        rng: np.random.Generator,
        backend: Optional[PureStateBackend] = None,
        trajectory_id: int = 0,
    ) -> Tuple[PureStateBackend, TrajectoryRecord]:
        """Propagate one noisy trajectory; returns the prepared backend.

        This is Algorithm 1's inner loop: gates applied in order, noise
        sites sampled in-line (fast path for unitary mixtures, expectation
        computation for general channels).
        """
        if not circuit.frozen:
            raise ExecutionError("run_single_trajectory requires a frozen circuit")
        validate_deferred_measurement(circuit)
        backend = backend if backend is not None else self.backend_factory()
        backend.reset()
        events: List[KrausEvent] = []
        joint_p = 1.0
        for op in circuit:
            if isinstance(op, GateOp):
                backend.apply_gate(op.gate, op.qubits)
            elif isinstance(op, NoiseOp):
                channel = op.channel
                r = float(rng.random())
                mixture = self.cache.mixture(channel)
                if mixture is not None:
                    # Unitary-mixture branch: state-independent probabilities.
                    k = self.cache.branch_index(channel, r)
                    backend.apply_matrix(mixture.unitaries[k], op.qubits)
                    branch_p = mixture.probs[k]
                else:
                    # General branch: p_i = <psi|K_i^dag K_i|psi>.
                    probs = backend.branch_probabilities(channel, op.qubits)
                    cum = np.cumsum(probs)
                    cum[-1] = 1.0
                    k = int(np.searchsorted(cum, r, side="right"))
                    backend.apply_channel_choice(channel, op.qubits, k)
                    branch_p = float(probs[k])
                joint_p *= branch_p
                if self.record_events and k != channel.dominant_index():
                    events.append(
                        KrausEvent(
                            site_id=op.site_id,
                            kraus_index=k,
                            qubits=op.qubits,
                            channel_name=channel.name,
                            probability=branch_p,
                        )
                    )
        record = TrajectoryRecord(
            trajectory_id=trajectory_id,
            events=tuple(events),
            nominal_probability=joint_p,
        )
        return backend, record

    # ------------------------------------------------------------------ #
    def sample(
        self,
        circuit: Circuit,
        num_shots: int,
        seed: Optional[int] = None,
        shots_per_trajectory: int = 1,
    ) -> TrajectoryShotResult:
        """Collect ``num_shots`` shots the conventional way.

        ``shots_per_trajectory=1`` is the paper's baseline (one full state
        preparation per shot).  Values > 1 interpolate toward batched
        execution and are used by the ablation benchmarks.
        """
        if num_shots < 0:
            raise ExecutionError("num_shots must be >= 0")
        circuit.freeze()
        measured = list(circuit.measured_qubits)
        if not measured:
            raise ExecutionError("circuit has no measurements to sample")
        streams = StreamFactory(seed)
        backend = self.backend_factory()
        chunks: List[np.ndarray] = []
        records: List[TrajectoryRecord] = []
        preparations = 0
        collected = 0
        trajectory_id = 0
        while collected < num_shots:
            rng = streams.rng_for(trajectory_id)
            backend, record = self.run_single_trajectory(
                circuit, rng, backend=backend, trajectory_id=trajectory_id
            )
            preparations += 1
            take = min(shots_per_trajectory, num_shots - collected)
            chunks.append(backend.sample(take, measured, rng))
            if self.record_events:
                records.append(record)
            collected += take
            trajectory_id += 1
        bits = (
            np.concatenate(chunks, axis=0)
            if chunks
            else np.empty((0, len(measured)), dtype=np.uint8)
        )
        return TrajectoryShotResult(bits=bits, records=records, state_preparations=preparations)
