"""Error-provenance records ("error providence" in the paper's wording).

A :class:`KrausEvent` says *which* Kraus operator fired at *which* noise
site, on which qubits, with what nominal probability.  A
:class:`TrajectoryRecord` is the full per-trajectory metadata tag: the
ordered tuple of events plus the joint nominal probability.  These are the
"lightweight metadata tags attached to each trajectory" of the paper's
contribution list — the thing conventional trajectory simulation discards
and PTSBE keeps (e.g. as supervised-learning labels for AI decoders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["KrausEvent", "TrajectoryRecord"]


@dataclass(frozen=True, order=True)
class KrausEvent:
    """One stochastic decision: Kraus operator ``kraus_index`` fired at
    noise site ``site_id``.

    Attributes
    ----------
    site_id:
        The circuit-wide noise-site identifier (program order).
    kraus_index:
        Which operator of the site's channel fired.
    qubits:
        Qubits the channel acts on.
    channel_name:
        Channel identifier, for human-readable labels.
    probability:
        Nominal probability of this branch (exact for unitary mixtures).
    """

    site_id: int
    kraus_index: int
    qubits: Tuple[int, ...] = ()
    channel_name: str = ""
    probability: float = 1.0

    def is_error(self, dominant_index: int = 0) -> bool:
        """True when this branch deviates from the channel's dominant op."""
        return self.kraus_index != dominant_index

    def label(self) -> str:
        """Compact human-readable tag, e.g. ``"site3:k2@(0,1)"``."""
        qubits = ",".join(map(str, self.qubits))
        return f"site{self.site_id}:k{self.kraus_index}@({qubits})"


@dataclass(frozen=True)
class TrajectoryRecord:
    """Full provenance for one trajectory (one prepared noisy state).

    ``choices`` maps every *deviating* noise site to its Kraus index; sites
    not present used their dominant ("no error") operator.  ``events``
    spells the deviations out with channel context.
    """

    trajectory_id: int
    events: Tuple[KrausEvent, ...]
    nominal_probability: float = 1.0
    weight: float = 1.0

    @property
    def choices(self) -> Dict[int, int]:
        """site_id -> kraus_index map (deviating sites only)."""
        return {e.site_id: e.kraus_index for e in self.events}

    def num_errors(self) -> int:
        return len(self.events)

    def signature(self) -> Tuple[Tuple[int, int], ...]:
        """Canonical hashable identity of the error combination.

        Sorted (site, kraus) pairs — the key used by ``uniqueKraus``-style
        deduplication in PTS algorithms.
        """
        return tuple(sorted((e.site_id, e.kraus_index) for e in self.events))

    def label(self) -> str:
        if not self.events:
            return "ideal"
        return "|".join(e.label() for e in self.events)

    def __repr__(self) -> str:
        return (
            f"TrajectoryRecord(id={self.trajectory_id}, errors={self.num_errors()}, "
            f"p={self.nominal_probability:.3e})"
        )
