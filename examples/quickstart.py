"""Quickstart: the PTSBE pipeline in ~40 lines.

Build a noisy circuit, pre-sample its error trajectories (PTS), execute
them with batched sampling (BE), and inspect shots + provenance.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Circuit,
    DensityMatrixBackend,
    NoiseModel,
    ProbabilisticPTS,
    depolarizing,
    run_ptsbe,
)
from repro.data.stats import total_variation_distance


def main() -> None:
    # 1. An ideal circuit: 3-qubit GHZ with terminal measurement.
    ideal = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()

    # 2. A noise model: 5% depolarizing on each qubit of every CX.
    noise = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.05))
    noisy = noise.apply(ideal).freeze()
    print(f"noisy circuit: {noisy}")

    # 3. PTSBE: Algorithm-2 pre-sampling + batched execution.
    #    200 sampling attempts; every unique error combination gets a
    #    10,000-shot batch from ONE state preparation.
    result = run_ptsbe(noisy, ProbabilisticPTS(nsamples=200, nshots=10_000), seed=7)
    table = result.shot_table()
    print(f"\n{result}")
    print(f"total shots: {table.num_shots}, trajectories: {result.num_trajectories}")

    # 4. Error provenance: every trajectory knows exactly which Kraus
    #    operators fired (the paper's ML-training labels).
    print("\ntrajectory provenance (top 5 by probability):")
    for t in sorted(result.trajectories, key=lambda t: -t.record.nominal_probability)[:5]:
        print(
            f"  p={t.record.nominal_probability:.4f}  shots={t.num_shots:>6}  "
            f"errors: {t.record.label()}"
        )

    # 5. Validation: the probability-weighted pooled distribution matches
    #    the exact density-matrix reference.
    exact = DensityMatrixBackend(3).run(noisy).probabilities()
    pooled = result.pooled_distribution(weighted=True)
    tvd = total_variation_distance(pooled, exact)
    print(f"\nTVD(pooled PTSBE, exact density matrix) = {tvd:.4f}")
    print("top outcomes:", sorted(table.counts().items(), key=lambda kv: -kv[1])[:4])


if __name__ == "__main__":
    main()
