"""Every backend, one circuit: the accuracy/cost landscape of §2.1-2.2.

Runs the same noisy GHZ workload through all five simulation strategies
and reports distribution agreement and timing:

* density matrix        — exact, O(4^n), the ground truth;
* statevector + PTSBE   — universal, O(2^n) per trajectory, batched;
* MPS + PTSBE           — universal, poly(chi), batched (cached sampling);
* conventional trajectories (Algorithm 1) — universal, one prep per shot;
* Pauli-frame sampler   — Clifford+Pauli only, MHz bulk rate.

Run:  python examples/backend_comparison.py
"""

import time

import numpy as np

from repro import (
    DensityMatrixBackend,
    NoiseModel,
    ProportionalPTS,
    StatevectorBackend,
    depolarizing,
)
from repro.backends.pauli_frame import FrameSampler
from repro.circuits import library
from repro.data.stats import empirical_distribution, total_variation_distance
from repro.execution import BackendSpec, run_ptsbe
from repro.rng import make_rng
from repro.trajectory.baseline import TrajectorySimulator

N = 5
SHOTS = 30_000


def main() -> None:
    ideal = library.ghz(N, measure=True)
    noise = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.04))
    circuit = noise.apply(ideal).freeze()
    print(f"workload: {circuit}")

    rows = []

    t0 = time.perf_counter()
    exact = DensityMatrixBackend(N).run(circuit).probabilities()
    rows.append(("density matrix (exact)", time.perf_counter() - t0, 0.0))

    t0 = time.perf_counter()
    result = run_ptsbe(circuit, ProportionalPTS(total_shots=SHOTS, nsamples=3000), seed=5)
    dist = result.shot_table().empirical_distribution(len(exact))
    rows.append(
        ("statevector + PTSBE", time.perf_counter() - t0, total_variation_distance(dist, exact))
    )

    t0 = time.perf_counter()
    result = run_ptsbe(
        circuit,
        ProportionalPTS(total_shots=SHOTS, nsamples=3000),
        backend=BackendSpec.mps(max_bond=8),
        seed=5,
    )
    dist = result.shot_table().empirical_distribution(len(exact))
    rows.append(
        ("MPS + PTSBE (cached)", time.perf_counter() - t0, total_variation_distance(dist, exact))
    )

    t0 = time.perf_counter()
    baseline = TrajectorySimulator(lambda: StatevectorBackend(N)).sample(
        circuit, SHOTS // 10, seed=5
    )
    dist = empirical_distribution(baseline.bits, len(exact))
    rows.append(
        (
            f"Algorithm-1 baseline ({SHOTS // 10} shots)",
            time.perf_counter() - t0,
            total_variation_distance(dist, exact),
        )
    )

    t0 = time.perf_counter()
    frame_bits = FrameSampler(circuit).sample(SHOTS, make_rng(5))
    dist = empirical_distribution(frame_bits, len(exact))
    rows.append(
        ("Pauli-frame bulk sampler", time.perf_counter() - t0, total_variation_distance(dist, exact))
    )

    print(f"\n{'backend':<38} {'seconds':>9} {'TVD vs exact':>13}")
    for name, dt, tvd in rows:
        print(f"{name:<38} {dt:>9.3f} {tvd:>13.4f}")
    print(
        "\nNote the trade: the frame sampler is fastest but Clifford-only;"
        "\nPTSBE keeps universality while batching away re-preparation —"
        "\nexactly the gap the paper targets."
    )


if __name__ == "__main__":
    main()
