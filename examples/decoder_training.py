"""AI-decoder training data: the paper's headline application (§2.3).

Pipeline: Steane-code memory experiment -> *streamed* PTSBE with
provenance labels (`run_ptsbe_stream` + `iter_decoder_batches`: training
mini-batches arrive while the run is still executing) ->
LabeledShotDataset -> train a tiny logistic-regression decoder (pure
NumPy) on syndrome->logical-flip pairs -> compare against the classical
lookup decoder.

The supervision labels come from Kraus-level provenance — "known error
providence ... can be used as training labels on the output data to
enable supervised learning, which is not possible for data derived from
quantum devices" (paper §2.3).

Run:  python examples/decoder_training.py
"""

import numpy as np

from repro import depolarizing
from repro.circuits import Circuit
from repro.circuits.operations import GateOp
from repro.data.dataset import build_decoder_dataset, iter_decoder_batches
from repro.data.io import save_dataset
from repro.execution import run_ptsbe_stream
from repro.pts import ProportionalPTS
from repro.qec import LookupDecoder, steane_code, syndrome_extraction_circuit
from repro.rng import make_rng


def build_experiment(p_data: float):
    """Encode |0_L>, depolarize every data qubit, extract one round."""
    code = steane_code()
    circ, layout = syndrome_extraction_circuit(code, rounds=1)
    noisy = Circuit(circ.num_qubits)
    injected = False
    for op in circ:
        if not injected and isinstance(op, GateOp) and op.qubits[0] >= code.n:
            for q in range(code.n):
                noisy.attach(depolarizing(p_data), q)
            injected = True
        noisy.append(op)
    return code, noisy.freeze(), layout


def train_logistic(features, labels, epochs=300, lr=0.5):
    """Minimal logistic regression (the stand-in for an AI decoder)."""
    rng = make_rng(0)
    x = features.astype(np.float64)
    y = labels.astype(np.float64)
    w = rng.normal(scale=0.01, size=x.shape[1])
    b = 0.0
    for _ in range(epochs):
        z = x @ w + b
        p = 1.0 / (1.0 + np.exp(-z))
        grad_w = x.T @ (p - y) / len(y)
        grad_b = float(np.mean(p - y))
        w -= lr * grad_w
        b -= lr * grad_b
    return w, b


def main() -> None:
    code, circuit, layout = build_experiment(p_data=0.08)
    print(f"experiment: {circuit.num_qubits} qubits, {circuit.num_noise_sites()} noise sites")

    # Streamed collection: mini-batches become available as each
    # trajectory completes — an online learner would partial_fit here
    # instead of accumulating.  Concatenating the batches reproduces the
    # materialized dataset bitwise (see docs/architecture.md, "Streaming
    # delivery").
    stream = run_ptsbe_stream(
        circuit, ProportionalPTS(total_shots=40_000, nsamples=4000), seed=3
    )
    batches = []
    for i, (features, labels, _tids) in enumerate(
        iter_decoder_batches(stream, circuit, code, layout)
    ):
        batches.append((features, labels))
        if i == 0:
            print(f"first mini-batch: {features.shape[0]} shots (run still going)")
    print(f"streamed {len(batches)} mini-batches, replay seed {stream.seed}")
    dataset = build_decoder_dataset(stream.finalize(), circuit, code, layout)
    print(f"dataset: {dataset} | class balance: {dataset.class_balance()}")
    save_dataset(dataset, "/tmp/steane_decoder_dataset.npz")
    print("saved to /tmp/steane_decoder_dataset.npz")

    train, test = dataset.split(0.8, make_rng(1))
    w, b = train_logistic(train.features, train.labels)

    # Evaluate the learned decoder.
    pred = (test.features @ w + b) > 0
    learned_acc = float((pred == test.labels.astype(bool)).mean())

    # Classical baseline: lookup decoder predicting the logical-Z flip.
    lookup = LookupDecoder(code, max_weight=1)
    lz = code.logical_z_support(0)
    hits = 0
    for i in range(test.num_samples):
        corr = lookup.decode(test.features[i])
        flip = int(np.dot(corr.x, lz) % 2) if corr is not None else 0
        hits += int(flip == test.labels[i])
    lookup_acc = hits / test.num_samples

    majority = max(np.mean(test.labels), 1 - np.mean(test.labels))
    print(f"\nlearned decoder accuracy: {learned_acc:.4f}")
    print(f"lookup  decoder accuracy: {lookup_acc:.4f}")
    print(f"majority-class baseline:  {majority:.4f}")


if __name__ == "__main__":
    main()
