"""Multi-device scaling: both parallel axes of PTSBE (paper §3, Fig. 5).

* Intra-trajectory: one statevector sliced across emulated devices, with
  bit-exact results and counted communication (the multi-GPU layout of
  the paper's 4xH100 per 35-qubit trajectory).
* Inter-trajectory: embarrassingly parallel trajectories over worker
  processes, shot-for-shot identical to the serial run.
* Both axes composed: the sharded strategy bins deduplicated trajectory
  groups across a device pool and runs chunked ``(B, 2**n)`` stacks per
  shard — still bitwise identical to the serial run.
* Paper-scale planning: the calibrated performance model answers "how
  many H100-hours for a trillion shots?" — reproducing the paper's
  4,445 / 2,223 GPU-hour headlines.

Run:  python examples/multi_device_scaling.py
"""

import time

import numpy as np

from repro import NoiseModel, ProbabilisticPTS, StatevectorBackend, depolarizing
from repro.circuits import library
from repro.devices import (
    DeviceMesh,
    DistributedStatevector,
    PAPER_STATEVECTOR_TIMINGS,
    PAPER_TENSORNET_TIMINGS,
    PerfModel,
    min_devices_for_statevector,
)
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ParallelExecutor,
    ShardedExecutor,
)
from repro.rng import StreamFactory


def intra_trajectory_demo() -> None:
    print("=== intra-trajectory: distributed statevector ===")
    n = 12
    circ = library.random_brickwork(n, 4, rng=np.random.default_rng(0), measure=True).freeze()
    ref = StatevectorBackend(n)
    ref.run_fixed(circ)
    for devices in (1, 2, 4, 8):
        dist = DistributedStatevector(n, DeviceMesh(devices))
        t0 = time.perf_counter()
        dist.run_fixed(circ)
        dt = time.perf_counter() - t0
        exact = np.allclose(dist.gather(), ref.statevector, atol=1e-10)
        print(
            f"  {devices} device(s): bit-exact={exact}  comm={dist.bytes_communicated / 1e6:7.2f} MB  "
            f"exchanges={dist.exchange_count:4d}  ({dt * 1e3:.0f} ms emulated)"
        )
    print(f"  paper: a 35-qubit statevector needs {min_devices_for_statevector(35)} x 80GB H100s\n")


def inter_trajectory_demo() -> None:
    print("=== inter-trajectory: process-parallel PTSBE ===")
    circ = library.ghz(10, measure=True)
    noisy = (
        NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.01)).apply(circ).freeze()
    )
    specs = ProbabilisticPTS(nsamples=120, nshots=5_000).sample(
        noisy, StreamFactory(0).rng_for(0)
    ).specs
    serial = BatchedExecutor(BackendSpec.statevector())
    t0 = time.perf_counter()
    serial_result = serial.execute(noisy, specs, seed=4)
    serial_s = time.perf_counter() - t0
    for workers in (1, 2):
        executor = ParallelExecutor(BackendSpec.statevector(), num_workers=workers)
        t0 = time.perf_counter()
        result = executor.execute(noisy, specs, seed=4)
        dt = time.perf_counter() - t0
        same = np.array_equal(result.shot_table().bits, serial_result.shot_table().bits)
        print(
            f"  {workers} worker(s): {result.total_shots} shots in {dt:.2f}s "
            f"(serial {serial_s:.2f}s), shot-identical to serial: {same}"
        )
    print()


def sharded_demo() -> None:
    print("=== both axes: device-sharded trajectory stacks ===")
    circ = library.ghz(10, measure=True)
    noisy = (
        NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.01)).apply(circ).freeze()
    )
    specs = ProbabilisticPTS(nsamples=200, nshots=2_000).sample(
        noisy, StreamFactory(0).rng_for(0)
    ).specs
    serial_result = BatchedExecutor(BackendSpec.statevector()).execute(noisy, specs, seed=4)
    for devices in (1, 2, 4):
        executor = ShardedExecutor(devices=devices)
        t0 = time.perf_counter()
        result = executor.execute(noisy, specs, seed=4)
        dt = time.perf_counter() - t0
        same = np.array_equal(result.shot_table().bits, serial_result.shot_table().bits)
        print(
            f"  {devices} device(s): {result.unique_preparations} unique preparations "
            f"for {len(specs)} specs in {dt:.2f}s, bitwise identical to serial: {same}"
        )
    print()


def paper_scale_planning() -> None:
    print("=== paper-scale planning (calibrated performance model) ===")
    sv = PerfModel(PAPER_STATEVECTOR_TIMINGS)
    tn = PerfModel(PAPER_TENSORNET_TIMINGS)
    print(
        f"  statevector 35q: 1e12 shots @ 1e6/trajectory -> "
        f"{sv.dataset_gpu_hours(10**12, 10**6):,.0f} GPU-hours (paper: 4,445)"
    )
    print(
        f"  tensornet  85q: 1e6 shots @ 100/trajectory  -> "
        f"{tn.dataset_gpu_hours(10**6, 100):,.0f} GPU-hours (paper: 2,223)"
    )
    print(
        f"  conventional baseline for the same 1e12 shots: "
        f"{sv.baseline_gpu_hours(10**12):,.0f} GPU-hours "
        f"({sv.baseline_gpu_hours(10**12) / sv.dataset_gpu_hours(10**12, 10**6):,.0f}x more)"
    )


if __name__ == "__main__":
    intra_trajectory_demo()
    inter_trajectory_demo()
    sharded_demo()
    paper_scale_planning()
