"""Tailored error injection: the sampling strategies of paper §3.1.

One noisy circuit, five sampling strategies, side by side:

* Algorithm 2 (uniform shots)        — maximize data per unique error set;
* proportional                       — expectation-value estimation;
* probability bands                  — isolate the rare-error tail;
* analytic top-k                     — the most likely error combinations;
* spatially correlated bursts        — error events independent sampling
                                       essentially never produces.

Run:  python examples/tailored_sampling.py
"""

import numpy as np

from repro import NoiseModel, depolarizing
from repro.circuits import library
from repro.pts import (
    CorrelatedNoisePTS,
    ProbabilisticPTS,
    ProbabilityBandPTS,
    ProportionalPTS,
    TopKPTS,
)
from repro.rng import make_rng


def main() -> None:
    ideal = library.ghz(6, measure=True)
    noise = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.02))
    circuit = noise.apply(ideal).freeze()
    print(f"workload: {circuit}\n")

    strategies = [
        ("Algorithm 2 (uniform shots)", ProbabilisticPTS(nsamples=800, nshots=1000)),
        ("proportional resampling", ProportionalPTS(total_shots=100_000, nsamples=800)),
        ("probability band [1e-4, 1e-1]",
         ProbabilityBandPTS(1e-4, 1e-1, nsamples=800, nshots=1000)),
        ("analytic top-10", TopKPTS(k=10, nshots=1000)),
        ("correlated bursts (r=1)",
         CorrelatedNoisePTS(num_bursts=400, radius=1, moment_window=1, nshots=1000)),
    ]

    for name, sampler in strategies:
        result = sampler.sample(circuit, make_rng(42))
        errors = [s.record.num_errors() for s in result.specs]
        probs = [s.probability for s in result.specs]
        print(f"{name}:")
        print(
            f"  {result.num_trajectories:4d} trajectories | {result.total_shots:8d} shots | "
            f"coverage {result.coverage():.4f}"
        )
        if errors:
            print(
                f"  errors/trajectory: mean {np.mean(errors):.2f} max {max(errors)} | "
                f"p_alpha range [{min(probs):.2e}, {max(probs):.2e}]"
            )
        example = next((s for s in result.specs if s.record.num_errors() > 0), None)
        if example is not None:
            print(f"  e.g. {example.record.label()}")
        print()


if __name__ == "__main__":
    main()
