"""Massive-data-collection scenario: the paper's 35-qubit MSD workload.

Generates a provenance-labeled shot corpus from the Steane-encoded 5->1
magic-state-distillation circuit (35 physical qubits — the paper's
statevector workload) using the MPS backend, with the top block measured
in all three Pauli bases (Fig. 3's fidelity procedure).

This is the laptop-scale version of the paper's trillion-shot campaign:
same circuit family, same pipeline, same per-shot provenance labels —
scaled down in batch size.

Run:  python examples/msd_dataset.py
"""

import time

import numpy as np

from repro import NoiseModel, ProbabilisticPTS, depolarizing, two_qubit_depolarizing
from repro.execution import BackendSpec, BatchedExecutor, run_ptsbe
from repro.qec import msd_benchmark_circuit, steane_code
from repro.qec.magic import bloch_from_expectations, magic_state_fidelity


def build_circuit(basis: str):
    noise = (
        NoiseModel()
        .add_all_qubit_gate_noise("cz", two_qubit_depolarizing(0.004))
        .add_all_qubit_gate_noise("sx", depolarizing(0.001))
        .add_all_qubit_gate_noise("sxdg", depolarizing(0.001))
        .add_all_qubit_gate_noise("sy", depolarizing(0.001))
    )
    return noise.apply(msd_benchmark_circuit(steane_code(), basis=basis)).freeze()


def main() -> None:
    shots_per_trajectory = 2_000
    backend = BackendSpec.mps(max_bond=16)
    expectations = {}

    for basis in "xyz":
        circuit = build_circuit(basis)
        print(f"[{basis}-basis] circuit: {circuit.num_qubits} qubits, "
              f"{circuit.num_gates()} gates, {circuit.num_noise_sites()} noise sites")
        sampler = ProbabilisticPTS(nsamples=30, nshots=shots_per_trajectory)
        t0 = time.perf_counter()
        result = run_ptsbe(circuit, sampler, backend=backend, seed=17)
        dt = time.perf_counter() - t0
        table = result.shot_table()
        rate = table.num_shots / dt
        print(
            f"  {result.num_trajectories} trajectories, {table.num_shots} shots "
            f"in {dt:.1f}s ({rate:,.0f} shots/s) | prep {result.prep_seconds:.2f}s, "
            f"sample {result.sample_seconds:.2f}s"
        )
        # Logical Z of the Steane top block = Z on all 7 qubits of block 0.
        block_bits = table.bits[:, :7]
        logical_bit = block_bits.sum(axis=1) % 2
        expectations[basis] = 1.0 - 2.0 * logical_bit.mean()

        # Show provenance labels for the most informative trajectories.
        errorful = [t for t in result.trajectories if t.record.num_errors() > 0][:3]
        for t in errorful:
            print(f"    label p={t.record.nominal_probability:.2e}: {t.record.label()}")

    bloch = bloch_from_expectations(expectations["x"], expectations["y"], expectations["z"])
    from repro.qec.magic import _nearest_t_corner

    corner = _nearest_t_corner(np.asarray(bloch))
    print(f"\n3-basis logical Bloch vector of top block: {np.round(bloch, 3)}")
    print(f"fidelity to nearest T-type magic corner: {magic_state_fidelity(bloch, corner):.4f}")


if __name__ == "__main__":
    main()
