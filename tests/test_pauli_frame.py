"""Pauli-frame bulk sampler vs. exact references."""

import numpy as np
import pytest

from repro.backends.density_matrix import DensityMatrixBackend
from repro.backends.pauli_frame import FrameSampler, frame_sample
from repro.channels import NoiseModel, bit_flip, depolarizing
from repro.channels.standard import amplitude_damping
from repro.circuits import Circuit, library
from repro.data.stats import empirical_distribution, total_variation_distance
from repro.errors import BackendError
from repro.rng import make_rng


def _noisy(circ, p=0.15, gate="cx"):
    return NoiseModel().add_all_qubit_gate_noise(gate, depolarizing(p)).apply(circ).freeze()


class TestCorrectness:
    def test_noiseless_ghz(self):
        circ = library.ghz(3, measure=True).freeze()
        bits = frame_sample(circ, 4000, make_rng(0))
        sums = bits.sum(axis=1)
        assert np.all((sums == 0) | (sums == 3))
        assert abs((sums == 0).mean() - 0.5) < 0.05

    def test_matches_density_matrix_with_noise(self):
        circ = _noisy(library.ghz(3, measure=True))
        exact = DensityMatrixBackend(3).run(circ).probabilities()
        bits = frame_sample(circ, 60000, make_rng(1))
        assert total_variation_distance(empirical_distribution(bits), exact) < 0.015

    def test_matches_density_matrix_bitflip_measurement_noise(self):
        ideal = Circuit(2).h(0).cx(0, 1).measure_all()
        model = (
            NoiseModel()
            .add_all_qubit_gate_noise("cx", depolarizing(0.1))
            .add_measurement_noise(bit_flip(0.08))
        )
        circ = model.apply(ideal).freeze()
        exact = DensityMatrixBackend(2).run(circ).probabilities()
        bits = frame_sample(circ, 60000, make_rng(2))
        assert total_variation_distance(empirical_distribution(bits), exact) < 0.015

    def test_deterministic_circuit_with_noise(self):
        # |0> -> X -> measure, with bit flip noise before measurement.
        ideal = Circuit(1).x(0).measure_all()
        model = NoiseModel().add_measurement_noise(bit_flip(0.2))
        circ = model.apply(ideal).freeze()
        bits = frame_sample(circ, 20000, make_rng(3))
        assert abs(bits.mean() - 0.8) < 0.01

    def test_mid_circuit_noise_propagates_through_cliffords(self):
        # X error before a CX must flip both outputs.
        circ = Circuit(2)
        circ.attach(bit_flip(0.3), 0)
        circ.cx(0, 1)
        circ.measure_all()
        circ.freeze()
        bits = frame_sample(circ, 30000, make_rng(4))
        assert np.all(bits[:, 0] == bits[:, 1])
        assert abs(bits[:, 0].mean() - 0.3) < 0.01

    def test_sy_frame_rule(self):
        # Z error then sqrt(Y): Z -> X, which flips the measurement.
        circ = Circuit(1)
        circ.attach(
            # phase_flip p=1: always Z
            __import__("repro.channels.standard", fromlist=["phase_flip"]).phase_flip(1.0),
            0,
        )
        circ.sy(0)
        circ.measure_all()
        circ.freeze()
        bits = frame_sample(circ, 5000, make_rng(5))
        # Reference: the exact statevector with the (deterministic) Z branch.
        from repro.backends.statevector import StatevectorBackend

        sv = StatevectorBackend(1)
        sv.run_fixed(circ)  # phase_flip(1.0) has a single (Z) branch
        expected = sv.sample(5000, [0], make_rng(6)).mean()
        assert abs(bits.mean() - expected) < 0.03


class TestRestrictions:
    def test_requires_frozen(self):
        with pytest.raises(BackendError):
            FrameSampler(Circuit(1).h(0).measure_all())

    def test_requires_measurement(self):
        with pytest.raises(BackendError):
            FrameSampler(Circuit(1).h(0).freeze())

    def test_rejects_non_pauli_noise(self):
        circ = Circuit(1)
        circ.attach(amplitude_damping(0.1), 0)
        circ.measure_all()
        with pytest.raises(BackendError):
            FrameSampler(circ.freeze())

    def test_rejects_non_clifford_gate(self):
        circ = Circuit(1).t(0).measure_all().freeze()
        sampler = FrameSampler.__new__(FrameSampler)
        with pytest.raises(BackendError):
            FrameSampler(circ).sample(1, make_rng(0))


class TestBulkRate:
    def test_vectorized_rate_exceeds_tableau_per_shot(self):
        """The frame sampler's raison d'etre: bulk rate >> per-shot tableau."""
        import time

        circ = _noisy(library.ghz(8, measure=True))
        sampler = FrameSampler(circ)
        t0 = time.perf_counter()
        sampler.sample(50000, make_rng(7))
        frame_s = time.perf_counter() - t0
        from repro.backends.stabilizer import StabilizerBackend

        st = StabilizerBackend(8)
        st.run(circ, rng=make_rng(8))
        t0 = time.perf_counter()
        st.sample(200, range(8), make_rng(9))
        tableau_s_per_shot = (time.perf_counter() - t0) / 200
        frame_s_per_shot = frame_s / 50000
        assert frame_s_per_shot < tableau_s_per_shot / 10
