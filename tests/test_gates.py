"""Gate library correctness: matrices, algebra, Clifford detection."""

import numpy as np
import pytest

from repro.circuits.gates import (
    CCX,
    CX,
    CZ,
    H,
    RX,
    RY,
    RZ,
    S,
    SDG,
    SWAP,
    SX,
    SXDG,
    SY,
    SYDG,
    T,
    TDG,
    U3,
    X,
    Y,
    Z,
    Gate,
    controlled,
    gate_by_name,
)
from repro.errors import GateError
from repro.linalg import is_unitary


ALL_FIXED = [X, Y, Z, H, S, SDG, T, TDG, SX, SXDG, SY, SYDG, CX, CZ, SWAP, CCX]


class TestMatrices:
    @pytest.mark.parametrize("gate", ALL_FIXED, ids=lambda g: g.name)
    def test_all_gates_unitary(self, gate):
        assert is_unitary(gate.matrix)

    def test_sx_squares_to_x(self):
        assert np.allclose(SX.matrix @ SX.matrix, X.matrix)

    def test_sy_squares_to_y(self):
        assert np.allclose(SY.matrix @ SY.matrix, Y.matrix)

    def test_sxdg_is_sx_adjoint(self):
        assert np.allclose(SXDG.matrix, SX.matrix.conj().T)

    def test_sydg_is_sy_adjoint(self):
        assert np.allclose(SYDG.matrix, SY.matrix.conj().T)

    def test_s_squares_to_z(self):
        assert np.allclose(S.matrix @ S.matrix, Z.matrix)

    def test_t_squares_to_s(self):
        assert np.allclose(T.matrix @ T.matrix, S.matrix)

    def test_hzh_is_x(self):
        assert np.allclose(H.matrix @ Z.matrix @ H.matrix, X.matrix)

    def test_cx_action(self):
        state = np.zeros(4)
        state[0b10] = 1.0  # control (qubit 0) set
        assert np.argmax(np.abs(CX.matrix @ state)) == 0b11

    def test_ccx_action(self):
        state = np.zeros(8)
        state[0b110] = 1.0
        assert np.argmax(np.abs(CCX.matrix @ state)) == 0b111

    def test_swap_action(self):
        state = np.zeros(4)
        state[0b01] = 1.0
        assert np.argmax(np.abs(SWAP.matrix @ state)) == 0b10


class TestParametricGates:
    def test_rx_pi_is_x_up_to_phase(self):
        mat = RX(np.pi).matrix
        assert np.allclose(mat, -1j * X.matrix)

    def test_ry_pi_is_y_up_to_phase(self):
        assert np.allclose(RY(np.pi).matrix, -1j * Y.matrix)

    def test_rz_composition(self):
        assert np.allclose(RZ(0.3).matrix @ RZ(0.4).matrix, RZ(0.7).matrix)

    def test_u3_covers_hadamard(self):
        mat = U3(np.pi / 2, 0.0, np.pi).matrix
        # H equals u3(pi/2, 0, pi) exactly in this convention.
        assert np.allclose(mat, H.matrix)

    def test_params_recorded(self):
        assert RX(0.5).params == (0.5,)


class TestGateClass:
    def test_rejects_nonunitary(self):
        with pytest.raises(GateError):
            Gate("bad", np.array([[1, 1], [0, 1]]))

    def test_rejects_nonsquare(self):
        with pytest.raises(GateError):
            Gate("bad", np.ones((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(GateError):
            Gate("bad", np.eye(3))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            X.name = "other"

    def test_adjoint_roundtrip(self):
        assert np.allclose(S.adjoint().matrix, SDG.matrix)
        assert S.adjoint().name == "sdg"
        assert SDG.adjoint().name == "s"

    def test_power(self):
        assert np.allclose(Z.power(0.5).matrix, S.matrix)

    def test_equality_and_hash(self):
        other = Gate("x", X.matrix.copy(), check=False)
        assert other == X
        assert hash(other) == hash(X)

    def test_pickle_roundtrip(self):
        import pickle

        g = pickle.loads(pickle.dumps(RX(0.7)))
        assert g == RX(0.7)

    @pytest.mark.parametrize("gate", [H, S, CX, CZ, SX, SY, SWAP], ids=lambda g: g.name)
    def test_clifford_detection_positive(self, gate):
        assert gate.is_clifford()

    @pytest.mark.parametrize("gate", [T, TDG, RX(0.3)], ids=lambda g: g.name)
    def test_clifford_detection_negative(self, gate):
        assert not gate.is_clifford()


class TestControlled:
    def test_controlled_x_is_cx(self):
        assert np.allclose(controlled(X).matrix, CX.matrix)

    def test_double_controlled_x_is_ccx(self):
        assert np.allclose(controlled(X, 2).matrix, CCX.matrix)

    def test_controlled_rejects_zero_controls(self):
        with pytest.raises(GateError):
            controlled(X, 0)


class TestLookup:
    def test_fixed_lookup(self):
        assert gate_by_name("H") is H
        assert gate_by_name("cx") is CX

    def test_parametric_lookup(self):
        assert np.allclose(gate_by_name("rx", 0.4).matrix, RX(0.4).matrix)

    def test_unknown_gate(self):
        with pytest.raises(GateError):
            gate_by_name("nope")

    def test_fixed_gate_rejects_params(self):
        with pytest.raises(GateError):
            gate_by_name("h", 0.3)
