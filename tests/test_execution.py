"""Batched execution: results containers, the BE engine, scheduling."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.errors import DataError, ExecutionError
from repro.execution import (
    BackendSpec,
    BatchedExecutor,
    ParallelExecutor,
    ShotTable,
    run_ptsbe,
)
from repro.execution.results import pack_bits
from repro.execution.scheduler import Scheduler, greedy_by_cost, round_robin
from repro.pts import ProbabilisticPTS, TrajectorySpec
from repro.rng import make_rng
from repro.trajectory.events import TrajectoryRecord


def _spec(tid, shots, p=0.5):
    return TrajectorySpec(
        record=TrajectoryRecord(trajectory_id=tid, events=(), nominal_probability=p),
        num_shots=shots,
    )


class TestShotTable:
    def test_counts(self):
        bits = np.array([[0, 0], [1, 1], [1, 1]], dtype=np.uint8)
        table = ShotTable(bits, np.zeros(3))
        assert table.counts() == {"00": 1, "11": 2}

    def test_pack_bits_msb_first(self):
        assert pack_bits(np.array([[1, 0, 1]])).tolist() == [5]

    def test_pack_bits_width_guard(self):
        with pytest.raises(DataError):
            pack_bits(np.zeros((1, 64), dtype=np.uint8))

    def test_unique_fraction(self):
        bits = np.array([[0, 0], [0, 0], [0, 1]], dtype=np.uint8)
        table = ShotTable(bits, np.zeros(3))
        assert table.unique_fraction() == pytest.approx(2 / 3)

    def test_empirical_distribution(self):
        bits = np.array([[0], [1], [1], [1]], dtype=np.uint8)
        table = ShotTable(bits, np.zeros(4))
        assert np.allclose(table.empirical_distribution(), [0.25, 0.75])

    def test_for_trajectory(self):
        bits = np.array([[0], [1], [0]], dtype=np.uint8)
        table = ShotTable(bits, np.array([0, 1, 0]))
        sub = table.for_trajectory(0)
        assert sub.num_shots == 2

    def test_concatenate(self):
        a = ShotTable(np.zeros((2, 3), dtype=np.uint8), np.zeros(2))
        b = ShotTable(np.ones((3, 3), dtype=np.uint8), np.ones(3))
        cat = ShotTable.concatenate([a, b])
        assert cat.num_shots == 5

    def test_concatenate_width_mismatch(self):
        a = ShotTable(np.zeros((2, 3), dtype=np.uint8), np.zeros(2))
        b = ShotTable(np.zeros((2, 2), dtype=np.uint8), np.zeros(2))
        with pytest.raises(DataError):
            ShotTable.concatenate([a, b])

    def test_misaligned_ids_rejected(self):
        with pytest.raises(DataError):
            ShotTable(np.zeros((3, 1), dtype=np.uint8), np.zeros(2))


class TestBatchedExecutor:
    def test_one_preparation_per_spec(self, noisy_ghz3):
        specs = [_spec(0, 100), _spec(1, 200)]
        result = BatchedExecutor().execute(noisy_ghz3, specs, seed=0)
        assert result.num_trajectories == 2
        assert result.total_shots == 300
        assert result.trajectories[0].num_shots == 100

    def test_shots_carry_trajectory_ids(self, noisy_ghz3):
        specs = [_spec(0, 10), _spec(5, 20)]
        table = BatchedExecutor().execute(noisy_ghz3, specs, seed=0).shot_table()
        assert set(table.trajectory_ids.tolist()) == {0, 5}
        assert (table.trajectory_ids == 5).sum() == 20

    def test_actual_weight_reported(self, noisy_ghz3):
        result = BatchedExecutor().execute(noisy_ghz3, [_spec(0, 1)], seed=0)
        assert result.trajectories[0].actual_weight == pytest.approx((1 - 0.05) ** 4)

    def test_timing_recorded(self, noisy_ghz3):
        result = BatchedExecutor().execute(noisy_ghz3, [_spec(0, 1000)], seed=0)
        assert result.prep_seconds > 0
        assert result.sample_seconds > 0

    def test_empty_specs_rejected(self, noisy_ghz3):
        with pytest.raises(ExecutionError):
            BatchedExecutor().execute(noisy_ghz3, [], seed=0)

    def test_no_measurement_rejected(self):
        circ = Circuit(1).h(0).freeze()
        with pytest.raises(ExecutionError):
            BatchedExecutor().execute(circ, [_spec(0, 1)], seed=0)

    def test_mps_backend_spec(self, noisy_ghz3):
        result = BatchedExecutor(BackendSpec.mps(max_bond=8)).execute(
            noisy_ghz3, [_spec(0, 100)], seed=0
        )
        assert result.total_shots == 100

    def test_callable_backend_factory(self, noisy_ghz3):
        from repro.backends.statevector import StatevectorBackend

        result = BatchedExecutor(lambda n: StatevectorBackend(n)).execute(
            noisy_ghz3, [_spec(0, 10)], seed=0
        )
        assert result.total_shots == 10

    def test_deterministic_given_seed(self, noisy_ghz3):
        specs = [_spec(0, 50), _spec(1, 50)]
        a = BatchedExecutor().execute(noisy_ghz3, specs, seed=9).shot_table()
        b = BatchedExecutor().execute(noisy_ghz3, specs, seed=9).shot_table()
        assert np.array_equal(a.bits, b.bits)


class TestRunPTSBE:
    def test_end_to_end(self, noisy_ghz3):
        result = run_ptsbe(noisy_ghz3, ProbabilisticPTS(nsamples=100, nshots=500), seed=1)
        assert result.total_shots >= 500
        assert len(result.records) == result.num_trajectories

    def test_pooled_distribution_normalized(self, noisy_ghz3):
        result = run_ptsbe(noisy_ghz3, ProbabilisticPTS(nsamples=100, nshots=500), seed=2)
        pooled = result.pooled_distribution()
        assert pooled.sum() == pytest.approx(1.0)


class TestScheduler:
    def test_round_robin_distribution(self):
        specs = [_spec(i, 10) for i in range(10)]
        assign = round_robin(specs, 3)
        assert [len(c) for c in assign.per_device] == [4, 3, 3]

    def test_greedy_balances_skewed_load(self):
        specs = [_spec(0, 1_000_000)] + [_spec(i, 10) for i in range(1, 10)]
        rr = round_robin(specs, 2)
        greedy = greedy_by_cost(specs, 2)
        assert greedy.makespan <= rr.makespan
        # Greedy puts the giant spec alone-ish: imbalance near optimal.
        assert greedy.imbalance() < 2.0

    def test_greedy_spreads_equal_specs(self):
        specs = [_spec(i, 100) for i in range(8)]
        assign = greedy_by_cost(specs, 4)
        assert [len(c) for c in assign.per_device] == [2, 2, 2, 2]

    def test_invalid_device_count(self):
        with pytest.raises(ExecutionError):
            round_robin([], 0)

    def test_scheduler_policy_lookup(self):
        assert Scheduler("greedy").assign([_spec(0, 1)], 2).num_devices == 2
        with pytest.raises(ExecutionError):
            Scheduler("nope")


class TestParallelExecutor:
    def test_matches_serial_shot_for_shot(self, noisy_ghz3):
        """The determinism contract: workers change nothing."""
        specs = [_spec(i, 40) for i in range(6)]
        serial = BatchedExecutor().execute(noisy_ghz3, specs, seed=5)
        parallel = ParallelExecutor(num_workers=2).execute(noisy_ghz3, specs, seed=5)
        a, b = serial.shot_table(), parallel.shot_table()
        # Sort both by (trajectory, row) since order within is preserved.
        assert np.array_equal(a.bits, b.bits)
        assert np.array_equal(a.trajectory_ids, b.trajectory_ids)

    def test_rejects_unpicklable_backend(self):
        with pytest.raises(ExecutionError):
            ParallelExecutor(backend=lambda n: None)

    def test_single_chunk_shortcut(self, noisy_ghz3):
        result = ParallelExecutor(num_workers=4).execute(noisy_ghz3, [_spec(0, 10)], seed=1)
        assert result.total_shots == 10
