"""Engine router + Clifford frame executor: decisions, determinism, conformance.

Four contracts under test:

1. **Routing decisions** — ``strategy="auto"`` sends pure-Clifford
   circuits with Pauli-mixture noise to the frame engine and everything
   else to the pre-router dense dispatch, every decision recorded on the
   result, forceable off via ``Config.routing="dense"``.
2. **Seeded replay** — clifford runs are bitwise reproducible for a
   fixed seed (its own contract; it is *not* bitwise tied to dense).
3. **Dense bitwise stability** — on circuits the router declines, auto
   produces exactly the pre-router tables (serial for a statevector
   spec, vectorized for batched), so introducing the router changed no
   existing dense output.
4. **Distributional conformance** — the frame engine's pooled table
   passes the same sweep-oracle distribution check the dense reference
   passes, with identical per-trajectory weights.
"""

import numpy as np
import pytest

from repro.backends.stabilizer import pauli_from_unitary
from repro.channels import NoiseModel, depolarizing, pauli_string_matrix
from repro.channels.standard import amplitude_damping, bit_flip
from repro.circuits import Circuit
from repro.config import Config
from repro.errors import ExecutionError
from repro.execution import (
    BackendSpec,
    CliffordFrameExecutor,
    analyze_circuit,
    clear_router_cache,
    resolve_strategy,
    run_ptsbe,
    run_ptsbe_stream,
)
from repro.execution.router import router_cache_stats
from repro.pts import ExhaustivePTS, ProbabilisticPTS, ProportionalPTS
from repro.sweep.oracle import PASS, check_distribution
from repro.sweep.spec import OracleSpec


@pytest.fixture
def clifford_circuit():
    """GHZ + depolarizing after CX: frame-eligible."""
    ideal = Circuit(3).h(0).cx(0, 1).cx(1, 2).measure_all()
    model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.05))
    return model.apply(ideal).freeze()


@pytest.fixture
def t_gate_circuit():
    """Contains a T gate: frame-ineligible."""
    ideal = Circuit(2).h(0).t(0).cx(0, 1).measure_all()
    model = NoiseModel().add_all_qubit_gate_noise("cx", depolarizing(0.05))
    return model.apply(ideal).freeze()


@pytest.fixture
def damping_circuit():
    """Clifford gates but amplitude damping: frame-ineligible."""
    ideal = Circuit(2).h(0).cx(0, 1).measure_all()
    model = NoiseModel().add_all_qubit_gate_noise("cx", amplitude_damping(0.08))
    return model.apply(ideal).freeze()


class TestRoutingDecisions:
    def test_clifford_circuit_routes_to_frames(self, clifford_circuit):
        resolved, reason = resolve_strategy(
            clifford_circuit, BackendSpec.statevector(), "auto"
        )
        assert resolved == "clifford"
        assert reason.startswith("auto->clifford")

    def test_non_clifford_gate_declines(self, t_gate_circuit):
        resolved, reason = resolve_strategy(
            t_gate_circuit, BackendSpec.statevector(), "auto"
        )
        assert resolved == "serial"
        assert "non-Clifford" in reason

    def test_non_pauli_channel_declines(self, damping_circuit):
        resolved, reason = resolve_strategy(
            damping_circuit, BackendSpec.statevector(), "auto"
        )
        assert resolved == "serial"
        assert "not a unitary mixture" in reason

    def test_batched_kind_declines_to_vectorized(self, t_gate_circuit):
        resolved, _ = resolve_strategy(
            t_gate_circuit, BackendSpec.batched_statevector(), "auto"
        )
        assert resolved == "vectorized"

    def test_routing_dense_forces_fallback(self, clifford_circuit):
        resolved, reason = resolve_strategy(
            clifford_circuit,
            BackendSpec.statevector(),
            "auto",
            Config(routing="dense"),
        )
        assert resolved == "serial"
        assert "routing disabled" in reason

    def test_invalid_routing_value_rejected(self, clifford_circuit):
        with pytest.raises(ExecutionError, match="routing"):
            resolve_strategy(
                clifford_circuit,
                BackendSpec.statevector(),
                "auto",
                Config(routing="frames"),
            )

    def test_mps_backend_declines(self, clifford_circuit):
        resolved, reason = resolve_strategy(
            clifford_circuit, BackendSpec.mps(), "auto"
        )
        assert resolved == "serial"
        assert "'mps'" in reason

    def test_backend_factory_declines(self, clifford_circuit):
        from repro.backends.statevector import StatevectorBackend

        resolved, reason = resolve_strategy(
            clifford_circuit, lambda n: StatevectorBackend(n), "auto"
        )
        assert resolved == "serial"
        assert "factory" in reason

    def test_explicit_strategy_never_rerouted(self, clifford_circuit):
        for name in ("serial", "vectorized", "parallel", "sharded", "clifford"):
            resolved, reason = resolve_strategy(
                clifford_circuit, BackendSpec.statevector(), name
            )
            assert resolved == name
            assert "explicit" in reason

    def test_no_measurement_declines(self):
        circuit = Circuit(2)
        circuit.h(0).cx(0, 1)
        circuit.attach(depolarizing(0.05), 0)
        circuit.freeze()
        profile = analyze_circuit(circuit)
        assert not profile.frame_eligible
        assert "no measurements" in profile.reason

    def test_analysis_cached_per_circuit(self, clifford_circuit):
        clear_router_cache()
        analyze_circuit(clifford_circuit)
        analyze_circuit(clifford_circuit)
        stats = router_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_requires_frozen(self):
        with pytest.raises(ExecutionError, match="frozen"):
            analyze_circuit(Circuit(2).h(0).measure_all())


class TestEngineRecording:
    def test_auto_records_clifford(self, clifford_circuit):
        result = run_ptsbe(
            clifford_circuit, ProportionalPTS(total_shots=500), seed=5
        )
        assert result.engine == "clifford"
        assert result.routing.startswith("auto->clifford")

    def test_auto_records_dense_decline(self, t_gate_circuit):
        result = run_ptsbe(
            t_gate_circuit, ProportionalPTS(total_shots=500), seed=5
        )
        assert result.engine == "serial"
        assert "non-Clifford" in result.routing

    def test_every_explicit_strategy_records_engine(self, clifford_circuit):
        sampler = ProportionalPTS(total_shots=300)
        for name in ("serial", "vectorized", "parallel", "sharded", "clifford"):
            backend = (
                BackendSpec.batched_statevector()
                if name in ("vectorized", "sharded")
                else BackendSpec.statevector()
            )
            kwargs = {"num_workers": 2} if name == "parallel" else None
            result = run_ptsbe(
                clifford_circuit, sampler, backend, seed=5,
                strategy=name, executor_kwargs=kwargs,
            )
            assert result.engine == name
            assert result.routing == f"explicit strategy {name!r}"

    def test_stream_records_engine_and_routing(self, clifford_circuit):
        stream = run_ptsbe_stream(
            clifford_circuit, ProportionalPTS(total_shots=300), seed=5
        )
        assert stream.engine == "clifford"
        assert stream.routing.startswith("auto->clifford")
        result = stream.finalize()
        assert result.engine == "clifford"
        assert result.routing == stream.routing


class TestCliffordDeterminism:
    def test_seeded_replay_bitwise(self, clifford_circuit):
        sampler = ExhaustivePTS(cutoff=1e-5, nshots=None, total_shots=4000)
        a = run_ptsbe(clifford_circuit, sampler, seed=17)
        b = run_ptsbe(clifford_circuit, sampler, seed=17)
        assert a.engine == b.engine == "clifford"
        np.testing.assert_array_equal(a.shot_table().bits, b.shot_table().bits)
        np.testing.assert_array_equal(
            a.shot_table().trajectory_ids, b.shot_table().trajectory_ids
        )

    def test_auto_equals_explicit_clifford(self, clifford_circuit):
        sampler = ProportionalPTS(total_shots=2000)
        auto = run_ptsbe(clifford_circuit, sampler, seed=17)
        explicit = run_ptsbe(clifford_circuit, sampler, seed=17, strategy="clifford")
        np.testing.assert_array_equal(
            auto.shot_table().bits, explicit.shot_table().bits
        )

    def test_unseeded_run_replays_via_resolved_seed(self, clifford_circuit):
        sampler = ProportionalPTS(total_shots=1000)
        first = run_ptsbe(clifford_circuit, sampler)
        replay = run_ptsbe(clifford_circuit, sampler, seed=first.seed)
        np.testing.assert_array_equal(
            first.shot_table().bits, replay.shot_table().bits
        )

    def test_streaming_chunks_concatenate(self, clifford_circuit):
        sampler = ExhaustivePTS(cutoff=1e-5, nshots=None, total_shots=3000)
        stream = run_ptsbe_stream(clifford_circuit, sampler, seed=17)
        chunks = [c.shot_table() for c in stream if c.num_shots]
        result = stream.finalize()
        ids = [t.trajectory_ids[0] for t in chunks]
        assert ids == sorted(ids)  # ordered delivery
        from repro.execution.results import ShotTable

        concat = ShotTable.concatenate(chunks)
        np.testing.assert_array_equal(concat.bits, result.shot_table().bits)

    def test_retain_false_streams_without_finalize(self, clifford_circuit):
        stream = run_ptsbe_stream(
            clifford_circuit, ProportionalPTS(total_shots=1000), seed=3,
            retain=False,
        )
        total = sum(chunk.num_shots for chunk in stream)
        assert total == 1000
        with pytest.raises(ExecutionError):
            stream.finalize()

    def test_midstream_close(self, clifford_circuit):
        stream = run_ptsbe_stream(
            clifford_circuit,
            ExhaustivePTS(cutoff=1e-5, nshots=None, total_shots=3000),
            seed=3,
        )
        next(iter(stream))
        stream.close()  # must not raise


class TestDenseBitwiseStability:
    """Auto on router-declined circuits = pre-router dispatch, bitwise."""

    def test_statevector_auto_matches_serial(self, t_gate_circuit):
        sampler = ProbabilisticPTS(nsamples=60, nshots=50)
        auto = run_ptsbe(t_gate_circuit, sampler, seed=9)
        pinned = run_ptsbe(t_gate_circuit, sampler, seed=9, strategy="serial")
        assert auto.engine == "serial"
        np.testing.assert_array_equal(
            auto.shot_table().bits, pinned.shot_table().bits
        )

    def test_batched_auto_matches_vectorized(self, t_gate_circuit):
        sampler = ProbabilisticPTS(nsamples=60, nshots=50)
        auto = run_ptsbe(
            t_gate_circuit, sampler, BackendSpec.batched_statevector(), seed=9
        )
        pinned = run_ptsbe(
            t_gate_circuit, sampler, BackendSpec.batched_statevector(), seed=9,
            strategy="vectorized",
        )
        assert auto.engine == "vectorized"
        np.testing.assert_array_equal(
            auto.shot_table().bits, pinned.shot_table().bits
        )

    def test_routing_dense_pins_clifford_workload_to_dense(self, clifford_circuit):
        sampler = ProbabilisticPTS(nsamples=40, nshots=50)
        dense_cfg = BackendSpec(
            "statevector", (("config", Config(routing="dense")),)
        )
        forced = run_ptsbe(clifford_circuit, sampler, dense_cfg, seed=9)
        pinned = run_ptsbe(clifford_circuit, sampler, seed=9, strategy="serial")
        assert forced.engine == "serial"
        np.testing.assert_array_equal(
            forced.shot_table().bits, pinned.shot_table().bits
        )


class TestFrameConformance:
    def test_distribution_matches_dense_reference(self, clifford_circuit):
        """Frame and serial tables both pass the sweep-oracle distribution
        tier against the exact density-matrix reference."""
        sampler = ExhaustivePTS(cutoff=1e-6, nshots=None, total_shots=30_000)
        frames = run_ptsbe(clifford_circuit, sampler, seed=13, strategy="clifford")
        serial = run_ptsbe(clifford_circuit, sampler, seed=13, strategy="serial")
        coverage = sum(r.nominal_probability for r in frames.records)
        oracle = OracleSpec(tvd_tolerance=0.03)
        for result in (frames, serial):
            finding = check_distribution(
                clifford_circuit,
                result.shot_table(),
                coverage,
                oracle,
                unitary_mixture=True,
                proportional_shots=True,
            )
            assert finding.status == PASS, f"{result.engine}: {finding.detail}"

    def test_weights_match_dense_exactly(self, clifford_circuit):
        sampler = ExhaustivePTS(cutoff=1e-5, nshots=None, total_shots=2000)
        frames = run_ptsbe(clifford_circuit, sampler, seed=13, strategy="clifford")
        serial = run_ptsbe(clifford_circuit, sampler, seed=13, strategy="serial")
        fw = {r.trajectory_id: r.weight for r in frames.records}
        sw = {r.trajectory_id: r.weight for r in serial.records}
        assert fw.keys() == sw.keys()
        for tid, weight in fw.items():
            assert weight == pytest.approx(sw[tid], abs=1e-12)

    def test_dedup_counts_unique_preparations(self, clifford_circuit):
        sampler = ExhaustivePTS(cutoff=1e-5, nshots=None, total_shots=2000)
        result = run_ptsbe(clifford_circuit, sampler, seed=13, strategy="clifford")
        assert result.unique_preparations is not None
        assert result.unique_preparations <= result.num_trajectories


class TestCliffordRejections:
    def test_non_clifford_circuit_raises(self, t_gate_circuit):
        with pytest.raises(ExecutionError, match="pure-Clifford"):
            run_ptsbe(
                t_gate_circuit, ProportionalPTS(total_shots=100), seed=1,
                strategy="clifford",
            )

    def test_non_pauli_noise_raises(self, damping_circuit):
        with pytest.raises(ExecutionError, match="Pauli-mixture"):
            run_ptsbe(
                damping_circuit, ProportionalPTS(total_shots=100), seed=1,
                strategy="clifford",
            )

    def test_backend_factory_rejected(self):
        from repro.backends.statevector import StatevectorBackend

        with pytest.raises(ExecutionError, match="factory"):
            CliffordFrameExecutor(backend=lambda n: StatevectorBackend(n))

    def test_mps_backend_spec_rejected(self):
        with pytest.raises(ExecutionError, match="mps"):
            CliffordFrameExecutor(backend=BackendSpec.mps())


class TestAlgebraicPauliRecognition:
    """The O(4^n)-scan replacement must keep exact label semantics."""

    @pytest.mark.parametrize("label", ["X", "Z", "XY", "ZI", "IXZ", "YYX"])
    def test_recovers_labels(self, label):
        matrix = pauli_string_matrix(label)
        recognized = pauli_from_unitary(matrix, len(label))
        assert recognized is not None
        assert recognized.label() == label

    def test_accepts_global_phase(self):
        matrix = np.exp(0.37j) * pauli_string_matrix("XZ")
        recognized = pauli_from_unitary(matrix, 2)
        assert recognized is not None
        assert recognized.label() == "XZ"

    def test_rejects_hadamard(self):
        h = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
        assert pauli_from_unitary(h, 1) is None

    def test_rejects_scaled_pauli(self):
        assert pauli_from_unitary(0.5 * pauli_string_matrix("X"), 1) is None

    def test_rejects_sum_of_paulis(self):
        m = 0.8 * pauli_string_matrix("XX") + 0.6 * pauli_string_matrix("ZZ")
        assert pauli_from_unitary(m, 2) is None
