"""Tests for ``repro.lint``: every rule catches a seeded violation.

Each rule gets positive fixtures (a planted violation the rule must
flag) and negative fixtures (the sanctioned idiom it must stay quiet
on), plus coverage of the suppression comments, baseline round-trip,
CLI exit codes, and a meta-test asserting the live codebase is
lint-clean against the committed baseline.

Fixture trees are tiny synthetic source roots laid out like
``src/repro`` (rules scope themselves by relative path), written to
``tmp_path`` and linted via the public :func:`repro.lint.run_lint`.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    BaselineEntry,
    LintError,
    all_rules,
    default_baseline_path,
    default_root,
    load_baseline,
    partition,
    run_lint,
    write_baseline,
)
from repro.lint.cli import main as lint_main


def make_tree(root: Path, files: dict) -> Path:
    """Write a fixture source tree: relative path -> source text."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def rule_ids(findings) -> list:
    return [f.rule for f in findings]


# --------------------------------------------------------------------- #
# XP001: direct numpy compute in device-path modules
# --------------------------------------------------------------------- #
class TestXP001:
    def test_flags_numpy_compute_in_device_path(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "def prep(stack, m):\n"
                    "    return np.matmul(m, stack)\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["XP001"])
        assert rule_ids(findings) == ["XP001"]
        assert findings[0].path == "execution/vectorized.py"
        assert findings[0].line == 3
        assert "matmul" in findings[0].message
        assert findings[0].scope == "prep"

    def test_xp_namespace_calls_pass(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "def prep(stack, m, xp):\n"
                    "    return xp.matmul(m, stack)\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP001"]) == []

    def test_construction_calls_allowed(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "backends/batched_statevector.py": (
                    "import numpy as np\n"
                    "def buffers(n):\n"
                    "    a = np.empty((4, 2**n), dtype=np.complex128)\n"
                    "    b = np.asarray([1, 2], dtype=np.intp)\n"
                    "    return a, np.zeros_like(b)\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP001"]) == []

    def test_non_device_module_not_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "analysis/estimators.py": (
                    "import numpy as np\n"
                    "def mean(x):\n"
                    "    return np.sum(x) / len(x)\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP001"]) == []

    def test_boundary_allowlist_backend_py(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "linalg/backend.py": (
                    "import numpy as np\n"
                    "def to_host(a):\n"
                    "    return np.asarray(np.sum(a))\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP001"]) == []

    def test_from_import_and_submodule_resolution(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "linalg/decompositions.py": (
                    "from numpy import einsum\n"
                    "import numpy.linalg\n"
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    x = einsum('ij,jk->ik', a, b)\n"
                    "    return np.linalg.svd(x)\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["XP001"])
        assert sorted(f.line for f in findings) == [5, 6]

    def test_local_name_collision_not_flagged(self, tmp_path):
        # A local object with a compute-sounding method is not numpy.
        make_tree(
            tmp_path,
            {
                "execution/sharded.py": (
                    "def f(pool, work):\n"
                    "    return pool.sum(work)\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP001"]) == []


# --------------------------------------------------------------------- #
# XP002: host transfers inside executor loops
# --------------------------------------------------------------------- #
class TestXP002:
    def test_to_host_in_loop_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "def deliver(backend, rows):\n"
                    "    out = []\n"
                    "    for row in rows:\n"
                    "        out.append(backend.to_host(row))\n"
                    "    return out\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["XP002"])
        assert rule_ids(findings) == ["XP002"]
        assert findings[0].line == 4

    def test_to_host_outside_loop_ok(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "def deliver(backend, stack):\n"
                    "    norms = backend.to_host(stack)\n"
                    "    return norms\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP002"]) == []

    def test_zero_arg_get_in_loop_flagged_dict_get_ok(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/sharded.py": (
                    "def drain(chunks, cache):\n"
                    "    for c in chunks:\n"
                    "        host = c.get()\n"
                    "        hit = cache.get('key')\n"
                    "    return host, hit\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["XP002"])
        assert [f.line for f in findings] == [3]

    def test_float_of_device_derived_in_loop(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "backends/batched_statevector.py": (
                    "def weights(self, xp, rows):\n"
                    "    norms = xp.einsum('bi,bi->b', rows, rows)\n"
                    "    out = []\n"
                    "    for r in range(4):\n"
                    "        out.append(float(norms[r]))\n"
                    "    return out\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["XP002"])
        assert rule_ids(findings) == ["XP002"]
        assert "norms" in findings[0].message

    def test_float_of_host_array_in_loop_ok(self, tmp_path):
        # Crossing once via to_host then reading per-row floats is the
        # sanctioned pattern (what _apply_noise_step does).
        make_tree(
            tmp_path,
            {
                "backends/batched_statevector.py": (
                    "def weights(self, ab, xp, rows):\n"
                    "    norms = xp.einsum('bi,bi->b', rows, rows)\n"
                    "    norms_host = ab.to_host(norms)\n"
                    "    out = []\n"
                    "    for r in range(4):\n"
                    "        out.append(float(norms_host[r]))\n"
                    "    return out\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP002"]) == []

    def test_comprehension_counts_as_loop(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/tensornet.py": (
                    "def drain(ab, rows):\n"
                    "    return [ab.to_host(r) for r in rows]\n"
                )
            },
        )
        assert rule_ids(run_lint(tmp_path, ["XP002"])) == ["XP002"]

    def test_non_hot_path_module_ignored(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "data/io.py": (
                    "def drain(ab, rows):\n"
                    "    return [ab.to_host(r) for r in rows]\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP002"]) == []


# --------------------------------------------------------------------- #
# RNG001: unmanaged randomness
# --------------------------------------------------------------------- #
class TestRNG001:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "channels/noise_model.py": (
                    "import numpy as np\n"
                    "def draw():\n"
                    "    return np.random.default_rng().random()\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["RNG001"])
        assert rule_ids(findings) == ["RNG001"]
        assert "default_rng" in findings[0].message

    def test_from_import_default_rng_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "pts/adaptive.py": (
                    "from numpy.random import default_rng\n"
                    "def draw(seed):\n"
                    "    return default_rng(seed)\n"
                )
            },
        )
        assert rule_ids(run_lint(tmp_path, ["RNG001"])) == ["RNG001"]

    def test_stdlib_random_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "sweep/runner.py": (
                    "import random\n"
                    "def jitter():\n"
                    "    return random.random()\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["RNG001"])
        assert rule_ids(findings) == ["RNG001"]
        assert "process-global" in findings[0].message

    def test_generator_annotation_not_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "pts/base.py": (
                    "import numpy as np\n"
                    "def sample(rng: np.random.Generator) -> np.ndarray:\n"
                    "    return rng.random(10)\n"
                )
            },
        )
        assert run_lint(tmp_path, ["RNG001"]) == []

    def test_rng_machinery_module_exempt(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "rng.py": (
                    "import numpy as np\n"
                    "def make_rng(seed):\n"
                    "    return np.random.Generator(np.random.Philox(seed))\n"
                )
            },
        )
        assert run_lint(tmp_path, ["RNG001"]) == []

    def test_repro_rng_helpers_pass(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "circuits/library.py": (
                    "from repro.rng import library_rng\n"
                    "def build(seed):\n"
                    "    return library_rng(seed)\n"
                )
            },
        )
        assert run_lint(tmp_path, ["RNG001"]) == []


# --------------------------------------------------------------------- #
# DET001: nondeterminism in replay paths
# --------------------------------------------------------------------- #
class TestDET001:
    def test_wall_clock_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/batched.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["DET001"])
        assert rule_ids(findings) == ["DET001"]
        assert "time.time" in findings[0].message

    def test_perf_counter_allowed(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/batched.py": (
                    "import time\n"
                    "def measure():\n"
                    "    return time.perf_counter()\n"
                )
            },
        )
        assert run_lint(tmp_path, ["DET001"]) == []

    def test_os_urandom_and_uuid_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "trajectory/events.py": (
                    "import os\n"
                    "import uuid\n"
                    "def tag():\n"
                    "    return os.urandom(8), uuid.uuid4()\n"
                )
            },
        )
        assert rule_ids(run_lint(tmp_path, ["DET001"])) == ["DET001", "DET001"]

    def test_set_iteration_flagged_sorted_ok(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "backends/pauli_frame.py": (
                    "def order(qubits):\n"
                    "    out = []\n"
                    "    for q in {str(q) for q in qubits}:\n"
                    "        out.append(q)\n"
                    "    for q in sorted(set(qubits)):\n"
                    "        out.append(q)\n"
                    "    return out\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["DET001"])
        assert [f.line for f in findings] == [3]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_non_replay_module_ignored(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "sweep/report.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                )
            },
        )
        assert run_lint(tmp_path, ["DET001"]) == []


# --------------------------------------------------------------------- #
# ERR001: failures must reach the recovery ladder
# --------------------------------------------------------------------- #
class TestERR001:
    def test_bare_except_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/streaming.py": (
                    "def pump(fn):\n"
                    "    try:\n"
                    "        return fn()\n"
                    "    except:\n"
                    "        return None\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["ERR001"])
        assert rule_ids(findings) == ["ERR001"]
        assert findings[0].line == 4
        assert "bare" in findings[0].message

    def test_broad_except_without_reraise_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/parallel.py": (
                    "def pump(fn):\n"
                    "    try:\n"
                    "        return fn()\n"
                    "    except Exception as exc:\n"
                    "        print(exc)\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["ERR001"])
        assert rule_ids(findings) == ["ERR001"]
        assert "Exception" in findings[0].message

    def test_broad_except_that_translates_passes(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/parallel.py": (
                    "from repro.errors import ExecutionError\n"
                    "def pump(fn, unit):\n"
                    "    try:\n"
                    "        return fn()\n"
                    "    except Exception as exc:\n"
                    "        raise ExecutionError(f'unit {unit} died') from exc\n"
                )
            },
        )
        assert run_lint(tmp_path, ["ERR001"]) == []

    def test_swallowed_repro_error_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/sharded.py": (
                    "from repro.errors import BackendError\n"
                    "def pump(units):\n"
                    "    for unit in units:\n"
                    "        try:\n"
                    "            unit()\n"
                    "        except BackendError:\n"
                    "            continue\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["ERR001"])
        assert rule_ids(findings) == ["ERR001"]
        assert "BackendError" in findings[0].message

    def test_swallowed_in_tuple_and_attribute_form_flagged(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "faults/retry.py": (
                    "import repro.errors as errors\n"
                    "def pump(fn):\n"
                    "    try:\n"
                    "        fn()\n"
                    "    except (ValueError, errors.SamplingError):\n"
                    "        pass\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["ERR001"])
        assert rule_ids(findings) == ["ERR001"]
        assert "SamplingError" in findings[0].message

    def test_handled_repro_error_passes(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "from repro.errors import CapacityError\n"
                    "def pump(fn, events):\n"
                    "    try:\n"
                    "        return fn()\n"
                    "    except CapacityError as exc:\n"
                    "        events.append(exc)\n"
                    "        return None\n"
                )
            },
        )
        assert run_lint(tmp_path, ["ERR001"]) == []

    def test_non_literal_retryable_tuple_invisible(self, tmp_path):
        # `except policy.retryable:` routes classification through
        # RetryPolicy — the sanctioned structured path; the rule must
        # not guess at non-literal tuples.
        make_tree(
            tmp_path,
            {
                "execution/streaming.py": (
                    "def pump(fn, policy):\n"
                    "    try:\n"
                    "        return fn()\n"
                    "    except policy.retryable:\n"
                    "        return None\n"
                )
            },
        )
        assert run_lint(tmp_path, ["ERR001"]) == []

    def test_non_execution_module_ignored(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "analysis/estimators.py": (
                    "def safe(fn):\n"
                    "    try:\n"
                    "        return fn()\n"
                    "    except:\n"
                    "        return None\n"
                )
            },
        )
        assert run_lint(tmp_path, ["ERR001"]) == []

    def test_stdlib_narrow_except_passes(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/batched.py": (
                    "def lookup(d, k):\n"
                    "    try:\n"
                    "        return d[k]\n"
                    "    except KeyError:\n"
                    "        return None\n"
                )
            },
        )
        assert run_lint(tmp_path, ["ERR001"]) == []


# --------------------------------------------------------------------- #
# STRAT001: the cross-module executor contract
# --------------------------------------------------------------------- #
COMPLIANT_DISPATCH = """\
def _build_foo(backend, sample_kwargs, kwargs):
    from repro.execution.foo import FooExecutor
    return FooExecutor(backend, **kwargs)

STRATEGY_BUILDERS = {"foo": _build_foo}

def run_ptsbe_stream(circuit, sampler, strategy="auto"):
    executor = STRATEGY_BUILDERS[strategy](None, None, {})
    stream = executor.execute_stream(circuit, [], seed=0, retain=True)
    stream.routing = "explicit"
    return stream
"""

COMPLIANT_EXECUTOR = """\
class FooExecutor:
    def execute_stream(self, circuit, specs, seed=None, retain=True):
        return StreamedResult(engine="foo")

    def execute(self, circuit, specs, seed=None):
        return self.execute_stream(circuit, specs, seed=seed).finalize()
"""


class TestSTRAT001:
    def fixture(self, tmp_path, dispatch=COMPLIANT_DISPATCH, executor=COMPLIANT_EXECUTOR):
        return make_tree(
            tmp_path,
            {
                "execution/batched.py": dispatch,
                "execution/foo.py": executor,
            },
        )

    def test_compliant_tree_clean(self, tmp_path):
        self.fixture(tmp_path)
        assert run_lint(tmp_path, ["STRAT001"]) == []

    def test_missing_execute_stream(self, tmp_path):
        broken = COMPLIANT_EXECUTOR.replace("execute_stream", "execute_batch")
        self.fixture(tmp_path, executor=broken)
        findings = run_lint(tmp_path, ["STRAT001"])
        assert any("no execute_stream" in f.message for f in findings)
        assert findings[0].path == "execution/foo.py"

    def test_missing_seed_parameter(self, tmp_path):
        broken = COMPLIANT_EXECUTOR.replace(
            "def execute_stream(self, circuit, specs, seed=None, retain=True):",
            "def execute_stream(self, circuit, specs, retain=True):",
        )
        self.fixture(tmp_path, executor=broken)
        findings = run_lint(tmp_path, ["STRAT001"])
        assert len(findings) == 1
        assert "'seed'" in findings[0].message

    def test_missing_retain_parameter(self, tmp_path):
        broken = COMPLIANT_EXECUTOR.replace(
            "def execute_stream(self, circuit, specs, seed=None, retain=True):",
            "def execute_stream(self, circuit, specs, seed=None):",
        )
        self.fixture(tmp_path, executor=broken)
        findings = run_lint(tmp_path, ["STRAT001"])
        assert len(findings) == 1
        assert "'retain'" in findings[0].message

    def test_engine_not_recorded(self, tmp_path):
        broken = COMPLIANT_EXECUTOR.replace('engine="foo"', 'engine="bar"')
        self.fixture(tmp_path, executor=broken)
        findings = run_lint(tmp_path, ["STRAT001"])
        assert any("engine='foo'" in f.message for f in findings)

    def test_dispatch_must_attach_routing(self, tmp_path):
        broken = COMPLIANT_DISPATCH.replace('    stream.routing = "explicit"\n', "")
        self.fixture(tmp_path, dispatch=broken)
        findings = run_lint(tmp_path, ["STRAT001"])
        assert any("routing" in f.message for f in findings)

    def test_unresolvable_builder(self, tmp_path):
        # No `return <Cls>(...)` at all: the builder cannot be resolved.
        dispatch = (
            "def _build_foo(backend, sample_kwargs, kwargs):\n"
            "    pass\n"
            "\n"
            'STRATEGY_BUILDERS = {"foo": _build_foo}\n'
            "def run(stream):\n"
            "    stream.routing = 'x'\n"
        )
        self.fixture(tmp_path, dispatch=dispatch)
        findings = run_lint(tmp_path, ["STRAT001"])
        assert any("does not resolve" in f.message for f in findings)

    def test_builder_returning_unknown_class(self, tmp_path):
        # Resolves to a dispatch-local name that is not a class def.
        dispatch = (
            "def _build_foo(backend, sample_kwargs, kwargs):\n"
            "    return make_something()\n"
            "\n"
            'STRATEGY_BUILDERS = {"foo": _build_foo}\n'
            "def run(stream):\n"
            "    stream.routing = 'x'\n"
        )
        self.fixture(tmp_path, dispatch=dispatch)
        findings = run_lint(tmp_path, ["STRAT001"])
        assert any("not found" in f.message for f in findings)

    def test_non_repro_tree_silent(self, tmp_path):
        make_tree(tmp_path, {"pkg/module.py": "x = 1\n"})
        assert run_lint(tmp_path, ["STRAT001"]) == []

    def test_serial_style_local_class(self, tmp_path):
        # The serial engine's builder constructs a class defined in the
        # dispatch module itself (no builder-local import).
        dispatch = (
            "class BatchedExecutor:\n"
            "    def execute_stream(self, circuit, specs, seed=None, retain=True):\n"
            '        return StreamedResult(engine="serial")\n'
            "\n"
            "def _build_serial(backend, sample_kwargs, kwargs):\n"
            "    return BatchedExecutor(backend, **kwargs)\n"
            "\n"
            'STRATEGY_BUILDERS = {"serial": _build_serial}\n'
            "\n"
            "def run_ptsbe_stream(stream):\n"
            '    stream.routing = "explicit"\n'
            "    return stream\n"
        )
        make_tree(tmp_path, {"execution/batched.py": dispatch})
        assert run_lint(tmp_path, ["STRAT001"]) == []


# --------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_inline_disable_silences_one_rule_one_line(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    x = np.matmul(a, b)  # replint: disable=XP001 -- justified\n"
                    "    y = np.matmul(a, b)\n"
                    "    return x, y\n"
                )
            },
        )
        findings = run_lint(tmp_path, ["XP001"])
        assert [f.line for f in findings] == [4]

    def test_disable_all_wildcard(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "import time\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b), time.time()  # replint: disable=all\n"
                )
            },
        )
        assert run_lint(tmp_path) == []

    def test_disable_file(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "# replint: disable-file=XP001 -- vendored kernel shim\n"
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b)\n"
                )
            },
        )
        assert run_lint(tmp_path, ["XP001"]) == []

    def test_disable_list_of_rules(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "import time\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b), time.time()  # replint: disable=XP001,DET001\n"
                )
            },
        )
        assert run_lint(tmp_path) == []

    def test_unrelated_rule_still_fires(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import time\n"
                    "def f():\n"
                    "    return time.time()  # replint: disable=XP001\n"
                )
            },
        )
        assert rule_ids(run_lint(tmp_path)) == ["DET001"]


# --------------------------------------------------------------------- #
# baseline round-trip
# --------------------------------------------------------------------- #
class TestBaseline:
    def seeded_tree(self, tmp_path):
        return make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b)\n"
                )
            },
        )

    def test_round_trip(self, tmp_path):
        self.seeded_tree(tmp_path)
        findings = run_lint(tmp_path)
        assert findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, baseline_file, notes="test")
        entries = load_baseline(baseline_file)
        assert len(entries) == len(findings)
        new, baselined, stale = partition(findings, entries)
        assert new == [] and stale == []
        assert len(baselined) == len(findings)

    def test_line_churn_does_not_invalidate(self, tmp_path):
        self.seeded_tree(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(run_lint(tmp_path), baseline_file)
        # Insert unrelated lines above the finding: key is line-agnostic.
        target = tmp_path / "execution/vectorized.py"
        target.write_text("import numpy as np\n\n\n" + target.read_text().split("\n", 1)[1])
        new, baselined, stale = partition(
            run_lint(tmp_path), load_baseline(baseline_file)
        )
        assert new == [] and stale == []

    def test_count_aware_matching(self, tmp_path):
        self.seeded_tree(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(run_lint(tmp_path), baseline_file)
        # Duplicate the offending line: one finding is absorbed, the
        # second is new — grandfathered debt must not hide growth.
        target = tmp_path / "execution/vectorized.py"
        target.write_text(
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.matmul(a, b)\n"
            "def g(a, b):\n"
            "    return np.matmul(a, b)\n"
        )
        new, baselined, stale = partition(
            run_lint(tmp_path), load_baseline(baseline_file)
        )
        # Different scope -> different key: the g() copy is new.
        assert len(new) == 1 and new[0].scope == "g"
        assert len(baselined) == 1 and stale == []

    def test_stale_entries_reported(self, tmp_path):
        self.seeded_tree(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(run_lint(tmp_path), baseline_file)
        (tmp_path / "execution/vectorized.py").write_text(
            "def f(a, b, xp):\n    return xp.matmul(a, b)\n"
        )
        new, baselined, stale = partition(
            run_lint(tmp_path), load_baseline(baseline_file)
        )
        assert new == [] and baselined == []
        assert len(stale) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LintError):
            load_baseline(bad)
        bad.write_text('{"no_entries": []}')
        with pytest.raises(LintError):
            load_baseline(bad)

    def test_justifications_by_path_prefix(self, tmp_path):
        self.seeded_tree(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(
            run_lint(tmp_path),
            baseline_file,
            justifications={"execution/": "host tier until CuPy leg"},
        )
        entries = load_baseline(baseline_file)
        assert entries[0].justification == "host tier until CuPy leg"


# --------------------------------------------------------------------- #
# CLI behavior and exit codes
# --------------------------------------------------------------------- #
class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        make_tree(tmp_path, {"data/io.py": "x = 1\n"})
        assert lint_main(["--root", str(tmp_path), "--no-baseline"]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b)\n"
                )
            },
        )
        assert lint_main(["--root", str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "XP001" in out and "1 new" in out

    def test_baselined_findings_exit_zero(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b)\n"
                )
            },
        )
        baseline = tmp_path / "bl.json"
        assert (
            lint_main(["--root", str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert lint_main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_strict_fails_on_stale_entries(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b)\n"
                )
            },
        )
        baseline = tmp_path / "bl.json"
        lint_main(["--root", str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        (tmp_path / "execution/vectorized.py").write_text(
            "def f(a, b, xp):\n    return xp.matmul(a, b)\n"
        )
        # Non-strict tolerates the stale entry; strict demands cleanup.
        assert lint_main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 0
        assert (
            lint_main(["--root", str(tmp_path), "--baseline", str(baseline), "--strict"])
            == 1
        )

    def test_json_report_shape(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b)\n"
                )
            },
        )
        code = lint_main(["--root", str(tmp_path), "--no-baseline", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["summary"]["new"] == 1
        assert report["new"][0]["rule"] == "XP001"
        assert {r["id"] for r in report["rules"]} >= {
            "XP001", "XP002", "RNG001", "DET001", "STRAT001",
        }

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        make_tree(tmp_path, {"data/io.py": "x = 1\n"})
        assert lint_main(["--root", str(tmp_path), "--rules", "NOPE99"]) == 2

    def test_rules_filter(self, tmp_path, capsys):
        make_tree(
            tmp_path,
            {
                "execution/vectorized.py": (
                    "import numpy as np\n"
                    "import time\n"
                    "def f(a, b):\n"
                    "    return np.matmul(a, b), time.time()\n"
                )
            },
        )
        assert lint_main(
            ["--root", str(tmp_path), "--no-baseline", "--rules", "DET001"]
        ) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "XP001" not in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("XP001", "XP002", "RNG001", "DET001", "STRAT001"):
            assert rule_id in out

    def test_module_invocation(self, tmp_path):
        # `python -m repro.lint` end to end, as CI invokes it.
        make_tree(tmp_path, {"data/io.py": "x = 1\n"})
        src = Path(__file__).resolve().parents[1] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--root", str(tmp_path), "--no-baseline"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr


# --------------------------------------------------------------------- #
# rule catalogue integrity + the live-codebase meta-test
# --------------------------------------------------------------------- #
class TestCatalogue:
    def test_at_least_five_rules_registered(self):
        ids = {rule.id for rule in all_rules()}
        assert {"XP001", "XP002", "RNG001", "DET001", "STRAT001"} <= ids
        for rule in all_rules():
            assert rule.title and rule.rationale

    def test_parse_error_reported_not_crash(self, tmp_path):
        make_tree(tmp_path, {"execution/broken.py": "def f(:\n"})
        findings = run_lint(tmp_path)
        assert [f.rule for f in findings] == ["PARSE"]


class TestLiveCodebase:
    """The committed tree must be lint-clean against the committed baseline."""

    def test_live_tree_has_no_new_findings(self):
        findings = run_lint(default_root())
        entries = load_baseline(default_baseline_path())
        new, _, stale = partition(findings, entries)
        assert new == [], "un-baselined lint findings:\n" + "\n".join(
            f.render() for f in new
        )
        assert stale == [], "stale baseline entries (debt paid — remove them):\n" + "\n".join(
            f"{e.rule} {e.path} {e.text!r}" for e in stale
        )

    def test_committed_baseline_is_fully_justified(self):
        entries = load_baseline(default_baseline_path())
        for entry in entries:
            assert entry.justification, (
                f"baseline entry without justification: {entry.rule} "
                f"{entry.path} {entry.text!r}"
            )

    def test_strategy_contract_holds_on_live_tree(self):
        # STRAT001 alone, no baseline: the live executors must satisfy
        # the contract outright (never via grandfathering).
        assert run_lint(default_root(), ["STRAT001"]) == []

    def test_live_rng_discipline_outside_baseline(self):
        # RNG001 and DET001 must be outright clean on the live tree.
        assert run_lint(default_root(), ["RNG001"]) == []
        assert run_lint(default_root(), ["DET001"]) == []


# --------------------------------------------------------------------- #
# optional: mypy --strict over the typed slice (mirrors the CI step)
# --------------------------------------------------------------------- #
@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_typed_slice():
    src = Path(__file__).resolve().parents[1] / "src"
    proc = subprocess.run(
        [
            "mypy",
            "--strict",
            "--no-error-summary",
            str(src / "repro" / "lint"),
            str(src / "repro" / "rng.py"),
        ],
        capture_output=True,
        text=True,
        cwd=str(src),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
