"""Dense statevector backend: gate application, sampling, collapse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.statevector import StatevectorBackend, bits_from_indices
from repro.channels.pauli import PauliString
from repro.channels.standard import amplitude_damping, depolarizing
from repro.circuits import Circuit
from repro.circuits.gates import CX, H, T, X
from repro.config import Config
from repro.errors import BackendError, CapacityError
from repro.linalg import random_unitary
from repro.rng import make_rng


class TestBasics:
    def test_initial_state(self):
        sv = StatevectorBackend(3)
        assert sv.statevector[0] == 1.0
        assert sv.norm_squared() == pytest.approx(1.0)

    def test_capacity_guard(self):
        with pytest.raises(CapacityError):
            StatevectorBackend(40)

    def test_reset(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [0])
        sv.reset()
        assert abs(sv.statevector[0] - 1.0) < 1e-12

    def test_set_statevector_validates_dim(self):
        sv = StatevectorBackend(2)
        with pytest.raises(BackendError):
            sv.set_statevector(np.ones(3))

    def test_set_statevector_normalize(self):
        sv = StatevectorBackend(1)
        sv.set_statevector(np.array([3.0, 4.0]), normalize=True)
        assert sv.norm_squared() == pytest.approx(1.0)


class TestGateApplication:
    def test_x_flips(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(X, [1])
        assert abs(sv.statevector[0b01]) == pytest.approx(1.0)

    def test_cx_ordering(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(X, [0])
        sv.apply_gate(CX, [0, 1])
        assert abs(sv.statevector[0b11]) == pytest.approx(1.0)

    def test_cx_reversed_targets(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(X, [1])
        sv.apply_gate(CX, [1, 0])  # control qubit 1
        assert abs(sv.statevector[0b11]) == pytest.approx(1.0)

    def test_matches_dense_unitary(self, rng):
        circ = Circuit(3).h(0).cx(0, 1).t(1).cz(1, 2).sx(2)
        sv = StatevectorBackend(3)
        for op in circ.coherent_ops:
            sv.apply_gate(op.gate, op.qubits)
        expected = circ.unitary() @ np.eye(8)[:, 0]
        assert np.allclose(sv.statevector, expected)

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_random_two_qubit_gate_preserves_norm(self, a, b):
        if a == b:
            return
        sv = StatevectorBackend(4)
        sv.apply_gate(H, [0])
        sv.apply_gate(CX, [0, 2])
        u = random_unitary(4, np.random.default_rng(0))
        sv.apply_matrix(u, [a, b])
        assert sv.norm_squared() == pytest.approx(1.0, abs=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(BackendError):
            StatevectorBackend(2).apply_matrix(np.eye(2), [0, 1])

    def test_duplicate_targets_rejected(self):
        with pytest.raises(BackendError):
            StatevectorBackend(2).apply_matrix(np.eye(4), [0, 0])


class TestKrausApplication:
    def test_apply_channel_choice_returns_probability(self):
        sv = StatevectorBackend(1)
        sv.apply_gate(H, [0])
        ch = amplitude_damping(0.4)
        # branch 1 = decay: <psi|K1^dag K1|psi> = 0.4 * |<1|psi>|^2 = 0.2
        prob = sv.apply_channel_choice(ch, [0], 1)
        assert prob == pytest.approx(0.2)
        assert sv.norm_squared() == pytest.approx(1.0)
        # post-decay state is |0>
        assert abs(sv.statevector[0]) == pytest.approx(1.0)

    def test_zero_probability_branch_raises(self):
        sv = StatevectorBackend(1)  # |0>: decay branch impossible
        with pytest.raises(BackendError):
            sv.apply_channel_choice(amplitude_damping(0.4), [0], 1)

    def test_branch_probabilities_sum_to_one(self, rng):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [0])
        sv.apply_gate(CX, [0, 1])
        probs = sv.branch_probabilities(amplitude_damping(0.3), [1])
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_branch_probabilities_match_nominal_for_mixture(self):
        sv = StatevectorBackend(1)
        sv.apply_gate(H, [0])
        probs = sv.branch_probabilities(depolarizing(0.3), [0])
        assert np.allclose(probs, depolarizing(0.3).nominal_probs, atol=1e-10)


class TestSampling:
    def test_deterministic_state_samples_constant(self, rng):
        sv = StatevectorBackend(3)
        sv.apply_gate(X, [1])
        bits = sv.sample(100, [0, 1, 2], rng)
        assert np.all(bits == [0, 1, 0])

    def test_uniform_superposition_statistics(self, rng):
        sv = StatevectorBackend(1)
        sv.apply_gate(H, [0])
        bits = sv.sample(20000, [0], rng)
        assert abs(bits.mean() - 0.5) < 0.02

    def test_marginal_sampling_of_subset(self, rng):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [0])
        sv.apply_gate(CX, [0, 1])  # Bell state
        bits = sv.sample(5000, [1], rng)
        assert abs(bits.mean() - 0.5) < 0.05

    def test_bell_correlations(self, rng):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [0])
        sv.apply_gate(CX, [0, 1])
        bits = sv.sample(2000, [0, 1], rng)
        assert np.all(bits[:, 0] == bits[:, 1])

    def test_column_order_follows_request(self, rng):
        sv = StatevectorBackend(2)
        sv.apply_gate(X, [0])
        bits = sv.sample(10, [1, 0], rng)
        assert np.all(bits[:, 0] == 0) and np.all(bits[:, 1] == 1)

    def test_zero_shots(self, rng):
        sv = StatevectorBackend(2)
        assert sv.sample(0, [0], rng).shape == (0, 1)

    def test_negative_shots_rejected(self, rng):
        with pytest.raises(BackendError):
            StatevectorBackend(1).sample(-1, [0], rng)

    def test_sampling_reproducible_per_seed(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [0])
        a = sv.sample(50, [0, 1], make_rng(3))
        b = sv.sample(50, [0, 1], make_rng(3))
        assert np.array_equal(a, b)

    def test_probability_cache_invalidation(self, rng):
        sv = StatevectorBackend(1)
        sv.probabilities()
        sv.apply_gate(X, [0])
        assert sv.probabilities()[1] == pytest.approx(1.0)


class TestMeasurementPrimitives:
    def test_measure_probability_one(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [1])
        assert sv.measure_probability_one(1) == pytest.approx(0.5)
        assert sv.measure_probability_one(0) == pytest.approx(0.0)

    def test_collapse(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [0])
        sv.apply_gate(CX, [0, 1])
        p = sv.collapse(0, 1)
        assert p == pytest.approx(0.5)
        assert abs(sv.statevector[0b11]) == pytest.approx(1.0)

    def test_collapse_impossible_outcome(self):
        sv = StatevectorBackend(1)
        with pytest.raises(BackendError):
            sv.collapse(0, 1)

    def test_expectation_pauli(self):
        sv = StatevectorBackend(2)
        sv.apply_gate(H, [0])
        assert sv.expectation_pauli(PauliString.from_label("XI")) == pytest.approx(1.0)
        assert sv.expectation_pauli(PauliString.from_label("ZI")) == pytest.approx(0.0)
        assert sv.expectation_pauli(PauliString.from_label("IZ")) == pytest.approx(1.0)

    def test_expectation_pauli_y(self):
        sv = StatevectorBackend(1)
        sv.apply_gate(H, [0])
        sv.apply_matrix(np.array([[1, 0], [0, 1j]]), [0])  # S|+> = |+i>
        assert sv.expectation_pauli(PauliString.from_label("Y")) == pytest.approx(1.0)


class TestBitsFromIndices:
    def test_msb_convention(self):
        bits = bits_from_indices(np.array([0b101]), [0, 1, 2], 3)
        assert bits.tolist() == [[1, 0, 1]]

    def test_subset_and_order(self):
        bits = bits_from_indices(np.array([0b110]), [2, 0], 3)
        assert bits.tolist() == [[0, 1]]


class TestRunFixed:
    def test_ideal_run(self, noisy_ghz3):
        sv = StatevectorBackend(3)
        weight = sv.run_fixed(noisy_ghz3, {})
        # All dominant branches: weight = prod (1 - p) over 4 sites.
        assert weight == pytest.approx((1 - 0.05) ** 4)
        probs = sv.probabilities()
        assert probs[0b000] == pytest.approx(0.5, abs=1e-9)
        assert probs[0b111] == pytest.approx(0.5, abs=1e-9)

    def test_error_injection_changes_distribution(self, noisy_ghz3):
        sv = StatevectorBackend(3)
        site = noisy_ghz3.noise_sites[0]
        # Kraus index 1 = X error on that qubit.
        sv.run_fixed(noisy_ghz3, {site.site_id: 1})
        probs = sv.probabilities()
        assert probs[0b000] < 0.1  # GHZ symmetry broken

    def test_unfrozen_circuit_rejected(self):
        circ = Circuit(1).h(0)
        with pytest.raises(Exception):
            StatevectorBackend(1).run_fixed(circ, {})

    def test_measured_qubit_reuse_rejected(self):
        circ = Circuit(2).h(0)
        circ.measure(0)
        circ.x(0)
        circ.freeze()
        with pytest.raises(BackendError):
            StatevectorBackend(2).run_fixed(circ, {})

    def test_complex64_mode(self):
        config = Config(dtype=np.dtype(np.complex64))
        sv = StatevectorBackend(2, config=config)
        sv.apply_gate(H, [0])
        assert sv.statevector.dtype == np.complex64
        assert sv.norm_squared() == pytest.approx(1.0, abs=1e-6)
